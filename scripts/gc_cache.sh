#!/usr/bin/env bash
# Garbage-collects the sweep memo cache (results/cache/).
#
# Every cache entry is one small JSON file whose "key" field starts
# with the engine's key-format version prefix (currently "v1|"). When
# the simulator or workload models change in a result-affecting way,
# the version prefix is bumped and every old entry becomes dead weight:
# it can never hit again, but it still sits on disk. This script drops
# exactly those entries — anything whose key version prefix no longer
# matches the current format — plus anything unparsable enough to have
# no key at all.
#
#   scripts/gc_cache.sh            dry run (default): report what would
#                                  be reclaimed, delete nothing
#   scripts/gc_cache.sh --apply    actually delete the stale entries
#
# Prints the number of entries and bytes reclaimed (or reclaimable).
# The quarantine/ subdirectory (corrupt entries set aside by the
# engine) is left alone — it exists for post-mortems, not reuse.

set -euo pipefail
cd "$(dirname "$0")/.."

# Current key-format version prefix; keep in sync with the "v1|..."
# key builders in crates/core/src/sweep.rs.
CURRENT_PREFIX='v1|'

CACHE_DIR=results/cache
APPLY=0
for arg in "$@"; do
    case "$arg" in
        --apply) APPLY=1 ;;
        --dry-run) APPLY=0 ;;
        *) echo "usage: scripts/gc_cache.sh [--dry-run|--apply]" >&2; exit 2 ;;
    esac
done

if [ ! -d "$CACHE_DIR" ]; then
    echo "no cache directory ($CACHE_DIR); nothing to do"
    exit 0
fi

kept=0
stale=0
stale_bytes=0
for f in "$CACHE_DIR"/*.json; do
    [ -e "$f" ] || continue
    # Extract the key's leading "<version>|" from the entry; entries
    # are single-line JSON written by the engine, so a head-limited
    # sed keeps this cheap even if something huge snuck in.
    prefix=$(head -c 512 "$f" | sed -n 's/^{"key":"\([^|"]*|\).*/\1/p')
    if [ "$prefix" = "$CURRENT_PREFIX" ]; then
        kept=$((kept + 1))
        continue
    fi
    stale=$((stale + 1))
    size=$(wc -c < "$f")
    stale_bytes=$((stale_bytes + size))
    if [ "$APPLY" -eq 1 ]; then
        rm -- "$f"
    fi
done

if [ "$APPLY" -eq 1 ]; then
    echo "reclaimed $stale entries ($stale_bytes bytes); kept $kept current ($CURRENT_PREFIX...)"
else
    echo "would reclaim $stale entries ($stale_bytes bytes); kept $kept current ($CURRENT_PREFIX...)"
    if [ "$stale" -gt 0 ]; then
        echo "re-run with --apply to delete"
    fi
fi
