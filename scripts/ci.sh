#!/usr/bin/env bash
# Offline CI gate for the workspace.
#
# The whole pipeline runs without network access: the workspace has no
# external dependencies (no registry, no index update), so this script
# works on an air-gapped machine exactly as it does in CI.
#
#   scripts/ci.sh               full gate: build, tests, widened property
#                               tests, clippy (deny warnings)
#   scripts/ci.sh --quick       tier-1 only: release build + default tests
#   scripts/ci.sh --bench-smoke also run scripts/bench.sh --smoke after the
#                               gate (checks the benchmarks still run; the
#                               timings themselves are not gated)
#   scripts/ci.sh --chaos-smoke fault-injection gate only: runs the
#                               tests/chaos.rs suite (DESIGN.md §9) and
#                               exits — a fast standalone check that the
#                               degradation paths still hold
#   scripts/ci.sh --sched-smoke online-scheduler gate only: runs the
#                               tests/sched.rs suite (DESIGN.md §10) and a
#                               short seeded trace through schedd_sim under
#                               all three policies at TEST scale, then exits
#   scripts/ci.sh --profile-smoke
#                               phase-profiler gate only: runs one SMALL
#                               co-run sweep with --profile and a cold cache
#                               at 1/2/8 worker threads, asserts the phase
#                               totals sum to the simulated cycle count and
#                               that the profile line is byte-identical at
#                               every thread count, then exits
#   scripts/ci.sh --trace-smoke trace record/replay gate only: records one
#                               kernel with trace_record, replays it with
#                               trace_replay at 1/2/8 worker threads with a
#                               cold cache, and asserts the replay report
#                               line is byte-identical every time, then
#                               exits
#   scripts/ci.sh --shard-smoke sharded-stepping gate only: runs one fixed
#                               SMRA co-run over the SM-shard x memory-shard
#                               grid (s1/s2/s4 x m1/m2/m4, shard_smoke
#                               binary) and asserts the canonical JSON stats
#                               line is byte-identical at every grid point,
#                               then exits
#   scripts/ci.sh --daemon-smoke
#                               scheduler-daemon gate only: drives a seeded
#                               trace through an in-process schedd over
#                               virtual sockets (schedd_client --virtual),
#                               asserts the drained report is byte-identical
#                               to the batch scheduler at 1/2/8 worker
#                               threads, and replays a fault-injected
#                               session twice to pin its transcript and
#                               report (DESIGN.md §13), then exits
#   scripts/ci.sh --fleet-smoke heterogeneous-fleet gate only: runs the
#                               tests/fleet.rs suite and a TEST-scale
#                               fleet_sim pass, byte-diffs the homogeneous
#                               1-device FleetPolicy report against the
#                               IlpEpoch report, and re-runs the
#                               heterogeneous pass to pin its canonical
#                               JSON (DESIGN.md §14), then exits
#
# Any failing step aborts the run (set -e) with the step name printed.

set -euo pipefail
cd "$(dirname "$0")/.."

# Never let cargo try the network: everything must resolve from the
# local workspace alone.
export CARGO_NET_OFFLINE=true

QUICK=0
BENCH_SMOKE=0
CHAOS_SMOKE=0
SCHED_SMOKE=0
PROFILE_SMOKE=0
TRACE_SMOKE=0
SHARD_SMOKE=0
DAEMON_SMOKE=0
FLEET_SMOKE=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        --bench-smoke) BENCH_SMOKE=1 ;;
        --chaos-smoke) CHAOS_SMOKE=1 ;;
        --sched-smoke) SCHED_SMOKE=1 ;;
        --profile-smoke) PROFILE_SMOKE=1 ;;
        --trace-smoke) TRACE_SMOKE=1 ;;
        --shard-smoke) SHARD_SMOKE=1 ;;
        --daemon-smoke) DAEMON_SMOKE=1 ;;
        --fleet-smoke) FLEET_SMOKE=1 ;;
        *) echo "usage: scripts/ci.sh [--quick] [--bench-smoke] [--chaos-smoke] [--sched-smoke] [--profile-smoke] [--trace-smoke] [--shard-smoke] [--daemon-smoke] [--fleet-smoke]" >&2; exit 2 ;;
    esac
done

step() {
    echo
    echo "==> $*"
}

if [ "$CHAOS_SMOKE" -eq 1 ]; then
    step "chaos smoke (tests/chaos.rs: fault injection + degradation)"
    cargo test -q -p gcs-core --test chaos
    echo
    echo "chaos smoke passed"
    exit 0
fi

if [ "$SCHED_SMOKE" -eq 1 ]; then
    step "sched smoke (tests/sched.rs: batch equivalence + determinism)"
    cargo test -q -p gcs-sched
    step "sched smoke (schedd_sim, short seeded trace, all policies, GCS_SCALE=test)"
    cargo build --release --bin schedd_sim
    GCS_SCALE=test ./target/release/schedd_sim
    for policy in fcfs greedy ilp; do
        test -s "results/sched/sched_test_q14_$policy.json" || {
            echo "missing results/sched/sched_test_q14_$policy.json" >&2; exit 1;
        }
    done
    echo
    echo "sched smoke passed"
    exit 0
fi

if [ "$PROFILE_SMOKE" -eq 1 ]; then
    step "profile smoke (fig41_two_app --profile, GCS_SCALE=small, cache off)"
    cargo build --release --bin fig41_two_app
    REF=""
    for threads in 1 2 8; do
        LINE=$(GCS_CACHE=off GCS_SCALE=small GCS_THREADS=$threads \
               ./target/release/fig41_two_app --profile | grep '^profile:') || {
            echo "no profile line in fig41_two_app --profile output" >&2; exit 1;
        }
        echo "  threads=$threads  $LINE"
        TOTAL=$(echo "$LINE" | sed -n 's/.* total=\([0-9]*\).*/\1/p')
        SIM=$(echo "$LINE" | sed -n 's/.* sim_cycles=\([0-9]*\).*/\1/p')
        if [ -z "$TOTAL" ] || [ "$TOTAL" -eq 0 ] || [ "$TOTAL" != "$SIM" ]; then
            echo "phase totals ($TOTAL) must sum to simulated cycles ($SIM)" >&2
            exit 1
        fi
        if [ -z "$REF" ]; then
            REF="$LINE"
        elif [ "$LINE" != "$REF" ]; then
            echo "profile line differs at $threads threads:" >&2
            echo "  ref: $REF" >&2
            echo "  got: $LINE" >&2
            exit 1
        fi
    done
    echo
    echo "profile smoke passed (totals partition the cycles; byte-stable at 1/2/8 threads)"
    exit 0
fi

# Sharded-stepping gate: one fixed SMRA co-run per point of the
# SM-shard × memory-shard grid; the canonical JSON stats line must be
# byte-identical at every point (sharding is a pure wall-clock
# optimization — DESIGN.md §12, both phase A and phase M).
shard_smoke() {
    step "shard smoke (shard_smoke co-run, SM shards 1/2/4 x mem shards 1/2/4)"
    cargo build --release --bin shard_smoke
    local ref="" line pair shards mem
    for pair in "1 1" "2 1" "4 1" "1 2" "1 4" "4 2" "4 4"; do
        read -r shards mem <<<"$pair"
        line=$(./target/release/shard_smoke "$shards" "$mem" | grep '^stats:') || {
            echo "no stats line in shard_smoke output" >&2; exit 1;
        }
        echo "  shards=$shards mem=$mem  ${line:0:60}..."
        if [ -z "$ref" ]; then
            ref="$line"
        elif [ "$line" != "$ref" ]; then
            echo "canonical stats differ at shards=$shards mem=$mem:" >&2
            echo "  ref: $ref" >&2
            echo "  got: $line" >&2
            exit 1
        fi
    done
    echo "shard smoke passed (stats byte-identical across the SM x mem shard grid)"
}

if [ "$SHARD_SMOKE" -eq 1 ]; then
    shard_smoke
    exit 0
fi

# Scheduler-daemon gate: the online daemon session must be the same
# computation as the batch scheduler (byte-identical reports, stable
# across worker-thread counts), and the injected-fault session must be
# perfectly reproducible from its seed (DESIGN.md §13).
daemon_smoke() {
    step "daemon smoke (schedd_client --virtual: batch equivalence + fault determinism)"
    cargo build --release --bin schedd_client
    local dir threads run ref=""
    dir=$(mktemp -d)
    for threads in 1 2 8; do
        GCS_SCALE=test GCS_THREADS=$threads ./target/release/schedd_client --virtual \
            --jobs 8 --out "$dir/daemon_$threads.json" \
            --batch-out "$dir/batch_$threads.json" >/dev/null
        cmp "$dir/daemon_$threads.json" "$dir/batch_$threads.json" || {
            echo "daemon report differs from batch report at $threads threads" >&2
            exit 1
        }
        if [ -z "$ref" ]; then
            ref="$dir/daemon_$threads.json"
        else
            cmp "$ref" "$dir/daemon_$threads.json" || {
                echo "daemon report differs across worker-thread counts" >&2
                exit 1
            }
        fi
    done
    echo "  daemon session == batch report, byte-identical at 1/2/8 threads"
    for run in 1 2; do
        GCS_SCALE=test ./target/release/schedd_client --virtual --jobs 10 \
            --faults 3491 --transcript "$dir/transcript_$run.txt" \
            --out "$dir/faulted_$run.json" >/dev/null
    done
    cmp "$dir/transcript_1.txt" "$dir/transcript_2.txt" || {
        echo "fault transcript is not deterministic" >&2
        exit 1
    }
    cmp "$dir/faulted_1.json" "$dir/faulted_2.json" || {
        echo "fault-session report is not deterministic" >&2
        exit 1
    }
    echo "  fault-injected session reproducible (seed 3491: transcript + report)"
    rm -rf "$dir"
    echo "daemon smoke passed"
}

if [ "$DAEMON_SMOKE" -eq 1 ]; then
    daemon_smoke
    exit 0
fi

# Heterogeneous-fleet gate: the degenerate 1-device fleet must be
# byte-identical to the single-GPU scheduler, and the heterogeneous
# run's canonical JSON must be deterministic across re-runs
# (DESIGN.md §14). fleet_sim itself asserts fleet STP > FCFS STP.
fleet_smoke() {
    step "fleet smoke (tests/fleet.rs: equivalence, conservation, determinism)"
    cargo test -q -p gcs-fleet
    step "fleet smoke (fleet_sim, GCS_SCALE=test: hom byte-diff + hetero re-run pin)"
    cargo build --release --bin fleet_sim
    GCS_SCALE=test ./target/release/fleet_sim >/dev/null
    cmp results/fleet/fleet_hom_test_fleetpolicy.json \
        results/fleet/fleet_hom_test_ilp.json || {
        echo "homogeneous 1-device fleet report differs from single-GPU report" >&2
        exit 1
    }
    echo "  1-device FleetPolicy == IlpEpoch, byte-for-byte"
    cp results/fleet/fleet_test_fleet.json results/fleet/fleet_test_fleet.json.ref
    GCS_SCALE=test ./target/release/fleet_sim >/dev/null
    cmp results/fleet/fleet_test_fleet.json results/fleet/fleet_test_fleet.json.ref || {
        echo "heterogeneous fleet report is not deterministic across re-runs" >&2
        exit 1
    }
    rm -f results/fleet/fleet_test_fleet.json.ref
    echo "  heterogeneous canonical JSON stable across re-runs"
    echo "fleet smoke passed"
}

if [ "$FLEET_SMOKE" -eq 1 ]; then
    fleet_smoke
    exit 0
fi

if [ "$TRACE_SMOKE" -eq 1 ]; then
    step "trace smoke (trace_record + trace_replay round trip, GCS_SCALE=test)"
    cargo build --release --bin trace_record --bin trace_replay
    TRACE_DIR=$(mktemp -d)
    trap 'rm -rf "$TRACE_DIR"' EXIT
    GCS_SCALE=test ./target/release/trace_record BLK "$TRACE_DIR/blk.trace" \
        --json "$TRACE_DIR/blk.json"
    test -s "$TRACE_DIR/blk.trace" || { echo "empty trace file" >&2; exit 1; }
    test -s "$TRACE_DIR/blk.json" || { echo "empty trace json" >&2; exit 1; }
    REF=""
    for threads in 1 2 8; do
        LINE=$(GCS_CACHE=off GCS_SCALE=test GCS_THREADS=$threads \
               ./target/release/trace_replay "$TRACE_DIR/blk.trace" | grep '^replay:') || {
            echo "no replay line in trace_replay output" >&2; exit 1;
        }
        echo "  threads=$threads  $LINE"
        if [ -z "$REF" ]; then
            REF="$LINE"
        elif [ "$LINE" != "$REF" ]; then
            echo "replay line differs at $threads threads:" >&2
            echo "  ref: $REF" >&2
            echo "  got: $LINE" >&2
            exit 1
        fi
    done
    echo
    echo "trace smoke passed (replay report byte-stable at 1/2/8 threads)"
    exit 0
fi

step "build (release)"
cargo build --release

step "test (default features)"
cargo test -q

if [ "$QUICK" -eq 1 ]; then
    echo
    echo "quick gate passed (tier-1: release build + default tests)"
    exit 0
fi

step "test (widened property-test case counts)"
cargo test -q --features proptest-tests

# No rustfmt gate: tables like PAPER_PROFILES keep deliberate
# one-row-per-line layouts that rustfmt would destroy.
step "clippy (deny warnings)"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "clippy not installed; skipping lint step"
fi

shard_smoke
daemon_smoke
fleet_smoke

if [ "$BENCH_SMOKE" -eq 1 ]; then
    step "bench smoke (scripts/bench.sh --smoke)"
    scripts/bench.sh --smoke
fi

echo
echo "full gate passed"
