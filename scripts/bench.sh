#!/usr/bin/env bash
# Simulator + scheduler performance benchmark runner.
#
# Runs the simulator micro-benchmarks plus one fixed cold reference
# sweep and writes the results to BENCH_sim.json in the repo root:
#
#   {
#     "benches":    { "<name>": {"mean_ns": N, "min_ns": N,
#                                "sim_threads": K, "sm_shards": K,
#                                "mem_shards": K}, ... },
#     "cold_sweep": { "name": "...", "wall_seconds": S, "sim_threads": K, ... }
#   }
#
# K records the GCS_SIM_THREADS setting the run was measured under
# (default 1: unsharded reference stepping), and sm_shards/mem_shards
# record the shard plan that setting grants (today the sweep engine
# leases both shard counts equal to the thread budget; the stamp keeps
# baselines comparable if the plan ever diverges from the budget).
# Sharded stepping never changes results, but it very much changes
# wall-clock, so deltas are only meaningful between runs with the same
# plan — the gate below skips any bench whose recorded
# sim_threads/sm_shards/mem_shards differ from the baseline's instead
# of comparing apples to oranges.
#
# It then runs the online-scheduler micro-benchmarks (epoch planning
# cost per policy, warm-cache event loop, plus the fleet/ family:
# marginal-gain allocation over a warmed predictor and the warm-cache
# heterogeneous fleet loop) the same way into BENCH_sched.json, gated
# against its own committed baseline with the same min_ns tolerance.
#
# Usage:
#   scripts/bench.sh            full run (~200 ms x 3 samples per bench)
#   scripts/bench.sh --smoke    fast sanity pass (~25 ms x 1 sample);
#                               numbers are noisy, only checks that every
#                               benchmark still runs and emits JSON
#
# A full run also compares the fresh numbers against the committed
# baselines: every device bench runs with no fault plan installed, so
# the fault-injection layer must stay zero-cost on the healthy path
# (one branch per step). Both families (BENCH_sim.json and
# BENCH_sched.json) go through the one gate below, which prints the
# full per-bench min_ns delta table and fails if any bench exceeds its
# tolerance. Tolerance resolution, per bench:
#   1. a per-bench override in BENCH_TOLERANCES ("name=2.0,name=2.5")
#   2. BENCH_TOLERANCE (default 1.6x, generous for shared machines)
# Regressions smaller than BENCH_NOISE_FLOOR_NS (default 50 ns) never
# fail regardless of the ratio: single-digit-ns benches (the scheduler
# picks) sit at the timer's resolution, where 1 ns -> 2 ns is
# quantization, not a regression. Smoke runs skip the comparison.
#
# Offline by construction, like scripts/ci.sh.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export BENCH_JSON=1

SMOKE=0
for arg in "$@"; do
    case "$arg" in
        --smoke) SMOKE=1 ;;
        *) echo "usage: scripts/bench.sh [--smoke]" >&2; exit 2 ;;
    esac
done

if [ "$SMOKE" -eq 1 ]; then
    export BENCH_TARGET_MS=25
    export BENCH_SAMPLES=1
fi

OUT=BENCH_sim.json
SCHED_OUT=BENCH_sched.json
RAW=$(mktemp)
BASELINE=$(mktemp)
SCHED_RAW=$(mktemp)
SCHED_BASELINE=$(mktemp)
trap 'rm -f "$RAW" "$BASELINE" "$SCHED_RAW" "$SCHED_BASELINE"' EXIT

# The one regression gate shared by both benchmark families. Gates the
# fresh min_ns numbers in $2 against the baseline snapshot in $1 and
# always prints the full per-bench delta table so a failing run shows
# every bench, not just the offender. min_ns is the least noisy
# statistic; benches absent from the baseline pass as "new".
gate_against_baseline() {  # $1 = baseline json, $2 = fresh json
    awk -v deftol="${BENCH_TOLERANCE:-1.6}" -v overrides="${BENCH_TOLERANCES:-}" \
        -v floor="${BENCH_NOISE_FLOOR_NS:-50}" '
        function tol_for(name) { return (name in tolmap) ? tolmap[name] : deftol }
        function field(line, key,   v) {
            # Numeric field extractor; absent keys (entries written
            # before the field was recorded) count as the default
            # unsharded setting.
            if (line !~ ("\"" key "\"")) return 1
            v = line
            sub(".*\"" key "\": ", "", v); sub(/[^0-9].*/, "", v)
            return v
        }
        function parse(line,   name, min, plan) {
            name = line; sub(/^[[:space:]]*"/, "", name); sub(/".*/, "", name)
            min = line; sub(/.*"min_ns": /, "", min); sub(/[^0-9].*/, "", min)
            # The shard plan the entry was measured under: worker
            # threads / SM shards / memory shards. Any difference makes
            # wall-clock deltas meaningless, so the gate skips rather
            # than compares.
            plan = field(line, "sim_threads") "/" field(line, "sm_shards") \
                   "/" field(line, "mem_shards")
            return name SUBSEP min SUBSEP plan
        }
        BEGIN {
            n = split(overrides, pairs, ",")
            for (i = 1; i <= n; i++)
                if (split(pairs[i], kv, "=") == 2) tolmap[kv[1]] = kv[2]
        }
        /"min_ns"/ {
            split(parse($0), kv, SUBSEP)
            if (NR == FNR) { base[kv[1]] = kv[2]; base_st[kv[1]] = kv[3]; next }
            order[++m] = kv[1]; fresh[kv[1]] = kv[2]; fresh_st[kv[1]] = kv[3]
        }
        END {
            printf "  %-52s %14s %14s %8s  %s\n",
                   "bench", "baseline", "fresh", "delta", "gate"
            for (i = 1; i <= m; i++) {
                name = order[i]; cur = fresh[name] + 0
                if (!(name in base) || base[name] + 0 <= 0) {
                    printf "  %-52s %14s %14d %8s  new\n", name, "-", cur, "-"
                    continue
                }
                if (base_st[name] != fresh_st[name]) {
                    printf "  %-52s %14d %14d %8s  skip (plan %s -> %s)\n",
                           name, base[name], cur, "-",
                           base_st[name], fresh_st[name]
                    continue
                }
                ref = base[name] + 0
                t = tol_for(name)
                if (cur > ref * t && cur - ref > floor) {
                    verdict = sprintf("FAIL (>%sx)", t); bad = 1
                } else if (cur > ref * t) {
                    verdict = sprintf("ok (+%dns < noise floor)", cur - ref)
                } else {
                    verdict = sprintf("ok (<=%sx)", t)
                }
                printf "  %-52s %14d %14d %+7.1f%%  %s\n",
                       name, ref, cur, (cur / ref - 1) * 100, verdict
            }
            exit bad
        }
    ' "$1" "$2"
}

# Snapshot the committed baselines before overwriting them.
HAVE_BASELINE=0
if [ "$SMOKE" -eq 0 ] && [ -f "$OUT" ]; then
    cp "$OUT" "$BASELINE"
    HAVE_BASELINE=1
fi
HAVE_SCHED_BASELINE=0
if [ "$SMOKE" -eq 0 ] && [ -f "$SCHED_OUT" ]; then
    cp "$SCHED_OUT" "$SCHED_BASELINE"
    HAVE_SCHED_BASELINE=1
fi

echo "==> cargo bench --bench simulator"
cargo bench --bench simulator | tee "$RAW"

# Fixed cold reference sweep: the fig. 4.1 pipeline at TEST scale with
# the on-disk memo cache disabled, so the simulator (not the cache) is
# what gets timed. TEST scale keeps this a seconds-long sanity point;
# the CHANGES.md wall-clock entries use the full SMALL-scale run.
echo "==> cold reference sweep (fig41_two_app, GCS_SCALE=test, cache off)"
cargo build --release --bin fig41_two_app >/dev/null
SWEEP_T0=$(date +%s.%N)
GCS_CACHE=off GCS_SCALE=test ./target/release/fig41_two_app >/dev/null
SWEEP_T1=$(date +%s.%N)
SWEEP_SECS=$(awk -v a="$SWEEP_T0" -v b="$SWEEP_T1" 'BEGIN { printf "%.3f", b - a }')

# Collect the BENCH_JSON lines into one document, stamping each entry
# with the shard plan it was measured under. The sweep engine grants
# both shard counts equal to the leased thread budget (sweep.rs
# shard_grant), so the plan is derived from GCS_SIM_THREADS today;
# stamping all three keeps old baselines skippable if that changes.
SIM_THREADS="${GCS_SIM_THREADS:-1}"
SM_SHARDS="$SIM_THREADS"
MEM_SHARDS="$SIM_THREADS"
awk -v sweep_secs="$SWEEP_SECS" -v sim_threads="$SIM_THREADS" \
    -v sm_shards="$SM_SHARDS" -v mem_shards="$MEM_SHARDS" '
    /^BENCH_JSON / {
        line = substr($0, 12)
        # {"name":"X","mean_ns":N,"min_ns":M}
        name = line; sub(/.*"name":"/, "", name); sub(/".*/, "", name)
        mean = line; sub(/.*"mean_ns":/, "", mean); sub(/,.*/, "", mean)
        min  = line; sub(/.*"min_ns":/,  "", min);  sub(/}.*/, "", min)
        entry = "    \"" name "\": {\"mean_ns\": " mean ", \"min_ns\": " min \
                ", \"sim_threads\": " sim_threads \
                ", \"sm_shards\": " sm_shards \
                ", \"mem_shards\": " mem_shards "}"
        entries = entries (entries == "" ? "" : ",\n") entry
    }
    END {
        print "{"
        print "  \"benches\": {"
        print entries
        print "  },"
        print "  \"cold_sweep\": {"
        print "    \"name\": \"fig41_two_app (GCS_SCALE=test, GCS_CACHE=off)\","
        print "    \"wall_seconds\": " sweep_secs ","
        print "    \"sim_threads\": " sim_threads ","
        print "    \"sm_shards\": " sm_shards ","
        print "    \"mem_shards\": " mem_shards
        print "  }"
        print "}"
    }
' "$RAW" > "$OUT"

echo
echo "wrote $OUT ($(grep -c mean_ns "$OUT") benches, cold sweep ${SWEEP_SECS}s)"

# Regression gate vs the previous baseline (fault layer must stay
# zero-cost on the healthy path; min_ns is the least noisy statistic).
if [ "$HAVE_BASELINE" -eq 1 ]; then
    echo "==> regression check vs committed baseline (tolerance ${BENCH_TOLERANCE:-1.6}x)"
    gate_against_baseline "$BASELINE" "$OUT" || {
        echo "benchmark regression vs BENCH_sim.json baseline" >&2
        exit 1
    }
    echo "no regressions"
fi

# Online-scheduler benchmarks, collected and gated the same way.
echo
echo "==> cargo bench --bench sched"
cargo bench --bench sched | tee "$SCHED_RAW"

awk -v sim_threads="$SIM_THREADS" \
    -v sm_shards="$SM_SHARDS" -v mem_shards="$MEM_SHARDS" '
    /^BENCH_JSON / {
        line = substr($0, 12)
        name = line; sub(/.*"name":"/, "", name); sub(/".*/, "", name)
        mean = line; sub(/.*"mean_ns":/, "", mean); sub(/,.*/, "", mean)
        min  = line; sub(/.*"min_ns":/,  "", min);  sub(/}.*/, "", min)
        entry = "    \"" name "\": {\"mean_ns\": " mean ", \"min_ns\": " min \
                ", \"sim_threads\": " sim_threads \
                ", \"sm_shards\": " sm_shards \
                ", \"mem_shards\": " mem_shards "}"
        entries = entries (entries == "" ? "" : ",\n") entry
    }
    # Daemon decision sidecar (decisions_per_sec, p50/p99 decision
    # latency) — informational, not gated: throughput moves the other
    # way from min_ns, so the regression gate above must not see it.
    /^BENCH_DAEMON_JSON / { daemon = substr($0, 19) }
    END {
        print "{"
        print "  \"benches\": {"
        print entries
        if (daemon != "") {
            print "  },"
            print "  \"daemon\": " daemon
        } else {
            print "  }"
        }
        print "}"
    }
' "$SCHED_RAW" > "$SCHED_OUT"

echo
echo "wrote $SCHED_OUT ($(grep -c mean_ns "$SCHED_OUT") benches)"

if [ "$HAVE_SCHED_BASELINE" -eq 1 ]; then
    echo "==> regression check vs committed baseline (tolerance ${BENCH_TOLERANCE:-1.6}x)"
    gate_against_baseline "$SCHED_BASELINE" "$SCHED_OUT" || {
        echo "benchmark regression vs BENCH_sched.json baseline" >&2
        exit 1
    }
    echo "no regressions"
fi
