//! The `schedd` wire protocol: versioned, length-prefixed, checksummed
//! frames carrying hand-rolled JSON messages.
//!
//! The format deliberately mirrors the kernel-trace wire format
//! (`gcs_sim::trace_fmt` v1): a fixed little-endian header — magic
//! `"GCSD"`, `version: u32`, `payload_len: u32`, `checksum: u64`
//! (FNV-1a over the payload) — followed by a UTF-8 JSON payload. Every
//! way a frame can be wrong maps to a typed [`ProtoError`]; the decoder
//! **never panics** on adversarial input (`tests/proto_properties.rs`
//! fuzzes exactly that) and never trusts the advertised length beyond
//! [`MAX_FRAME_PAYLOAD`], so a hostile peer cannot make the daemon
//! allocate unboundedly.
//!
//! The message bodies are the small fixed shapes of [`Request`] and
//! [`Response`]; parsing is a rigid scanner in the style of
//! `ArrivalTrace::from_json` — anything off-shape is
//! [`ProtoError::Corrupt`], not a panic.

use std::fmt;

use gcs_workloads::Benchmark;

/// Magic bytes opening every frame.
pub const PROTO_MAGIC: [u8; 4] = *b"GCSD";

/// Current wire-format version.
pub const PROTO_VERSION: u32 = 1;

/// Frame header length in bytes: magic + version + payload_len +
/// checksum.
pub const FRAME_HEADER_LEN: usize = 4 + 4 + 4 + 8;

/// Hard ceiling on a frame payload. Requests are tiny and responses are
/// bounded by one full `SchedReport`; anything larger is an attack or a
/// bug, and is refused *before* allocation.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// Typed failure decoding a frame or message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The byte stream ended before the structure it promised.
    Truncated {
        /// Offset at which more bytes were needed.
        at: usize,
        /// Bytes wanted at that offset.
        want: usize,
    },
    /// The stream does not start with [`PROTO_MAGIC`].
    BadMagic([u8; 4]),
    /// The header carries a version this build cannot speak.
    UnsupportedVersion(u32),
    /// The header advertises a payload larger than the budget.
    Oversize {
        /// Advertised payload length.
        len: usize,
        /// Budget in force.
        max: usize,
    },
    /// Structurally unreadable frame or message (checksum mismatch,
    /// trailing bytes, non-UTF-8 payload, off-shape JSON).
    Corrupt(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated { at, want } => {
                write!(f, "frame truncated: wanted {want} more byte(s) at offset {at}")
            }
            ProtoError::BadMagic(m) => write!(f, "not a schedd frame (magic {m:02x?})"),
            ProtoError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v} (this build speaks {PROTO_VERSION})")
            }
            ProtoError::Oversize { len, max } => {
                write!(f, "frame payload of {len} byte(s) exceeds the {max}-byte budget")
            }
            ProtoError::Corrupt(why) => write!(f, "corrupt frame: {why}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// A short stable tag for each error variant (used in responses and
/// fault transcripts, where the full message would be noise).
impl ProtoError {
    /// `"truncated"` / `"bad-magic"` / `"unsupported-version"` /
    /// `"oversize"` / `"corrupt"`.
    pub fn kind(&self) -> &'static str {
        match self {
            ProtoError::Truncated { .. } => "truncated",
            ProtoError::BadMagic(_) => "bad-magic",
            ProtoError::UnsupportedVersion(_) => "unsupported-version",
            ProtoError::Oversize { .. } => "oversize",
            ProtoError::Corrupt(_) => "corrupt",
        }
    }
}

// ----------------------------------------------------------------------
// Frame encode / decode
// ----------------------------------------------------------------------

/// Wraps `payload` in a v1 frame: header (magic, version, length,
/// FNV-1a checksum) + payload.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&PROTO_MAGIC);
    out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a_bytes(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a 20-byte header and returns the advertised payload length
/// and checksum. Streaming transports call this first, then read
/// exactly that many payload bytes, then [`verify_payload`] — so the
/// length is vetted against [`MAX_FRAME_PAYLOAD`] *before* any payload
/// allocation.
///
/// # Errors
///
/// [`ProtoError::Truncated`] for a short header, [`ProtoError::BadMagic`],
/// [`ProtoError::UnsupportedVersion`] and [`ProtoError::Oversize`] as
/// advertised.
pub fn decode_header(header: &[u8]) -> Result<(usize, u64), ProtoError> {
    if header.len() < FRAME_HEADER_LEN {
        return Err(ProtoError::Truncated {
            at: header.len(),
            want: FRAME_HEADER_LEN - header.len(),
        });
    }
    let magic = [header[0], header[1], header[2], header[3]];
    if magic != PROTO_MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let version = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if version != PROTO_VERSION {
        return Err(ProtoError::UnsupportedVersion(version));
    }
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
    if len > MAX_FRAME_PAYLOAD {
        return Err(ProtoError::Oversize {
            len,
            max: MAX_FRAME_PAYLOAD,
        });
    }
    let checksum = u64::from_le_bytes([
        header[12], header[13], header[14], header[15], header[16], header[17], header[18],
        header[19],
    ]);
    Ok((len, checksum))
}

/// Verifies a payload against its header checksum.
///
/// # Errors
///
/// [`ProtoError::Corrupt`] on mismatch.
pub fn verify_payload(checksum: u64, payload: &[u8]) -> Result<(), ProtoError> {
    let actual = fnv1a_bytes(payload);
    if actual != checksum {
        return Err(ProtoError::Corrupt(format!(
            "payload checksum {actual:016x} does not match header {checksum:016x}"
        )));
    }
    Ok(())
}

/// Decodes one complete frame from `bytes` and returns its payload.
/// The buffer must hold exactly one frame; trailing bytes are
/// [`ProtoError::Corrupt`].
///
/// # Errors
///
/// Every [`ProtoError`] variant, as advertised by [`decode_header`] and
/// [`verify_payload`]; never panics.
pub fn decode_frame(bytes: &[u8]) -> Result<&[u8], ProtoError> {
    let (len, checksum) = decode_header(bytes)?;
    let have = bytes.len() - FRAME_HEADER_LEN;
    if have < len {
        return Err(ProtoError::Truncated {
            at: bytes.len(),
            want: len - have,
        });
    }
    if have > len {
        return Err(ProtoError::Corrupt(format!(
            "{} trailing byte(s) after the payload",
            have - len
        )));
    }
    let payload = &bytes[FRAME_HEADER_LEN..];
    verify_payload(checksum, payload)?;
    Ok(payload)
}

/// FNV-1a 64-bit over raw bytes (standard offset basis and prime; same
/// function the trace format and the sweep cache use).
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ----------------------------------------------------------------------
// Messages
// ----------------------------------------------------------------------

/// A client request to the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Submit one job: client-chosen id, benchmark, logical arrival
    /// cycle (non-decreasing across a session; the daemon clamps).
    Submit {
        /// Client-chosen job id (echoed back in the response).
        id: u64,
        /// Benchmark to run.
        bench: Benchmark,
        /// Logical arrival cycle.
        at: u64,
    },
    /// Read-only snapshot of daemon state (never advances time).
    Status,
    /// The canonical `SchedReport` JSON for the work finished so far
    /// (advances time over everything already submitted).
    Report,
    /// Stop admitting, finish in-flight jobs, return the final report.
    Drain,
}

impl Request {
    /// Renders the request as its canonical single-line JSON payload.
    pub fn encode_json(&self) -> String {
        match self {
            Request::Submit { id, bench, at } => format!(
                "{{\"op\":\"submit\",\"id\":{id},\"bench\":\"{}\",\"at\":{at}}}",
                bench.name()
            ),
            Request::Status => "{\"op\":\"status\"}".to_string(),
            Request::Report => "{\"op\":\"report\"}".to_string(),
            Request::Drain => "{\"op\":\"drain\"}".to_string(),
        }
    }

    /// Wraps [`Request::encode_json`] in a frame.
    pub fn encode(&self) -> Vec<u8> {
        encode_frame(self.encode_json().as_bytes())
    }

    /// Parses the shape [`Request::encode_json`] writes.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Corrupt`] on any structural mismatch; never
    /// panics.
    pub fn decode_json(text: &str) -> Result<Request, ProtoError> {
        let mut s = Scan::new(text);
        s.lit("{")?;
        s.key("op")?;
        let op = s.string()?;
        let req = match op.as_str() {
            "submit" => {
                s.lit(",")?;
                s.key("id")?;
                let id = s.u64()?;
                s.lit(",")?;
                s.key("bench")?;
                let name = s.string()?;
                let bench = Benchmark::from_name(&name).ok_or_else(|| {
                    ProtoError::Corrupt(format!("unknown benchmark {name:?}"))
                })?;
                s.lit(",")?;
                s.key("at")?;
                let at = s.u64()?;
                Request::Submit { id, bench, at }
            }
            "status" => Request::Status,
            "report" => Request::Report,
            "drain" => Request::Drain,
            other => return Err(ProtoError::Corrupt(format!("unknown request op {other:?}"))),
        };
        s.lit("}")?;
        s.end()?;
        Ok(req)
    }

    /// Decodes a framed request ([`decode_frame`] + [`Request::decode_json`]).
    ///
    /// # Errors
    ///
    /// Every [`ProtoError`] variant; never panics.
    pub fn decode(bytes: &[u8]) -> Result<Request, ProtoError> {
        Request::decode_json(payload_str(decode_frame(bytes)?)?)
    }
}

/// A daemon response to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The job was admitted.
    Submitted {
        /// Echo of the submitted id.
        id: u64,
    },
    /// Admission backpressure: the queue is full (or the daemon is
    /// draining); retry no earlier than `retry_after` cycles from the
    /// submission's arrival cycle.
    Rejected {
        /// Echo of the submitted id.
        id: u64,
        /// Suggested wait before resubmitting, in cycles (≥ 1).
        retry_after: u64,
        /// True when the rejection is a drain, not capacity — retrying
        /// is then pointless.
        draining: bool,
    },
    /// State snapshot.
    Status {
        /// Current logical cycle.
        now: u64,
        /// Jobs waiting in the admission queue.
        pending: usize,
        /// Devices currently running a group.
        running: usize,
        /// Jobs completed so far.
        completed: usize,
        /// Jobs rejected so far.
        rejected: usize,
        /// Jobs that died in simulation (timeout/deadlock).
        failed: usize,
        /// Degradations recorded so far.
        degradations: usize,
        /// Whether a drain is in progress / finished.
        draining: bool,
    },
    /// A canonical `SchedReport` document.
    Report {
        /// The report JSON (multi-line, exactly `SchedReport::to_json`).
        json: String,
    },
    /// Drain finished; the final report.
    Drained {
        /// The final report JSON.
        json: String,
    },
    /// Typed failure. `kind` is stable (`"proto"`, `"sim-timeout"`,
    /// `"sim-deadlock"`, `"stalled"`, `"internal"`); `diag` carries the
    /// device `DiagSnapshot` rendering when the simulator produced one.
    Error {
        /// Stable error tag.
        kind: String,
        /// Human-readable detail.
        detail: String,
        /// Device diagnostics, when available.
        diag: Option<String>,
    },
}

impl Response {
    /// Renders the response as its canonical single-line JSON payload.
    pub fn encode_json(&self) -> String {
        match self {
            Response::Submitted { id } => format!("{{\"ok\":\"submitted\",\"id\":{id}}}"),
            Response::Rejected {
                id,
                retry_after,
                draining,
            } => format!(
                "{{\"ok\":\"rejected\",\"id\":{id},\"retry_after\":{retry_after},\"draining\":{draining}}}"
            ),
            Response::Status {
                now,
                pending,
                running,
                completed,
                rejected,
                failed,
                degradations,
                draining,
            } => format!(
                "{{\"ok\":\"status\",\"now\":{now},\"pending\":{pending},\"running\":{running},\
                 \"completed\":{completed},\"rejected\":{rejected},\"failed\":{failed},\
                 \"degradations\":{degradations},\"draining\":{draining}}}"
            ),
            Response::Report { json } => {
                format!("{{\"ok\":\"report\",\"json\":\"{}\"}}", esc(json))
            }
            Response::Drained { json } => {
                format!("{{\"ok\":\"drained\",\"json\":\"{}\"}}", esc(json))
            }
            Response::Error { kind, detail, diag } => match diag {
                Some(d) => format!(
                    "{{\"ok\":\"error\",\"kind\":\"{}\",\"detail\":\"{}\",\"diag\":\"{}\"}}",
                    esc(kind),
                    esc(detail),
                    esc(d)
                ),
                None => format!(
                    "{{\"ok\":\"error\",\"kind\":\"{}\",\"detail\":\"{}\"}}",
                    esc(kind),
                    esc(detail)
                ),
            },
        }
    }

    /// Wraps [`Response::encode_json`] in a frame.
    pub fn encode(&self) -> Vec<u8> {
        encode_frame(self.encode_json().as_bytes())
    }

    /// Parses the shape [`Response::encode_json`] writes.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Corrupt`] on any structural mismatch; never
    /// panics.
    pub fn decode_json(text: &str) -> Result<Response, ProtoError> {
        let mut s = Scan::new(text);
        s.lit("{")?;
        s.key("ok")?;
        let ok = s.string()?;
        let resp = match ok.as_str() {
            "submitted" => {
                s.lit(",")?;
                s.key("id")?;
                Response::Submitted { id: s.u64()? }
            }
            "rejected" => {
                s.lit(",")?;
                s.key("id")?;
                let id = s.u64()?;
                s.lit(",")?;
                s.key("retry_after")?;
                let retry_after = s.u64()?;
                s.lit(",")?;
                s.key("draining")?;
                let draining = s.bool()?;
                Response::Rejected {
                    id,
                    retry_after,
                    draining,
                }
            }
            "status" => {
                let mut field = |name: &str| -> Result<u64, ProtoError> {
                    s.lit(",")?;
                    s.key(name)?;
                    s.u64()
                };
                let now = field("now")?;
                let pending = field("pending")? as usize;
                let running = field("running")? as usize;
                let completed = field("completed")? as usize;
                let rejected = field("rejected")? as usize;
                let failed = field("failed")? as usize;
                let degradations = field("degradations")? as usize;
                s.lit(",")?;
                s.key("draining")?;
                let draining = s.bool()?;
                Response::Status {
                    now,
                    pending,
                    running,
                    completed,
                    rejected,
                    failed,
                    degradations,
                    draining,
                }
            }
            "report" => {
                s.lit(",")?;
                s.key("json")?;
                Response::Report { json: s.string()? }
            }
            "drained" => {
                s.lit(",")?;
                s.key("json")?;
                Response::Drained { json: s.string()? }
            }
            "error" => {
                s.lit(",")?;
                s.key("kind")?;
                let kind = s.string()?;
                s.lit(",")?;
                s.key("detail")?;
                let detail = s.string()?;
                let diag = if s.peek_lit(",") {
                    s.lit(",")?;
                    s.key("diag")?;
                    Some(s.string()?)
                } else {
                    None
                };
                Response::Error { kind, detail, diag }
            }
            other => return Err(ProtoError::Corrupt(format!("unknown response tag {other:?}"))),
        };
        s.lit("}")?;
        s.end()?;
        Ok(resp)
    }

    /// Decodes a framed response.
    ///
    /// # Errors
    ///
    /// Every [`ProtoError`] variant; never panics.
    pub fn decode(bytes: &[u8]) -> Result<Response, ProtoError> {
        Response::decode_json(payload_str(decode_frame(bytes)?)?)
    }
}

fn payload_str(payload: &[u8]) -> Result<&str, ProtoError> {
    std::str::from_utf8(payload)
        .map_err(|_| ProtoError::Corrupt("payload is not UTF-8".into()))
}

/// JSON string escaping for embedded documents: quotes, backslashes and
/// all control characters (reports contain newlines).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Rigid scanner over one message. No recursion, no lookahead beyond
/// one literal — the shapes are fixed, so anything surprising is
/// `Corrupt` immediately.
struct Scan<'a> {
    rest: &'a str,
}

impl<'a> Scan<'a> {
    fn new(text: &'a str) -> Scan<'a> {
        Scan { rest: text.trim() }
    }

    fn corrupt(&self, why: &str) -> ProtoError {
        let ctx: String = self.rest.chars().take(24).collect();
        ProtoError::Corrupt(format!("{why} at {ctx:?}"))
    }

    fn lit(&mut self, token: &str) -> Result<(), ProtoError> {
        self.rest = self.rest.trim_start();
        match self.rest.strip_prefix(token) {
            Some(tail) => {
                self.rest = tail;
                Ok(())
            }
            None => Err(self.corrupt(&format!("expected {token:?}"))),
        }
    }

    fn peek_lit(&self, token: &str) -> bool {
        self.rest.trim_start().starts_with(token)
    }

    /// `"name":` — one object key.
    fn key(&mut self, name: &str) -> Result<(), ProtoError> {
        self.lit(&format!("\"{name}\""))?;
        self.lit(":")
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        self.rest = self.rest.trim_start();
        let digits = self
            .rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(self.rest.len());
        if digits == 0 {
            return Err(self.corrupt("expected integer"));
        }
        let v = self.rest[..digits]
            .parse()
            .map_err(|_| self.corrupt("integer out of range"))?;
        self.rest = &self.rest[digits..];
        Ok(v)
    }

    fn bool(&mut self) -> Result<bool, ProtoError> {
        self.rest = self.rest.trim_start();
        if let Some(tail) = self.rest.strip_prefix("true") {
            self.rest = tail;
            Ok(true)
        } else if let Some(tail) = self.rest.strip_prefix("false") {
            self.rest = tail;
            Ok(false)
        } else {
            Err(self.corrupt("expected boolean"))
        }
    }

    /// A quoted string with the escapes [`esc`] writes.
    fn string(&mut self) -> Result<String, ProtoError> {
        self.lit("\"")?;
        let mut out = String::new();
        let mut chars = self.rest.char_indices();
        loop {
            let Some((i, c)) = chars.next() else {
                return Err(ProtoError::Corrupt("unterminated string".into()));
            };
            match c {
                '"' => {
                    self.rest = &self.rest[i + 1..];
                    return Ok(out);
                }
                '\\' => {
                    let Some((_, e)) = chars.next() else {
                        return Err(ProtoError::Corrupt("dangling escape".into()));
                    };
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let Some((_, h)) = chars.next() else {
                                    return Err(ProtoError::Corrupt(
                                        "truncated \\u escape".into(),
                                    ));
                                };
                                let d = h.to_digit(16).ok_or_else(|| {
                                    ProtoError::Corrupt(format!("bad \\u digit {h:?}"))
                                })?;
                                code = code * 16 + d;
                            }
                            let c = char::from_u32(code).ok_or_else(|| {
                                ProtoError::Corrupt(format!("bad \\u code point {code:#x}"))
                            })?;
                            out.push(c);
                        }
                        other => {
                            return Err(ProtoError::Corrupt(format!("unknown escape \\{other}")))
                        }
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn end(&mut self) -> Result<(), ProtoError> {
        if !self.rest.trim().is_empty() {
            Err(self.corrupt("trailing content"))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Submit {
                id: 0,
                bench: Benchmark::Gups,
                at: 0,
            },
            Request::Submit {
                id: u64::MAX,
                bench: Benchmark::Bfs2,
                at: 123_456_789,
            },
            Request::Status,
            Request::Report,
            Request::Drain,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Submitted { id: 3 },
            Response::Rejected {
                id: 9,
                retry_after: 4_000,
                draining: false,
            },
            Response::Rejected {
                id: 10,
                retry_after: 1,
                draining: true,
            },
            Response::Status {
                now: 55,
                pending: 2,
                running: 1,
                completed: 7,
                rejected: 1,
                failed: 1,
                degradations: 3,
                draining: false,
            },
            Response::Report {
                json: "{\n  \"policy\": \"ilp\"\n}\n".into(),
            },
            Response::Drained {
                json: "{\n  \"x\": [1,2]\n}\n".into(),
            },
            Response::Error {
                kind: "sim-timeout".into(),
                detail: "cycle budget exhausted at cycle 99".into(),
                diag: Some("2/4 SMs enabled, 0 ready / 3 live warps".into()),
            },
            Response::Error {
                kind: "proto".into(),
                detail: "corrupt frame: \"quoted\"\tand\u{1} control".into(),
                diag: None,
            },
        ]
    }

    #[test]
    fn requests_round_trip_through_frames() {
        for req in sample_requests() {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip_through_frames() {
        for resp in sample_responses() {
            let bytes = resp.encode();
            assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn every_truncation_prefix_is_a_typed_error() {
        let bytes = Request::Submit {
            id: 7,
            bench: Benchmark::Sad,
            at: 42,
        }
        .encode();
        for cut in 0..bytes.len() {
            match Request::decode(&bytes[..cut]) {
                Err(ProtoError::Truncated { .. }) | Err(ProtoError::BadMagic(_)) => {}
                other => panic!("prefix of {cut} bytes: expected truncation, got {other:?}"),
            }
        }
        assert!(Request::decode(&bytes).is_ok());
    }

    #[test]
    fn bad_magic_version_and_oversize_are_typed() {
        let mut bytes = Request::Status.encode();
        bytes[0] = b'X';
        assert!(matches!(
            Request::decode(&bytes),
            Err(ProtoError::BadMagic(_))
        ));

        let mut bytes = Request::Status.encode();
        bytes[4] = 99;
        assert!(matches!(
            Request::decode(&bytes),
            Err(ProtoError::UnsupportedVersion(99))
        ));

        let mut bytes = Request::Status.encode();
        let huge = (MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes();
        bytes[8..12].copy_from_slice(&huge);
        assert!(matches!(
            Request::decode(&bytes),
            Err(ProtoError::Oversize { .. })
        ));
    }

    #[test]
    fn checksum_and_trailing_bytes_are_corrupt() {
        let mut bytes = Request::Drain.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // flip payload bit: checksum mismatch
        assert!(matches!(
            Request::decode(&bytes),
            Err(ProtoError::Corrupt(_))
        ));

        let mut bytes = Request::Drain.encode();
        bytes.push(0);
        assert!(matches!(
            Request::decode(&bytes),
            Err(ProtoError::Corrupt(_))
        ));
    }

    #[test]
    fn off_shape_json_is_corrupt_never_panic() {
        for bad in [
            "",
            "{}",
            "{\"op\":\"nope\"}",
            "{\"op\":\"submit\",\"id\":1}",
            "{\"op\":\"submit\",\"id\":1,\"bench\":\"NOPE\",\"at\":0}",
            "{\"op\":\"status\"} extra",
            "{\"op\":\"status\"",
            "{\"ok\":\"status\"}",
            "[1,2,3]",
            "{\"ok\":\"report\",\"json\":\"unterminated}",
            "{\"ok\":\"error\",\"kind\":\"k\",\"detail\":\"\\q\"}",
        ] {
            assert!(
                Request::decode_json(bad).is_err() || Response::decode_json(bad).is_err(),
                "must reject {bad:?}"
            );
        }
        assert!(matches!(
            Request::decode_json("{\"op\":\"submit\",\"id\":1,\"bench\":\"NOPE\",\"at\":0}"),
            Err(ProtoError::Corrupt(_))
        ));
    }

    #[test]
    fn error_kinds_are_stable() {
        assert_eq!(ProtoError::Truncated { at: 0, want: 1 }.kind(), "truncated");
        assert_eq!(ProtoError::BadMagic([0; 4]).kind(), "bad-magic");
        assert_eq!(ProtoError::UnsupportedVersion(2).kind(), "unsupported-version");
        assert_eq!(
            ProtoError::Oversize { len: 9, max: 1 }.kind(),
            "oversize"
        );
        assert_eq!(ProtoError::Corrupt("x".into()).kind(), "corrupt");
        // Display is informative.
        let e = ProtoError::Oversize {
            len: 2_000_000,
            max: MAX_FRAME_PAYLOAD,
        };
        assert!(e.to_string().contains("budget"));
    }
}
