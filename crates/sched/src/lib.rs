//! # gcs-sched — online arrival-driven scheduling
//!
//! The thesis (and [`gcs_core::runner::Pipeline::run_queue`]) solves a
//! *static* queue once: all `Nq` applications are known up front, the
//! ILP partitions them into co-run groups, and the groups execute
//! back-to-back. Production GPU clusters do not work like that — jobs
//! arrive continuously, the queue composition changes while groups are
//! mid-flight, and tail latency matters as much as raw throughput.
//!
//! This crate lifts the paper's one-shot batch formulation into a
//! discrete-event, arrival-driven scheduler:
//!
//! * **Arrival traces** ([`gcs_workloads::ArrivalTrace`]) feed jobs into
//!   a bounded [`AdmissionQueue`]; arrivals that would overflow it are
//!   rejected with a typed [`Rejection`] (backpressure, never silent
//!   drops).
//! * At each **epoch** — a group completion freeing a device, or an
//!   optional fixed re-plan interval — the scheduler consults a
//!   pluggable [`Policy`] ([`Fcfs`], [`GreedyClass`], [`IlpEpoch`]) to
//!   form the next co-run group(s) over the *current* queue census.
//!   [`IlpEpoch`] re-solves the paper's grouping ILP (degrading to the
//!   class-aware greedy pairing exactly as the batch pipeline does);
//!   plans are re-derived whenever admissions change the census.
//! * Groups dispatch onto `num_gpus` simulated devices through the
//!   existing memoized [`SweepEngine`](gcs_core::SweepEngine) path, so
//!   every co-run is bit-identical to what the batch pipeline would
//!   measure — and the degenerate trace (everything at `t = 0`, one
//!   GPU, [`IlpEpoch`]) reproduces [`Pipeline::run_queue`] exactly
//!   (`tests/sched.rs` pins this).
//! * The run produces a [`SchedReport`]: per-job queueing delay and
//!   completion time, p50/p95/p99 latency, makespan, STP and ANTT —
//!   the numbers `schedd_sim` compares across policies.
//!
//! ## Quick start
//!
//! ```no_run
//! use gcs_core::interference::InterferenceMatrix;
//! use gcs_core::runner::{AllocationPolicy, Pipeline, RunConfig};
//! use gcs_sched::{OnlineScheduler, PolicyKind, SchedConfig};
//! use gcs_sim::config::GpuConfig;
//! use gcs_workloads::{ArrivalTrace, Benchmark, Scale};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = RunConfig { gpu: GpuConfig::gtx480(), scale: Scale::SMALL, concurrency: 2 };
//! let mut pipeline = Pipeline::with_matrix(cfg, InterferenceMatrix::synthetic_paper_shape())?;
//! let trace = ArrivalTrace::poisson(&Benchmark::ALL, 20, 50_000.0, 42);
//! let mut policy = PolicyKind::IlpEpoch.build();
//! let report = OnlineScheduler::new(&mut pipeline, SchedConfig::default())?
//!     .run(&trace, policy.as_mut())?;
//! println!("p99 queue delay: {} cycles, STP {:.2}", report.queue_delay_stats().p99, report.stp());
//! # Ok(())
//! # }
//! ```
//!
//! [`Pipeline::run_queue`]: gcs_core::runner::Pipeline::run_queue

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod daemon;
pub mod policy;
pub mod proto;
pub mod queue;
pub mod report;
pub mod scheduler;
pub mod transport;

pub use client::{RetryConfig, SchedClient};
pub use daemon::{DaemonConfig, DaemonCore, EventCore, Measure, OverloadPolicy};
pub use policy::{Fcfs, GreedyClass, IlpEpoch, Plan, Policy, PolicyKind};
pub use proto::{ProtoError, Request, Response};
pub use queue::{AdmissionQueue, Job, JobId, Rejection};
pub use report::{GroupDispatch, JobFailure, JobOutcome, LatencyStats, SchedReport};
pub use scheduler::{OnlineScheduler, SchedConfig};
pub use transport::{
    virtual_link, virtual_pair, FaultSpec, FaultyTransport, Listener, TcpAcceptor, TcpTransport,
    Transport, TransportError, VirtualConnector, VirtualListener, VirtualSocket,
};

use gcs_core::CoreError;

/// Errors surfaced by the online scheduler.
#[derive(Debug)]
pub enum SchedError {
    /// The underlying measurement pipeline failed.
    Core(CoreError),
    /// The scheduler configuration is unusable (zero devices, ...).
    BadConfig(String),
    /// Jobs are waiting but no policy plan can dispatch them and no
    /// future event exists to change that — the run would hang.
    Stalled {
        /// Jobs stuck in the admission queue.
        waiting: usize,
        /// Simulated cycle at which progress stopped.
        at: u64,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::Core(e) => write!(f, "pipeline failed: {e}"),
            SchedError::BadConfig(why) => write!(f, "bad scheduler config: {why}"),
            SchedError::Stalled { waiting, at } => {
                write!(f, "scheduler stalled at cycle {at} with {waiting} jobs waiting")
            }
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for SchedError {
    fn from(e: CoreError) -> Self {
        SchedError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_chain() {
        let e = SchedError::from(CoreError::BadQueue("x".into()));
        assert!(e.to_string().contains("pipeline failed"));
        assert!(std::error::Error::source(&e).is_some());
        let s = SchedError::Stalled { waiting: 3, at: 17 };
        assert!(s.to_string().contains("3 jobs"));
        assert!(std::error::Error::source(&s).is_none());
        let b = SchedError::BadConfig("no gpus".into());
        assert!(b.to_string().contains("no gpus"));
    }
}
