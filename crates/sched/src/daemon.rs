//! The scheduler daemon: an incremental event engine plus a request
//! handler and serve loop.
//!
//! [`EventCore`] is the discrete-event scheduling loop of
//! [`OnlineScheduler::run`](crate::OnlineScheduler::run) factored into
//! an *incremental* form: instead of consuming a whole
//! [`ArrivalTrace`](gcs_workloads::ArrivalTrace) in one call, jobs are
//! pushed one at a time with [`EventCore::submit`] and the run is
//! finished with [`EventCore::drain`]. The batch scheduler is now a
//! thin wrapper that feeds a trace through the same engine, so a
//! daemon session that submits the same jobs at the same logical
//! cycles produces a byte-identical [`SchedReport`] — the equivalence
//! is structural, not a property the two loops have to keep in sync.
//!
//! The tie-order contract of the batch loop is preserved exactly: at
//! any timestamp, completions free devices first, then admissions
//! enter in submission order, then the re-plan tick check runs, then
//! dispatch fills free devices. Dispatch at the current timestamp is
//! *deferred* until time must advance (or the run drains), so every
//! same-cycle submission lands in the queue census before the policy
//! plans over it — just as the batch loop admits all due arrivals
//! before planning.
//!
//! [`DaemonCore`] wraps an `EventCore` with the wire protocol
//! ([`Request`] → [`Response`]), bounded-admission backpressure
//! ([`Response::Rejected`] with a retry hint), graceful drain, and an
//! overload ladder ([`OverloadPolicy`]) that degrades planning —
//! configured policy → cached plan → class-aware greedy — under
//! queue pressure, recording every shed as a
//! [`Degradation::OverloadShed`]. [`DaemonCore::serve`] runs it over
//! any [`Listener`] (TCP or the in-process virtual link), turning
//! malformed frames into typed [`Response::Error`]s instead of panics
//! and read-deadline expiry into a typed timeout plus connection
//! close (the slow-loris defence).

use std::collections::VecDeque;
use std::time::Instant;

use gcs_core::fault::Degradation;
use gcs_core::runner::{AllocationPolicy, GroupResult, Pipeline};
use gcs_core::{CoreError, NanoStats};
use gcs_sim::SimError;
use gcs_workloads::Benchmark;

use crate::policy::{GreedyClass, Plan, Policy};
use crate::proto::{Request, Response};
use crate::queue::{AdmissionQueue, Job, JobId};
use crate::report::{GroupDispatch, JobFailure, JobOutcome, SchedReport};
use crate::scheduler::SchedConfig;
use crate::transport::{Listener, Transport, TransportError};
use crate::SchedError;

/// Measurement backend for planning and dispatched groups.
///
/// Production code uses [`Pipeline`] (co-runs route through the
/// memoized sweep engine); tests substitute stubs that return
/// synthetic cycle counts or inject [`SimError`]s to exercise the
/// failure paths deterministically — the real simulator offers no
/// reliable way to force a timeout on demand.
pub trait Measure {
    /// Plans dispatch groups over `pending` with `policy`.
    ///
    /// # Errors
    ///
    /// Propagates policy/pipeline failures.
    fn plan(&mut self, policy: &mut dyn Policy, pending: &[Job]) -> Result<Plan, CoreError>;

    /// Measures one co-run group under `alloc`.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    fn run_group(
        &mut self,
        benches: &[Benchmark],
        alloc: AllocationPolicy,
    ) -> Result<GroupResult, CoreError>;

    /// Alone-run cycle count of `bench` (for STP accounting).
    fn alone_cycles(&self, bench: Benchmark) -> u64;
}

impl Measure for Pipeline {
    fn plan(&mut self, policy: &mut dyn Policy, pending: &[Job]) -> Result<Plan, CoreError> {
        policy.plan(self, pending)
    }

    fn run_group(
        &mut self,
        benches: &[Benchmark],
        alloc: AllocationPolicy,
    ) -> Result<GroupResult, CoreError> {
        Pipeline::run_group(self, benches, alloc)
    }

    fn alone_cycles(&self, bench: Benchmark) -> u64 {
        self.profile(bench).cycles
    }
}

/// Overload-shedding thresholds; both default to `None` (off), which
/// reproduces batch semantics exactly.
///
/// The ladder has two rungs, applied in order of increasing pressure:
///
/// 1. **cached plan** — while more than `replan_pending_limit` jobs
///    are pending, an admission no longer invalidates a cached
///    non-empty plan. The census grows stale but dispatch keeps
///    consuming groups the last (expensive) solve produced.
/// 2. **greedy fallback** — when a plan *is* needed and more than
///    `ilp_pending_limit` jobs are pending, the configured policy is
///    bypassed and the class-aware greedy pairing plans instead
///    (`O(n log n)` versus the ILP's branch & bound).
///
/// Every shed is recorded as [`Degradation::OverloadShed`] in the
/// final report, so degraded decisions are auditable, never silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverloadPolicy {
    /// Rung 1 threshold: pending count above which cached plans
    /// survive admissions.
    pub replan_pending_limit: Option<usize>,
    /// Rung 2 threshold: pending count above which planning falls
    /// back to [`GreedyClass`].
    pub ilp_pending_limit: Option<usize>,
}

/// The incremental discrete-event scheduling engine.
///
/// Holds the same state as one batch run — admission queue, device
/// busy-until times, cached plan, re-plan tick cursor and the report
/// accumulators — but is driven by [`submit`](EventCore::submit) /
/// [`drain`](EventCore::drain) calls instead of a trace loop. See the
/// module docs for the tie-order contract.
pub struct EventCore {
    cfg: SchedConfig,
    overload: OverloadPolicy,
    queue: AdmissionQueue,
    /// `busy[g]` is `Some(cycle at which device g frees up)`.
    busy: Vec<Option<u64>>,
    plan: Option<VecDeque<Vec<JobId>>>,
    last_tick: u64,
    now: u64,
    /// Whether the tick-check + dispatch steps have run at `now`.
    /// Reset on every admission and every time advance, so all
    /// same-cycle submissions precede planning.
    settled: bool,
    jobs: Vec<JobOutcome>,
    rejections: Vec<crate::queue::Rejection>,
    failed: Vec<JobFailure>,
    groups: Vec<GroupDispatch>,
    degradations: Vec<Degradation>,
    decision_ns: Vec<u64>,
}

impl EventCore {
    /// Creates an engine at cycle 0 with all devices idle.
    ///
    /// # Errors
    ///
    /// [`SchedError::BadConfig`] if `cfg.num_gpus` is 0.
    pub fn new(cfg: SchedConfig, overload: OverloadPolicy) -> Result<Self, SchedError> {
        if cfg.num_gpus == 0 {
            return Err(SchedError::BadConfig("num_gpus must be at least 1".into()));
        }
        Ok(EventCore {
            cfg,
            overload,
            queue: AdmissionQueue::new(cfg.queue_capacity),
            busy: vec![None; cfg.num_gpus as usize],
            plan: None,
            last_tick: 0,
            now: 0,
            settled: false,
            jobs: Vec::new(),
            rejections: Vec::new(),
            failed: Vec::new(),
            groups: Vec::new(),
            degradations: Vec::new(),
            decision_ns: Vec::new(),
        })
    }

    /// Current simulated cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Jobs waiting in the admission queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Devices currently running a group.
    pub fn running(&self) -> usize {
        self.busy.iter().flatten().count()
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> usize {
        self.jobs.len()
    }

    /// Arrivals bounced off the full queue so far.
    pub fn rejected(&self) -> usize {
        self.rejections.len()
    }

    /// Jobs whose dispatched group died in the simulator.
    pub fn failures(&self) -> &[JobFailure] {
        &self.failed
    }

    /// Degradations recorded so far (solver downgrades and overload
    /// sheds).
    pub fn degradation_count(&self) -> usize {
        self.degradations.len()
    }

    /// Cycles until the next device frees up (`1` when all are idle) —
    /// the retry hint attached to [`Response::Rejected`].
    pub fn retry_after(&self) -> u64 {
        self.busy
            .iter()
            .flatten()
            .copied()
            .min()
            .map_or(1, |done| done.saturating_sub(self.now).max(1))
    }

    /// Wall-clock statistics over every planning decision so far.
    /// Kept out of the canonical report JSON — wall time is not
    /// byte-reproducible.
    pub fn decision_stats(&self) -> NanoStats {
        NanoStats::from_samples(&self.decision_ns)
    }

    /// Submits one job. `job.arrival` is the logical cycle; it is
    /// clamped to the engine's current time, which reproduces the
    /// batch loop's handling of a trace whose next arrival is already
    /// due. Returns whether the job was admitted; a bounced job is
    /// recorded as a [`Rejection`](crate::queue::Rejection) exactly as
    /// in batch mode.
    ///
    /// # Errors
    ///
    /// Non-simulator pipeline failures ([`SchedError::Core`]).
    /// Simulator timeouts/deadlocks of dispatched groups are *not*
    /// errors: the group's jobs are recorded in
    /// [`failures`](EventCore::failures) and the device frees on the
    /// next cycle.
    pub fn submit(
        &mut self,
        m: &mut dyn Measure,
        policy: &mut dyn Policy,
        job: Job,
    ) -> Result<bool, SchedError> {
        let at = job.arrival.max(self.now);
        if at > self.now {
            self.settle(m, policy)?;
            self.pump_until(m, policy, at)?;
        }
        match self.queue.offer(job) {
            Ok(()) => {
                self.settled = false;
                // Overload rung 1: under pressure, a cached non-empty
                // plan survives the census change.
                let keep = self
                    .overload
                    .replan_pending_limit
                    .is_some_and(|lim| self.queue.len() > lim)
                    && self.plan.as_ref().is_some_and(|p| !p.is_empty());
                if keep {
                    self.degradations.push(Degradation::OverloadShed {
                        from: "replan",
                        to: "cached-plan",
                        pending: self.queue.len(),
                    });
                } else {
                    self.plan = None;
                }
                Ok(true)
            }
            Err(r) => {
                self.rejections.push(r);
                Ok(false)
            }
        }
    }

    /// Finishes the run: dispatches everything pending, advances
    /// through all remaining completions and returns the final report
    /// (consuming the accumulated state).
    ///
    /// # Errors
    ///
    /// [`SchedError::Stalled`] if jobs wait with no event that could
    /// dispatch them; pipeline failures as in
    /// [`submit`](EventCore::submit).
    pub fn drain(
        &mut self,
        m: &mut dyn Measure,
        policy: &mut dyn Policy,
    ) -> Result<SchedReport, SchedError> {
        self.settle(m, policy)?;
        while let Some(next) = self.next_event() {
            debug_assert!(next > self.now, "events must move time forward");
            self.now = next;
            self.settled = false;
            self.free_completions();
            self.settle(m, policy)?;
        }
        if !self.queue.is_empty() {
            return Err(SchedError::Stalled {
                waiting: self.queue.len(),
                at: self.now,
            });
        }
        let mut jobs = std::mem::take(&mut self.jobs);
        jobs.sort_unstable_by_key(|j| j.id);
        let groups = std::mem::take(&mut self.groups);
        let makespan = groups.iter().map(|g| g.end).max().unwrap_or(0);
        Ok(SchedReport {
            policy: policy.name().to_string(),
            num_gpus: self.cfg.num_gpus,
            queue_capacity: self.cfg.queue_capacity,
            jobs,
            rejections: std::mem::take(&mut self.rejections),
            failed: std::mem::take(&mut self.failed),
            groups,
            degradations: std::mem::take(&mut self.degradations),
            makespan,
        })
    }

    /// A report over the state accumulated *so far*, without settling
    /// or draining — the daemon's mid-run `report` op. Jobs dispatched
    /// but pending settle are not yet visible; the snapshot is still a
    /// pure function of the submission history.
    pub fn snapshot_report(&self, policy_name: &str) -> SchedReport {
        let mut jobs = self.jobs.clone();
        jobs.sort_unstable_by_key(|j| j.id);
        let makespan = self.groups.iter().map(|g| g.end).max().unwrap_or(0);
        SchedReport {
            policy: policy_name.to_string(),
            num_gpus: self.cfg.num_gpus,
            queue_capacity: self.cfg.queue_capacity,
            jobs,
            rejections: self.rejections.clone(),
            failed: self.failed.clone(),
            groups: self.groups.clone(),
            degradations: self.degradations.clone(),
            makespan,
        }
    }

    /// Earliest future internal event: a completion, or a re-plan tick
    /// while work is waiting.
    fn next_event(&self) -> Option<u64> {
        let next_done = self.busy.iter().flatten().copied().min();
        let next_tick = match self.cfg.replan_interval {
            Some(iv) if iv > 0 && !self.queue.is_empty() => Some(((self.now / iv) + 1) * iv),
            _ => None,
        };
        [next_done, next_tick].into_iter().flatten().min()
    }

    /// Frees every device whose group ended at or before `now`.
    fn free_completions(&mut self) {
        for slot in &mut self.busy {
            if slot.is_some_and(|until| until <= self.now) {
                *slot = None;
            }
        }
    }

    /// Runs the tick-check + dispatch steps at `now`, once.
    fn settle(&mut self, m: &mut dyn Measure, policy: &mut dyn Policy) -> Result<(), SchedError> {
        if self.settled {
            return Ok(());
        }
        if let Some(iv) = self.cfg.replan_interval {
            if iv > 0 && self.now / iv > self.last_tick {
                self.last_tick = self.now / iv;
                self.plan = None;
            }
        }
        self.dispatch(m, policy)?;
        self.settled = true;
        Ok(())
    }

    /// Processes internal events strictly before `target`, then lands
    /// at `target` with completions freed and dispatch deferred.
    fn pump_until(
        &mut self,
        m: &mut dyn Measure,
        policy: &mut dyn Policy,
        target: u64,
    ) -> Result<(), SchedError> {
        while let Some(next) = self.next_event() {
            if next >= target {
                break;
            }
            self.now = next;
            self.settled = false;
            self.free_completions();
            self.settle(m, policy)?;
        }
        self.now = target;
        self.settled = false;
        self.free_completions();
        Ok(())
    }

    /// Dispatches onto free devices in ascending device order, planning
    /// lazily (and through the overload ladder) when no plan is cached.
    fn dispatch(&mut self, m: &mut dyn Measure, policy: &mut dyn Policy) -> Result<(), SchedError> {
        while !self.queue.is_empty() {
            let Some(gpu) = self.busy.iter().position(Option::is_none) else {
                break;
            };
            let planned_now = self.plan.is_none();
            if planned_now {
                let pending = self.queue.pending_vec();
                let mut greedy = GreedyClass;
                // Overload rung 2: bypass an expensive policy for the
                // class-aware greedy pairing above the limit.
                let shed = self
                    .overload
                    .ilp_pending_limit
                    .is_some_and(|lim| pending.len() > lim)
                    && policy.name() != greedy.name();
                let t0 = Instant::now();
                let fresh = if shed {
                    self.degradations.push(Degradation::OverloadShed {
                        from: policy.name(),
                        to: greedy.name(),
                        pending: pending.len(),
                    });
                    m.plan(&mut greedy, &pending)?
                } else {
                    m.plan(policy, &pending)?
                };
                let spent = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.decision_ns.push(spent);
                self.degradations.extend(fresh.degradations);
                self.plan = Some(fresh.groups.into());
            }
            let Some(group_ids) = self.plan.as_mut().and_then(VecDeque::pop_front) else {
                if planned_now {
                    break; // defensive: policy returned an empty plan
                }
                // A cached plan can exhaust while jobs still wait when
                // overload rung 1 let the census grow past it — the
                // stale census needs a fresh plan, not a stall.
                self.plan = None;
                continue;
            };
            let members = self.queue.take(&group_ids);
            let benches: Vec<Benchmark> = members.iter().map(|j| j.bench).collect();
            match m.run_group(&benches, self.cfg.alloc) {
                Ok(result) => {
                    let mut stp = 0.0;
                    for (member, app) in members.iter().zip(&result.apps) {
                        let alone = m.alone_cycles(member.bench);
                        stp += alone as f64 / app.cycles as f64;
                        self.jobs.push(JobOutcome {
                            id: member.id,
                            bench: member.bench,
                            arrival: member.arrival,
                            dispatch: self.now,
                            completion: self.now + app.cycles,
                            gpu: gpu as u32,
                            alone_cycles: alone,
                            corun_cycles: app.cycles,
                        });
                    }
                    // A group always occupies its device for at least
                    // one cycle, or same-timestamp dispatch would loop
                    // forever.
                    let end = self.now + result.makespan.max(1);
                    self.busy[gpu] = Some(end);
                    self.groups.push(GroupDispatch {
                        gpu: gpu as u32,
                        start: self.now,
                        end,
                        jobs: group_ids,
                        stp,
                    });
                }
                Err(CoreError::Sim(e @ (SimError::Timeout { .. } | SimError::Deadlock { .. }))) => {
                    let (kind, cycle, diag) = match &e {
                        SimError::Timeout { cycle, diag } => ("timeout", *cycle, diag.to_string()),
                        SimError::Deadlock { cycle, diag } => ("deadlock", *cycle, diag.to_string()),
                        _ => unreachable!("matched above"),
                    };
                    for member in &members {
                        self.failed.push(JobFailure {
                            id: member.id,
                            bench: member.bench,
                            arrival: member.arrival,
                            dispatch: self.now,
                            kind,
                            cycle,
                            diag: diag.clone(),
                        });
                    }
                    // The device held the doomed group for one cycle;
                    // the run continues without it.
                    self.busy[gpu] = Some(self.now + 1);
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }
}

/// Daemon configuration: the scheduling knobs plus the overload
/// ladder. Transport deadlines live on the [`Listener`] handed to
/// [`DaemonCore::serve`], not here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonConfig {
    /// The batch scheduler's knobs (devices, capacity, allocation,
    /// re-plan cadence).
    pub sched: SchedConfig,
    /// Overload-shedding thresholds (default: off).
    pub overload: OverloadPolicy,
}

/// The daemon: protocol handler over an [`EventCore`].
///
/// Owns the policy, borrows the measurement backend, and maps every
/// [`Request`] to exactly one [`Response`] — malformed or unlucky
/// input degrades to typed errors, never a panic or a dead daemon.
pub struct DaemonCore<'p> {
    measure: &'p mut dyn Measure,
    policy: Box<dyn Policy>,
    core: EventCore,
    draining: bool,
    drained_json: Option<String>,
}

impl<'p> DaemonCore<'p> {
    /// Creates a daemon over `measure` with `policy`.
    ///
    /// # Errors
    ///
    /// [`SchedError::BadConfig`] for an unusable configuration.
    pub fn new(
        measure: &'p mut dyn Measure,
        policy: Box<dyn Policy>,
        cfg: DaemonConfig,
    ) -> Result<Self, SchedError> {
        Ok(DaemonCore {
            measure,
            policy,
            core: EventCore::new(cfg.sched, cfg.overload)?,
            draining: false,
            drained_json: None,
        })
    }

    /// Whether a drain has completed (the final report was emitted).
    pub fn drained(&self) -> bool {
        self.drained_json.is_some()
    }

    /// Wall-clock statistics over every planning decision so far.
    pub fn decision_stats(&self) -> NanoStats {
        self.core.decision_stats()
    }

    /// Handles one request. Never panics; every outcome — including a
    /// simulator death inside a dispatched group — maps to a typed
    /// response.
    pub fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::Submit { id, bench, at } => self.handle_submit(id, bench, at),
            Request::Status => Response::Status {
                now: self.core.now(),
                pending: self.core.pending(),
                running: self.core.running(),
                completed: self.core.completed(),
                rejected: self.core.rejected(),
                failed: self.core.failures().len(),
                degradations: self.core.degradation_count(),
                draining: self.draining,
            },
            Request::Report => Response::Report {
                json: self
                    .core
                    .snapshot_report(self.policy.name())
                    .to_json(),
            },
            Request::Drain => self.handle_drain(),
        }
    }

    fn handle_submit(&mut self, id: u64, bench: Benchmark, at: u64) -> Response {
        if self.draining {
            return Response::Rejected {
                id,
                retry_after: self.core.retry_after(),
                draining: true,
            };
        }
        let job = Job {
            id: id as usize,
            bench,
            arrival: at,
        };
        let failed_before = self.core.failures().len();
        match self.core.submit(self.measure, self.policy.as_mut(), job) {
            Ok(admitted) => {
                // A simulator death while advancing time outranks the
                // admission outcome: surface it with its diagnostic
                // snapshot (the jobs are also in the report's `failed`
                // rows).
                if self.core.failures().len() > failed_before {
                    let f = &self.core.failures()[self.core.failures().len() - 1];
                    return Response::Error {
                        kind: format!("sim-{}", f.kind),
                        detail: format!(
                            "job {id} {}; group with job {} died at cycle {} \
                             (recorded in the report's failed rows)",
                            if admitted { "admitted" } else { "rejected" },
                            f.id,
                            f.cycle,
                        ),
                        diag: Some(f.diag.clone()),
                    };
                }
                if admitted {
                    Response::Submitted { id }
                } else {
                    Response::Rejected {
                        id,
                        retry_after: self.core.retry_after(),
                        draining: false,
                    }
                }
            }
            Err(e) => Response::Error {
                kind: "pipeline".into(),
                detail: e.to_string(),
                diag: None,
            },
        }
    }

    fn handle_drain(&mut self) -> Response {
        if let Some(json) = &self.drained_json {
            return Response::Drained { json: json.clone() };
        }
        self.draining = true;
        match self.core.drain(self.measure, self.policy.as_mut()) {
            Ok(report) => {
                let json = report.to_json();
                self.drained_json = Some(json.clone());
                Response::Drained { json }
            }
            Err(SchedError::Stalled { waiting, at }) => Response::Error {
                kind: "stalled".into(),
                detail: format!("drain stalled at cycle {at} with {waiting} jobs waiting"),
                diag: None,
            },
            Err(e) => Response::Error {
                kind: "pipeline".into(),
                detail: e.to_string(),
                diag: None,
            },
        }
    }

    /// Serves connections until a drain completes (after which the
    /// final report has been delivered and the daemon's work is done)
    /// or the listener closes. Connections are handled one at a time;
    /// a listener accept timeout just re-checks for shutdown.
    ///
    /// # Errors
    ///
    /// Fatal listener failures; per-connection errors are contained.
    pub fn serve<L: Listener>(&mut self, listener: &mut L) -> Result<(), TransportError> {
        loop {
            let mut conn = match listener.accept() {
                Ok(c) => c,
                Err(TransportError::Closed) => return Ok(()),
                Err(TransportError::TimedOut) => {
                    if self.drained() {
                        return Ok(());
                    }
                    continue;
                }
                Err(e) => return Err(e),
            };
            self.serve_conn(&mut conn);
            if self.drained() {
                return Ok(());
            }
        }
    }

    /// Serves one connection until it closes or desyncs.
    ///
    /// Error policy: header-level protocol violations (bad magic,
    /// unsupported version, oversize, peer death mid-frame) and read
    /// deadline expiry desync the framing — a typed error response is
    /// sent and the connection closed. Payload-level corruption
    /// (checksum or JSON) leaves framing intact — a typed error is
    /// sent and the connection stays live.
    pub fn serve_conn(&mut self, conn: &mut dyn Transport) {
        loop {
            let frame = match conn.recv_frame() {
                Ok(f) => f,
                Err(TransportError::Closed) => return,
                Err(TransportError::TimedOut) => {
                    let r = Response::Error {
                        kind: "timeout".into(),
                        detail: "read deadline exceeded".into(),
                        diag: None,
                    };
                    let _ = conn.send_bytes(&r.encode());
                    conn.close();
                    return;
                }
                Err(TransportError::Proto(e)) => {
                    let r = Response::Error {
                        kind: e.kind().into(),
                        detail: e.to_string(),
                        diag: None,
                    };
                    let _ = conn.send_bytes(&r.encode());
                    conn.close();
                    return;
                }
                Err(TransportError::Io(_)) => return,
            };
            let resp = match Request::decode(&frame) {
                Ok(req) => self.handle(req),
                Err(e) => Response::Error {
                    kind: e.kind().into(),
                    detail: e.to_string(),
                    diag: None,
                },
            };
            if conn.send_bytes(&resp.encode()).is_err() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Fcfs;
    use crate::transport::virtual_pair;
    use gcs_sim::DiagSnapshot;

    /// Synthetic backend: pairs jobs FCFS, every job runs `cycles`
    /// co-run cycles (`2 * cycles` alone), and any group containing a
    /// benchmark in `fail` dies with a simulator timeout.
    struct StubMeasure {
        cycles: u64,
        fail: Vec<Benchmark>,
    }

    impl StubMeasure {
        fn new(cycles: u64) -> Self {
            StubMeasure {
                cycles,
                fail: Vec::new(),
            }
        }
    }

    impl Measure for StubMeasure {
        fn plan(&mut self, _policy: &mut dyn Policy, pending: &[Job]) -> Result<Plan, CoreError> {
            Ok(Plan {
                groups: pending
                    .chunks(2)
                    .map(|c| c.iter().map(|j| j.id).collect())
                    .collect(),
                degradations: Vec::new(),
            })
        }

        fn run_group(
            &mut self,
            benches: &[Benchmark],
            _alloc: AllocationPolicy,
        ) -> Result<GroupResult, CoreError> {
            if benches.iter().any(|b| self.fail.contains(b)) {
                return Err(CoreError::Sim(SimError::Timeout {
                    cycle: 77,
                    diag: DiagSnapshot::default(),
                }));
            }
            Ok(GroupResult {
                apps: benches
                    .iter()
                    .map(|&bench| gcs_core::runner::AppRun {
                        bench,
                        cycles: self.cycles,
                        thread_insts: self.cycles,
                        ipc: 1.0,
                    })
                    .collect(),
                makespan: self.cycles,
            })
        }

        fn alone_cycles(&self, _bench: Benchmark) -> u64 {
            2 * self.cycles
        }
    }

    fn daemon_cfg(capacity: usize) -> DaemonConfig {
        DaemonConfig {
            sched: SchedConfig {
                queue_capacity: capacity,
                ..SchedConfig::default()
            },
            overload: OverloadPolicy::default(),
        }
    }

    #[test]
    fn submit_status_drain_round_trip() {
        let mut m = StubMeasure::new(100);
        let mut d = DaemonCore::new(&mut m, Box::new(Fcfs), daemon_cfg(8)).unwrap();
        for i in 0..3u64 {
            let r = d.handle(Request::Submit {
                id: i,
                bench: Benchmark::Gups,
                at: 0,
            });
            assert_eq!(r, Response::Submitted { id: i });
        }
        match d.handle(Request::Status) {
            Response::Status {
                pending, draining, ..
            } => {
                assert_eq!(pending, 3, "dispatch defers until time advances");
                assert!(!draining);
            }
            other => panic!("unexpected {other:?}"),
        }
        let json = match d.handle(Request::Drain) {
            Response::Drained { json } => json,
            other => panic!("unexpected {other:?}"),
        };
        assert!(json.contains("\"policy\": \"fcfs\""));
        assert!(d.drained());
        // Drain is idempotent: the same report comes back.
        assert_eq!(d.handle(Request::Drain), Response::Drained { json });
        // Post-drain submits bounce with the draining flag set.
        match d.handle(Request::Submit {
            id: 9,
            bench: Benchmark::Hs,
            at: 1000,
        }) {
            Response::Rejected { draining, .. } => assert!(draining),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn backpressure_rejects_with_retry_hint() {
        let mut m = StubMeasure::new(100);
        let mut d = DaemonCore::new(&mut m, Box::new(Fcfs), daemon_cfg(2)).unwrap();
        for i in 0..2u64 {
            d.handle(Request::Submit {
                id: i,
                bench: Benchmark::Gups,
                at: 0,
            });
        }
        match d.handle(Request::Submit {
            id: 2,
            bench: Benchmark::Hs,
            at: 0,
        }) {
            Response::Rejected {
                id,
                retry_after,
                draining,
            } => {
                assert_eq!(id, 2);
                assert!(retry_after >= 1);
                assert!(!draining);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The rejection shows up in the final report like batch mode.
        let json = match d.handle(Request::Drain) {
            Response::Drained { json } => json,
            other => panic!("unexpected {other:?}"),
        };
        assert!(json.contains("\"capacity\":2"));
    }

    #[test]
    fn sim_death_becomes_typed_error_with_diag_and_failed_rows() {
        let mut m = StubMeasure::new(100);
        m.fail.push(Benchmark::Hs);
        let mut d = DaemonCore::new(&mut m, Box::new(Fcfs), daemon_cfg(8)).unwrap();
        for i in 0..2u64 {
            d.handle(Request::Submit {
                id: i,
                bench: Benchmark::Hs,
                at: 0,
            });
        }
        // Advancing time dispatches the doomed group; the response
        // carries the simulator diagnostic.
        match d.handle(Request::Submit {
            id: 2,
            bench: Benchmark::Gups,
            at: 500,
        }) {
            Response::Error { kind, diag, .. } => {
                assert_eq!(kind, "sim-timeout");
                assert!(diag.unwrap().contains("SMs enabled"));
            }
            other => panic!("unexpected {other:?}"),
        }
        match d.handle(Request::Status) {
            Response::Status { failed, .. } => assert_eq!(failed, 2),
            other => panic!("unexpected {other:?}"),
        }
        // The daemon survives: the healthy job still completes.
        let json = match d.handle(Request::Drain) {
            Response::Drained { json } => json,
            other => panic!("unexpected {other:?}"),
        };
        assert!(json.contains("\"kind\":\"timeout\""));
        assert!(json.contains("\"cycle\":77"));
    }

    #[test]
    fn overload_ladder_sheds_and_records() {
        let mut m = StubMeasure::new(1_000);
        let cfg = DaemonConfig {
            sched: SchedConfig {
                queue_capacity: 64,
                ..SchedConfig::default()
            },
            overload: OverloadPolicy {
                replan_pending_limit: Some(1),
                ilp_pending_limit: Some(6),
            },
        };
        let mut d = DaemonCore::new(&mut m, Box::new(crate::policy::IlpEpoch), cfg).unwrap();
        // t=0: 3 jobs, dispatch once (1 device busy), then flood.
        for i in 0..3u64 {
            d.handle(Request::Submit {
                id: i,
                bench: Benchmark::Gups,
                at: 0,
            });
        }
        // Advance to t=1 to force a settle (plans once, occupies the
        // device), then flood the queue at t=1.
        for i in 3..12u64 {
            d.handle(Request::Submit {
                id: i,
                bench: Benchmark::Gups,
                at: 1,
            });
        }
        let json = match d.handle(Request::Drain) {
            Response::Drained { json } => json,
            other => panic!("unexpected {other:?}"),
        };
        assert!(
            json.contains("shed to cached-plan"),
            "rung 1 must record: {json}"
        );
        assert!(
            json.contains("shed to greedy"),
            "rung 2 must record: {json}"
        );
        // Every job still completes despite the shedding.
        assert!(json.contains("\"id\":11"), "all 12 jobs in report: {json}");
    }

    #[test]
    fn decision_latency_is_sampled() {
        let mut m = StubMeasure::new(10);
        let mut d = DaemonCore::new(&mut m, Box::new(Fcfs), daemon_cfg(8)).unwrap();
        for i in 0..4u64 {
            d.handle(Request::Submit {
                id: i,
                bench: Benchmark::Gups,
                at: 0,
            });
        }
        d.handle(Request::Drain);
        let stats = d.decision_stats();
        assert!(stats.count >= 1, "at least one planning decision");
        assert!(stats.p99_ns >= stats.p50_ns);
    }

    #[test]
    fn serve_conn_survives_corrupt_payload_and_closes_on_bad_header() {
        let mut m = StubMeasure::new(10);
        let mut d = DaemonCore::new(&mut m, Box::new(Fcfs), daemon_cfg(8)).unwrap();
        let (mut client, mut server) = virtual_pair();

        // Frame 1: valid submit.
        client
            .send_bytes(
                &Request::Submit {
                    id: 0,
                    bench: Benchmark::Gups,
                    at: 0,
                }
                .encode(),
            )
            .unwrap();
        // Frame 2: valid framing, corrupt payload (checksum mismatch).
        let mut bad = Request::Status.encode();
        let n = bad.len();
        bad[n - 1] ^= 0x01;
        client.send_bytes(&bad).unwrap();
        // Frame 3: still alive? A status must answer.
        client.send_bytes(&Request::Status.encode()).unwrap();
        // Frame 4: garbage header — daemon sends a typed error and
        // hangs up (so serve_conn returns without needing client EOF).
        client.send_bytes(b"NOPE----------------").unwrap();

        d.serve_conn(&mut server);

        let r1 = Response::decode(&client.recv_frame().unwrap()).unwrap();
        assert_eq!(r1, Response::Submitted { id: 0 });
        let r2 = Response::decode(&client.recv_frame().unwrap()).unwrap();
        assert!(matches!(r2, Response::Error { ref kind, .. } if kind == "corrupt"));
        let r3 = Response::decode(&client.recv_frame().unwrap()).unwrap();
        assert!(matches!(r3, Response::Status { pending: 1, .. }));
        let r4 = Response::decode(&client.recv_frame().unwrap()).unwrap();
        assert!(matches!(r4, Response::Error { ref kind, .. } if kind == "bad-magic"));
        assert!(matches!(
            client.recv_frame(),
            Err(TransportError::Closed | TransportError::Proto(_))
        ));
    }
}
