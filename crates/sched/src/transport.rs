//! Frame transports: TCP, in-process virtual sockets, and the
//! deterministic fault-injection proxy.
//!
//! Everything above this module speaks whole frames; everything below
//! is bytes. Three implementations share the [`Transport`] trait:
//!
//! * [`TcpTransport`] — a `TcpStream` with per-connection read/write
//!   deadlines. A slow-loris peer (bytes trickling in slower than the
//!   deadline) surfaces as [`TransportError::TimedOut`], never a hang,
//!   and an oversize advertised length is refused *before* any payload
//!   allocation ([`ProtoError::Oversize`]).
//! * [`VirtualSocket`] — an in-process duplex byte pipe
//!   ([`virtual_pair`]). This is how CI runs the daemon: same frame
//!   codec, same deadline semantics, zero network, byte-reproducible.
//! * [`FaultyTransport`] — the protocol-layer analogue of the
//!   simulator's `FaultPlan`: a seeded [`SimRng`] decides per outbound
//!   frame whether to deliver, drop, truncate-and-close, bit-flip or
//!   delay it, and logs every action to a transcript the CI smoke pins
//!   against a golden file.
//!
//! [`Listener`] abstracts `accept` the same way ([`VirtualListener`] /
//! [`TcpListener`](std::net::TcpListener) via [`TcpAcceptor`]), so the
//! daemon serve loop is transport-independent.

use std::collections::VecDeque;
use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use gcs_sim::rng::SimRng;

use crate::proto::{decode_header, ProtoError, FRAME_HEADER_LEN};

/// Transport-level failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The byte stream violated the frame protocol.
    Proto(ProtoError),
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// A read or write deadline expired (slow-loris defense).
    TimedOut,
    /// Any other I/O failure.
    Io(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Proto(e) => write!(f, "protocol error: {e}"),
            TransportError::Closed => write!(f, "connection closed by peer"),
            TransportError::TimedOut => write!(f, "deadline expired"),
            TransportError::Io(why) => write!(f, "transport i/o failed: {why}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<ProtoError> for TransportError {
    fn from(e: ProtoError) -> Self {
        TransportError::Proto(e)
    }
}

/// A bidirectional frame pipe.
pub trait Transport {
    /// Writes raw bytes (normally a whole frame; the fault proxy uses
    /// it for truncated prefixes too).
    ///
    /// # Errors
    ///
    /// [`TransportError`] on close, deadline expiry or I/O failure.
    fn send_bytes(&mut self, bytes: &[u8]) -> Result<(), TransportError>;

    /// Reads exactly one frame (header + payload) and returns its
    /// bytes. The header is validated (magic, version, length budget)
    /// *before* the payload is read, so a hostile length never causes
    /// an unbounded allocation; checksum verification is the decoder's
    /// job.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] at a clean frame boundary,
    /// [`TransportError::TimedOut`] when the deadline expires mid-read,
    /// [`TransportError::Proto`] for header violations or a peer dying
    /// mid-frame.
    fn recv_frame(&mut self) -> Result<Vec<u8>, TransportError>;

    /// Closes the connection (further calls fail with `Closed`).
    fn close(&mut self);

    /// Sends one whole frame. Default: [`Transport::send_bytes`].
    ///
    /// # Errors
    ///
    /// As [`Transport::send_bytes`].
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        self.send_bytes(frame)
    }
}

/// An `accept` source of connections, so the daemon serve loop is
/// transport-independent.
pub trait Listener {
    /// The connection type produced.
    type Conn: Transport;

    /// Blocks until the next connection (or the listener is closed).
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] when no more connections can arrive.
    fn accept(&mut self) -> Result<Self::Conn, TransportError>;
}

// ----------------------------------------------------------------------
// TCP
// ----------------------------------------------------------------------

/// A `TcpStream` speaking frames under per-connection deadlines.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    closed: bool,
}

impl TcpTransport {
    /// Wraps `stream` with the given read/write deadlines (`None`
    /// blocks forever — only sensible for trusted clients).
    ///
    /// # Errors
    ///
    /// [`TransportError::Io`] if the deadlines cannot be set.
    pub fn new(
        stream: TcpStream,
        read_deadline: Option<Duration>,
        write_deadline: Option<Duration>,
    ) -> Result<TcpTransport, TransportError> {
        stream
            .set_read_timeout(read_deadline)
            .and_then(|()| stream.set_write_timeout(write_deadline))
            .map_err(|e| TransportError::Io(e.to_string()))?;
        Ok(TcpTransport {
            stream,
            closed: false,
        })
    }

    fn read_exact_counted(&mut self, buf: &mut [u8]) -> Result<(), (usize, TransportError)> {
        let mut got = 0usize;
        while got < buf.len() {
            match self.stream.read(&mut buf[got..]) {
                Ok(0) => {
                    let e = if got == 0 {
                        TransportError::Closed
                    } else {
                        TransportError::Proto(ProtoError::Truncated {
                            at: got,
                            want: buf.len() - got,
                        })
                    };
                    return Err((got, e));
                }
                Ok(n) => got += n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err((got, TransportError::TimedOut));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err((got, TransportError::Io(e.to_string()))),
            }
        }
        Ok(())
    }
}

impl Transport for TcpTransport {
    fn send_bytes(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        if self.closed {
            return Err(TransportError::Closed);
        }
        self.stream.write_all(bytes).map_err(|e| match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                TransportError::TimedOut
            }
            std::io::ErrorKind::BrokenPipe | std::io::ErrorKind::ConnectionReset => {
                TransportError::Closed
            }
            _ => TransportError::Io(e.to_string()),
        })
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, TransportError> {
        if self.closed {
            return Err(TransportError::Closed);
        }
        let mut header = [0u8; FRAME_HEADER_LEN];
        self.read_exact_counted(&mut header).map_err(|(_, e)| e)?;
        let (len, _checksum) = decode_header(&header)?;
        let mut frame = vec![0u8; FRAME_HEADER_LEN + len];
        frame[..FRAME_HEADER_LEN].copy_from_slice(&header);
        self.read_exact_counted(&mut frame[FRAME_HEADER_LEN..])
            .map_err(|(got, e)| match e {
                // Mid-payload EOF: report the offset within the frame.
                TransportError::Proto(ProtoError::Truncated { .. }) | TransportError::Closed => {
                    TransportError::Proto(ProtoError::Truncated {
                        at: FRAME_HEADER_LEN + got,
                        want: len - got,
                    })
                }
                other => other,
            })?;
        Ok(frame)
    }

    fn close(&mut self) {
        self.closed = true;
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// `accept` adapter for a [`std::net::TcpListener`], stamping each
/// connection with the daemon's per-connection deadlines.
#[derive(Debug)]
pub struct TcpAcceptor {
    listener: std::net::TcpListener,
    read_deadline: Option<Duration>,
    write_deadline: Option<Duration>,
}

impl TcpAcceptor {
    /// Wraps `listener`; every accepted connection gets the deadlines.
    pub fn new(
        listener: std::net::TcpListener,
        read_deadline: Option<Duration>,
        write_deadline: Option<Duration>,
    ) -> TcpAcceptor {
        TcpAcceptor {
            listener,
            read_deadline,
            write_deadline,
        }
    }
}

impl Listener for TcpAcceptor {
    type Conn = TcpTransport;

    fn accept(&mut self) -> Result<TcpTransport, TransportError> {
        let (stream, _addr) = self
            .listener
            .accept()
            .map_err(|e| TransportError::Io(e.to_string()))?;
        TcpTransport::new(stream, self.read_deadline, self.write_deadline)
    }
}

// ----------------------------------------------------------------------
// Virtual sockets
// ----------------------------------------------------------------------

#[derive(Debug, Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

#[derive(Debug, Default)]
struct Pipe {
    state: Mutex<PipeState>,
    cv: Condvar,
}

impl Pipe {
    fn push(&self, bytes: &[u8]) -> Result<(), TransportError> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.closed {
            return Err(TransportError::Closed);
        }
        st.buf.extend(bytes.iter().copied());
        self.cv.notify_all();
        Ok(())
    }

    /// Blocks until `n` bytes are available, the pipe closes, or the
    /// deadline expires. Bytes are only consumed on success.
    fn pop_exact(&self, n: usize, deadline: Option<Duration>) -> Result<Vec<u8>, TransportError> {
        let start = Instant::now();
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.buf.len() >= n {
                return Ok(st.buf.drain(..n).collect());
            }
            if st.closed {
                return Err(if st.buf.is_empty() {
                    TransportError::Closed
                } else {
                    TransportError::Proto(ProtoError::Truncated {
                        at: st.buf.len(),
                        want: n - st.buf.len(),
                    })
                });
            }
            match deadline {
                None => {
                    st = self
                        .cv
                        .wait(st)
                        .unwrap_or_else(|e| e.into_inner());
                }
                Some(limit) => {
                    let elapsed = start.elapsed();
                    if elapsed >= limit {
                        return Err(TransportError::TimedOut);
                    }
                    let (guard, _timeout) = self
                        .cv
                        .wait_timeout(st, limit - elapsed)
                        .unwrap_or_else(|e| e.into_inner());
                    st = guard;
                }
            }
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closed = true;
        self.cv.notify_all();
    }
}

/// One end of an in-process duplex byte pipe ([`virtual_pair`]).
///
/// Same framing and deadline semantics as [`TcpTransport`], no
/// network: this is the byte-reproducible mode CI runs the daemon in.
#[derive(Debug)]
pub struct VirtualSocket {
    rx: Arc<Pipe>,
    tx: Arc<Pipe>,
    /// Optional receive deadline (slow-loris defense in virtual form).
    pub recv_deadline: Option<Duration>,
}

/// A connected pair of virtual sockets: what one end sends, the other
/// receives.
pub fn virtual_pair() -> (VirtualSocket, VirtualSocket) {
    let a = Arc::new(Pipe::default());
    let b = Arc::new(Pipe::default());
    (
        VirtualSocket {
            rx: Arc::clone(&a),
            tx: Arc::clone(&b),
            recv_deadline: None,
        },
        VirtualSocket {
            rx: b,
            tx: a,
            recv_deadline: None,
        },
    )
}

impl Transport for VirtualSocket {
    fn send_bytes(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        self.tx.push(bytes)
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, TransportError> {
        let header = self.rx.pop_exact(FRAME_HEADER_LEN, self.recv_deadline)?;
        let (len, _checksum) = decode_header(&header)?;
        let payload = self
            .rx
            .pop_exact(len, self.recv_deadline)
            .map_err(|e| match e {
                TransportError::Closed => TransportError::Proto(ProtoError::Truncated {
                    at: FRAME_HEADER_LEN,
                    want: len,
                }),
                other => other,
            })?;
        let mut frame = header;
        frame.extend_from_slice(&payload);
        Ok(frame)
    }

    fn close(&mut self) {
        self.tx.close();
        self.rx.close();
    }
}

impl Drop for VirtualSocket {
    fn drop(&mut self) {
        // EOF for the peer, like a socket going away.
        self.tx.close();
    }
}

/// The connecting side of a virtual link: each [`VirtualConnector::connect`]
/// yields a fresh client socket whose peer lands at the listener.
#[derive(Clone)]
pub struct VirtualConnector {
    tx: mpsc::Sender<VirtualSocket>,
}

impl VirtualConnector {
    /// Opens a new in-process connection to the linked listener.
    ///
    /// # Errors
    ///
    /// [`TransportError::Closed`] if the listener is gone.
    pub fn connect(&self) -> Result<VirtualSocket, TransportError> {
        let (client, server) = virtual_pair();
        self.tx
            .send(server)
            .map_err(|_| TransportError::Closed)?;
        Ok(client)
    }
}

/// The accepting side of a virtual link.
pub struct VirtualListener {
    rx: mpsc::Receiver<VirtualSocket>,
    conn_deadline: Option<Duration>,
}

/// A connected (connector, listener) pair — the in-process analogue of
/// `TcpListener::bind` + `TcpStream::connect`. `conn_deadline` becomes
/// the receive deadline of every accepted connection.
pub fn virtual_link(conn_deadline: Option<Duration>) -> (VirtualConnector, VirtualListener) {
    let (tx, rx) = mpsc::channel();
    (
        VirtualConnector { tx },
        VirtualListener { rx, conn_deadline },
    )
}

impl Listener for VirtualListener {
    type Conn = VirtualSocket;

    fn accept(&mut self) -> Result<VirtualSocket, TransportError> {
        let mut conn = self.rx.recv().map_err(|_| TransportError::Closed)?;
        conn.recv_deadline = self.conn_deadline;
        Ok(conn)
    }
}

// ----------------------------------------------------------------------
// Fault injection
// ----------------------------------------------------------------------

/// Per-frame fault probabilities, in percent; the remainder delivers
/// clean. The protocol-layer analogue of the simulator's `FaultPlan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Percent of frames silently dropped.
    pub drop_pct: u8,
    /// Percent of frames cut short, after which the connection closes
    /// (a peer dying mid-send).
    pub truncate_pct: u8,
    /// Percent of frames with one bit flipped in flight.
    pub flip_pct: u8,
    /// Percent of frames delayed a few milliseconds before delivery.
    pub delay_pct: u8,
}

impl FaultSpec {
    /// A lively mix for smoke tests: 10% drop, 10% truncate, 20% flip,
    /// 10% delay.
    pub const SMOKE: FaultSpec = FaultSpec {
        drop_pct: 10,
        truncate_pct: 10,
        flip_pct: 20,
        delay_pct: 10,
    };
}

/// Deterministic fault-injection proxy around any [`Transport`].
///
/// A seeded [`SimRng`] draws one action per *outbound* frame (inbound
/// frames pass through untouched), so a given `(seed, spec, frame
/// sizes)` sequence always produces the same damage — and the same
/// [`FaultyTransport::transcript`], which is what the CI smoke pins.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    rng: SimRng,
    spec: FaultSpec,
    frame_idx: u64,
    transcript: Vec<String>,
    severed: bool,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with a fault plan seeded by `seed`.
    pub fn new(inner: T, seed: u64, spec: FaultSpec) -> FaultyTransport<T> {
        FaultyTransport {
            inner,
            rng: SimRng::seed_from_u64(seed ^ 0x6661_756c_7479_7478), // "faultytx"
            spec,
            frame_idx: 0,
            transcript: Vec::new(),
            severed: false,
        }
    }

    /// Everything the proxy did, one line per outbound frame.
    pub fn transcript(&self) -> &[String] {
        &self.transcript
    }

    /// Consumes the proxy, returning the transcript.
    pub fn into_transcript(self) -> Vec<String> {
        self.transcript
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send_bytes(&mut self, bytes: &[u8]) -> Result<(), TransportError> {
        if self.severed {
            return Err(TransportError::Closed);
        }
        self.inner.send_bytes(bytes)
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, TransportError> {
        if self.severed {
            return Err(TransportError::Closed);
        }
        self.inner.recv_frame()
    }

    fn close(&mut self) {
        self.severed = true;
        self.inner.close();
    }

    fn send_frame(&mut self, frame: &[u8]) -> Result<(), TransportError> {
        if self.severed {
            return Err(TransportError::Closed);
        }
        let i = self.frame_idx;
        self.frame_idx += 1;
        let roll = self.rng.gen_range(100) as u8;
        let s = &self.spec;
        if roll < s.drop_pct {
            self.transcript.push(format!("frame {i}: drop {} bytes", frame.len()));
            return Ok(());
        }
        if roll < s.drop_pct + s.truncate_pct {
            let keep = 1 + self.rng.gen_range(frame.len().max(2) as u64 - 1) as usize;
            let keep = keep.min(frame.len().saturating_sub(1)).max(1);
            self.transcript
                .push(format!("frame {i}: truncate to {keep}/{} bytes, sever", frame.len()));
            let _ = self.inner.send_bytes(&frame[..keep]);
            self.inner.close();
            self.severed = true;
            return Ok(());
        }
        if roll < s.drop_pct + s.truncate_pct + s.flip_pct {
            let pos = self.rng.gen_range(frame.len() as u64) as usize;
            let bit = self.rng.gen_range(8) as u8;
            let mut copy = frame.to_vec();
            copy[pos] ^= 1 << bit;
            self.transcript
                .push(format!("frame {i}: flip byte {pos} bit {bit}"));
            return self.inner.send_bytes(&copy);
        }
        if roll < s.drop_pct + s.truncate_pct + s.flip_pct + s.delay_pct {
            let ms = 1 + self.rng.gen_range(5);
            self.transcript.push(format!("frame {i}: delay {ms}ms"));
            std::thread::sleep(Duration::from_millis(ms));
            return self.inner.send_bytes(frame);
        }
        self.transcript.push(format!("frame {i}: deliver"));
        self.inner.send_bytes(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{encode_frame, Request};
    use gcs_workloads::Benchmark;

    #[test]
    fn virtual_pair_round_trips_frames() {
        let (mut a, mut b) = virtual_pair();
        let req = Request::Submit {
            id: 1,
            bench: Benchmark::Gups,
            at: 9,
        };
        a.send_frame(&req.encode()).unwrap();
        let frame = b.recv_frame().unwrap();
        assert_eq!(Request::decode(&frame).unwrap(), req);
        // And the other direction.
        b.send_frame(&encode_frame(b"{\"op\":\"status\"}")).unwrap();
        assert_eq!(Request::decode(&a.recv_frame().unwrap()).unwrap(), Request::Status);
    }

    #[test]
    fn virtual_close_is_eof_and_mid_frame_close_is_truncated() {
        let (mut a, mut b) = virtual_pair();
        a.close();
        assert_eq!(b.recv_frame().unwrap_err(), TransportError::Closed);

        let (mut a, mut b) = virtual_pair();
        let frame = Request::Status.encode();
        a.send_bytes(&frame[..7]).unwrap();
        a.close();
        assert!(matches!(
            b.recv_frame().unwrap_err(),
            TransportError::Proto(ProtoError::Truncated { .. })
        ));
    }

    #[test]
    fn virtual_recv_deadline_defeats_slow_loris() {
        let (mut a, mut b) = virtual_pair();
        b.recv_deadline = Some(Duration::from_millis(30));
        // A lone header byte, then silence: the read must give up.
        a.send_bytes(b"G").unwrap();
        let start = Instant::now();
        assert_eq!(b.recv_frame().unwrap_err(), TransportError::TimedOut);
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn oversize_header_is_refused_before_payload() {
        let (mut a, mut b) = virtual_pair();
        let mut header = Vec::new();
        header.extend_from_slice(b"GCSD");
        header.extend_from_slice(&1u32.to_le_bytes());
        header.extend_from_slice(&u32::MAX.to_le_bytes()); // 4 GiB payload
        header.extend_from_slice(&0u64.to_le_bytes());
        a.send_bytes(&header).unwrap();
        assert!(matches!(
            b.recv_frame().unwrap_err(),
            TransportError::Proto(ProtoError::Oversize { .. })
        ));
    }

    #[test]
    fn virtual_link_accepts_multiple_connections() {
        let (connector, mut listener) = virtual_link(None);
        let mut c1 = connector.connect().unwrap();
        let mut s1 = listener.accept().unwrap();
        c1.send_frame(&Request::Status.encode()).unwrap();
        assert!(s1.recv_frame().is_ok());
        drop(connector);
        // c1's peer is already accepted; a new accept has no source.
        assert_eq!(listener.accept().unwrap_err(), TransportError::Closed);
    }

    #[test]
    fn tcp_round_trip_and_deadline() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t =
                TcpTransport::new(stream, Some(Duration::from_millis(100)), None).unwrap();
            let first = t.recv_frame().unwrap();
            t.send_frame(&first).unwrap(); // echo
            // Second read: client sends nothing more → deadline.
            assert_eq!(t.recv_frame().unwrap_err(), TransportError::TimedOut);
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut c = TcpTransport::new(stream, Some(Duration::from_secs(5)), None).unwrap();
        let req = Request::Drain.encode();
        c.send_frame(&req).unwrap();
        assert_eq!(c.recv_frame().unwrap(), req);
        server.join().unwrap();
    }

    #[test]
    fn faulty_transport_is_deterministic_and_damaging() {
        let run = |seed: u64| {
            let (a, mut b) = virtual_pair();
            let mut faulty = FaultyTransport::new(a, seed, FaultSpec::SMOKE);
            let mut outcomes = Vec::new();
            for i in 0..40u64 {
                let frame = Request::Submit {
                    id: i,
                    bench: Benchmark::Gups,
                    at: i,
                }
                .encode();
                if faulty.send_frame(&frame).is_err() {
                    break;
                }
            }
            b.recv_deadline = Some(Duration::from_millis(10));
            loop {
                match b.recv_frame() {
                    Ok(frame) => outcomes.push(match Request::decode(&frame) {
                        Ok(_) => "ok".to_string(),
                        Err(e) => e.kind().to_string(),
                    }),
                    Err(e) => {
                        outcomes.push(format!("recv:{e:?}"));
                        break;
                    }
                }
            }
            (faulty.into_transcript(), outcomes)
        };
        let (t1, o1) = run(7);
        let (t2, o2) = run(7);
        assert_eq!(t1, t2, "same seed, same transcript");
        assert_eq!(o1, o2, "same seed, same receiver outcomes");
        let (t3, _) = run(8);
        assert_ne!(t1, t3, "different seeds must differ");
        // The smoke spec actually injects *something* in 40 frames.
        assert!(
            t1.iter().any(|l| !l.ends_with("deliver")),
            "no faults injected: {t1:?}"
        );
    }
}
