//! The discrete-event scheduling loop.
//!
//! Time is simulated GPU cycles. The loop holds three event sources —
//! trace arrivals, group completions and optional re-plan interval
//! ticks — and always advances to the earliest pending one. Events that
//! share a timestamp are processed in a fixed order so runs are
//! reproducible regardless of how the tie arose:
//!
//! 1. **completions** free their devices,
//! 2. **admissions** enter the queue in trace order (invalidating any
//!    cached plan — the census changed),
//! 3. **dispatch** fills free devices in ascending device order from
//!    the front of the current plan, planning lazily if none is cached.
//!
//! Group execution itself is *measured*, not simulated here: a dispatch
//! calls [`Pipeline::run_group`], which routes through the memoized
//! sweep engine, and the resulting per-app cycle counts and group
//! makespan become the completion events. A device is busy until the
//! group's makespan elapses; an individual job completes when its own
//! co-run cycle count elapses (co-runners can finish earlier than the
//! group holds the device — same semantics as the batch pipeline's
//! accounting).

use std::collections::VecDeque;

use gcs_core::fault::Degradation;
use gcs_core::runner::{AllocationPolicy, Pipeline};
use gcs_workloads::{ArrivalTrace, Benchmark};

use crate::policy::Policy;
use crate::queue::{AdmissionQueue, Job, JobId, Rejection};
use crate::report::{GroupDispatch, JobOutcome, SchedReport};
use crate::SchedError;

/// Knobs for one scheduler run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Simulated devices to dispatch onto (≥ 1). Each runs one co-run
    /// group at a time; all share the pipeline's device model.
    pub num_gpus: u32,
    /// Admission-queue capacity; arrivals beyond it are rejected.
    pub queue_capacity: usize,
    /// SM allocation used for every dispatched group.
    pub alloc: AllocationPolicy,
    /// Optional fixed re-plan cadence: every `interval` cycles the
    /// cached plan is invalidated even without new arrivals, so
    /// stateful policies get a chance to reconsider. `None` re-plans
    /// only on admissions (the default, and what the batch-equivalence
    /// pin requires).
    pub replan_interval: Option<u64>,
}

impl Default for SchedConfig {
    /// One device, a 64-job queue, SMRA allocation, admission-driven
    /// re-planning.
    fn default() -> Self {
        SchedConfig {
            num_gpus: 1,
            queue_capacity: 64,
            alloc: AllocationPolicy::Smra,
            replan_interval: None,
        }
    }
}

/// Arrival-driven scheduler over a measurement [`Pipeline`].
///
/// Borrows the pipeline mutably for the lifetime of the scheduler so
/// co-run measurements share the pipeline's profile/curve caches (and
/// its memoized sweep engine) across runs.
pub struct OnlineScheduler<'p> {
    pipeline: &'p mut Pipeline,
    cfg: SchedConfig,
}

impl<'p> OnlineScheduler<'p> {
    /// Creates a scheduler with `cfg`.
    ///
    /// # Errors
    ///
    /// [`SchedError::BadConfig`] if `cfg.num_gpus` is 0.
    pub fn new(pipeline: &'p mut Pipeline, cfg: SchedConfig) -> Result<Self, SchedError> {
        if cfg.num_gpus == 0 {
            return Err(SchedError::BadConfig("num_gpus must be at least 1".into()));
        }
        Ok(OnlineScheduler { pipeline, cfg })
    }

    /// Runs `trace` to completion under `policy` and reports.
    ///
    /// # Errors
    ///
    /// Pipeline failures ([`SchedError::Core`]) and the pathological
    /// empty-plan-with-waiting-jobs case ([`SchedError::Stalled`]).
    pub fn run(
        &mut self,
        trace: &ArrivalTrace,
        policy: &mut dyn Policy,
    ) -> Result<SchedReport, SchedError> {
        let arrivals = trace.arrivals();
        let mut next_arrival = 0usize; // index into `arrivals`
        let mut queue = AdmissionQueue::new(self.cfg.queue_capacity);
        // `busy[g]` is Some(cycle at which device g frees up).
        let mut busy: Vec<Option<u64>> = vec![None; self.cfg.num_gpus as usize];
        let mut plan: Option<VecDeque<Vec<JobId>>> = None;
        let mut last_tick = 0u64;

        let mut jobs: Vec<JobOutcome> = Vec::new();
        let mut rejections: Vec<Rejection> = Vec::new();
        let mut groups: Vec<GroupDispatch> = Vec::new();
        let mut degradations: Vec<Degradation> = Vec::new();

        let mut now = 0u64;
        loop {
            // 1. Completions at or before `now` free their devices.
            for slot in &mut busy {
                if slot.is_some_and(|until| until <= now) {
                    *slot = None;
                }
            }

            // 2. Admissions due now, in trace order.
            let mut admitted = false;
            while next_arrival < arrivals.len() && arrivals[next_arrival].time <= now {
                let a = &arrivals[next_arrival];
                let job = Job {
                    id: next_arrival,
                    bench: a.bench,
                    arrival: a.time,
                };
                match queue.offer(job) {
                    Ok(()) => admitted = true,
                    Err(r) => rejections.push(r),
                }
                next_arrival += 1;
            }
            if admitted {
                plan = None; // census changed: re-plan before next dispatch
            }

            // Re-plan interval ticks crossed since the last event also
            // invalidate the plan (no-op when the queue is empty).
            if let Some(iv) = self.cfg.replan_interval {
                if iv > 0 && now / iv > last_tick {
                    last_tick = now / iv;
                    plan = None;
                }
            }

            // 3. Dispatch onto free devices, ascending device order.
            while !queue.is_empty() {
                let Some(gpu) = busy.iter().position(Option::is_none) else {
                    break;
                };
                if plan.is_none() {
                    let fresh = policy.plan(self.pipeline, &queue.pending_vec())?;
                    degradations.extend(fresh.degradations);
                    plan = Some(fresh.groups.into());
                }
                let Some(group_ids) = plan.as_mut().and_then(VecDeque::pop_front) else {
                    break; // defensive: policy returned an empty plan
                };
                let members = queue.take(&group_ids);
                let benches: Vec<Benchmark> = members.iter().map(|j| j.bench).collect();
                let result = self.pipeline.run_group(&benches, self.cfg.alloc)?;

                let mut stp = 0.0;
                for (member, app) in members.iter().zip(&result.apps) {
                    let alone = self.pipeline.profile(member.bench).cycles;
                    stp += alone as f64 / app.cycles as f64;
                    jobs.push(JobOutcome {
                        id: member.id,
                        bench: member.bench,
                        arrival: member.arrival,
                        dispatch: now,
                        completion: now + app.cycles,
                        gpu: gpu as u32,
                        alone_cycles: alone,
                        corun_cycles: app.cycles,
                    });
                }
                // A group always occupies its device for at least one
                // cycle, or same-timestamp dispatch would loop forever.
                let end = now + result.makespan.max(1);
                busy[gpu] = Some(end);
                groups.push(GroupDispatch {
                    gpu: gpu as u32,
                    start: now,
                    end,
                    jobs: group_ids,
                    stp,
                });
            }

            // 4. Advance to the earliest future event.
            let next_done = busy.iter().flatten().copied().min();
            let next_arr = arrivals.get(next_arrival).map(|a| a.time);
            let next_tick = match self.cfg.replan_interval {
                // Ticks only matter while work is both waiting and
                // blocked behind busy devices.
                Some(iv) if iv > 0 && !queue.is_empty() => Some(((now / iv) + 1) * iv),
                _ => None,
            };
            let Some(next) = [next_done, next_arr, next_tick].into_iter().flatten().min()
            else {
                break;
            };
            debug_assert!(next > now, "events must move time forward");
            now = next;
        }

        if !queue.is_empty() {
            return Err(SchedError::Stalled {
                waiting: queue.len(),
                at: now,
            });
        }

        jobs.sort_unstable_by_key(|j| j.id);
        let makespan = groups.iter().map(|g| g.end).max().unwrap_or(0);
        Ok(SchedReport {
            policy: policy.name().to_string(),
            num_gpus: self.cfg.num_gpus,
            queue_capacity: self.cfg.queue_capacity,
            jobs,
            rejections,
            groups,
            degradations,
            makespan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Fcfs, PolicyKind};
    use gcs_core::interference::InterferenceMatrix;
    use gcs_core::runner::RunConfig;
    use gcs_sim::config::GpuConfig;
    use gcs_workloads::{Arrival, Scale};

    fn test_pipeline(concurrency: u32) -> Pipeline {
        let cfg = RunConfig {
            gpu: GpuConfig::test_small(),
            scale: Scale::TEST,
            concurrency,
        };
        Pipeline::with_matrix(cfg, InterferenceMatrix::synthetic_paper_shape())
            .expect("test pipeline")
    }

    fn trace_at_zero(benches: &[Benchmark]) -> ArrivalTrace {
        ArrivalTrace::new(
            benches
                .iter()
                .map(|&bench| Arrival { time: 0, bench })
                .collect(),
        )
    }

    #[test]
    fn zero_gpus_is_rejected() {
        let mut p = test_pipeline(2);
        let cfg = SchedConfig {
            num_gpus: 0,
            ..SchedConfig::default()
        };
        assert!(matches!(
            OnlineScheduler::new(&mut p, cfg),
            Err(SchedError::BadConfig(_))
        ));
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let mut p = test_pipeline(2);
        let trace = ArrivalTrace::new(Vec::new());
        let report = OnlineScheduler::new(&mut p, SchedConfig::default())
            .unwrap()
            .run(&trace, &mut Fcfs)
            .unwrap();
        assert!(report.jobs.is_empty());
        assert!(report.groups.is_empty());
        assert_eq!(report.makespan, 0);
    }

    #[test]
    fn single_gpu_serializes_groups() {
        let mut p = test_pipeline(2);
        let trace = trace_at_zero(&[
            Benchmark::Gups,
            Benchmark::Hs,
            Benchmark::Blk,
            Benchmark::Sad,
        ]);
        let report = OnlineScheduler::new(&mut p, SchedConfig::default())
            .unwrap()
            .run(&trace, &mut Fcfs)
            .unwrap();
        assert_eq!(report.jobs.len(), 4);
        assert_eq!(report.groups.len(), 2);
        // On one device the second group starts exactly when the first
        // ends.
        assert_eq!(report.groups[0].start, 0);
        assert_eq!(report.groups[1].start, report.groups[0].end);
        assert_eq!(report.makespan, report.groups[1].end);
        // FCFS: arrival order is group order.
        assert_eq!(report.groups[0].jobs, vec![0, 1]);
        assert_eq!(report.groups[1].jobs, vec![2, 3]);
    }

    #[test]
    fn two_gpus_dispatch_in_parallel() {
        let mut p = test_pipeline(2);
        let trace = trace_at_zero(&[
            Benchmark::Gups,
            Benchmark::Hs,
            Benchmark::Blk,
            Benchmark::Sad,
        ]);
        let cfg = SchedConfig {
            num_gpus: 2,
            ..SchedConfig::default()
        };
        let report = OnlineScheduler::new(&mut p, cfg)
            .unwrap()
            .run(&trace, &mut Fcfs)
            .unwrap();
        // Both groups start at t=0 on distinct devices.
        assert_eq!(report.groups.len(), 2);
        assert_eq!(report.groups[0].start, 0);
        assert_eq!(report.groups[1].start, 0);
        assert_ne!(report.groups[0].gpu, report.groups[1].gpu);
        assert!(report.makespan < report.groups[0].end + report.groups[1].end);
    }

    #[test]
    fn backpressure_rejects_and_still_finishes() {
        let mut p = test_pipeline(2);
        // 6 arrivals at t=0 into a capacity-4 queue: exactly 2 rejected.
        let trace = trace_at_zero(&[
            Benchmark::Gups,
            Benchmark::Hs,
            Benchmark::Blk,
            Benchmark::Sad,
            Benchmark::Lps,
            Benchmark::Ray,
        ]);
        let cfg = SchedConfig {
            queue_capacity: 4,
            ..SchedConfig::default()
        };
        let report = OnlineScheduler::new(&mut p, cfg)
            .unwrap()
            .run(&trace, &mut Fcfs)
            .unwrap();
        assert_eq!(report.rejections.len(), 2);
        assert_eq!(report.jobs.len(), 4);
        let rejected: Vec<JobId> = report.rejections.iter().map(|r| r.job).collect();
        assert_eq!(rejected, vec![4, 5], "last arrivals bounce");
    }

    #[test]
    fn late_arrivals_wait_for_their_timestamp() {
        let mut p = test_pipeline(2);
        let trace = ArrivalTrace::new(vec![
            Arrival {
                time: 0,
                bench: Benchmark::Gups,
            },
            Arrival {
                time: 1_000_000_000,
                bench: Benchmark::Hs,
            },
        ]);
        let report = OnlineScheduler::new(&mut p, SchedConfig::default())
            .unwrap()
            .run(&trace, &mut Fcfs)
            .unwrap();
        assert_eq!(report.jobs.len(), 2);
        // The device idles until the second arrival: no time travel.
        assert_eq!(report.jobs[1].dispatch, 1_000_000_000);
        assert_eq!(report.jobs[1].queue_delay(), 0);
    }

    #[test]
    fn replan_interval_run_matches_admission_driven_for_stateless_policies() {
        // Stateless policies plan the same groups whether or not extra
        // ticks invalidate the cache, so the reports must be identical.
        let trace = ArrivalTrace::poisson(&Benchmark::ALL, 8, 40_000.0, 7);
        let mut reports = Vec::new();
        for interval in [None, Some(25_000u64)] {
            let mut p = test_pipeline(2);
            let cfg = SchedConfig {
                replan_interval: interval,
                ..SchedConfig::default()
            };
            let mut policy = PolicyKind::GreedyClass.build();
            let r = OnlineScheduler::new(&mut p, cfg)
                .unwrap()
                .run(&trace, policy.as_mut())
                .unwrap();
            reports.push(r.to_json());
        }
        assert_eq!(reports[0], reports[1]);
    }
}
