//! The batch entry point to the discrete-event scheduling loop.
//!
//! Time is simulated GPU cycles. The engine holds three event sources
//! — trace arrivals, group completions and optional re-plan interval
//! ticks — and always advances to the earliest pending one. Events
//! that share a timestamp are processed in a fixed order so runs are
//! reproducible regardless of how the tie arose:
//!
//! 1. **completions** free their devices,
//! 2. **admissions** enter the queue in trace order (invalidating any
//!    cached plan — the census changed),
//! 3. **dispatch** fills free devices in ascending device order from
//!    the front of the current plan, planning lazily if none is cached.
//!
//! The loop itself lives in [`EventCore`](crate::daemon::EventCore) in
//! its incremental (submit-by-submit) form; [`OnlineScheduler::run`]
//! feeds a whole [`ArrivalTrace`] through it and drains. Because the
//! daemon drives the *same* engine, a daemon session submitting the
//! same jobs at the same logical cycles produces a byte-identical
//! report — equivalence by construction, not by parallel maintenance.
//!
//! Group execution itself is *measured*, not simulated here: a dispatch
//! calls [`Pipeline::run_group`], which routes through the memoized
//! sweep engine, and the resulting per-app cycle counts and group
//! makespan become the completion events. A device is busy until the
//! group's makespan elapses; an individual job completes when its own
//! co-run cycle count elapses (co-runners can finish earlier than the
//! group holds the device — same semantics as the batch pipeline's
//! accounting).
//!
//! [`Pipeline::run_group`]: gcs_core::runner::Pipeline::run_group

use gcs_core::runner::{AllocationPolicy, Pipeline};
use gcs_workloads::ArrivalTrace;

use crate::daemon::{EventCore, OverloadPolicy};
use crate::policy::Policy;
use crate::queue::Job;
use crate::report::SchedReport;
use crate::SchedError;

/// Knobs for one scheduler run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Simulated devices to dispatch onto (≥ 1). Each runs one co-run
    /// group at a time; all share the pipeline's device model.
    pub num_gpus: u32,
    /// Admission-queue capacity; arrivals beyond it are rejected.
    pub queue_capacity: usize,
    /// SM allocation used for every dispatched group.
    pub alloc: AllocationPolicy,
    /// Optional fixed re-plan cadence: every `interval` cycles the
    /// cached plan is invalidated even without new arrivals, so
    /// stateful policies get a chance to reconsider. `None` re-plans
    /// only on admissions (the default, and what the batch-equivalence
    /// pin requires).
    pub replan_interval: Option<u64>,
}

impl Default for SchedConfig {
    /// One device, a 64-job queue, SMRA allocation, admission-driven
    /// re-planning.
    fn default() -> Self {
        SchedConfig {
            num_gpus: 1,
            queue_capacity: 64,
            alloc: AllocationPolicy::Smra,
            replan_interval: None,
        }
    }
}

/// Arrival-driven scheduler over a measurement [`Pipeline`].
///
/// Borrows the pipeline mutably for the lifetime of the scheduler so
/// co-run measurements share the pipeline's profile/curve caches (and
/// its memoized sweep engine) across runs.
pub struct OnlineScheduler<'p> {
    pipeline: &'p mut Pipeline,
    cfg: SchedConfig,
}

impl<'p> OnlineScheduler<'p> {
    /// Creates a scheduler with `cfg`.
    ///
    /// # Errors
    ///
    /// [`SchedError::BadConfig`] if `cfg.num_gpus` is 0.
    pub fn new(pipeline: &'p mut Pipeline, cfg: SchedConfig) -> Result<Self, SchedError> {
        if cfg.num_gpus == 0 {
            return Err(SchedError::BadConfig("num_gpus must be at least 1".into()));
        }
        Ok(OnlineScheduler { pipeline, cfg })
    }

    /// Runs `trace` to completion under `policy` and reports.
    ///
    /// # Errors
    ///
    /// Pipeline failures ([`SchedError::Core`]) and the pathological
    /// empty-plan-with-waiting-jobs case ([`SchedError::Stalled`]).
    pub fn run(
        &mut self,
        trace: &ArrivalTrace,
        policy: &mut dyn Policy,
    ) -> Result<SchedReport, SchedError> {
        let mut core = EventCore::new(self.cfg, OverloadPolicy::default())?;
        for (i, a) in trace.arrivals().iter().enumerate() {
            let job = Job {
                id: i,
                bench: a.bench,
                arrival: a.time,
            };
            core.submit(&mut *self.pipeline, policy, job)?;
        }
        core.drain(&mut *self.pipeline, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Fcfs, PolicyKind};
    use crate::queue::JobId;
    use gcs_core::interference::InterferenceMatrix;
    use gcs_core::runner::RunConfig;
    use gcs_sim::config::GpuConfig;
    use gcs_workloads::{Arrival, Benchmark, Scale};

    fn test_pipeline(concurrency: u32) -> Pipeline {
        let cfg = RunConfig {
            gpu: GpuConfig::test_small(),
            scale: Scale::TEST,
            concurrency,
        };
        Pipeline::with_matrix(cfg, InterferenceMatrix::synthetic_paper_shape())
            .expect("test pipeline")
    }

    fn trace_at_zero(benches: &[Benchmark]) -> ArrivalTrace {
        ArrivalTrace::new(
            benches
                .iter()
                .map(|&bench| Arrival { time: 0, bench })
                .collect(),
        )
    }

    #[test]
    fn zero_gpus_is_rejected() {
        let mut p = test_pipeline(2);
        let cfg = SchedConfig {
            num_gpus: 0,
            ..SchedConfig::default()
        };
        assert!(matches!(
            OnlineScheduler::new(&mut p, cfg),
            Err(SchedError::BadConfig(_))
        ));
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let mut p = test_pipeline(2);
        let trace = ArrivalTrace::new(Vec::new());
        let report = OnlineScheduler::new(&mut p, SchedConfig::default())
            .unwrap()
            .run(&trace, &mut Fcfs)
            .unwrap();
        assert!(report.jobs.is_empty());
        assert!(report.groups.is_empty());
        assert_eq!(report.makespan, 0);
    }

    #[test]
    fn single_gpu_serializes_groups() {
        let mut p = test_pipeline(2);
        let trace = trace_at_zero(&[
            Benchmark::Gups,
            Benchmark::Hs,
            Benchmark::Blk,
            Benchmark::Sad,
        ]);
        let report = OnlineScheduler::new(&mut p, SchedConfig::default())
            .unwrap()
            .run(&trace, &mut Fcfs)
            .unwrap();
        assert_eq!(report.jobs.len(), 4);
        assert_eq!(report.groups.len(), 2);
        // On one device the second group starts exactly when the first
        // ends.
        assert_eq!(report.groups[0].start, 0);
        assert_eq!(report.groups[1].start, report.groups[0].end);
        assert_eq!(report.makespan, report.groups[1].end);
        // FCFS: arrival order is group order.
        assert_eq!(report.groups[0].jobs, vec![0, 1]);
        assert_eq!(report.groups[1].jobs, vec![2, 3]);
    }

    #[test]
    fn two_gpus_dispatch_in_parallel() {
        let mut p = test_pipeline(2);
        let trace = trace_at_zero(&[
            Benchmark::Gups,
            Benchmark::Hs,
            Benchmark::Blk,
            Benchmark::Sad,
        ]);
        let cfg = SchedConfig {
            num_gpus: 2,
            ..SchedConfig::default()
        };
        let report = OnlineScheduler::new(&mut p, cfg)
            .unwrap()
            .run(&trace, &mut Fcfs)
            .unwrap();
        // Both groups start at t=0 on distinct devices.
        assert_eq!(report.groups.len(), 2);
        assert_eq!(report.groups[0].start, 0);
        assert_eq!(report.groups[1].start, 0);
        assert_ne!(report.groups[0].gpu, report.groups[1].gpu);
        assert!(report.makespan < report.groups[0].end + report.groups[1].end);
    }

    #[test]
    fn backpressure_rejects_and_still_finishes() {
        let mut p = test_pipeline(2);
        // 6 arrivals at t=0 into a capacity-4 queue: exactly 2 rejected.
        let trace = trace_at_zero(&[
            Benchmark::Gups,
            Benchmark::Hs,
            Benchmark::Blk,
            Benchmark::Sad,
            Benchmark::Lps,
            Benchmark::Ray,
        ]);
        let cfg = SchedConfig {
            queue_capacity: 4,
            ..SchedConfig::default()
        };
        let report = OnlineScheduler::new(&mut p, cfg)
            .unwrap()
            .run(&trace, &mut Fcfs)
            .unwrap();
        assert_eq!(report.rejections.len(), 2);
        assert_eq!(report.jobs.len(), 4);
        let rejected: Vec<JobId> = report.rejections.iter().map(|r| r.job).collect();
        assert_eq!(rejected, vec![4, 5], "last arrivals bounce");
    }

    #[test]
    fn late_arrivals_wait_for_their_timestamp() {
        let mut p = test_pipeline(2);
        let trace = ArrivalTrace::new(vec![
            Arrival {
                time: 0,
                bench: Benchmark::Gups,
            },
            Arrival {
                time: 1_000_000_000,
                bench: Benchmark::Hs,
            },
        ]);
        let report = OnlineScheduler::new(&mut p, SchedConfig::default())
            .unwrap()
            .run(&trace, &mut Fcfs)
            .unwrap();
        assert_eq!(report.jobs.len(), 2);
        // The device idles until the second arrival: no time travel.
        assert_eq!(report.jobs[1].dispatch, 1_000_000_000);
        assert_eq!(report.jobs[1].queue_delay(), 0);
    }

    #[test]
    fn replan_interval_run_matches_admission_driven_for_stateless_policies() {
        // Stateless policies plan the same groups whether or not extra
        // ticks invalidate the cache, so the reports must be identical.
        let trace = ArrivalTrace::poisson(&Benchmark::ALL, 8, 40_000.0, 7);
        let mut reports = Vec::new();
        for interval in [None, Some(25_000u64)] {
            let mut p = test_pipeline(2);
            let cfg = SchedConfig {
                replan_interval: interval,
                ..SchedConfig::default()
            };
            let mut policy = PolicyKind::GreedyClass.build();
            let r = OnlineScheduler::new(&mut p, cfg)
                .unwrap()
                .run(&trace, policy.as_mut())
                .unwrap();
            reports.push(r.to_json());
        }
        assert_eq!(reports[0], reports[1]);
    }
}
