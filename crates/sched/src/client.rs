//! Client-side helper for the daemon protocol.
//!
//! Wraps any [`Transport`] with framed request/response exchange plus
//! a retry loop for [`Response::Rejected`] backpressure: exponential
//! backoff with deterministic, seeded jitter ([`SimRng`]), so two
//! clients configured with different seeds desynchronise their retry
//! storms while any single run remains reproducible.

use std::time::Duration;

use gcs_sim::rng::SimRng;
use gcs_workloads::Benchmark;

use crate::proto::{Request, Response};
use crate::transport::{Transport, TransportError};

/// Retry/backoff knobs for [`SchedClient::submit_with_retry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Total attempts per submit (first try included); at least 1.
    pub max_attempts: u32,
    /// Backoff before retry `k` is `base_backoff * 2^k` plus jitter.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep (jitter included).
    pub max_backoff: Duration,
    /// Seed for the jitter stream — vary it per client.
    pub seed: u64,
}

impl Default for RetryConfig {
    /// 5 attempts, 1 ms base, 50 ms cap.
    fn default() -> Self {
        RetryConfig {
            max_attempts: 5,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            seed: 0,
        }
    }
}

/// A daemon client over any transport (TCP or virtual socket).
pub struct SchedClient<T: Transport> {
    conn: T,
    rng: SimRng,
    retry: RetryConfig,
    /// Backoff sleeps taken so far (observable for tests and stats).
    pub retries: u64,
}

impl<T: Transport> SchedClient<T> {
    /// Wraps `conn` with `retry` configuration.
    pub fn new(conn: T, retry: RetryConfig) -> Self {
        SchedClient {
            conn,
            // Domain-separate the jitter stream from other consumers
            // of the same user seed ("schedcli").
            rng: SimRng::seed_from_u64(retry.seed ^ 0x7363_6865_6463_6c69),
            retry,
            retries: 0,
        }
    }

    /// One framed request/response exchange.
    ///
    /// # Errors
    ///
    /// Transport failures, or a response frame that fails to decode
    /// ([`TransportError::Proto`]).
    pub fn request(&mut self, req: &Request) -> Result<Response, TransportError> {
        self.conn.send_bytes(&req.encode())?;
        let frame = self.conn.recv_frame()?;
        Response::decode(&frame).map_err(TransportError::Proto)
    }

    /// Submits a job, retrying on non-draining backpressure with
    /// exponential backoff and seeded jitter. Returns the final
    /// response — [`Response::Rejected`] if every attempt bounced.
    ///
    /// # Errors
    ///
    /// Transport failures on any attempt.
    pub fn submit_with_retry(
        &mut self,
        id: u64,
        bench: Benchmark,
        at: u64,
    ) -> Result<Response, TransportError> {
        let attempts = self.retry.max_attempts.max(1);
        for attempt in 0..attempts {
            let resp = self.request(&Request::Submit { id, bench, at })?;
            match resp {
                Response::Rejected { draining: false, .. } if attempt + 1 < attempts => {
                    self.retries += 1;
                    std::thread::sleep(self.backoff(attempt));
                }
                other => return Ok(other),
            }
        }
        unreachable!("loop returns on the last attempt");
    }

    /// Backoff for retry number `attempt` (0-based): exponential in
    /// the base, plus up to one base-interval of seeded jitter, capped.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let base = self.retry.base_backoff.saturating_mul(1u32 << attempt.min(16));
        let jitter_ns = self
            .rng
            .gen_range(self.retry.base_backoff.as_nanos().min(u128::from(u64::MAX)) as u64 + 1);
        (base + Duration::from_nanos(jitter_ns)).min(self.retry.max_backoff)
    }

    /// Fetches the daemon's status counters.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn status(&mut self) -> Result<Response, TransportError> {
        self.request(&Request::Status)
    }

    /// Fetches the mid-run report JSON.
    ///
    /// # Errors
    ///
    /// Transport failures, or an unexpected response kind
    /// ([`TransportError::Proto`]).
    pub fn report(&mut self) -> Result<String, TransportError> {
        match self.request(&Request::Report)? {
            Response::Report { json } => Ok(json),
            other => Err(unexpected(&other)),
        }
    }

    /// Drains the daemon and returns the final report JSON.
    ///
    /// # Errors
    ///
    /// Transport failures, or an unexpected response kind.
    pub fn drain(&mut self) -> Result<String, TransportError> {
        match self.request(&Request::Drain)? {
            Response::Drained { json } => Ok(json),
            other => Err(unexpected(&other)),
        }
    }

    /// Consumes the client, returning the transport.
    pub fn into_inner(self) -> T {
        self.conn
    }
}

fn unexpected(resp: &Response) -> TransportError {
    TransportError::Proto(crate::proto::ProtoError::Corrupt(format!(
        "unexpected response: {}",
        resp.encode_json()
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::virtual_pair;

    /// Scripted server: answers each submit from `script`, then echoes
    /// status forever.
    fn serve_script(mut server: impl Transport + Send + 'static, script: Vec<Response>) {
        std::thread::spawn(move || {
            let mut script = script.into_iter();
            while let Ok(frame) = server.recv_frame() {
                let resp = match Request::decode(&frame) {
                    Ok(Request::Submit { .. }) => script.next().unwrap_or(Response::Error {
                        kind: "script".into(),
                        detail: "script exhausted".into(),
                        diag: None,
                    }),
                    Ok(_) => Response::Status {
                        now: 0,
                        pending: 0,
                        running: 0,
                        completed: 0,
                        rejected: 0,
                        failed: 0,
                        degradations: 0,
                        draining: false,
                    },
                    Err(e) => Response::Error {
                        kind: e.kind().into(),
                        detail: e.to_string(),
                        diag: None,
                    },
                };
                if server.send_bytes(&resp.encode()).is_err() {
                    break;
                }
            }
        });
    }

    fn fast_retry(seed: u64) -> RetryConfig {
        RetryConfig {
            max_attempts: 4,
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(200),
            seed,
        }
    }

    #[test]
    fn retries_through_backpressure_until_accepted() {
        let (client_sock, server_sock) = virtual_pair();
        serve_script(
            server_sock,
            vec![
                Response::Rejected {
                    id: 1,
                    retry_after: 10,
                    draining: false,
                },
                Response::Rejected {
                    id: 1,
                    retry_after: 10,
                    draining: false,
                },
                Response::Submitted { id: 1 },
            ],
        );
        let mut c = SchedClient::new(client_sock, fast_retry(7));
        let r = c.submit_with_retry(1, Benchmark::Gups, 0).unwrap();
        assert_eq!(r, Response::Submitted { id: 1 });
        assert_eq!(c.retries, 2);
    }

    #[test]
    fn draining_rejection_short_circuits() {
        let (client_sock, server_sock) = virtual_pair();
        serve_script(
            server_sock,
            vec![Response::Rejected {
                id: 3,
                retry_after: 1,
                draining: true,
            }],
        );
        let mut c = SchedClient::new(client_sock, fast_retry(7));
        let r = c.submit_with_retry(3, Benchmark::Hs, 0).unwrap();
        assert!(matches!(r, Response::Rejected { draining: true, .. }));
        assert_eq!(c.retries, 0, "no point retrying a draining daemon");
    }

    #[test]
    fn exhausted_attempts_return_last_rejection() {
        let (client_sock, server_sock) = virtual_pair();
        serve_script(
            server_sock,
            vec![
                Response::Rejected {
                    id: 9,
                    retry_after: 5,
                    draining: false,
                };
                4
            ],
        );
        let mut c = SchedClient::new(client_sock, fast_retry(1));
        let r = c.submit_with_retry(9, Benchmark::Blk, 0).unwrap();
        assert!(matches!(r, Response::Rejected { draining: false, .. }));
        assert_eq!(c.retries, 3, "attempts - 1 sleeps");
    }

    #[test]
    fn backoff_jitter_is_seed_deterministic() {
        let seq = |seed: u64| -> Vec<Duration> {
            let (client_sock, _server_sock) = virtual_pair();
            let mut c = SchedClient::new(client_sock, fast_retry(seed));
            (0..5).map(|k| c.backoff(k)).collect()
        };
        assert_eq!(seq(42), seq(42), "same seed, same jitter");
        assert_ne!(seq(42), seq(43), "different seed, different jitter");
        for d in seq(42) {
            assert!(d <= Duration::from_micros(200), "cap holds: {d:?}");
        }
    }
}
