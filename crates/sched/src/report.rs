//! Run outcomes and latency/fairness metrics.
//!
//! Everything here is plain data plus arithmetic — no scheduling logic
//! — so `schedd_sim`, the smoke tests and the equivalence pins all read
//! from one source of truth. [`SchedReport::to_json`] renders a
//! canonical, byte-stable document (hand-rolled, like the rest of the
//! workspace: no serde) so determinism checks can compare reports with
//! `==` on the string.

use gcs_core::fault::Degradation;
use gcs_workloads::Benchmark;

use crate::queue::{JobId, Rejection};

/// Final accounting for one job that ran to completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobOutcome {
    /// Trace-order id.
    pub id: JobId,
    /// Benchmark the job ran.
    pub bench: Benchmark,
    /// Arrival cycle (from the trace).
    pub arrival: u64,
    /// Cycle at which the job's group started on a device.
    pub dispatch: u64,
    /// Cycle at which the job itself finished (dispatch + its co-run
    /// cycles; co-runners in the group may finish later).
    pub completion: u64,
    /// Device index the group ran on.
    pub gpu: u32,
    /// Cycles the job needs running alone on the whole device.
    pub alone_cycles: u64,
    /// Cycles the job took inside its co-run group.
    pub corun_cycles: u64,
}

impl JobOutcome {
    /// Cycles spent waiting in the admission queue.
    pub fn queue_delay(&self) -> u64 {
        self.dispatch - self.arrival
    }

    /// Arrival-to-completion cycles.
    pub fn turnaround(&self) -> u64 {
        self.completion - self.arrival
    }

    /// Turnaround normalized by the alone runtime (the per-job term of
    /// ANTT). Always ≥ 1 in practice: co-running plus queueing can only
    /// delay a job relative to an idle dedicated device.
    pub fn normalized_turnaround(&self) -> f64 {
        self.turnaround() as f64 / self.alone_cycles as f64
    }
}

/// Final accounting for one job whose group died in simulation
/// (cycle-budget timeout or deadlock).
///
/// Failed jobs are counted *explicitly* — never folded into
/// completions — and carry the device diagnostics
/// ([`DiagSnapshot`](gcs_sim::stats::DiagSnapshot) rendering) so a
/// report reader sees *why* the job died, not just that it did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Trace-order id.
    pub id: JobId,
    /// Benchmark the job was running.
    pub bench: Benchmark,
    /// Arrival cycle (from the trace).
    pub arrival: u64,
    /// Cycle at which the doomed group was dispatched.
    pub dispatch: u64,
    /// Failure kind: `"timeout"` or `"deadlock"`.
    pub kind: &'static str,
    /// Simulator cycle at which the group died.
    pub cycle: u64,
    /// Device diagnostics at the moment of death.
    pub diag: String,
}

/// One group dispatch: which jobs ran together, where and when.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupDispatch {
    /// Device index.
    pub gpu: u32,
    /// Dispatch cycle.
    pub start: u64,
    /// Cycle the device became free again (start + group makespan).
    pub end: u64,
    /// Member job ids, group order.
    pub jobs: Vec<JobId>,
    /// System throughput of this group: Σ alone/corun over members.
    pub stp: f64,
}

/// Nearest-rank percentile summary of a cycle-count sample set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    /// 50th percentile (nearest-rank).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// 99th percentile (nearest-rank).
    pub p99: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum sample.
    pub max: u64,
}

impl LatencyStats {
    /// Summarizes `samples` (order irrelevant). All-zero for an empty
    /// set.
    pub fn from_samples(samples: &[u64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let pct = |p: u64| -> u64 {
            // Nearest-rank: ceil(p/100 * n) as a 1-based rank.
            let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
            sorted[rank - 1]
        };
        LatencyStats {
            p50: pct(50),
            p95: pct(95),
            p99: pct(99),
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Complete outcome of one scheduler run: per-job rows, dispatch log,
/// rejections, downgrades and derived metrics.
#[derive(Debug, Clone)]
pub struct SchedReport {
    /// Policy name ([`crate::Policy::name`]).
    pub policy: String,
    /// Simulated device count.
    pub num_gpus: u32,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Completed jobs, ordered by id.
    pub jobs: Vec<JobOutcome>,
    /// Jobs turned away at admission, trace order.
    pub rejections: Vec<Rejection>,
    /// Jobs whose group died in simulation, dispatch order.
    pub failed: Vec<JobFailure>,
    /// Group dispatches in dispatch order (ties: device order).
    pub groups: Vec<GroupDispatch>,
    /// Downgrades recorded while planning.
    pub degradations: Vec<Degradation>,
    /// Cycle at which the last group finished (0 if nothing ran).
    pub makespan: u64,
}

impl SchedReport {
    /// Queueing-delay distribution over completed jobs.
    pub fn queue_delay_stats(&self) -> LatencyStats {
        let d: Vec<u64> = self.jobs.iter().map(JobOutcome::queue_delay).collect();
        LatencyStats::from_samples(&d)
    }

    /// Turnaround distribution over completed jobs.
    pub fn turnaround_stats(&self) -> LatencyStats {
        let d: Vec<u64> = self.jobs.iter().map(JobOutcome::turnaround).collect();
        LatencyStats::from_samples(&d)
    }

    /// System throughput: mean over dispatched groups of
    /// Σ alone/corun — the paper's STP metric applied per epoch group.
    /// 0 when nothing ran.
    pub fn stp(&self) -> f64 {
        if self.groups.is_empty() {
            return 0.0;
        }
        self.groups.iter().map(|g| g.stp).sum::<f64>() / self.groups.len() as f64
    }

    /// Average normalized turnaround time: mean over jobs of
    /// (completion − arrival) / alone_cycles. Unlike batch ANTT this
    /// includes queueing delay, which is the point of the online
    /// formulation. 0 when nothing ran.
    pub fn antt(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs
            .iter()
            .map(JobOutcome::normalized_turnaround)
            .sum::<f64>()
            / self.jobs.len() as f64
    }

    /// Canonical JSON rendering: one line per job/group row, stable key
    /// order, floats in Rust's shortest-round-trip form. Byte-identical
    /// for identical runs (the determinism tests rely on this).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.jobs.len() * 128);
        s.push_str("{\n");
        s.push_str(&format!("  \"policy\": \"{}\",\n", esc(&self.policy)));
        s.push_str(&format!("  \"num_gpus\": {},\n", self.num_gpus));
        s.push_str(&format!("  \"queue_capacity\": {},\n", self.queue_capacity));
        s.push_str(&format!("  \"makespan\": {},\n", self.makespan));
        s.push_str(&format!("  \"stp\": {},\n", fmt_f64(self.stp())));
        s.push_str(&format!("  \"antt\": {},\n", fmt_f64(self.antt())));
        let qd = self.queue_delay_stats();
        s.push_str(&format!("  \"queue_delay\": {},\n", latency_json(&qd)));
        let ta = self.turnaround_stats();
        s.push_str(&format!("  \"turnaround\": {},\n", latency_json(&ta)));

        s.push_str("  \"jobs\": [");
        for (i, j) in self.jobs.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"id\":{},\"bench\":\"{}\",\"arrival\":{},\"dispatch\":{},\"completion\":{},\"gpu\":{},\"alone_cycles\":{},\"corun_cycles\":{}}}",
                j.id, j.bench, j.arrival, j.dispatch, j.completion, j.gpu,
                j.alone_cycles, j.corun_cycles,
            ));
        }
        s.push_str(if self.jobs.is_empty() { "],\n" } else { "\n  ],\n" });

        s.push_str("  \"groups\": [");
        for (i, g) in self.groups.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let ids: Vec<String> = g.jobs.iter().map(|id| id.to_string()).collect();
            s.push_str(&format!(
                "    {{\"gpu\":{},\"start\":{},\"end\":{},\"jobs\":[{}],\"stp\":{}}}",
                g.gpu,
                g.start,
                g.end,
                ids.join(","),
                fmt_f64(g.stp),
            ));
        }
        s.push_str(if self.groups.is_empty() { "],\n" } else { "\n  ],\n" });

        s.push_str("  \"rejections\": [");
        for (i, r) in self.rejections.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"job\":{},\"bench\":\"{}\",\"at\":{},\"capacity\":{}}}",
                r.job, r.bench, r.at, r.capacity,
            ));
        }
        s.push_str(if self.rejections.is_empty() { "],\n" } else { "\n  ],\n" });

        s.push_str("  \"failed\": [");
        for (i, x) in self.failed.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"id\":{},\"bench\":\"{}\",\"arrival\":{},\"dispatch\":{},\"kind\":\"{}\",\"cycle\":{},\"diag\":\"{}\"}}",
                x.id, x.bench, x.arrival, x.dispatch, x.kind, x.cycle, esc(&x.diag),
            ));
        }
        s.push_str(if self.failed.is_empty() { "],\n" } else { "\n  ],\n" });

        s.push_str("  \"degradations\": [");
        for (i, d) in self.degradations.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!("    \"{}\"", esc(&d.to_string())));
        }
        s.push_str(if self.degradations.is_empty() { "]\n" } else { "\n  ]\n" });
        s.push('}');
        s.push('\n');
        s
    }
}

fn latency_json(l: &LatencyStats) -> String {
    format!(
        "{{\"p50\":{},\"p95\":{},\"p99\":{},\"mean\":{},\"max\":{}}}",
        l.p50,
        l.p95,
        l.p99,
        fmt_f64(l.mean),
        l.max
    )
}

/// Shortest-round-trip float rendering with a guaranteed decimal point
/// (so `1.0` renders as `1.0`, not the integer-looking `1`).
fn fmt_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let l = LatencyStats::from_samples(&samples);
        assert_eq!(l.p50, 50);
        assert_eq!(l.p95, 95);
        assert_eq!(l.p99, 99);
        assert_eq!(l.max, 100);
        assert!((l.mean - 50.5).abs() < 1e-12);

        // Tiny sets: every percentile is a real sample, never an
        // interpolation.
        let l = LatencyStats::from_samples(&[7]);
        assert_eq!((l.p50, l.p95, l.p99, l.max), (7, 7, 7, 7));
        let l = LatencyStats::from_samples(&[3, 9]);
        assert_eq!(l.p50, 3);
        assert_eq!(l.p99, 9);

        assert_eq!(LatencyStats::from_samples(&[]), LatencyStats::default());
    }

    #[test]
    fn job_outcome_derived_metrics() {
        let j = JobOutcome {
            id: 0,
            bench: Benchmark::Gups,
            arrival: 100,
            dispatch: 150,
            completion: 350,
            gpu: 0,
            alone_cycles: 125,
            corun_cycles: 200,
        };
        assert_eq!(j.queue_delay(), 50);
        assert_eq!(j.turnaround(), 250);
        assert!((j.normalized_turnaround() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_is_stable_and_complete() {
        let report = SchedReport {
            policy: "ilp".into(),
            num_gpus: 2,
            queue_capacity: 8,
            jobs: vec![JobOutcome {
                id: 0,
                bench: Benchmark::Gups,
                arrival: 0,
                dispatch: 0,
                completion: 10,
                gpu: 0,
                alone_cycles: 8,
                corun_cycles: 10,
            }],
            rejections: vec![Rejection {
                job: 1,
                bench: Benchmark::Hs,
                at: 5,
                capacity: 8,
            }],
            failed: vec![JobFailure {
                id: 2,
                bench: Benchmark::Blk,
                arrival: 3,
                dispatch: 4,
                kind: "timeout",
                cycle: 999,
                diag: "2/4 SMs enabled".into(),
            }],
            groups: vec![GroupDispatch {
                gpu: 0,
                start: 0,
                end: 12,
                jobs: vec![0],
                stp: 0.8,
            }],
            degradations: vec![Degradation::IlpGreedyFallback {
                reason: "node \"limit\"".into(),
            }],
            makespan: 12,
        };
        let json = report.to_json();
        assert_eq!(json, report.to_json(), "rendering is deterministic");
        for needle in [
            "\"policy\": \"ilp\"",
            "\"num_gpus\": 2",
            "\"makespan\": 12",
            "\"bench\":\"GUPS\"",
            "\"at\":5",
            "\"stp\":0.8",
            "\\\"limit\\\"",
            "\"p99\":",
            "\"kind\":\"timeout\"",
            "\"diag\":\"2/4 SMs enabled\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Empty report renders valid empty arrays, not dangling commas.
        let empty = SchedReport {
            policy: "fcfs".into(),
            num_gpus: 1,
            queue_capacity: 4,
            jobs: vec![],
            rejections: vec![],
            failed: vec![],
            groups: vec![],
            degradations: vec![],
            makespan: 0,
        };
        let j = empty.to_json();
        assert!(j.contains("\"jobs\": [],"));
        assert!(j.contains("\"failed\": [],"));
        assert!(j.contains("\"degradations\": []\n"));
        assert!((empty.stp() - 0.0).abs() < 1e-12);
        assert!((empty.antt() - 0.0).abs() < 1e-12);
    }
}
