//! Bounded admission queue with typed backpressure.
//!
//! Arrivals that would push the queue past its capacity are *rejected*,
//! not silently dropped or unboundedly buffered: the caller gets a
//! [`Rejection`] record and the [`SchedReport`](crate::SchedReport)
//! carries the full rejection log. This mirrors how a real cluster
//! front-end sheds load, and it keeps the discrete-event loop's memory
//! bounded no matter how hot the arrival trace runs.

use std::collections::VecDeque;

use gcs_workloads::Benchmark;

/// Stable identifier of one job across the whole scheduler run.
///
/// Ids are assigned in trace order starting at 0, so they double as an
/// arrival rank: rejected jobs consume an id too, which keeps the
/// mapping between trace entries and report rows one-to-one.
pub type JobId = usize;

/// One admitted unit of work: a benchmark instance with its arrival
/// time from the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Trace-order identifier (see [`JobId`]).
    pub id: JobId,
    /// Which Rodinia benchmark this job runs.
    pub bench: Benchmark,
    /// Arrival cycle from the trace.
    pub arrival: u64,
}

/// Backpressure record: the admission queue was full when this job
/// arrived, so it was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejection {
    /// Id the job would have had.
    pub job: JobId,
    /// Benchmark that was turned away.
    pub bench: Benchmark,
    /// Arrival cycle at which the rejection happened.
    pub at: u64,
    /// Queue capacity in force at the time.
    pub capacity: usize,
}

/// FIFO admission queue with a hard capacity.
///
/// Jobs wait here between arrival and dispatch. The queue preserves
/// arrival order (policies may still *group* out of order, but the
/// pending view they plan over is always FCFS-ordered), and `offer`
/// refuses — rather than grows — once `capacity` jobs are waiting.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    waiting: VecDeque<Job>,
    capacity: usize,
}

impl AdmissionQueue {
    /// An empty queue that holds at most `capacity` waiting jobs.
    pub fn new(capacity: usize) -> AdmissionQueue {
        AdmissionQueue {
            waiting: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
        }
    }

    /// Admits `job`, or rejects it if the queue is at capacity.
    ///
    /// # Errors
    ///
    /// [`Rejection`] when `capacity` jobs are already waiting.
    pub fn offer(&mut self, job: Job) -> Result<(), Rejection> {
        if self.waiting.len() >= self.capacity {
            return Err(Rejection {
                job: job.id,
                bench: job.bench,
                at: job.arrival,
                capacity: self.capacity,
            });
        }
        self.waiting.push_back(job);
        Ok(())
    }

    /// The waiting jobs in arrival order.
    pub fn pending(&self) -> impl Iterator<Item = &Job> {
        self.waiting.iter()
    }

    /// Snapshot of the waiting jobs in arrival order.
    pub fn pending_vec(&self) -> Vec<Job> {
        self.waiting.iter().copied().collect()
    }

    /// Removes the jobs with the given ids (they are being dispatched).
    ///
    /// # Panics
    ///
    /// If any id is not currently waiting — the scheduler only ever
    /// dispatches jobs out of its own pending snapshot, so a miss is a
    /// plan-bookkeeping bug, not a runtime condition.
    pub fn take(&mut self, ids: &[JobId]) -> Vec<Job> {
        let mut out = Vec::with_capacity(ids.len());
        for &id in ids {
            let pos = self
                .waiting
                .iter()
                .position(|j| j.id == id)
                .expect("dispatched job must be waiting");
            out.push(self.waiting.remove(pos).expect("position just found"));
        }
        out
    }

    /// Number of jobs currently waiting.
    pub fn len(&self) -> usize {
        self.waiting.len()
    }

    /// Whether no jobs are waiting.
    pub fn is_empty(&self) -> bool {
        self.waiting.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: JobId, bench: Benchmark, arrival: u64) -> Job {
        Job { id, bench, arrival }
    }

    #[test]
    fn admits_up_to_capacity_then_rejects() {
        let mut q = AdmissionQueue::new(2);
        assert!(q.offer(job(0, Benchmark::Gups, 5)).is_ok());
        assert!(q.offer(job(1, Benchmark::Blk, 6)).is_ok());
        let r = q.offer(job(2, Benchmark::Hs, 7)).unwrap_err();
        assert_eq!(
            r,
            Rejection {
                job: 2,
                bench: Benchmark::Hs,
                at: 7,
                capacity: 2
            }
        );
        assert_eq!(q.len(), 2);
        // A slot freed by dispatch re-opens admission.
        q.take(&[0]);
        assert!(q.offer(job(3, Benchmark::Hs, 8)).is_ok());
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut q = AdmissionQueue::new(0);
        assert!(q.offer(job(0, Benchmark::Gups, 0)).is_err());
        assert!(q.is_empty());
    }

    #[test]
    fn take_preserves_arrival_order_of_rest() {
        let mut q = AdmissionQueue::new(8);
        for (i, b) in [Benchmark::Gups, Benchmark::Blk, Benchmark::Hs, Benchmark::Bfs2]
            .into_iter()
            .enumerate()
        {
            q.offer(job(i, b, i as u64)).unwrap();
        }
        let taken = q.take(&[2, 0]);
        assert_eq!(taken.iter().map(|j| j.id).collect::<Vec<_>>(), vec![2, 0]);
        let rest: Vec<JobId> = q.pending().map(|j| j.id).collect();
        assert_eq!(rest, vec![1, 3], "remaining jobs keep FCFS order");
    }

    #[test]
    #[should_panic(expected = "dispatched job must be waiting")]
    fn take_of_unknown_id_is_a_bug() {
        let mut q = AdmissionQueue::new(4);
        q.offer(job(0, Benchmark::Gups, 0)).unwrap();
        q.take(&[99]);
    }
}
