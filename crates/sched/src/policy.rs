//! Pluggable epoch-planning policies.
//!
//! A policy answers one question: *given the jobs currently waiting,
//! in what groups should they run?* The scheduler calls
//! [`Policy::plan`] lazily — only when it is about to dispatch and the
//! cached plan was invalidated by new admissions (or a re-plan tick) —
//! then consumes the plan's groups front-to-back as devices free up.
//!
//! Consuming a stale-but-uninvalidated plan is *equivalent* to
//! re-solving: the paper's grouping objective (Eq. 3.3) decomposes
//! additively over groups, so the optimal partition of the remaining
//! jobs is exactly the remaining groups of the optimal partition of the
//! original set. That equivalence is what makes the all-at-`t=0`,
//! one-GPU [`IlpEpoch`] run reproduce the batch
//! [`Pipeline::run_queue`](gcs_core::runner::Pipeline::run_queue)
//! bit-for-bit (pinned in `tests/sched.rs`).

use gcs_core::fault::Degradation;
use gcs_core::runner::{GroupingPolicy, Pipeline};
use gcs_core::CoreError;
use gcs_workloads::Benchmark;

use crate::queue::{Job, JobId};

/// The groups a policy wants dispatched, front first, plus any
/// downgrades it took while planning (e.g. the ILP degrading to
/// greedy).
#[derive(Debug, Clone, Default)]
pub struct Plan {
    /// Groups of job ids, in dispatch order. Every pending job appears
    /// exactly once; no group is empty.
    pub groups: Vec<Vec<JobId>>,
    /// Downgrades taken while planning.
    pub degradations: Vec<Degradation>,
}

/// An epoch-grouping strategy over the pending admission queue.
pub trait Policy {
    /// Short stable name used in reports and result file names.
    fn name(&self) -> &'static str;

    /// Partitions `pending` (arrival order) into dispatch groups.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors (e.g. a hard ILP failure that cannot
    /// degrade).
    fn plan(&mut self, pipeline: &Pipeline, pending: &[Job]) -> Result<Plan, CoreError>;
}

/// First-come-first-served: chunk the queue into groups of
/// `concurrency` in arrival order — the paper's baseline, unaware of
/// application classes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl Policy for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn plan(&mut self, pipeline: &Pipeline, pending: &[Job]) -> Result<Plan, CoreError> {
        let nc = pipeline.config().concurrency.max(1) as usize;
        Ok(Plan {
            groups: pending
                .chunks(nc)
                .map(|c| c.iter().map(|j| j.id).collect())
                .collect(),
            degradations: Vec::new(),
        })
    }
}

/// Class-aware greedy pairing: one memory-bound app per group, filled
/// with compute-bound apps — the ILP's own degradation heuristic,
/// promoted to a first-class policy (cheap: no solve).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyClass;

impl Policy for GreedyClass {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn plan(&mut self, pipeline: &Pipeline, pending: &[Job]) -> Result<Plan, CoreError> {
        let benches: Vec<Benchmark> = pending.iter().map(|j| j.bench).collect();
        let groups = pipeline.group_greedy_class(&benches);
        Ok(Plan {
            groups: ids_for_groups(pending, &groups),
            degradations: Vec::new(),
        })
    }
}

/// Re-solve the paper's grouping ILP over the current queue census at
/// every epoch, degrading to [`GreedyClass`]'s heuristic exactly as the
/// batch pipeline does (the downgrade is recorded in the plan).
#[derive(Debug, Clone, Copy, Default)]
pub struct IlpEpoch;

impl Policy for IlpEpoch {
    fn name(&self) -> &'static str {
        "ilp"
    }

    fn plan(&mut self, pipeline: &Pipeline, pending: &[Job]) -> Result<Plan, CoreError> {
        let benches: Vec<Benchmark> = pending.iter().map(|j| j.bench).collect();
        let (groups, degradations) =
            pipeline.group_with_degradations(&benches, GroupingPolicy::Ilp)?;
        Ok(Plan {
            groups: ids_for_groups(pending, &groups),
            degradations,
        })
    }
}

/// Maps benchmark groups back to job ids: each group slot takes the
/// *earliest-arrived unused* pending job running that benchmark. This
/// is deterministic under duplicates and matches the FCFS-within-class
/// instantiation the core grouping itself uses.
///
/// # Panics
///
/// If `groups` is not a permutation of `pending`'s benchmarks — core
/// grouping guarantees it is, so a miss is a policy bug. Public so
/// out-of-crate policies (the fleet allocator's greedy fallback) map
/// their benchmark groups the same deterministic way.
pub fn ids_for_groups(pending: &[Job], groups: &[Vec<Benchmark>]) -> Vec<Vec<JobId>> {
    let mut used = vec![false; pending.len()];
    groups
        .iter()
        .map(|group| {
            group
                .iter()
                .map(|&bench| {
                    let k = (0..pending.len())
                        .find(|&i| !used[i] && pending[i].bench == bench)
                        .expect("grouping must permute the pending benchmarks");
                    used[k] = true;
                    pending[k].id
                })
                .collect()
        })
        .collect()
}

/// Name-addressable policy constructor, for CLIs and result tagging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`Fcfs`].
    Fcfs,
    /// [`GreedyClass`].
    GreedyClass,
    /// [`IlpEpoch`].
    IlpEpoch,
}

impl PolicyKind {
    /// Every policy, baseline first.
    pub const ALL: [PolicyKind; 3] =
        [PolicyKind::Fcfs, PolicyKind::GreedyClass, PolicyKind::IlpEpoch];

    /// The stable name ([`Policy::name`]) of this kind.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "fcfs",
            PolicyKind::GreedyClass => "greedy",
            PolicyKind::IlpEpoch => "ilp",
        }
    }

    /// Parses a [`PolicyKind::name`] back into a kind.
    pub fn from_name(name: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn Policy> {
        match self {
            PolicyKind::Fcfs => Box::new(Fcfs),
            PolicyKind::GreedyClass => Box::new(GreedyClass),
            PolicyKind::IlpEpoch => Box::new(IlpEpoch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs(benches: &[Benchmark]) -> Vec<Job> {
        benches
            .iter()
            .enumerate()
            .map(|(i, &bench)| Job {
                id: i + 10, // offset: ids need not be slice indices
                bench,
                arrival: i as u64,
            })
            .collect()
    }

    #[test]
    fn ids_map_duplicates_fcfs_within_bench() {
        let pending = jobs(&[
            Benchmark::Gups,
            Benchmark::Hs,
            Benchmark::Gups,
            Benchmark::Hs,
        ]);
        let groups = vec![
            vec![Benchmark::Gups, Benchmark::Hs],
            vec![Benchmark::Gups, Benchmark::Hs],
        ];
        let ids = ids_for_groups(&pending, &groups);
        // Earliest GUPS (id 10) and earliest HS (id 11) go first.
        assert_eq!(ids, vec![vec![10, 11], vec![12, 13]]);
    }

    #[test]
    #[should_panic(expected = "permute")]
    fn ids_reject_non_permutation() {
        let pending = jobs(&[Benchmark::Gups]);
        ids_for_groups(&pending, &[vec![Benchmark::Hs]]);
    }

    #[test]
    fn kind_roundtrips_names() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(PolicyKind::from_name("nope"), None);
    }
}
