//! Property-based tests for the versioned trace wire format: every
//! recorded trace must round-trip through encode/decode bit-exactly,
//! and every malformed byte stream must be rejected with a typed
//! [`TraceFmtError`] — never a panic.
//!
//! Like `sim_properties.rs`, the harness is deterministic and
//! dependency-free: cases are drawn from [`gcs_sim::rng::SimRng`] with
//! fixed seeds, so every run (and every CI machine) exercises the
//! identical case set. Building with `--features proptest-tests`
//! widens the sweep.

use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::Gpu;
use gcs_sim::kernel::{AccessPattern, KernelDesc, Op, PatternId, PatternKind};
use gcs_sim::rng::SimRng;
use gcs_sim::trace_fmt::{KernelTrace, TraceBuilder, TraceFmtError, TRACE_MAGIC, TRACE_VERSION};

/// Cases per property (see `tests/README.md` for the rationale).
const CASES: usize = if cfg!(feature = "proptest-tests") { 96 } else { 24 };

/// Draws a small random-but-valid kernel whose recorded trace exercises
/// every op tag and pattern kind the wire format can carry.
fn random_kernel(rng: &mut SimRng) -> KernelDesc {
    let grid_blocks = 1 + rng.gen_range(7) as u32;
    let warps_per_block = 1 + rng.gen_range(3) as u32;
    let iters_per_warp = 1 + rng.gen_range(7) as u32;
    let active_lanes = 1 + rng.gen_range(32) as u8;
    let ws = (1 + rng.gen_range(63)) * 4096;
    let patterns = vec![
        match rng.gen_range(4) {
            0 => AccessPattern::streaming(ws),
            1 => AccessPattern {
                kind: PatternKind::Strided { stride: 256 },
                working_set: ws,
                transactions: 2,
            },
            2 => AccessPattern::random(ws, 1 + rng.gen_range(3) as u8),
            _ => AccessPattern::tiled(ws, 4096),
        },
        AccessPattern::streaming(ws),
    ];
    let body_len = 1 + rng.gen_range(5) as usize;
    let mut body: Vec<Op> = (0..body_len)
        .map(|_| match rng.gen_range(5) {
            0 => Op::Alu { latency: 4 },
            1 => Op::Sfu { latency: 16 },
            2 => Op::Load(PatternId(0)),
            3 => Op::Store(PatternId(1)),
            _ => Op::Barrier,
        })
        .collect();
    body.push(Op::Load(PatternId(0)));
    KernelDesc {
        name: "prop".into(),
        grid_blocks,
        warps_per_block,
        iters_per_warp,
        body,
        patterns,
        active_lanes,
    }
}

/// Runs a kernel alone with recording on and returns its trace.
fn record(kernel: KernelDesc) -> KernelTrace {
    let mut gpu = Gpu::new(GpuConfig::test_small()).expect("config");
    let app = gpu.launch(kernel).expect("launch");
    gpu.enable_trace_recording(app).expect("recording");
    gpu.partition_even();
    gpu.run(50_000_000).expect("terminates");
    gpu.take_trace(app).expect("trace")
}

/// Every recorded trace survives encode → decode bit-exactly: the
/// decoded value compares equal, carries the same fingerprint, and
/// validates.
#[test]
fn recorded_traces_round_trip() {
    let mut rng = SimRng::seed_from_u64(0x7ACE_F0F0);
    let mut ran = 0;
    while ran < CASES {
        let k = random_kernel(&mut rng);
        if k.validate().is_err() {
            continue;
        }
        ran += 1;
        let trace = record(k);
        trace.validate().expect("recorded traces validate");
        let bytes = trace.encode();
        let back = KernelTrace::decode(&bytes).expect("round trip decodes");
        assert_eq!(back, trace, "case {ran}: decode != original");
        assert_eq!(back.fingerprint(), trace.fingerprint(), "case {ran}");
        assert_eq!(back.encode(), bytes, "case {ran}: re-encode differs");
    }
}

/// The fingerprint is content-addressed: any change to the op stream or
/// the address payload moves it.
#[test]
fn fingerprint_tracks_content() {
    let mut rng = SimRng::seed_from_u64(0xF1F0);
    let k = loop {
        let k = random_kernel(&mut rng);
        if k.validate().is_ok() {
            break k;
        }
    };
    let a = record(k.clone());
    let b = record(KernelDesc {
        iters_per_warp: k.iters_per_warp + 1,
        ..k
    });
    assert_ne!(a.fingerprint(), b.fingerprint(), "content change must move the fingerprint");
}

/// Every strict prefix of a valid encoding is rejected with a typed
/// error — no panics, no silently-accepted partial traces.
#[test]
fn truncated_streams_are_rejected() {
    let mut rng = SimRng::seed_from_u64(0x7255);
    let k = loop {
        let k = random_kernel(&mut rng);
        if k.validate().is_ok() {
            break k;
        }
    };
    let bytes = record(k).encode();
    // Exhaustive over short prefixes, sampled beyond that to keep the
    // default run quick.
    let step = if cfg!(feature = "proptest-tests") { 1 } else { 7 };
    let mut len = 0;
    while len < bytes.len() {
        let err = KernelTrace::decode(&bytes[..len]).expect_err("prefix must not decode");
        assert!(
            matches!(err, TraceFmtError::Truncated { .. } | TraceFmtError::Corrupt(_)),
            "prefix of {len} bytes gave unexpected error: {err}"
        );
        len += step;
    }
}

/// Flipping any single byte of a valid encoding is detected: the
/// payload is covered by the FNV fingerprint, and the header fields are
/// checked individually.
#[test]
fn corrupted_streams_are_rejected() {
    let mut rng = SimRng::seed_from_u64(0xC0_22);
    let k = loop {
        let k = random_kernel(&mut rng);
        if k.validate().is_ok() {
            break k;
        }
    };
    let bytes = record(k).encode();
    for _ in 0..CASES * 4 {
        let pos = rng.gen_range(bytes.len() as u64) as usize;
        let mut bad = bytes.clone();
        bad[pos] ^= 1 + rng.gen_range(255) as u8;
        assert!(
            KernelTrace::decode(&bad).is_err(),
            "flipped byte at {pos} went undetected"
        );
    }
}

/// Bad magic and unsupported versions are reported as such.
#[test]
fn header_errors_are_typed() {
    let trace = TraceBuilder::new("hdr", &GpuConfig::test_small())
        .geometry(1, 1, 1, 32)
        .body(vec![Op::Alu { latency: 4 }])
        .build()
        .expect("builds");
    let bytes = trace.encode();
    assert_eq!(&bytes[..4], &TRACE_MAGIC);

    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'X';
    assert!(matches!(
        KernelTrace::decode(&bad_magic),
        Err(TraceFmtError::BadMagic(_))
    ));

    let mut bad_version = bytes.clone();
    bad_version[4..8].copy_from_slice(&(TRACE_VERSION + 1).to_le_bytes());
    assert!(matches!(
        KernelTrace::decode(&bad_version),
        Err(TraceFmtError::UnsupportedVersion(v)) if v == TRACE_VERSION + 1
    ));

    // A stale fingerprint over an intact payload is a corruption.
    let mut bad_fp = bytes.clone();
    bad_fp[8] ^= 0xFF;
    assert!(matches!(
        KernelTrace::decode(&bad_fp),
        Err(TraceFmtError::Corrupt(_))
    ));

    assert!(matches!(
        KernelTrace::decode(&[]),
        Err(TraceFmtError::Truncated { .. })
    ));
}

/// Builder validation catches shape mismatches: wrong group counts and
/// wrong per-attempt address counts never produce a trace.
#[test]
fn builder_rejects_malformed_shapes() {
    let cfg = GpuConfig::test_small();
    // A memory op demands one access group per warp iteration; giving
    // none must fail validation.
    let missing = TraceBuilder::new("missing", &cfg)
        .geometry(1, 1, 1, 32)
        .body(vec![Op::Load(PatternId(0))])
        .patterns(vec![AccessPattern::streaming(1 << 20)])
        .build();
    assert!(missing.is_err(), "missing access groups must be rejected");

    // An attempt whose address count disagrees with the pattern's
    // transaction count must fail too.
    let wrong_width = TraceBuilder::new("wrong", &cfg)
        .geometry(1, 1, 1, 32)
        .body(vec![Op::Load(PatternId(0))])
        .patterns(vec![AccessPattern {
            kind: PatternKind::Random,
            working_set: 1 << 20,
            transactions: 4,
        }])
        .push_access(0, vec![0, 128])
        .build();
    assert!(wrong_width.is_err(), "transaction-count mismatch must be rejected");
}
