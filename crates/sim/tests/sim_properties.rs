//! Property-based tests for the simulator: random kernels and random
//! partitions must preserve the core conservation and termination
//! invariants.

use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::Gpu;
use gcs_sim::kernel::{AccessPattern, AppId, KernelDesc, Op, PatternId, PatternKind};
use proptest::prelude::*;

/// Strategy: a small random-but-valid kernel.
fn kernel_strategy() -> impl Strategy<Value = KernelDesc> {
    (
        1u32..12,        // grid blocks
        1u32..4,         // warps per block
        1u32..16,        // iterations
        1u8..=32,        // active lanes
        prop::collection::vec(0u8..5, 1..6), // op selectors
        1u64..64,        // working-set lines
        1u8..4,          // transactions
    )
        .prop_map(|(blocks, wpb, iters, lanes, ops, ws_lines, txns)| {
            let pattern = AccessPattern {
                kind: PatternKind::Random,
                working_set: ws_lines * 128,
                transactions: txns,
            };
            let body: Vec<Op> = ops
                .into_iter()
                .map(|sel| match sel {
                    0 => Op::Alu { latency: 4 },
                    1 => Op::Sfu { latency: 16 },
                    2 => Op::Load(PatternId(0)),
                    3 => Op::Store(PatternId(0)),
                    _ => Op::Barrier,
                })
                .collect();
            KernelDesc {
                name: "prop".into(),
                grid_blocks: blocks,
                warps_per_block: wpb,
                iters_per_warp: iters,
                body,
                patterns: vec![pattern],
                active_lanes: lanes,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any valid kernel must terminate and retire exactly its statically
    /// known instruction count — no lost or duplicated work, whatever
    /// mix of ALU, SFU, loads, stores and barriers it contains.
    #[test]
    fn random_kernels_conserve_instructions(k in kernel_strategy()) {
        prop_assume!(k.validate().is_ok());
        let mut gpu = Gpu::new(GpuConfig::test_small()).expect("config");
        let app = gpu.launch(k.clone()).expect("launch");
        gpu.partition_even();
        gpu.run(50_000_000).expect("terminates");
        let s = gpu.stats().app(app);
        prop_assert_eq!(s.thread_insts, k.total_thread_instructions());
        prop_assert_eq!(s.warp_insts, k.total_warp_instructions());
        prop_assert!(s.finished());
    }

    /// Two co-launched random kernels both finish, and the device's
    /// memory system drains (every request eventually completes).
    #[test]
    fn random_pairs_both_finish(a in kernel_strategy(), b in kernel_strategy()) {
        prop_assume!(a.validate().is_ok() && b.validate().is_ok());
        let mut gpu = Gpu::new(GpuConfig::test_small()).expect("config");
        let ia = gpu.launch(a.clone()).expect("a");
        let ib = gpu.launch(b.clone()).expect("b");
        gpu.partition_even();
        gpu.run(100_000_000).expect("terminates");
        prop_assert!(gpu.stats().app(ia).finished());
        prop_assert!(gpu.stats().app(ib).finished());
        prop_assert_eq!(
            gpu.stats().app(ia).thread_insts,
            a.total_thread_instructions()
        );
        prop_assert_eq!(
            gpu.stats().app(ib).thread_insts,
            b.total_thread_instructions()
        );
    }

    /// Partitioning by explicit counts gives each app exactly the
    /// requested effective SM count, for any feasible split.
    #[test]
    fn partition_counts_are_exact(a in 1u32..7) {
        let cfg = GpuConfig::test_small(); // 8 SMs
        let b = cfg.num_sms - a;
        let mut gpu = Gpu::new(cfg).expect("config");
        let k = KernelDesc {
            name: "k".into(),
            grid_blocks: 4,
            warps_per_block: 1,
            iters_per_warp: 4,
            body: vec![Op::Alu { latency: 4 }],
            patterns: vec![],
            active_lanes: 32,
        };
        let ia = gpu.launch(k.clone()).expect("a");
        let ib = gpu.launch(k).expect("b");
        gpu.partition_counts(&[a, b]);
        prop_assert_eq!(gpu.sm_count(ia), a);
        prop_assert_eq!(gpu.sm_count(ib), b);
    }

    /// Transfers conserve total SM count and never exceed the donor's
    /// holdings.
    #[test]
    fn transfers_conserve_sms(n in 0u32..10) {
        let cfg = GpuConfig::test_small();
        let total = cfg.num_sms;
        let mut gpu = Gpu::new(cfg).expect("config");
        let k = KernelDesc {
            name: "k".into(),
            grid_blocks: 64,
            warps_per_block: 1,
            iters_per_warp: 64,
            body: vec![Op::Alu { latency: 4 }],
            patterns: vec![],
            active_lanes: 32,
        };
        let ia = gpu.launch(k.clone()).expect("a");
        let ib = gpu.launch(k).expect("b");
        gpu.partition_even();
        gpu.run_for(50);
        let moved = gpu.transfer_sms(ia, ib, n);
        prop_assert!(moved <= n);
        prop_assert_eq!(gpu.sm_count(AppId(0)) + gpu.sm_count(AppId(1)), total);
    }
}
