//! Property-based tests for the simulator: random kernels and random
//! partitions must preserve the core conservation and termination
//! invariants.
//!
//! The harness is deterministic and dependency-free: cases are drawn
//! from [`gcs_sim::rng::SimRng`] with fixed seeds, so every run (and
//! every CI machine) exercises the identical case set. Building with
//! `--features proptest-tests` widens the sweep.

use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::Gpu;
use gcs_sim::kernel::{AccessPattern, AppId, KernelDesc, Op, PatternId, PatternKind};
use gcs_sim::rng::SimRng;

/// Cases per property (see `tests/README.md` for the rationale).
const CASES: usize = if cfg!(feature = "proptest-tests") { 96 } else { 24 };

/// Draws a small random-but-valid kernel (the old proptest strategy,
/// re-expressed over `SimRng`).
fn random_kernel(rng: &mut SimRng) -> KernelDesc {
    let grid_blocks = 1 + rng.gen_range(11) as u32;
    let warps_per_block = 1 + rng.gen_range(3) as u32;
    let iters_per_warp = 1 + rng.gen_range(15) as u32;
    let active_lanes = 1 + rng.gen_range(32) as u8;
    let ws_lines = 1 + rng.gen_range(63);
    let transactions = 1 + rng.gen_range(3) as u8;
    let body_len = 1 + rng.gen_range(5) as usize;
    let body: Vec<Op> = (0..body_len)
        .map(|_| match rng.gen_range(5) {
            0 => Op::Alu { latency: 4 },
            1 => Op::Sfu { latency: 16 },
            2 => Op::Load(PatternId(0)),
            3 => Op::Store(PatternId(0)),
            _ => Op::Barrier,
        })
        .collect();
    KernelDesc {
        name: "prop".into(),
        grid_blocks,
        warps_per_block,
        iters_per_warp,
        body,
        patterns: vec![AccessPattern {
            kind: PatternKind::Random,
            working_set: ws_lines * 128,
            transactions,
        }],
        active_lanes,
    }
}

/// Any valid kernel must terminate and retire exactly its statically
/// known instruction count — no lost or duplicated work, whatever mix
/// of ALU, SFU, loads, stores and barriers it contains.
#[test]
fn random_kernels_conserve_instructions() {
    let mut rng = SimRng::seed_from_u64(0xC0FFEE);
    let mut ran = 0;
    while ran < CASES {
        let k = random_kernel(&mut rng);
        if k.validate().is_err() {
            continue;
        }
        ran += 1;
        let mut gpu = Gpu::new(GpuConfig::test_small()).expect("config");
        let app = gpu.launch(k.clone()).expect("launch");
        gpu.partition_even();
        gpu.run(50_000_000).expect("terminates");
        let s = gpu.stats().app(app);
        assert_eq!(s.thread_insts, k.total_thread_instructions(), "case {ran}: {k:?}");
        assert_eq!(s.warp_insts, k.total_warp_instructions(), "case {ran}: {k:?}");
        assert!(s.finished());
    }
}

/// Two co-launched random kernels both finish, and the device's memory
/// system drains (every request eventually completes).
#[test]
fn random_pairs_both_finish() {
    let mut rng = SimRng::seed_from_u64(0xBEEF);
    let mut ran = 0;
    while ran < CASES / 2 {
        let a = random_kernel(&mut rng);
        let b = random_kernel(&mut rng);
        if a.validate().is_err() || b.validate().is_err() {
            continue;
        }
        ran += 1;
        let mut gpu = Gpu::new(GpuConfig::test_small()).expect("config");
        let ia = gpu.launch(a.clone()).expect("a");
        let ib = gpu.launch(b.clone()).expect("b");
        gpu.partition_even();
        gpu.run(100_000_000).expect("terminates");
        assert!(gpu.stats().app(ia).finished(), "case {ran}: {a:?}");
        assert!(gpu.stats().app(ib).finished(), "case {ran}: {b:?}");
        assert_eq!(gpu.stats().app(ia).thread_insts, a.total_thread_instructions());
        assert_eq!(gpu.stats().app(ib).thread_insts, b.total_thread_instructions());
    }
}

/// Partitioning by explicit counts gives each app exactly the requested
/// effective SM count, for every feasible split of the test device.
#[test]
fn partition_counts_are_exact() {
    let cfg = GpuConfig::test_small(); // 8 SMs
    for a in 1..cfg.num_sms {
        let b = cfg.num_sms - a;
        let mut gpu = Gpu::new(cfg.clone()).expect("config");
        let k = KernelDesc {
            name: "k".into(),
            grid_blocks: 4,
            warps_per_block: 1,
            iters_per_warp: 4,
            body: vec![Op::Alu { latency: 4 }],
            patterns: vec![],
            active_lanes: 32,
        };
        let ia = gpu.launch(k.clone()).expect("a");
        let ib = gpu.launch(k).expect("b");
        gpu.partition_counts(&[a, b]);
        assert_eq!(gpu.sm_count(ia), a);
        assert_eq!(gpu.sm_count(ib), b);
    }
}

/// Transfers conserve total SM count and never exceed the donor's
/// holdings.
#[test]
fn transfers_conserve_sms() {
    let cfg = GpuConfig::test_small();
    let total = cfg.num_sms;
    for n in 0..10u32 {
        let mut gpu = Gpu::new(cfg.clone()).expect("config");
        let k = KernelDesc {
            name: "k".into(),
            grid_blocks: 64,
            warps_per_block: 1,
            iters_per_warp: 64,
            body: vec![Op::Alu { latency: 4 }],
            patterns: vec![],
            active_lanes: 32,
        };
        let ia = gpu.launch(k.clone()).expect("a");
        let ib = gpu.launch(k).expect("b");
        gpu.partition_even();
        gpu.run_for(50);
        let moved = gpu.transfer_sms(ia, ib, n);
        assert!(moved <= n);
        assert_eq!(gpu.sm_count(AppId(0)) + gpu.sm_count(AppId(1)), total);
    }
}

/// Re-running the identical configuration twice must produce identical
/// cycle counts and statistics — the bit-reproducibility that the
/// parallel sweep engine's memoization and determinism tests rely on.
#[test]
fn identical_runs_are_bit_identical() {
    let mut rng = SimRng::seed_from_u64(0xD15EA5E);
    for _ in 0..4 {
        let k = loop {
            let k = random_kernel(&mut rng);
            if k.validate().is_ok() {
                break k;
            }
        };
        let run = || {
            let mut gpu = Gpu::new(GpuConfig::test_small()).expect("config");
            let app = gpu.launch(k.clone()).expect("launch");
            gpu.partition_even();
            gpu.run(50_000_000).expect("terminates");
            (gpu.cycle(), *gpu.stats().app(app))
        };
        assert_eq!(run(), run(), "simulation is not deterministic for {k:?}");
    }
}
