//! Warp execution state and address generation.

use crate::kernel::{AccessPattern, KernelDesc, PatternKind};
use crate::rng::SimRng;

/// Maximum access patterns a kernel may declare (keeps per-warp state
/// inline and allocation-free).
pub const MAX_PATTERNS: usize = 4;

/// Execution state of one resident warp.
#[derive(Debug, Clone)]
pub struct Warp {
    /// Global block index this warp belongs to (also used in address
    /// generation so blocks touch distinct regions).
    pub block: u32,
    /// Warp index within its block.
    pub warp_in_block: u32,
    /// Monotone dispatch sequence number; the GTO scheduler's age.
    pub age: u64,
    /// Next op index in the kernel body.
    pub pc: u32,
    /// Loop iterations left (including the current one).
    pub iters_left: u32,
    /// Outstanding load transactions; the warp sleeps until zero.
    pub outstanding: u16,
    /// Set when the warp issued its final instruction (a load) and only
    /// waits for outstanding transactions before retiring. Prevents the
    /// slot from being recycled while responses are still in flight.
    pub retiring: bool,
    /// Per-pattern access counters.
    pub pattern_ctr: [u32; MAX_PATTERNS],
}

impl Warp {
    /// Creates a warp at the start of the kernel body.
    pub fn new(block: u32, warp_in_block: u32, age: u64, iters: u32) -> Self {
        Warp {
            block,
            warp_in_block,
            age,
            pc: 0,
            iters_left: iters,
            outstanding: 0,
            retiring: false,
            pattern_ctr: [0; MAX_PATTERNS],
        }
    }

    /// Advances past the op just issued. Returns `true` when the warp
    /// has retired its last instruction.
    pub fn advance(&mut self, body_len: u32) -> bool {
        self.pc += 1;
        if self.pc >= body_len {
            self.pc = 0;
            self.iters_left -= 1;
            if self.iters_left == 0 {
                return true;
            }
        }
        false
    }
}

/// Generates the line-aligned addresses for one warp access through
/// `pattern`, appending them to `out`.
///
/// `app_base` isolates address spaces between co-running applications;
/// `pattern_idx` further separates regions within an application.
/// `global_warp` is the warp's unique index in the grid
/// (`block * warps_per_block + warp_in_block`); `total_warps` lets
/// streaming patterns give each warp a contiguous chunk of the working
/// set (each warp streams sequentially through its own chunk, which is
/// what coalesced CUDA kernels look like from the DRAM's perspective).
#[allow(clippy::too_many_arguments)]
pub fn generate_addresses(
    pattern: &AccessPattern,
    pattern_idx: usize,
    app_base: u64,
    warp: &Warp,
    global_warp: u64,
    total_warps: u64,
    line_bytes: u64,
    rng: &mut SimRng,
    out: &mut Vec<u64>,
) {
    let base = app_base + ((pattern_idx as u64) << 36);
    let ws_lines = (pattern.working_set / line_bytes).max(1);
    let counter = u64::from(warp.pattern_ctr[pattern_idx]);
    let n = u64::from(pattern.transactions);

    match pattern.kind {
        PatternKind::Streaming => {
            // Line-interleaved across warps, like a coalesced CUDA grid
            // reading `a[global_thread_id]`: at any instant the warps of
            // one block touch *adjacent* lines, which is what gives
            // streaming kernels their DRAM row-buffer locality.
            let tw = total_warps.max(1);
            for t in 0..n {
                let line = (global_warp * n + t + counter * tw * n) % ws_lines;
                out.push(base + line * line_bytes);
            }
        }
        PatternKind::Strided { stride } => {
            for t in 0..n {
                let off = (global_warp * line_bytes + (counter * n + t) * stride)
                    % pattern.working_set;
                out.push(base + (off / line_bytes) * line_bytes);
            }
        }
        PatternKind::Random => {
            for _ in 0..n {
                let line = rng.gen_range(ws_lines);
                out.push(base + line * line_bytes);
            }
        }
        PatternKind::Tiled { tile_bytes } => {
            let tiles = (pattern.working_set / tile_bytes).max(1);
            let tile = u64::from(warp.block) % tiles;
            let tile_lines = (tile_bytes / line_bytes).max(1);
            for t in 0..n {
                let line_in_tile =
                    (u64::from(warp.warp_in_block) + (counter * n + t)) % tile_lines;
                out.push(base + tile * tile_bytes + line_in_tile * line_bytes);
            }
        }
    }
}

/// Bumps the pattern counter after an access.
pub fn bump_counter(warp: &mut Warp, pattern_idx: usize) {
    warp.pattern_ctr[pattern_idx] = warp.pattern_ctr[pattern_idx].wrapping_add(1);
}

/// Validates that a kernel fits the inline pattern-state limit.
///
/// # Errors
///
/// Returns an error string when the kernel declares more than
/// [`MAX_PATTERNS`] patterns.
pub fn check_pattern_limit(kernel: &KernelDesc) -> Result<(), String> {
    if kernel.patterns.len() > MAX_PATTERNS {
        Err(format!(
            "kernel {} declares {} patterns; the simulator supports at most {MAX_PATTERNS}",
            kernel.name,
            kernel.patterns.len()
        ))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(42)
    }

    #[test]
    fn advance_wraps_and_retires() {
        let mut w = Warp::new(0, 0, 0, 2);
        assert!(!w.advance(3)); // pc 1
        assert!(!w.advance(3)); // pc 2
        assert!(!w.advance(3)); // wrap, iter 1 left
        assert!(!w.advance(3));
        assert!(!w.advance(3));
        assert!(w.advance(3)); // retired
    }

    #[test]
    fn streaming_strides_by_grid_width() {
        let p = AccessPattern::streaming(1 << 20);
        let mut w = Warp::new(0, 0, 0, 10);
        let mut out = Vec::new();
        let mut r = rng();
        generate_addresses(&p, 0, 0, &w, 0, 8, 128, &mut r, &mut out);
        bump_counter(&mut w, 0);
        generate_addresses(&p, 0, 0, &w, 0, 8, 128, &mut r, &mut out);
        assert_eq!(out.len(), 2);
        // Grid-stride loop: next iteration jumps by total_warps lines.
        assert_eq!(out[1], out[0] + 8 * 128);
    }

    #[test]
    fn streaming_adjacent_warps_touch_adjacent_lines() {
        let p = AccessPattern::streaming(1 << 20);
        let w0 = Warp::new(0, 0, 0, 1);
        let w1 = Warp::new(0, 1, 1, 1);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut r = rng();
        generate_addresses(&p, 0, 0, &w0, 0, 8, 128, &mut r, &mut a);
        generate_addresses(&p, 0, 0, &w1, 1, 8, 128, &mut r, &mut b);
        assert_eq!(b[0], a[0] + 128, "warp 1 reads the line after warp 0");
    }

    #[test]
    fn random_addresses_stay_in_working_set() {
        let ws = 64 * 128u64;
        let p = AccessPattern::random(ws, 4);
        let w = Warp::new(3, 1, 0, 1);
        let mut out = Vec::new();
        let mut r = rng();
        generate_addresses(&p, 1, 1 << 40, &w, 25, 32, 128, &mut r, &mut out);
        assert_eq!(out.len(), 4);
        for &a in &out {
            let off = a - ((1u64 << 40) + (1u64 << 36));
            assert!(off < ws);
            assert_eq!(off % 128, 0, "line aligned");
        }
    }

    #[test]
    fn tiled_blocks_reuse_their_tile() {
        let p = AccessPattern::tiled(1 << 16, 1 << 12);
        let mut w = Warp::new(2, 0, 0, 4);
        let mut first = Vec::new();
        let mut r = rng();
        generate_addresses(&p, 0, 0, &w, 16, 64, 128, &mut r, &mut first);
        // Walk enough accesses to wrap the tile: tile has 32 lines.
        for _ in 0..32 {
            bump_counter(&mut w, 0);
        }
        let mut again = Vec::new();
        generate_addresses(&p, 0, 0, &w, 16, 64, 128, &mut r, &mut again);
        assert_eq!(first, again, "tile walk is periodic");
    }

    #[test]
    fn pattern_limit_enforced() {
        use crate::kernel::{KernelDesc, Op, PatternId};
        let k = KernelDesc {
            name: "toolarge".into(),
            grid_blocks: 1,
            warps_per_block: 1,
            iters_per_warp: 1,
            body: vec![Op::Load(PatternId(0))],
            patterns: vec![AccessPattern::streaming(4096); MAX_PATTERNS + 1],
            active_lanes: 32,
        };
        assert!(check_pattern_limit(&k).is_err());
    }

    #[test]
    fn addresses_of_different_apps_never_alias() {
        let p = AccessPattern::streaming(1 << 30);
        let w = Warp::new(0, 0, 0, 1);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut r = rng();
        generate_addresses(&p, 0, 0u64 << 40, &w, 0, 8, 128, &mut r, &mut a);
        generate_addresses(&p, 0, 1u64 << 40, &w, 0, 8, 128, &mut r, &mut b);
        assert_ne!(a[0] >> 40, b[0] >> 40);
    }
}
