//! Warp execution state (struct-of-arrays) and address generation.
//!
//! Per-warp state lives in a [`WarpTable`]: one parallel array per
//! field rather than a `Vec<Option<Warp>>`. The scheduler's age scan,
//! the issue path's pc/iteration bookkeeping and the response path's
//! outstanding counters each walk one contiguous array, so the hot loop
//! stays in a handful of cache lines even at 48 warps per SM.

use crate::kernel::{AccessPattern, KernelDesc, PatternKind};
use crate::rng::SimRng;

/// Maximum access patterns a kernel may declare (keeps per-warp state
/// inline and allocation-free).
pub const MAX_PATTERNS: usize = 4;

/// Execution state of every warp slot on one SM, struct-of-arrays.
///
/// A slot is *free* when `ages[slot] == u64::MAX`; occupancy itself is
/// tracked by the owning SM's bitmask. All arrays have the same fixed
/// length (the SM's warp-slot count) for the life of the table — no
/// steady-state allocation.
#[derive(Debug)]
pub struct WarpTable {
    /// Monotone dispatch sequence number per slot (the GTO scheduler's
    /// age); `u64::MAX` marks a free slot.
    pub ages: Vec<u64>,
    /// Global block index each warp belongs to (also used in address
    /// generation so blocks touch distinct regions).
    pub block: Vec<u32>,
    /// Warp index within its block.
    pub warp_in_block: Vec<u32>,
    /// Next op index in the kernel body.
    pub pc: Vec<u32>,
    /// Loop iterations left (including the current one).
    pub iters_left: Vec<u32>,
    /// Outstanding load transactions; the warp sleeps until zero.
    pub outstanding: Vec<u16>,
    /// Set when the warp issued its final instruction (a load) and only
    /// waits for outstanding transactions before retiring. Prevents the
    /// slot from being recycled while responses are still in flight.
    pub retiring: Vec<bool>,
    /// Per-pattern access counters.
    pub pattern_ctr: Vec<[u32; MAX_PATTERNS]>,
    /// Successful memory accesses so far (trace replay's group cursor:
    /// addresses for the warp's next access come from this group of its
    /// recorded stream).
    pub replay_group: Vec<u32>,
    /// Back-pressure retries of the *current* access (trace replay's
    /// attempt cursor; reset when the access issues).
    pub replay_attempt: Vec<u32>,
}

impl WarpTable {
    /// Builds an all-free table with `slots` warp slots.
    pub fn new(slots: usize) -> Self {
        WarpTable {
            ages: vec![u64::MAX; slots],
            block: vec![0; slots],
            warp_in_block: vec![0; slots],
            pc: vec![0; slots],
            iters_left: vec![0; slots],
            outstanding: vec![0; slots],
            retiring: vec![false; slots],
            pattern_ctr: vec![[0; MAX_PATTERNS]; slots],
            replay_group: vec![0; slots],
            replay_attempt: vec![0; slots],
        }
    }

    /// Number of warp slots.
    pub fn slots(&self) -> usize {
        self.ages.len()
    }

    /// Initializes `slot` with a fresh warp at the start of the kernel
    /// body.
    pub fn init(&mut self, slot: usize, block: u32, warp_in_block: u32, age: u64, iters: u32) {
        self.ages[slot] = age;
        self.block[slot] = block;
        self.warp_in_block[slot] = warp_in_block;
        self.pc[slot] = 0;
        self.iters_left[slot] = iters;
        self.outstanding[slot] = 0;
        self.retiring[slot] = false;
        self.pattern_ctr[slot] = [0; MAX_PATTERNS];
        self.replay_group[slot] = 0;
        self.replay_attempt[slot] = 0;
    }

    /// Marks `slot` free again.
    pub fn release(&mut self, slot: usize) {
        self.ages[slot] = u64::MAX;
    }

    /// Advances `slot` past the op just issued. Returns `true` when the
    /// warp has retired its last instruction.
    pub fn advance(&mut self, slot: usize, body_len: u32) -> bool {
        let pc = self.pc[slot] + 1;
        if pc >= body_len {
            self.pc[slot] = 0;
            self.iters_left[slot] -= 1;
            if self.iters_left[slot] == 0 {
                return true;
            }
        } else {
            self.pc[slot] = pc;
        }
        false
    }

    /// Bumps the pattern counter of `slot` after an access.
    pub fn bump_counter(&mut self, slot: usize, pattern_idx: usize) {
        self.pattern_ctr[slot][pattern_idx] = self.pattern_ctr[slot][pattern_idx].wrapping_add(1);
    }

    /// Advances the trace cursors past a successfully issued access.
    pub fn bump_access(&mut self, slot: usize) {
        self.replay_group[slot] = self.replay_group[slot].wrapping_add(1);
        self.replay_attempt[slot] = 0;
    }

    /// Counts a back-pressure retry of the current access toward the
    /// trace attempt cursor.
    pub fn bump_attempt(&mut self, slot: usize) {
        self.replay_attempt[slot] = self.replay_attempt[slot].saturating_add(1);
    }
}

/// A memory access suspended between the sharded issue phases: the
/// parallel prepare phase (address generation + L1 probe, all SM-local)
/// stops at the first op that needs the shared memory system, and the
/// serial merge phase resolves it against live back-pressure in
/// canonical rotation order (DESIGN.md §12). The generated addresses
/// stay in the SM's scratch buffer; this records everything else the
/// resolution needs.
#[derive(Debug, Clone, Copy)]
pub struct PendingAccess {
    /// Warp slot that issued the access.
    pub slot: u32,
    /// Pattern index (for the per-warp pattern counter bump).
    pub pattern: u32,
    /// L1 hits already counted during the probe (loads only).
    pub l1_hits: u64,
    /// True for stores (write-through, fire-and-forget), false for
    /// loads with at least one L1 miss.
    pub is_store: bool,
    /// Issue-budget iterations left after this op; the merge phase
    /// continues the SM's issue loop with this budget once the access
    /// resolves.
    pub budget_left: u32,
}

/// Generates the line-aligned addresses for one warp access through
/// `pattern`, appending them to `out`.
///
/// `app_base` isolates address spaces between co-running applications;
/// `pattern_idx` further separates regions within an application.
/// `block`/`warp_in_block` identify the warp, `counter` is its access
/// count through this pattern so far, and `global_warp` is the warp's
/// unique index in the grid (`block * warps_per_block + warp_in_block`);
/// `total_warps` lets streaming patterns give each warp a contiguous
/// chunk of the working set (each warp streams sequentially through its
/// own chunk, which is what coalesced CUDA kernels look like from the
/// DRAM's perspective).
#[allow(clippy::too_many_arguments)]
pub fn generate_addresses(
    pattern: &AccessPattern,
    pattern_idx: usize,
    app_base: u64,
    block: u32,
    warp_in_block: u32,
    counter: u32,
    global_warp: u64,
    total_warps: u64,
    line_bytes: u64,
    rng: &mut SimRng,
    out: &mut Vec<u64>,
) {
    let base = app_base + ((pattern_idx as u64) << 36);
    let ws_lines = (pattern.working_set / line_bytes).max(1);
    let counter = u64::from(counter);
    let n = u64::from(pattern.transactions);

    match pattern.kind {
        PatternKind::Streaming => {
            // Line-interleaved across warps, like a coalesced CUDA grid
            // reading `a[global_thread_id]`: at any instant the warps of
            // one block touch *adjacent* lines, which is what gives
            // streaming kernels their DRAM row-buffer locality.
            let tw = total_warps.max(1);
            for t in 0..n {
                let line = (global_warp * n + t + counter * tw * n) % ws_lines;
                out.push(base + line * line_bytes);
            }
        }
        PatternKind::Strided { stride } => {
            for t in 0..n {
                let off = (global_warp * line_bytes + (counter * n + t) * stride)
                    % pattern.working_set;
                out.push(base + (off / line_bytes) * line_bytes);
            }
        }
        PatternKind::Random => {
            for _ in 0..n {
                let line = rng.gen_range(ws_lines);
                out.push(base + line * line_bytes);
            }
        }
        PatternKind::Tiled { tile_bytes } => {
            let tiles = (pattern.working_set / tile_bytes).max(1);
            let tile = u64::from(block) % tiles;
            let tile_lines = (tile_bytes / line_bytes).max(1);
            for t in 0..n {
                let line_in_tile = (u64::from(warp_in_block) + (counter * n + t)) % tile_lines;
                out.push(base + tile * tile_bytes + line_in_tile * line_bytes);
            }
        }
    }
}

/// Consumes exactly the RNG draws [`generate_addresses`] would for one
/// access through `pattern`, discarding them.
///
/// Trace replay calls this instead of generating: only `Random`
/// patterns touch the per-SM RNG (one [`SimRng::gen_range`] per
/// transaction), and keeping the stream position identical means a
/// co-runner that later inherits this SM — an SMRA drain handoff —
/// observes the exact RNG state the recording run produced. That parity
/// is what makes replayed-next-to-synthetic co-runs bit-identical.
pub fn burn_random_draws(pattern: &AccessPattern, line_bytes: u64, rng: &mut SimRng) {
    if matches!(pattern.kind, PatternKind::Random) {
        let ws_lines = (pattern.working_set / line_bytes).max(1);
        for _ in 0..pattern.transactions {
            let _ = rng.gen_range(ws_lines);
        }
    }
}

/// Validates that a kernel fits the inline pattern-state limit.
///
/// # Errors
///
/// Returns an error string when the kernel declares more than
/// [`MAX_PATTERNS`] patterns.
pub fn check_pattern_limit(kernel: &KernelDesc) -> Result<(), String> {
    if kernel.patterns.len() > MAX_PATTERNS {
        Err(format!(
            "kernel {} declares {} patterns; the simulator supports at most {MAX_PATTERNS}",
            kernel.name,
            kernel.patterns.len()
        ))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(42)
    }

    #[test]
    fn advance_wraps_and_retires() {
        let mut t = WarpTable::new(1);
        t.init(0, 0, 0, 0, 2);
        assert!(!t.advance(0, 3)); // pc 1
        assert!(!t.advance(0, 3)); // pc 2
        assert!(!t.advance(0, 3)); // wrap, iter 1 left
        assert!(!t.advance(0, 3));
        assert!(!t.advance(0, 3));
        assert!(t.advance(0, 3)); // retired
    }

    #[test]
    fn init_resets_previous_slot_state() {
        let mut t = WarpTable::new(1);
        t.init(0, 0, 0, 0, 1);
        t.bump_counter(0, 2);
        t.outstanding[0] = 3;
        t.retiring[0] = true;
        t.release(0);
        assert_eq!(t.ages[0], u64::MAX, "slot free");
        t.init(0, 7, 1, 9, 4);
        assert_eq!(t.ages[0], 9);
        assert_eq!(t.pattern_ctr[0], [0; MAX_PATTERNS]);
        assert_eq!(t.outstanding[0], 0);
        assert!(!t.retiring[0]);
    }

    #[test]
    fn streaming_strides_by_grid_width() {
        let p = AccessPattern::streaming(1 << 20);
        let mut out = Vec::new();
        let mut r = rng();
        generate_addresses(&p, 0, 0, 0, 0, 0, 0, 8, 128, &mut r, &mut out);
        generate_addresses(&p, 0, 0, 0, 0, 1, 0, 8, 128, &mut r, &mut out);
        assert_eq!(out.len(), 2);
        // Grid-stride loop: next iteration jumps by total_warps lines.
        assert_eq!(out[1], out[0] + 8 * 128);
    }

    #[test]
    fn streaming_adjacent_warps_touch_adjacent_lines() {
        let p = AccessPattern::streaming(1 << 20);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut r = rng();
        generate_addresses(&p, 0, 0, 0, 0, 0, 0, 8, 128, &mut r, &mut a);
        generate_addresses(&p, 0, 0, 0, 1, 0, 1, 8, 128, &mut r, &mut b);
        assert_eq!(b[0], a[0] + 128, "warp 1 reads the line after warp 0");
    }

    #[test]
    fn random_addresses_stay_in_working_set() {
        let ws = 64 * 128u64;
        let p = AccessPattern::random(ws, 4);
        let mut out = Vec::new();
        let mut r = rng();
        generate_addresses(&p, 1, 1 << 40, 3, 1, 0, 25, 32, 128, &mut r, &mut out);
        assert_eq!(out.len(), 4);
        for &a in &out {
            let off = a - ((1u64 << 40) + (1u64 << 36));
            assert!(off < ws);
            assert_eq!(off % 128, 0, "line aligned");
        }
    }

    #[test]
    fn tiled_blocks_reuse_their_tile() {
        let p = AccessPattern::tiled(1 << 16, 1 << 12);
        let mut first = Vec::new();
        let mut r = rng();
        generate_addresses(&p, 0, 0, 2, 0, 0, 16, 64, 128, &mut r, &mut first);
        // Walk enough accesses to wrap the tile: tile has 32 lines.
        let mut again = Vec::new();
        generate_addresses(&p, 0, 0, 2, 0, 32, 16, 64, 128, &mut r, &mut again);
        assert_eq!(first, again, "tile walk is periodic");
    }

    #[test]
    fn pattern_limit_enforced() {
        use crate::kernel::{KernelDesc, Op, PatternId};
        let k = KernelDesc {
            name: "toolarge".into(),
            grid_blocks: 1,
            warps_per_block: 1,
            iters_per_warp: 1,
            body: vec![Op::Load(PatternId(0))],
            patterns: vec![AccessPattern::streaming(4096); MAX_PATTERNS + 1],
            active_lanes: 32,
        };
        assert!(check_pattern_limit(&k).is_err());
    }

    #[test]
    fn addresses_of_different_apps_never_alias() {
        let p = AccessPattern::streaming(1 << 30);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut r = rng();
        generate_addresses(&p, 0, 0u64 << 40, 0, 0, 0, 0, 8, 128, &mut r, &mut a);
        generate_addresses(&p, 0, 1u64 << 40, 0, 0, 0, 0, 8, 128, &mut r, &mut b);
        assert_ne!(a[0] >> 40, b[0] >> 40);
    }
}
