//! Device configuration.
//!
//! Defaults follow Table 4.1 of the thesis (GTX 480-class device as
//! configured in the author's modified GPGPU-Sim): 60 SMs at 700 MHz,
//! 48 warps and 8 blocks per SM, 16 kB L1 data cache per SM, 768 kB
//! shared L2, GTO warp scheduler.

use crate::sched::WarpSchedPolicy;

/// Geometry of one set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into at least one set.
    pub fn sets(&self) -> u32 {
        let sets = self.bytes / (u64::from(self.line_bytes) * u64::from(self.ways));
        assert!(sets >= 1, "cache too small for its line size / ways");
        sets as u32
    }
}

/// DRAM timing and geometry for one memory controller/channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Banks per channel.
    pub banks: u32,
    /// Row-buffer size in bytes (addresses within an open row hit fast).
    pub row_bytes: u64,
    /// Data latency in core cycles for a row-buffer hit (CAS).
    pub t_row_hit: u32,
    /// Data latency in core cycles for a row-buffer miss
    /// (precharge + activate + CAS).
    pub t_row_miss: u32,
    /// Bank occupancy in core cycles after a row miss (activate-to-
    /// activate); row hits only occupy the bank for `t_burst`, which is
    /// what lets an open row stream at full bus rate.
    pub t_rc: u32,
    /// Data-bus occupancy per 128-byte transaction in core cycles; the
    /// reciprocal sets the per-channel peak bandwidth.
    pub t_burst: u32,
    /// Maximum queued requests per controller; arrivals beyond this are
    /// back-pressured into the interconnect.
    pub queue_depth: usize,
    /// When true the controller schedules first-ready (row hits) before
    /// oldest-first — the FR-FCFS policy the thesis identifies as the
    /// reason class-M applications dominate shared memory bandwidth.
    pub fr_fcfs: bool,
}

/// Full device configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Core clock in MHz; only used to convert bytes/cycle into GB/s.
    pub core_mhz: u32,
    /// Instructions issued per SM per cycle (across its warp schedulers).
    pub issue_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Warp scheduler policy.
    pub sched: WarpSchedPolicy,
    /// Per-SM L1 data cache.
    pub l1: CacheConfig,
    /// One L2 slice; the device has `num_mem_ctrls` slices.
    pub l2_slice: CacheConfig,
    /// Number of memory controllers (each pairs with one L2 slice).
    pub num_mem_ctrls: u32,
    /// L1 hit latency in cycles.
    pub l1_hit_lat: u32,
    /// One-way interconnect latency SM <-> L2 in cycles.
    pub icnt_lat: u32,
    /// Requests an L2 slice can accept per cycle.
    pub l2_ports: u32,
    /// L2 tag/data access latency in cycles.
    pub l2_lat: u32,
    /// DRAM channel timing.
    pub dram: DramConfig,
    /// Reassign the SMs of a finished application to its co-runners
    /// instead of letting them idle.
    pub reassign_on_finish: bool,
}

impl GpuConfig {
    /// Miss-status holding registers per L2 slice: outstanding DRAM
    /// reads keyed by line address. A fault plan's
    /// [`MshrCap`](crate::fault::FaultKind::MshrCap) event can throttle
    /// a slice below this, never above it.
    pub const MAX_MSHRS_PER_SLICE: u32 = 64;

    /// The GTX 480-class configuration of Table 4.1.
    pub fn gtx480() -> Self {
        GpuConfig {
            num_sms: 60,
            core_mhz: 700,
            issue_per_sm: 1,
            max_warps_per_sm: 48,
            max_blocks_per_sm: 8,
            sched: WarpSchedPolicy::Gto,
            l1: CacheConfig {
                bytes: 16 * 1024,
                line_bytes: 128,
                ways: 4,
            },
            l2_slice: CacheConfig {
                bytes: 128 * 1024,
                line_bytes: 128,
                ways: 8,
            },
            num_mem_ctrls: 6,
            l1_hit_lat: 24,
            icnt_lat: 16,
            l2_ports: 2,
            l2_lat: 40,
            dram: DramConfig {
                banks: 16,
                row_bytes: 2048,
                t_row_hit: 25,
                t_row_miss: 80,
                t_rc: 56,
                t_burst: 3,
                queue_depth: 32,
                fr_fcfs: true,
            },
            reassign_on_finish: true,
        }
    }

    /// A scaled-down device for fast unit tests: 8 SMs, small caches,
    /// 2 memory controllers, same relative timing.
    pub fn test_small() -> Self {
        let mut c = Self::gtx480();
        c.num_sms = 8;
        c.max_warps_per_sm = 16;
        c.max_blocks_per_sm = 4;
        c.l1 = CacheConfig {
            bytes: 8 * 1024,
            line_bytes: 128,
            ways: 4,
        };
        c.l2_slice = CacheConfig {
            bytes: 32 * 1024,
            line_bytes: 128,
            ways: 8,
        };
        c.num_mem_ctrls = 2;
        c
    }

    /// Peak DRAM bandwidth in bytes per core cycle across all controllers.
    pub fn peak_dram_bytes_per_cycle(&self) -> f64 {
        f64::from(self.num_mem_ctrls) * 128.0 / f64::from(self.dram.t_burst)
    }

    /// Converts a bytes-per-cycle figure into GB/s at the core clock.
    pub fn bytes_per_cycle_to_gbps(&self, bpc: f64) -> f64 {
        bpc * f64::from(self.core_mhz) / 1000.0
    }

    /// Peak thread-level IPC: every SM issuing a full 32-lane warp
    /// instruction every cycle.
    pub fn peak_thread_ipc(&self) -> f64 {
        f64::from(self.num_sms) * f64::from(self.issue_per_sm) * 32.0
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_sms == 0 {
            return Err("device needs at least one SM".into());
        }
        if self.num_mem_ctrls == 0 {
            return Err("device needs at least one memory controller".into());
        }
        if self.max_warps_per_sm == 0 || self.max_blocks_per_sm == 0 {
            return Err("SM must host at least one warp and one block".into());
        }
        if self.l1.line_bytes != self.l2_slice.line_bytes {
            return Err("L1 and L2 line sizes must agree".into());
        }
        if self.dram.t_burst == 0 {
            return Err("t_burst must be nonzero".into());
        }
        let _ = self.l1.sets();
        let _ = self.l2_slice.sets();
        Ok(())
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::gtx480()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtx480_matches_table_41() {
        let c = GpuConfig::gtx480();
        assert_eq!(c.num_sms, 60);
        assert_eq!(c.core_mhz, 700);
        assert_eq!(c.max_warps_per_sm, 48);
        assert_eq!(c.max_blocks_per_sm, 8);
        assert_eq!(c.l1.bytes, 16 * 1024);
        assert_eq!(
            u64::from(c.num_mem_ctrls) * c.l2_slice.bytes,
            768 * 1024,
            "total L2 is 768 kB"
        );
        assert_eq!(c.sched, WarpSchedPolicy::Gto);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn cache_sets() {
        let c = CacheConfig {
            bytes: 16 * 1024,
            line_bytes: 128,
            ways: 4,
        };
        assert_eq!(c.sets(), 32);
    }

    #[test]
    fn peak_bandwidth_sane() {
        let c = GpuConfig::gtx480();
        let gbps = c.bytes_per_cycle_to_gbps(c.peak_dram_bytes_per_cycle());
        // 6 controllers x 128 B / 3 cycles @ 700 MHz = 179.2 GB/s,
        // in the GTX 480 ballpark (177.4 GB/s).
        assert!((gbps - 179.2).abs() < 0.5, "{gbps}");
    }

    #[test]
    fn validate_rejects_zero_sms() {
        let mut c = GpuConfig::gtx480();
        c.num_sms = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_line_mismatch() {
        let mut c = GpuConfig::gtx480();
        c.l1.line_bytes = 64;
        assert!(c.validate().is_err());
    }

    #[test]
    fn peak_thread_ipc_gtx480() {
        assert_eq!(GpuConfig::gtx480().peak_thread_ipc(), 1920.0);
    }
}
