//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a cycle-stamped schedule of device degradations:
//! SM outages (drain-based — the SM finishes its resident blocks, then
//! sits idle until re-enabled), L2/DRAM latency inflation over cycle
//! windows, and MSHR-capacity throttling. The plan is installed on a
//! [`Gpu`](crate::gpu::Gpu) *after* construction — it is deliberately
//! **not** part of [`GpuConfig`](crate::config::GpuConfig), so sweep
//! cache fingerprints (which hash every config field) are unaffected,
//! exactly like [`StepMode`](crate::gpu::StepMode).
//!
//! Determinism: a plan is a plain sorted event list. Whether it was
//! written by hand with the builder methods or drawn from
//! [`FaultPlan::random`] (seeded [`SimRng`]), replaying the same plan
//! on the same workload yields bit-identical simulations regardless of
//! sweep thread count or step mode — faults fire at exact cycle stamps,
//! never at wall-clock or iteration-count boundaries.

use crate::config::GpuConfig;
use crate::memsys::MemSys;
use crate::rng::SimRng;
use crate::shard::SmSlab;

/// One kind of device degradation (or recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Take SM `sm` out of service. The SM stops accepting new blocks
    /// immediately and is released from its owner once its resident
    /// blocks drain (the same mechanism as an SMRA handoff).
    DisableSm {
        /// Index of the SM to disable.
        sm: u32,
    },
    /// Return SM `sm` to service. The device hands it to the running
    /// application with the fewest SMs (deterministic tie-break: lowest
    /// app id).
    EnableSm {
        /// Index of the SM to re-enable.
        sm: u32,
    },
    /// Add `extra_l2` cycles to every L2 access and `extra_dram` cycles
    /// to every DRAM data return, until the next `MemLatency` event.
    /// `MemLatency { extra_l2: 0, extra_dram: 0 }` restores nominal
    /// timing.
    MemLatency {
        /// Extra L2 access latency in cycles.
        extra_l2: u32,
        /// Extra DRAM data latency in cycles.
        extra_dram: u32,
    },
    /// Clamp each L2 slice's miss-status-holding-register file to `cap`
    /// entries (nominal capacity is
    /// [`GpuConfig::MAX_MSHRS_PER_SLICE`]). Values are clamped to
    /// `[1, MAX_MSHRS_PER_SLICE]`; setting the maximum restores nominal
    /// capacity.
    MshrCap {
        /// New per-slice MSHR capacity.
        cap: u32,
    },
}

/// Applies one fault event to the device state, whichever layout the
/// SMs currently live in (a drain-based `DisableSm` lands in whichever
/// shard owns the SM). Returns the id of a re-enabled SM that still
/// needs handing to an application (the device does that — app state
/// is not visible here).
pub(crate) fn apply_fault_event(
    ev: FaultEvent,
    sms: &mut impl SmSlab,
    enabled: &mut [bool],
    memsys: &mut MemSys,
) -> Option<u32> {
    match ev.kind {
        FaultKind::DisableSm { sm } => {
            let idx = sm as usize;
            enabled[idx] = false;
            let s = sms.get_mut(idx);
            // Cancel any in-flight handoff; the SM drains and is
            // released (phase 4) once its resident blocks finish.
            s.pending_owner = None;
            if s.owner.is_some() && s.is_empty() {
                s.request_handoff(None);
            }
            None
        }
        FaultKind::EnableSm { sm } => {
            let idx = sm as usize;
            if !enabled[idx] {
                enabled[idx] = true;
                Some(sm)
            } else {
                None
            }
        }
        FaultKind::MemLatency {
            extra_l2,
            extra_dram,
        } => {
            memsys.set_extra_latency(extra_l2, extra_dram);
            None
        }
        FaultKind::MshrCap { cap } => {
            memsys.set_mshr_cap(cap);
            None
        }
    }
}

/// A [`FaultKind`] scheduled at an absolute device cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Device cycle at which the fault takes effect (applied at the
    /// start of that cycle, before issue).
    pub cycle: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, cycle-stamped schedule of faults.
///
/// Build one with the fluent methods, or draw a seeded random plan with
/// [`FaultPlan::random`]; install it with
/// [`Gpu::install_fault_plan`](crate::gpu::Gpu::install_fault_plan),
/// which validates it against the device configuration.
///
/// ```
/// use gcs_sim::fault::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .disable_sm(2_000, 3)
///     .enable_sm(9_000, 3)
///     .mem_latency_window(4_000, 6_000, 50, 120)
///     .mshr_window(5_000, 7_000, 8);
/// assert_eq!(plan.events().len(), 6); // each window is two events
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    /// Cursor into `events`: index of the first not-yet-applied event.
    next: usize,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// The full event schedule, sorted by cycle once installed.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the plan contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Appends a raw event.
    pub fn push(mut self, cycle: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { cycle, kind });
        self
    }

    /// Schedules SM `sm` to go out of service at `cycle`.
    pub fn disable_sm(self, cycle: u64, sm: u32) -> Self {
        self.push(cycle, FaultKind::DisableSm { sm })
    }

    /// Schedules SM `sm` to return to service at `cycle`.
    pub fn enable_sm(self, cycle: u64, sm: u32) -> Self {
        self.push(cycle, FaultKind::EnableSm { sm })
    }

    /// Inflates L2/DRAM latency by (`extra_l2`, `extra_dram`) cycles
    /// over `[start, end)`, restoring nominal timing at `end`.
    pub fn mem_latency_window(self, start: u64, end: u64, extra_l2: u32, extra_dram: u32) -> Self {
        self.push(start, FaultKind::MemLatency { extra_l2, extra_dram })
            .push(
                end,
                FaultKind::MemLatency {
                    extra_l2: 0,
                    extra_dram: 0,
                },
            )
    }

    /// Throttles per-slice MSHR capacity to `cap` over `[start, end)`,
    /// restoring nominal capacity at `end`.
    pub fn mshr_window(self, start: u64, end: u64, cap: u32) -> Self {
        self.push(start, FaultKind::MshrCap { cap }).push(
            end,
            FaultKind::MshrCap {
                cap: GpuConfig::MAX_MSHRS_PER_SLICE,
            },
        )
    }

    /// Draws a seeded random chaos schedule for a device described by
    /// `cfg`, with all events inside `[horizon/8, horizon)`: one or two
    /// SM outage windows (disable + re-enable), one memory-latency
    /// spike window, and one MSHR-throttle window. The same
    /// `(seed, cfg, horizon)` triple always yields the same plan.
    ///
    /// # Panics
    ///
    /// Panics if `horizon < 16` (no room to place windows).
    pub fn random(seed: u64, cfg: &GpuConfig, horizon: u64) -> Self {
        assert!(horizon >= 16, "horizon too short for a fault schedule");
        let mut rng = SimRng::seed_from_u64(seed ^ 0xFA17_1A7E_5EED_0001);
        let lo = horizon / 8;
        let span = horizon - lo;
        let at = |rng: &mut SimRng| lo + rng.gen_range(span);
        let mut plan = FaultPlan::new();

        // 1-2 SM outage windows (only if the device can spare an SM).
        if cfg.num_sms > 1 {
            let outages = 1 + rng.gen_range(2);
            for _ in 0..outages {
                let sm = rng.gen_range(u64::from(cfg.num_sms)) as u32;
                let a = at(&mut rng);
                let b = at(&mut rng);
                let (start, end) = if a <= b { (a, b) } else { (b, a) };
                plan = plan.disable_sm(start, sm).enable_sm(end.max(start + 1), sm);
            }
        }

        // One memory-latency spike window.
        let a = at(&mut rng);
        let b = at(&mut rng);
        let (start, end) = if a <= b { (a, b) } else { (b, a) };
        let extra_l2 = 10 + rng.gen_range(91) as u32;
        let extra_dram = 20 + rng.gen_range(181) as u32;
        plan = plan.mem_latency_window(start, end.max(start + 1), extra_l2, extra_dram);

        // One MSHR-throttle window.
        let a = at(&mut rng);
        let b = at(&mut rng);
        let (start, end) = if a <= b { (a, b) } else { (b, a) };
        let cap = 1 + rng.gen_range(u64::from(GpuConfig::MAX_MSHRS_PER_SLICE) / 2) as u32;
        plan.mshr_window(start, end.max(start + 1), cap)
    }

    /// Validates the plan against `cfg` and sorts events by cycle
    /// (stable, so same-cycle events apply in insertion order). Called
    /// by `Gpu::install_fault_plan`.
    ///
    /// Rejects: SM indices out of range, a zero MSHR cap, and any
    /// prefix of the schedule that would leave the device with no
    /// enabled SM.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&mut self, cfg: &GpuConfig) -> Result<(), String> {
        self.events.sort_by_key(|e| e.cycle);
        self.next = 0;
        let mut enabled = vec![true; cfg.num_sms as usize];
        let mut live = cfg.num_sms;
        for (i, ev) in self.events.iter().enumerate() {
            match ev.kind {
                FaultKind::DisableSm { sm } | FaultKind::EnableSm { sm } => {
                    if sm >= cfg.num_sms {
                        return Err(format!(
                            "fault event {i} targets SM {sm} but device has {} SMs",
                            cfg.num_sms
                        ));
                    }
                    let on = matches!(ev.kind, FaultKind::EnableSm { .. });
                    let slot = &mut enabled[sm as usize];
                    if *slot != on {
                        *slot = on;
                        if on {
                            live += 1;
                        } else {
                            live -= 1;
                        }
                    }
                    if live == 0 {
                        return Err(format!(
                            "fault event {i} (cycle {}) would disable every SM",
                            ev.cycle
                        ));
                    }
                }
                FaultKind::MshrCap { cap } => {
                    if cap == 0 {
                        return Err(format!("fault event {i} sets a zero MSHR capacity"));
                    }
                }
                FaultKind::MemLatency { .. } => {}
            }
        }
        Ok(())
    }

    /// Returns the slice of events due at or before `now`, advancing
    /// the cursor past them. Subsequent calls never return the same
    /// event twice.
    pub fn due(&mut self, now: u64) -> &[FaultEvent] {
        let start = self.next;
        while self.next < self.events.len() && self.events[self.next].cycle <= now {
            self.next += 1;
        }
        &self.events[start..self.next]
    }

    /// Cycle of the next pending event, if any.
    pub fn next_cycle(&self) -> Option<u64> {
        self.events.get(self.next).map(|e| e.cycle)
    }

    /// Rewinds the cursor so the plan can be replayed from cycle 0.
    pub fn reset(&mut self) {
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_windows_emit_paired_events() {
        let p = FaultPlan::new()
            .mem_latency_window(100, 200, 10, 20)
            .mshr_window(150, 250, 4);
        assert_eq!(p.events().len(), 4);
        assert!(matches!(
            p.events()[1].kind,
            FaultKind::MemLatency {
                extra_l2: 0,
                extra_dram: 0
            }
        ));
        assert!(matches!(
            p.events()[3].kind,
            FaultKind::MshrCap {
                cap: GpuConfig::MAX_MSHRS_PER_SLICE
            }
        ));
    }

    #[test]
    fn validate_sorts_and_accepts_good_plan() {
        let cfg = GpuConfig::test_small();
        let mut p = FaultPlan::new().enable_sm(900, 2).disable_sm(300, 2);
        p.validate(&cfg).unwrap();
        assert_eq!(p.events()[0].cycle, 300);
        assert_eq!(p.events()[1].cycle, 900);
    }

    #[test]
    fn validate_rejects_out_of_range_sm() {
        let cfg = GpuConfig::test_small(); // 8 SMs
        let mut p = FaultPlan::new().disable_sm(10, 8);
        assert!(p.validate(&cfg).unwrap_err().contains("SM 8"));
    }

    #[test]
    fn validate_rejects_total_outage() {
        let mut cfg = GpuConfig::test_small();
        cfg.num_sms = 2;
        let mut p = FaultPlan::new().disable_sm(10, 0).disable_sm(20, 1);
        assert!(p.validate(&cfg).unwrap_err().contains("every SM"));
    }

    #[test]
    fn validate_rejects_zero_mshr_cap() {
        let cfg = GpuConfig::test_small();
        let mut p = FaultPlan::new().push(5, FaultKind::MshrCap { cap: 0 });
        assert!(p.validate(&cfg).unwrap_err().contains("zero MSHR"));
    }

    #[test]
    fn cursor_drains_in_order_and_resets() {
        let cfg = GpuConfig::test_small();
        let mut p = FaultPlan::new()
            .disable_sm(10, 1)
            .enable_sm(30, 1)
            .disable_sm(20, 2)
            .enable_sm(40, 2);
        p.validate(&cfg).unwrap();
        assert_eq!(p.next_cycle(), Some(10));
        assert_eq!(p.due(9).len(), 0);
        let due = p.due(25);
        assert_eq!(due.len(), 2);
        assert!(matches!(due[0].kind, FaultKind::DisableSm { sm: 1 }));
        assert!(matches!(due[1].kind, FaultKind::DisableSm { sm: 2 }));
        assert_eq!(p.next_cycle(), Some(30));
        assert_eq!(p.due(1000).len(), 2);
        assert_eq!(p.next_cycle(), None);
        p.reset();
        assert_eq!(p.next_cycle(), Some(10));
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let cfg = GpuConfig::test_small();
        let a = FaultPlan::random(7, &cfg, 100_000);
        let b = FaultPlan::random(7, &cfg, 100_000);
        let c = FaultPlan::random(8, &cfg, 100_000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut v = a.clone();
        v.validate(&cfg).unwrap();
    }

    #[test]
    fn random_plan_respects_horizon() {
        let cfg = GpuConfig::gtx480();
        let p = FaultPlan::random(3, &cfg, 50_000);
        for e in p.events() {
            assert!(e.cycle >= 50_000 / 8 && e.cycle < 50_000 + 1, "{e:?}");
        }
    }
}
