//! Kernel and application descriptions consumed by the simulator.
//!
//! A kernel is modeled as a *loop body* of [`Op`]s that every warp
//! executes `iters_per_warp` times. Memory operations reference an
//! [`AccessPattern`] that turns a per-warp counter into addresses; this
//! is how the synthetic workloads reproduce streaming, tiled, random and
//! cache-resident behaviour without real CUDA semantics.

use std::fmt;

/// Identifies an application slot on the device (0-based).
///
/// Co-scheduling experiments run 2–3 applications, so slot indices stay
/// tiny; the newtype keeps them from being confused with SM or warp ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AppId(pub u16);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// Index of an access pattern inside a [`KernelDesc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternId(pub u8);

/// One instruction slot of the kernel loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Arithmetic instruction with a result latency in cycles.
    Alu {
        /// Cycles until the issuing warp may issue its next instruction.
        latency: u8,
    },
    /// Special-function-unit instruction (transcendental etc.).
    Sfu {
        /// Result latency in cycles.
        latency: u8,
    },
    /// Global memory read through the given pattern. The warp blocks
    /// until every coalesced transaction returns.
    Load(PatternId),
    /// Global memory write through the given pattern. Fire-and-forget:
    /// consumes bandwidth but does not stall the warp.
    Store(PatternId),
    /// Block-wide barrier (`__syncthreads`): the warp waits until every
    /// live warp of its block reaches the barrier.
    Barrier,
}

impl Op {
    /// True for [`Op::Load`] and [`Op::Store`].
    pub fn is_memory(&self) -> bool {
        matches!(self, Op::Load(_) | Op::Store(_))
    }
}

/// How a pattern maps a warp's access counter to byte addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternKind {
    /// Consecutive lines: high row-buffer locality, streams through the
    /// working set (DRAM-bound once the set exceeds L2).
    Streaming,
    /// Fixed stride in bytes between successive accesses of a warp.
    Strided {
        /// Byte stride between accesses.
        stride: u64,
    },
    /// Uniform random line within the working set — the GUPS behaviour:
    /// row-buffer hostile and cache hostile.
    Random,
    /// Each block repeatedly walks a private tile; with a tile that fits
    /// L1 (or L2) this produces cache-resident traffic.
    Tiled {
        /// Tile size in bytes per block.
        tile_bytes: u64,
    },
}

/// A named region of an application's address space plus the rule for
/// walking it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessPattern {
    /// Walk rule.
    pub kind: PatternKind,
    /// Total region size in bytes (must be a multiple of the line size).
    pub working_set: u64,
    /// 128-byte transactions generated per warp access: 1 for perfectly
    /// coalesced, up to 32 for fully scattered.
    pub transactions: u8,
}

impl AccessPattern {
    /// Fully-coalesced streaming pattern over `working_set` bytes.
    pub fn streaming(working_set: u64) -> Self {
        AccessPattern {
            kind: PatternKind::Streaming,
            working_set,
            transactions: 1,
        }
    }

    /// Random pattern with `transactions` scattered lines per access.
    pub fn random(working_set: u64, transactions: u8) -> Self {
        AccessPattern {
            kind: PatternKind::Random,
            working_set,
            transactions,
        }
    }

    /// Block-private tile pattern.
    pub fn tiled(working_set: u64, tile_bytes: u64) -> Self {
        AccessPattern {
            kind: PatternKind::Tiled { tile_bytes },
            working_set,
            transactions: 1,
        }
    }
}

/// Complete description of one synthetic kernel (= one application in
/// the co-scheduling experiments; the thesis schedules at application
/// granularity).
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Human-readable benchmark name (e.g. `"GUPS"`).
    pub name: String,
    /// Number of thread blocks in the grid.
    pub grid_blocks: u32,
    /// Warps per block.
    pub warps_per_block: u32,
    /// Loop-body iterations each warp executes.
    pub iters_per_warp: u32,
    /// The loop body.
    pub body: Vec<Op>,
    /// Access patterns referenced by the body.
    pub patterns: Vec<AccessPattern>,
    /// Mean active lanes per warp (1–32); models branch divergence.
    /// Thread-level instruction counts scale with this.
    pub active_lanes: u8,
}

impl KernelDesc {
    /// Total warps in the grid.
    pub fn total_warps(&self) -> u64 {
        u64::from(self.grid_blocks) * u64::from(self.warps_per_block)
    }

    /// Total warp-level instructions the kernel will execute.
    pub fn total_warp_instructions(&self) -> u64 {
        self.total_warps() * u64::from(self.iters_per_warp) * self.body.len() as u64
    }

    /// Total thread-level instructions (warp instructions x active lanes).
    pub fn total_thread_instructions(&self) -> u64 {
        self.total_warp_instructions() * u64::from(self.active_lanes)
    }

    /// Fraction of body slots that are memory operations — the paper's
    /// memory-to-compute ratio `R` as a static property of the kernel.
    pub fn static_memory_ratio(&self) -> f64 {
        if self.body.is_empty() {
            return 0.0;
        }
        let mem = self.body.iter().filter(|op| op.is_memory()).count();
        mem as f64 / self.body.len() as f64
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant (empty body,
    /// dangling pattern reference, zero-sized working set, lane count out
    /// of range, ...).
    pub fn validate(&self) -> Result<(), String> {
        if self.body.is_empty() {
            return Err(format!("kernel {}: empty body", self.name));
        }
        if self.grid_blocks == 0 || self.warps_per_block == 0 || self.iters_per_warp == 0 {
            return Err(format!("kernel {}: degenerate geometry", self.name));
        }
        if self.active_lanes == 0 || self.active_lanes > 32 {
            return Err(format!(
                "kernel {}: active_lanes {} out of 1..=32",
                self.name, self.active_lanes
            ));
        }
        for op in &self.body {
            if let Op::Load(PatternId(p)) | Op::Store(PatternId(p)) = op {
                if usize::from(*p) >= self.patterns.len() {
                    return Err(format!(
                        "kernel {}: op references pattern {} but only {} defined",
                        self.name,
                        p,
                        self.patterns.len()
                    ));
                }
            }
        }
        for (i, pat) in self.patterns.iter().enumerate() {
            if pat.working_set == 0 {
                return Err(format!("kernel {}: pattern {i} has empty working set", self.name));
            }
            if pat.transactions == 0 || pat.transactions > 32 {
                return Err(format!(
                    "kernel {}: pattern {i} transactions {} out of 1..=32",
                    self.name, pat.transactions
                ));
            }
            if let PatternKind::Tiled { tile_bytes } = pat.kind {
                if tile_bytes == 0 || tile_bytes > pat.working_set {
                    return Err(format!(
                        "kernel {}: pattern {i} tile larger than working set",
                        self.name
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_kernel() -> KernelDesc {
        KernelDesc {
            name: "mini".into(),
            grid_blocks: 4,
            warps_per_block: 2,
            iters_per_warp: 10,
            body: vec![Op::Alu { latency: 4 }, Op::Load(PatternId(0))],
            patterns: vec![AccessPattern::streaming(1 << 20)],
            active_lanes: 32,
        }
    }

    #[test]
    fn instruction_accounting() {
        let k = mini_kernel();
        assert_eq!(k.total_warps(), 8);
        assert_eq!(k.total_warp_instructions(), 8 * 10 * 2);
        assert_eq!(k.total_thread_instructions(), 8 * 10 * 2 * 32);
    }

    #[test]
    fn static_ratio() {
        let k = mini_kernel();
        assert!((k.static_memory_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_dangling_pattern() {
        let mut k = mini_kernel();
        k.body.push(Op::Load(PatternId(7)));
        assert!(k.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_lanes() {
        let mut k = mini_kernel();
        k.active_lanes = 0;
        assert!(k.validate().is_err());
        k.active_lanes = 33;
        assert!(k.validate().is_err());
    }

    #[test]
    fn validation_catches_oversized_tile() {
        let mut k = mini_kernel();
        k.patterns[0] = AccessPattern::tiled(1024, 2048);
        assert!(k.validate().is_err());
    }

    #[test]
    fn app_id_display() {
        assert_eq!(AppId(3).to_string(), "app3");
    }
}
