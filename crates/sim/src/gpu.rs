//! The device: SMs + shared memory system + block dispatch + spatial
//! partitioning with drain-based SM migration.
//!
//! This is the simulator's public entry point. A typical single-app run:
//!
//! ```
//! use gcs_sim::config::GpuConfig;
//! use gcs_sim::gpu::Gpu;
//! use gcs_sim::kernel::{AccessPattern, KernelDesc, Op, PatternId};
//!
//! # fn main() -> Result<(), gcs_sim::gpu::SimError> {
//! let mut gpu = Gpu::new(GpuConfig::test_small())?;
//! let app = gpu.launch(KernelDesc {
//!     name: "demo".into(),
//!     grid_blocks: 8,
//!     warps_per_block: 2,
//!     iters_per_warp: 16,
//!     body: vec![Op::Alu { latency: 4 }, Op::Load(PatternId(0))],
//!     patterns: vec![AccessPattern::streaming(1 << 20)],
//!     active_lanes: 32,
//! })?;
//! gpu.partition_even();
//! gpu.run(1_000_000)?;
//! assert!(gpu.stats().app(app).finished());
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::config::GpuConfig;
use crate::fault::{apply_fault_event, FaultEvent, FaultPlan};
use crate::kernel::{AppId, KernelDesc};
use crate::memsys::{Completion, MemShard, MemSys};
use crate::shard::{
    worker_loop, CellsView, RunSnapshot, SeqExec, ShardCell, ShardCtl, ShardExec, ShardPlan,
    ShutdownGuard, SmSlab, SnapApp, ThreadedExec,
};
use crate::sm::Sm;
use crate::stats::{DiagSnapshot, SimStats, SmDiag};
use crate::trace_fmt::{KernelTrace, TraceHook, TraceRecorder};
use crate::warp::check_pattern_limit;

/// Maximum concurrently launched applications.
pub const MAX_APPS: usize = 8;

/// Errors from device construction and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The device configuration is inconsistent.
    InvalidConfig(String),
    /// A launched kernel failed validation.
    InvalidKernel(String),
    /// `run` exceeded its cycle budget.
    Timeout {
        /// Cycle at which the budget ran out.
        cycle: u64,
        /// Device state at the moment the budget ran out.
        diag: DiagSnapshot,
    },
    /// No warp can ever make progress again (e.g. every SM is idle and
    /// unowned while blocks remain).
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
        /// Device state at the moment the deadlock was detected.
        diag: DiagSnapshot,
    },
    /// Application slot limit reached.
    TooManyApps,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            SimError::InvalidKernel(why) => write!(f, "invalid kernel: {why}"),
            SimError::Timeout { cycle, diag } => {
                write!(f, "cycle budget exhausted at cycle {cycle} ({diag})")
            }
            SimError::Deadlock { cycle, diag } => {
                write!(f, "no runnable work at cycle {cycle} ({diag})")
            }
            SimError::TooManyApps => write!(f, "application slot limit reached"),
        }
    }
}

impl Error for SimError {}

#[derive(Debug)]
struct AppRuntime {
    kernel: KernelDesc,
    next_block: u32,
    blocks_done: u32,
    started: bool,
    finished: bool,
    trace: AppTrace,
}

/// Trace mode of one launched application.
#[derive(Debug)]
enum AppTrace {
    /// Plain synthetic execution.
    Off,
    /// Capture the issue path's address attempts.
    Record(TraceRecorder),
    /// Serve addresses from a recorded trace.
    Replay(Arc<KernelTrace>),
}

/// How [`Gpu::run`] and [`Gpu::run_for`] advance the device clock.
///
/// Both modes produce bit-identical [`SimStats`] (asserted by the
/// `step_equivalence` suite); this is a runtime knob on the device, not
/// part of [`GpuConfig`], so sweep-cache fingerprints are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepMode {
    /// Step every cycle; fast-forward only fully quiescent sleep phases
    /// (the slow reference behavior).
    Cycle,
    /// Jump straight to the next event horizon — the earliest SM
    /// wake-up or memory-system event — whenever no SM can issue or
    /// dispatch, even while the memory system is busy.
    #[default]
    EventHorizon,
}

/// Per-phase attribution of simulated cycles, collected only when
/// profiling is switched on ([`Gpu::set_profiling`]; off by default, so
/// results never pay for it). Every simulated cycle — stepped or jumped
/// over — lands in exactly one bucket, so the totals always sum to the
/// device clock advanced while profiling was on.
///
/// Attribution is deliberately coarse (one bucket per cycle for the
/// whole device): it answers "where do simulated cycles go" for the
/// engine's own performance work, not per-app accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCycles {
    /// At least one SM issued an instruction (fetch/schedule active).
    pub issue: u64,
    /// Stalled with the memory system idle but warps asleep on SM-side
    /// wake-ups (L1 hit latency, ALU latency).
    pub l1: u64,
    /// Stalled with the memory system busy but no request queued at any
    /// DRAM controller (L2/interconnect bound).
    pub l2: u64,
    /// Stalled with requests queued at a DRAM controller.
    pub dram: u64,
    /// Burned at a controller sampling barrier: `run_for` window clamps
    /// and dead-window burns (SMRA bookkeeping).
    pub smra: u64,
    /// Nothing in flight anywhere (e.g. the gap before dispatch).
    pub idle: u64,
}

impl PhaseCycles {
    /// Sum over all buckets; equals the cycles simulated under
    /// profiling.
    pub fn total(&self) -> u64 {
        self.issue + self.l1 + self.l2 + self.dram + self.smra + self.idle
    }

    /// Accumulates `other` into `self` (merging runs or sweep jobs).
    pub fn add(&mut self, other: &PhaseCycles) {
        self.issue += other.issue;
        self.l1 += other.l1;
        self.l2 += other.l2;
        self.dram += other.dram;
        self.smra += other.smra;
        self.idle += other.idle;
    }
}

/// Which [`PhaseCycles`] bucket a cycle (or jumped span) lands in.
#[derive(Debug, Clone, Copy)]
enum Phase {
    Issue,
    L1,
    L2,
    Dram,
    Smra,
    Idle,
}

/// The simulated device.
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    sms: Vec<Sm>,
    memsys: MemSys,
    apps: Vec<AppRuntime>,
    stats: SimStats,
    cycle: u64,
    comp_buf: Vec<Completion>,
    step_mode: StepMode,
    /// Scratch for `reassign_sms_of` (avoids per-call allocation).
    reassign_buf: Vec<(AppId, u32)>,
    /// Installed fault schedule, if any (`None` = healthy device, the
    /// zero-cost default: one branch per step).
    fault_plan: Option<FaultPlan>,
    /// Scratch for `apply_due_faults` (avoids per-event borrows).
    fault_buf: Vec<FaultEvent>,
    /// In-service bitmap, one entry per SM; all `true` until a
    /// `DisableSm` fault fires.
    sm_enabled: Vec<bool>,
    /// Phase-cycle counters, `None` (the default) unless profiling was
    /// requested — the hot loop then pays a single branch per step.
    profiler: Option<PhaseCycles>,
    /// SM shard count for `run`/`run_for` (1 = unsharded reference
    /// stepping; DESIGN.md §12). A runtime knob like [`StepMode`] —
    /// results are bit-identical at any value, so sweep-cache
    /// fingerprints are unaffected.
    shards: u32,
    /// Threads driving the sharded parallel phase (1 = the sequential
    /// executor, which still gets the elision speedup).
    shard_workers: u32,
    /// Scratch for the sharded merge phase's pending-SM rotation.
    pend_buf: Vec<u32>,
}

impl Gpu {
    /// Builds an idle device.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when `cfg` fails validation.
    pub fn new(cfg: GpuConfig) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::InvalidConfig)?;
        let sms = (0..cfg.num_sms).map(|i| Sm::new(i, &cfg)).collect();
        let memsys = MemSys::new(&cfg);
        Ok(Gpu {
            sms,
            memsys,
            apps: Vec::new(),
            stats: SimStats::new(MAX_APPS),
            cycle: 0,
            comp_buf: Vec::with_capacity(64),
            step_mode: StepMode::default(),
            reassign_buf: Vec::new(),
            fault_plan: None,
            fault_buf: Vec::new(),
            sm_enabled: vec![true; cfg.num_sms as usize],
            profiler: None,
            shards: 1,
            shard_workers: 1,
            pend_buf: Vec::new(),
            cfg,
        })
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Clock-advance strategy in force.
    pub fn step_mode(&self) -> StepMode {
        self.step_mode
    }

    /// Selects how `run`/`run_for` advance the clock. Statistics are
    /// bit-identical across modes; [`StepMode::Cycle`] is the slow
    /// reference used by the equivalence tests.
    pub fn set_step_mode(&mut self, mode: StepMode) {
        self.step_mode = mode;
    }

    /// Switches phase-cycle profiling on or off (off by default).
    /// Turning it on resets the counters; it never affects simulation
    /// results — [`SimStats`] stays bit-identical either way.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiler = if on { Some(PhaseCycles::default()) } else { None };
    }

    /// Phase counters collected so far, `None` when profiling is off.
    pub fn phase_cycles(&self) -> Option<PhaseCycles> {
        self.profiler
    }

    /// Selects the SM shard count for `run`/`run_for` (clamped to
    /// `[1, num_sms]`; 1, the default, is the unsharded reference
    /// step). Sharding is a runtime knob like [`StepMode`]: statistics,
    /// traces and SMRA decisions are bit-identical at every value
    /// (pinned by the `shard_equivalence` suite), so sweep-cache keys
    /// are unaffected. Recording apps force the unsharded path — the
    /// recorder's warp-group interning is first-touch order-sensitive.
    pub fn set_shards(&mut self, k: u32) {
        self.shards = k.clamp(1, (self.sms.len() as u32).max(1));
    }

    /// SM shard count in force (1 = unsharded).
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Sets how many threads drive the sharded parallel phase (default
    /// 1: the sequential executor, which still carries the idle-SM
    /// elision speedup). Values above the shard count are clamped at
    /// run time; thread count can never affect results.
    pub fn set_shard_workers(&mut self, w: u32) {
        self.shard_workers = w.max(1);
    }

    /// Threads driving the sharded parallel phase.
    pub fn shard_workers(&self) -> u32 {
        self.shard_workers
    }

    /// Selects the memory-shard count for phase M (clamped to
    /// `[1, num_slices]`; 1, the default, keeps the single-pass
    /// reference `MemSys::tick`). Like SM sharding this is a pure
    /// runtime knob: stats, traces and SMRA decisions are bit-identical
    /// at every value (pinned by the `memsys_shard_equivalence` suite).
    /// Memory shards are stepped by the *same* leased workers as the
    /// SM shards — no extra threads beyond `GCS_SIM_THREADS`.
    pub fn set_mem_shards(&mut self, k: u32) {
        self.memsys.set_shards(k);
    }

    /// Memory-shard count in force (1 = unsharded).
    pub fn mem_shards(&self) -> u32 {
        self.memsys.num_shards() as u32
    }

    /// The SM partition `run`/`run_for` would use right now.
    pub fn shard_plan(&self) -> ShardPlan {
        ShardPlan::new(self.sms.len() as u32, self.shards)
    }

    /// Whether the next `run`/`run_for` takes the sharded path.
    fn use_sharded(&self) -> bool {
        self.shards > 1
            && self.sms.len() >= 2
            && !self.apps.is_empty()
            && !self
                .apps
                .iter()
                .any(|a| matches!(a.trace, AppTrace::Record(_)))
    }

    /// Classifies a stall (no SM can issue) at the current device state.
    fn wait_phase(&self) -> Phase {
        if !self.memsys.is_idle() {
            if self.memsys.any_dram_queued() {
                Phase::Dram
            } else {
                Phase::L2
            }
        } else if self.sms.iter().any(|sm| sm.next_wake().is_some()) {
            Phase::L1
        } else {
            Phase::Idle
        }
    }

    /// Adds `n` cycles to `phase`'s bucket (profiling must be on).
    fn bump_phase(&mut self, phase: Phase, n: u64) {
        let p = self.profiler.as_mut().expect("profiling enabled");
        match phase {
            Phase::Issue => p.issue += n,
            Phase::L1 => p.l1 += n,
            Phase::L2 => p.l2 += n,
            Phase::Dram => p.dram += n,
            Phase::Smra => p.smra += n,
            Phase::Idle => p.idle += n,
        }
    }

    /// Installs a fault schedule. Like [`StepMode`], the plan is a
    /// runtime knob on the device — deliberately not part of
    /// [`GpuConfig`] — and events fire at exact device cycles, so a
    /// fixed plan replays bit-identically in either step mode. Events
    /// whose cycle has already passed fire on the next step.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when the plan references SMs the
    /// device does not have, sets a zero MSHR capacity, or would at any
    /// point leave the device with no SM in service.
    pub fn install_fault_plan(&mut self, mut plan: FaultPlan) -> Result<(), SimError> {
        plan.validate(&self.cfg).map_err(SimError::InvalidConfig)?;
        self.fault_plan = Some(plan);
        Ok(())
    }

    /// The installed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Whether SM `id` is in service.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn sm_in_service(&self, id: u32) -> bool {
        self.sm_enabled[id as usize]
    }

    /// Number of SMs currently in service.
    pub fn num_enabled_sms(&self) -> u32 {
        self.sm_enabled.iter().filter(|&&e| e).count() as u32
    }

    /// Indices of the SMs currently in service (the surviving set a
    /// degraded-mode controller must reallocate over).
    pub fn surviving_sms(&self) -> Vec<u32> {
        (0..self.sms.len() as u32)
            .filter(|&i| self.sm_enabled[i as usize])
            .collect()
    }

    /// Captures a structured snapshot of device state: per-SM ready and
    /// live warp counts, ownership and service bits, plus per-slice
    /// queue depths and MSHR occupancy.
    pub fn diagnostics(&self) -> DiagSnapshot {
        let mut snap = DiagSnapshot {
            cycle: self.cycle,
            sms: Vec::with_capacity(self.sms.len()),
            slices: Vec::new(),
        };
        for (i, sm) in self.sms.iter().enumerate() {
            snap.sms.push(SmDiag {
                id: sm.id,
                ready_warps: sm.ready_warps(),
                live_warps: sm.live_warps(),
                owner: sm.owner.map(|a| a.0),
                enabled: self.sm_enabled[i],
            });
        }
        self.memsys.slice_diags(&mut snap.slices);
        snap
    }

    /// A [`SimError::Timeout`] at the current cycle with a diagnostic
    /// snapshot attached.
    pub fn timeout_error(&self) -> SimError {
        SimError::Timeout {
            cycle: self.cycle,
            diag: self.diagnostics(),
        }
    }

    /// A [`SimError::Deadlock`] at the current cycle with a diagnostic
    /// snapshot attached.
    pub fn deadlock_error(&self) -> SimError {
        SimError::Deadlock {
            cycle: self.cycle,
            diag: self.diagnostics(),
        }
    }

    /// Registers an application. SMs must then be assigned via
    /// [`Gpu::partition_even`], [`Gpu::partition_counts`] or
    /// [`Gpu::assign_sms`].
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidKernel`] for malformed kernels and
    /// [`SimError::TooManyApps`] beyond [`MAX_APPS`] slots.
    pub fn launch(&mut self, kernel: KernelDesc) -> Result<AppId, SimError> {
        kernel.validate().map_err(SimError::InvalidKernel)?;
        check_pattern_limit(&kernel).map_err(SimError::InvalidKernel)?;
        if kernel.warps_per_block > self.cfg.max_warps_per_sm {
            return Err(SimError::InvalidKernel(format!(
                "kernel {} needs {} warps per block but SMs host at most {}",
                kernel.name, kernel.warps_per_block, self.cfg.max_warps_per_sm
            )));
        }
        if self.apps.len() >= MAX_APPS {
            return Err(SimError::TooManyApps);
        }
        let id = AppId(self.apps.len() as u16);
        self.apps.push(AppRuntime {
            kernel,
            next_block: 0,
            blocks_done: 0,
            started: false,
            finished: false,
            trace: AppTrace::Off,
        });
        Ok(id)
    }

    /// Launches a recorded (or hand-authored) [`KernelTrace`] as an
    /// application: the trace's reconstructed kernel goes through the
    /// normal launch validation, and its issue path replays the recorded
    /// address stream instead of generating addresses. Everything
    /// downstream — stats, partitioning, SMRA, profiling — sees an
    /// ordinary application.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidKernel`] when the trace fails
    /// [`KernelTrace::validate`] or its reconstructed kernel fails the
    /// launch checks, plus [`launch`](Gpu::launch)'s other errors.
    pub fn launch_traced(&mut self, trace: Arc<KernelTrace>) -> Result<AppId, SimError> {
        trace
            .validate()
            .map_err(|e| SimError::InvalidKernel(e.to_string()))?;
        let id = self.launch(trace.kernel_desc())?;
        self.apps[usize::from(id.0)].trace = AppTrace::Replay(trace);
        Ok(id)
    }

    /// Arms trace recording for `app`: from here on, every
    /// address-generation attempt of its issue path is captured.
    /// Harvest the result with [`Gpu::take_trace`] after the run.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] if the app already started executing
    /// (the trace would be missing its prefix) or is itself a replay.
    pub fn enable_trace_recording(&mut self, app: AppId) -> Result<(), SimError> {
        let base = app_base(app);
        let a = &mut self.apps[usize::from(app.0)];
        if a.started {
            return Err(SimError::InvalidConfig(format!(
                "cannot start recording app {}: it already began executing",
                app.0
            )));
        }
        if matches!(a.trace, AppTrace::Replay(_)) {
            return Err(SimError::InvalidConfig(format!(
                "cannot record app {}: it is replaying a trace",
                app.0
            )));
        }
        a.trace = AppTrace::Record(TraceRecorder::new(&a.kernel, &self.cfg, base));
        Ok(())
    }

    /// Takes the recorded trace of `app`, if recording was enabled.
    /// Call after the run completes; a run cut short yields a trace
    /// that fails [`KernelTrace::validate`].
    pub fn take_trace(&mut self, app: AppId) -> Option<KernelTrace> {
        let a = &mut self.apps[usize::from(app.0)];
        match std::mem::replace(&mut a.trace, AppTrace::Off) {
            AppTrace::Record(rec) => Some(rec.finish()),
            other => {
                a.trace = other;
                None
            }
        }
    }

    /// Number of launched applications.
    pub fn num_apps(&self) -> usize {
        self.apps.len()
    }

    /// Whether `app` has retired all of its blocks.
    pub fn app_finished(&self, app: AppId) -> bool {
        self.apps[usize::from(app.0)].finished
    }

    /// All launched applications finished.
    pub fn all_done(&self) -> bool {
        !self.apps.is_empty() && self.apps.iter().all(|a| a.finished)
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Assigns the given SMs to `app` (drain-based when occupied).
    ///
    /// # Panics
    ///
    /// Panics if an SM id is out of range or `app` was never launched.
    pub fn assign_sms(&mut self, app: AppId, sm_ids: &[u32]) {
        assert!(usize::from(app.0) < self.apps.len(), "unknown app");
        for &id in sm_ids {
            self.sms[id as usize].request_handoff(Some(app));
        }
    }

    /// Splits all SMs as evenly as possible across the launched apps, in
    /// launch order (the thesis' initial equal-share policy).
    pub fn partition_even(&mut self) {
        let n = self.apps.len().max(1);
        let enabled = self.num_enabled_sms() as usize;
        let per = enabled / n;
        let mut extra = enabled % n;
        let mut cursor = 0usize;
        for a in 0..n {
            let take = per + usize::from(extra > 0);
            extra = extra.saturating_sub(1);
            for _ in 0..take {
                while !self.sm_enabled[cursor] {
                    cursor += 1;
                }
                self.sms[cursor].request_handoff(Some(AppId(a as u16)));
                cursor += 1;
            }
        }
    }

    /// Partitions by explicit per-app SM counts (`counts[i]` SMs to app
    /// `i`, assigned low-to-high); remaining SMs become unowned.
    ///
    /// # Panics
    ///
    /// Panics if counts sum to more SMs than exist or `counts` is longer
    /// than the launched app list.
    pub fn partition_counts(&mut self, counts: &[u32]) {
        assert!(counts.len() <= self.apps.len(), "counts for unlaunched apps");
        let total: u32 = counts.iter().sum();
        let enabled = self.num_enabled_sms();
        assert!(
            total <= enabled,
            "partition wants {total} SMs but device has {enabled} in service"
        );
        let mut cursor = 0usize;
        for (a, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                while !self.sm_enabled[cursor] {
                    cursor += 1;
                }
                self.sms[cursor].request_handoff(Some(AppId(a as u16)));
                cursor += 1;
            }
        }
        for i in cursor..self.sms.len() {
            if self.sm_enabled[i] {
                self.sms[i].request_handoff(None);
            }
        }
    }

    /// Effective SM count for `app`: in-service SMs it owns and is not
    /// losing, plus SMs draining toward it. Fault-disabled SMs are
    /// excluded — an SM draining out of service no longer counts toward
    /// anyone's share.
    pub fn sm_count(&self, app: AppId) -> u32 {
        sm_count_over(&self.sms, &self.sm_enabled, app)
    }

    /// Moves up to `n` SMs from `from` to `to` using drain-based
    /// handoffs; returns how many transfers were initiated.
    pub fn transfer_sms(&mut self, from: AppId, to: AppId, n: u32) -> u32 {
        let mut moved = 0;
        for (i, sm) in self.sms.iter_mut().enumerate() {
            if moved == n {
                break;
            }
            if !self.sm_enabled[i] {
                continue;
            }
            let effectively_from = match sm.pending_owner {
                Some(p) => p == from,
                None => sm.owner == Some(from),
            };
            if effectively_from {
                sm.request_handoff(Some(to));
                moved += 1;
            }
        }
        moved
    }

    /// Advances the device one cycle.
    pub fn step(&mut self) {
        let now = self.cycle;

        // 0. Apply fault events due this cycle (before issue, so a
        // disabled SM never dispatches at its outage cycle).
        if self.fault_plan.is_some() {
            self.apply_due_faults(now);
        }

        // Block retirements are the only trigger for handoff completion
        // and app completion, so phases 4-5 run only when one happened.
        let mut any_retired = false;

        // 1. Deliver memory responses; they may retire warps and blocks.
        self.comp_buf.clear();
        self.memsys.drain_completions(now, &mut self.comp_buf);
        for i in 0..self.comp_buf.len() {
            let c = self.comp_buf[i];
            let sm = &mut self.sms[c.sm as usize];
            let retired = sm.on_mem_response(c.warp_slot);
            if retired > 0 {
                let owner = sm.owner.expect("retiring SM has an owner");
                self.apps[usize::from(owner.0)].blocks_done += retired;
                any_retired = true;
            }
        }

        // 2. Memory system.
        self.memsys.tick(now, &mut self.stats);

        // 3. SM issue + block dispatch. The iteration order rotates each
        // cycle: with a fixed order, low-numbered SMs would enqueue
        // their memory requests first every cycle and systematically
        // win FIFO admission into the shared slices — an unfairness
        // artifact, not a modeled mechanism.
        let n_sms = self.sms.len();
        let mut any_issued = false;
        for k in 0..n_sms {
            let idx = (k + now as usize) % n_sms;
            let enabled = self.sm_enabled[idx];
            let sm = &mut self.sms[idx];
            sm.wake(now);
            let Some(owner) = sm.owner else { continue };
            let app = &mut self.apps[usize::from(owner.0)];

            // A fault-disabled SM keeps issuing so its resident blocks
            // drain, but never accepts new work.
            if sm.has_ready_work() {
                any_issued = true;
                let mut hook = match &mut app.trace {
                    AppTrace::Off => TraceHook::None,
                    AppTrace::Record(rec) => TraceHook::Record(rec),
                    AppTrace::Replay(trace) => TraceHook::Replay(trace),
                };
                let retired = sm.issue(
                    now,
                    &app.kernel,
                    owner,
                    app_base(owner),
                    &self.cfg,
                    &mut self.memsys,
                    &mut self.stats,
                    &mut hook,
                );
                app.blocks_done += retired;
                any_retired |= retired > 0;
            }

            // Dispatch at most one block per SM per cycle.
            if enabled
                && app.next_block < app.kernel.grid_blocks
                && sm.pending_owner.is_none()
                && sm.can_take_block(&app.kernel, &self.cfg)
            {
                sm.dispatch_block(&app.kernel, app.next_block);
                app.next_block += 1;
                if !app.started {
                    app.started = true;
                    self.stats.app_mut(owner).start_cycle = now;
                }
            }
        }

        // Phases 4-5 can only observe a change when a block retired this
        // cycle: handoffs complete on drain (emptiness changes only at a
        // retirement) and app completion tracks `blocks_done`.
        if any_retired {
            // 4. Complete drained handoffs; 5. detect app completion
            // (shared with the sharded step — see the slab free
            // functions below).
            complete_handoffs(&mut self.sms, &self.sm_enabled);
            finish_apps(
                &mut self.apps,
                &mut self.stats,
                now,
                self.cfg.reassign_on_finish,
                &mut self.sms,
                &self.sm_enabled,
                &mut self.reassign_buf,
            );
        }

        if self.profiler.is_some() {
            let phase = if any_issued {
                Phase::Issue
            } else {
                self.wait_phase()
            };
            self.bump_phase(phase, 1);
        }

        self.cycle = now + 1;
        self.stats.cycles = self.cycle;
    }

    /// Applies every fault event due at or before `now`, in schedule
    /// order.
    fn apply_due_faults(&mut self, now: u64) {
        {
            let Some(plan) = self.fault_plan.as_mut() else {
                return;
            };
            let due = plan.due(now);
            if due.is_empty() {
                return;
            }
            self.fault_buf.clear();
            self.fault_buf.extend_from_slice(due);
        }
        for i in 0..self.fault_buf.len() {
            let ev = self.fault_buf[i];
            if let Some(sm) =
                apply_fault_event(ev, &mut self.sms, &mut self.sm_enabled, &mut self.memsys)
            {
                hand_recovered_sm(&self.apps, &mut self.sms, &self.sm_enabled, sm);
            }
        }
    }

    /// Earliest cycle at which any component could next change state:
    /// the soonest SM wake-up, memory-system event, or scheduled fault.
    /// `None` means nothing will ever happen again (deadlock if work
    /// remains).
    fn next_horizon(&self) -> Option<u64> {
        let sm_wake = self.sms.iter().filter_map(|sm| sm.next_wake()).min();
        let mem_ev = self.memsys.next_event(self.cycle);
        let fault_ev = self.fault_plan.as_ref().and_then(|p| p.next_cycle());
        let mut ev: Option<u64> = None;
        for cand in [sm_wake, mem_ev, fault_ev].into_iter().flatten() {
            ev = Some(match ev {
                None => cand,
                Some(e) => e.min(cand),
            });
        }
        ev
    }

    /// True when the cycle just stepped left nothing issuable: no SM has
    /// a ready warp and no block can be dispatched. Every remaining
    /// state change is then bound to a future event, so the clock may
    /// jump to the horizon.
    fn quiescent_now(&self) -> bool {
        !self.sms.iter().any(|sm| sm.has_ready_work()) && !self.dispatch_possible()
    }

    /// Runs until every launched application finishes.
    ///
    /// Under [`StepMode::EventHorizon`] (the default) the clock jumps
    /// over every dead stretch — including memory-bound phases where all
    /// warps wait on DRAM — directly to the next event.
    /// [`StepMode::Cycle`] steps one cycle at a time and fast-forwards
    /// only fully quiescent sleep phases; it exists as the reference
    /// behavior for the equivalence tests.
    ///
    /// # Errors
    ///
    /// [`SimError::Timeout`] past `max_cycles`; [`SimError::Deadlock`]
    /// when nothing can ever run again.
    pub fn run(&mut self, max_cycles: u64) -> Result<(), SimError> {
        if self.apps.is_empty() {
            return Ok(());
        }
        if self.use_sharded() {
            return match self.run_sharded(DriveMode::Run { max_cycles }) {
                DriveOutcome::Done | DriveOutcome::WindowEnd => Ok(()),
                DriveOutcome::Timeout => Err(self.timeout_error()),
                DriveOutcome::Deadlock => Err(self.deadlock_error()),
            };
        }
        while !self.all_done() {
            if self.cycle >= max_cycles {
                return Err(self.timeout_error());
            }
            self.step();
            if self.all_done() {
                break;
            }

            match self.step_mode {
                StepMode::Cycle => {
                    // Fast-forward pure sleep phases, never past a
                    // scheduled fault.
                    if self.memsys.is_idle() && self.quiescent_now() {
                        let wake = self.sms.iter().filter_map(|sm| sm.next_wake()).min();
                        let fault = self.fault_plan.as_ref().and_then(|p| p.next_cycle());
                        let target = match (wake, fault) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, b) => a.or(b),
                        };
                        match target {
                            Some(to) if to > self.cycle => {
                                if self.profiler.is_some() {
                                    let phase = self.wait_phase();
                                    self.bump_phase(phase, to - self.cycle);
                                }
                                self.cycle = to;
                                self.stats.cycles = to;
                            }
                            Some(_) => {}
                            None => {
                                return Err(self.deadlock_error());
                            }
                        }
                    }
                }
                StepMode::EventHorizon => {
                    if self.quiescent_now() {
                        match self.next_horizon() {
                            Some(h) if h > self.cycle => {
                                // Clamp so a timeout is still reported at
                                // the budget boundary.
                                let to = h.min(max_cycles);
                                if self.profiler.is_some() {
                                    let phase = self.wait_phase();
                                    self.bump_phase(phase, to - self.cycle);
                                }
                                self.cycle = to;
                                self.stats.cycles = to;
                            }
                            Some(_) => {}
                            None => {
                                return Err(self.deadlock_error());
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs for exactly `cycles` more cycles (or until everything
    /// finishes, whichever comes first). Used by controllers that sample
    /// the device periodically (SMRA's `T_C` window).
    ///
    /// The window boundary is a hard barrier for event-horizon stepping:
    /// the clock never jumps past `end`, so controllers observe exactly
    /// the same sampling cycles in either [`StepMode`].
    pub fn run_for(&mut self, cycles: u64) {
        let end = self.cycle + cycles;
        if self.use_sharded() {
            let _ = self.run_sharded(DriveMode::RunFor { end });
            return;
        }
        while self.cycle < end && !self.all_done() {
            self.step();
            if self.step_mode != StepMode::EventHorizon
                || self.cycle >= end
                || self.all_done()
                || !self.quiescent_now()
            {
                continue;
            }
            match self.next_horizon() {
                Some(h) if h > self.cycle => {
                    let to = h.min(end);
                    if self.profiler.is_some() {
                        // A span truncated by the window barrier is the
                        // controller's overhead, not the device's wait.
                        let phase = if h > end { Phase::Smra } else { self.wait_phase() };
                        self.bump_phase(phase, to - self.cycle);
                    }
                    self.cycle = to;
                    self.stats.cycles = to;
                }
                Some(_) => {}
                None => {
                    // Nothing can ever happen again: burn the rest of
                    // the window, exactly as cycle stepping would.
                    if self.profiler.is_some() {
                        self.bump_phase(Phase::Smra, end - self.cycle);
                    }
                    self.cycle = end;
                    self.stats.cycles = end;
                }
            }
        }
    }

    /// True if some undispatched block could be placed this cycle
    /// (out-of-service SMs never accept blocks).
    fn dispatch_possible(&self) -> bool {
        self.sms.iter().enumerate().any(|(i, sm)| {
            self.sm_enabled[i]
                && sm.owner.is_some_and(|o| {
                    let app = &self.apps[usize::from(o.0)];
                    app.next_block < app.kernel.grid_blocks
                        && sm.pending_owner.is_none()
                        && sm.can_take_block(&app.kernel, &self.cfg)
                })
        })
    }

    /// Diagnostic: aggregate L2 hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        self.memsys.l2_hit_rate()
    }

    // ------------------------------------------------------------------
    // Sharded stepping (DESIGN.md §12). The SMs are drained into
    // per-shard cells for the duration of one `run`/`run_for` call;
    // each cycle splits into a parallel SM-local phase and a serial
    // merge phase that replays the reference rotation order, so the
    // result is bit-identical to the unsharded step.
    // ------------------------------------------------------------------

    /// Snapshots the per-app launch state the parallel phase needs.
    fn shard_snapshot(&self) -> RunSnapshot {
        RunSnapshot {
            apps: self
                .apps
                .iter()
                .enumerate()
                .map(|(i, a)| SnapApp {
                    kernel: a.kernel.clone(),
                    base: app_base(AppId(i as u16)),
                    replay: match &a.trace {
                        AppTrace::Replay(t) => Some(Arc::clone(t)),
                        _ => None,
                    },
                })
                .collect(),
            cfg: self.cfg.clone(),
        }
    }

    /// Drains `self.sms` into per-shard cells (restored by
    /// [`Gpu::restore_cells`] at every exit, including errors).
    fn take_cells(&mut self) -> Vec<ShardCell> {
        let plan = self.shard_plan();
        let mut rest = std::mem::take(&mut self.sms);
        let mut cells = Vec::with_capacity(plan.shards as usize);
        for (base, len) in plan.ranges() {
            let tail = rest.split_off(len as usize);
            cells.push(ShardCell::new(base, rest));
            rest = tail;
        }
        debug_assert!(rest.is_empty());
        cells
    }

    /// Reassembles `self.sms` from the cells and folds the deferred
    /// per-app issue statistics into [`SimStats`].
    fn restore_cells(&mut self, cells: Vec<ShardCell>) {
        debug_assert!(self.sms.is_empty());
        self.sms.reserve(self.cfg.num_sms as usize);
        for cell in cells {
            debug_assert!(cell.pending.is_empty());
            debug_assert!(cell.retired.iter().all(|&r| r == 0));
            self.sms.extend(cell.sms);
            for (a, d) in cell.deltas.iter().enumerate() {
                if !d.is_zero() {
                    self.stats.app_mut(AppId(a as u16)).apply_issue_delta(d);
                }
            }
        }
    }

    /// Runs the sharded drive loop to its outcome. Error values are
    /// materialized by the caller *after* this returns, so diagnostics
    /// see the restored device.
    fn run_sharded(&mut self, mode: DriveMode) -> DriveOutcome {
        let snap = self.shard_snapshot();
        let cells = self.take_cells();
        let workers = (self.shard_workers.max(1) as usize).min(cells.len());
        let (cells, out) = if workers > 1 {
            let mcells: Vec<Mutex<ShardCell>> = cells.into_iter().map(Mutex::new).collect();
            // Phase-M slots: the coordinator parks the memory shards
            // here each epoch so the same workers can tick them.
            let mslots: Vec<Mutex<Option<MemShard>>> = (0..self.memsys.num_shards())
                .filter(|_| self.memsys.num_shards() > 1)
                .map(|_| Mutex::new(None))
                .collect();
            let ctl = ShardCtl::default();
            let out = std::thread::scope(|scope| {
                let guard = ShutdownGuard(&ctl);
                for j in 1..workers {
                    let (mc, ms, ct, sn) = (&mcells, &mslots, &ctl, &snap);
                    scope.spawn(move || worker_loop(j, workers, mc, ms, ct, sn));
                }
                let mut exec = ThreadedExec {
                    cells: &mcells,
                    mem: &mslots,
                    ctl: &ctl,
                    threads: workers,
                };
                let out = self.drive(&mut exec, &snap, mode);
                drop(guard);
                out
            });
            let cells = mcells
                .into_iter()
                .map(|m| m.into_inner().unwrap())
                .collect::<Vec<_>>();
            (cells, out)
        } else {
            let mut cells = cells;
            let mut exec = SeqExec { cells: &mut cells };
            let out = self.drive(&mut exec, &snap, mode);
            (cells, out)
        };
        self.restore_cells(cells);
        out
    }

    /// The sharded mirror of the `run`/`run_for` loops: step, then
    /// apply the same clock-jump rules, with quiescence and horizons
    /// read from the cells' exact flag summaries.
    fn drive(
        &mut self,
        exec: &mut impl ShardExec,
        snap: &RunSnapshot,
        mode: DriveMode,
    ) -> DriveOutcome {
        loop {
            match mode {
                DriveMode::Run { max_cycles } => {
                    if self.all_done() {
                        return DriveOutcome::Done;
                    }
                    if self.cycle >= max_cycles {
                        return DriveOutcome::Timeout;
                    }
                }
                DriveMode::RunFor { end } => {
                    if self.cycle >= end || self.all_done() {
                        return DriveOutcome::WindowEnd;
                    }
                }
            }
            let info = self.step_sharded(exec, snap);
            match mode {
                DriveMode::Run { max_cycles } => {
                    if self.all_done() {
                        return DriveOutcome::Done;
                    }
                    match self.step_mode {
                        StepMode::Cycle => {
                            if self.memsys.is_idle() && info.quiescent {
                                let fault = self.fault_plan.as_ref().and_then(|p| p.next_cycle());
                                let target = match (info.min_wake, fault) {
                                    (Some(a), Some(b)) => Some(a.min(b)),
                                    (a, b) => a.or(b),
                                };
                                match target {
                                    Some(to) if to > self.cycle => {
                                        if self.profiler.is_some() {
                                            let phase = self.wait_phase_from(info.min_wake);
                                            self.bump_phase(phase, to - self.cycle);
                                        }
                                        self.cycle = to;
                                        self.stats.cycles = to;
                                    }
                                    Some(_) => {}
                                    None => return DriveOutcome::Deadlock,
                                }
                            }
                        }
                        StepMode::EventHorizon => {
                            if info.quiescent {
                                match self.horizon_from(info.min_wake) {
                                    Some(h) if h > self.cycle => {
                                        let to = h.min(max_cycles);
                                        if self.profiler.is_some() {
                                            let phase = self.wait_phase_from(info.min_wake);
                                            self.bump_phase(phase, to - self.cycle);
                                        }
                                        self.cycle = to;
                                        self.stats.cycles = to;
                                    }
                                    Some(_) => {}
                                    None => return DriveOutcome::Deadlock,
                                }
                            }
                        }
                    }
                }
                DriveMode::RunFor { end } => {
                    if self.step_mode != StepMode::EventHorizon
                        || self.cycle >= end
                        || self.all_done()
                        || !info.quiescent
                    {
                        continue;
                    }
                    match self.horizon_from(info.min_wake) {
                        Some(h) if h > self.cycle => {
                            let to = h.min(end);
                            if self.profiler.is_some() {
                                let phase = if h > end {
                                    Phase::Smra
                                } else {
                                    self.wait_phase_from(info.min_wake)
                                };
                                self.bump_phase(phase, to - self.cycle);
                            }
                            self.cycle = to;
                            self.stats.cycles = to;
                        }
                        Some(_) => {}
                        None => {
                            if self.profiler.is_some() {
                                self.bump_phase(Phase::Smra, end - self.cycle);
                            }
                            self.cycle = end;
                            self.stats.cycles = end;
                        }
                    }
                }
            }
        }
    }

    /// [`Gpu::wait_phase`] with the SM-side scan replaced by the cells'
    /// wake summary (`min_wake` is exact by the flag invariants).
    fn wait_phase_from(&self, min_wake: Option<u64>) -> Phase {
        if !self.memsys.is_idle() {
            if self.memsys.any_dram_queued() {
                Phase::Dram
            } else {
                Phase::L2
            }
        } else if min_wake.is_some() {
            Phase::L1
        } else {
            Phase::Idle
        }
    }

    /// [`Gpu::next_horizon`] with the SM-side scan replaced by the
    /// cells' wake summary.
    fn horizon_from(&self, min_wake: Option<u64>) -> Option<u64> {
        let mem_ev = self.memsys.next_event(self.cycle);
        let fault_ev = self.fault_plan.as_ref().and_then(|p| p.next_cycle());
        [min_wake, mem_ev, fault_ev].into_iter().flatten().min()
    }

    /// One sharded device cycle; mirrors [`Gpu::step`] phase for phase.
    fn step_sharded(&mut self, exec: &mut impl ShardExec, snap: &RunSnapshot) -> StepInfo {
        let now = self.cycle;

        // 0. Faults (serial; rare, so the cell round-trip is off the
        // common path).
        if self.fault_plan.is_some() {
            self.fault_buf.clear();
            if let Some(plan) = self.fault_plan.as_mut() {
                let due = plan.due(now);
                self.fault_buf.extend_from_slice(due);
            }
            if !self.fault_buf.is_empty() {
                let events = std::mem::take(&mut self.fault_buf);
                exec.with_cells(|cells| {
                    let mut view = CellsView::new(cells);
                    for &ev in &events {
                        if let Some(sm) = apply_fault_event(
                            ev,
                            &mut view,
                            &mut self.sm_enabled,
                            &mut self.memsys,
                        ) {
                            hand_recovered_sm(&self.apps, &mut view, &self.sm_enabled, sm);
                        }
                    }
                });
                self.fault_buf = events;
            }
        }

        // 1 + issue-A + 2. Deliver completions, then run the parallel
        // half of the cycle: the SM-local issue path (phase A) and the
        // memory-system tick (phase M), possibly overlapped on workers.
        // Ordering note: the two phases commute — the tick never
        // touches SM state and phase A never touches the memory system
        // (its coupled accesses suspend before the admission check),
        // and completions were drained before either starts.
        self.comp_buf.clear();
        self.memsys.drain_completions(now, &mut self.comp_buf);
        exec.phase_am(now, &self.comp_buf, snap, &mut self.memsys, &mut self.stats);

        // 3-5. Serial merge: resolve suspended accesses and dispatch in
        // canonical rotation order against the live memory system, then
        // fold retirements and run handoff/finish detection.
        let mut any_issued = false;
        let mut info = StepInfo {
            quiescent: false,
            min_wake: None,
        };
        exec.with_cells(|cells| {
            let mut any_retired = self.sharded_phase_b(now, cells, snap);
            for cell in cells.iter_mut() {
                any_issued |= cell.any_issued;
                for a in 0..self.apps.len() {
                    let r = cell.retired[a];
                    if r > 0 {
                        cell.retired[a] = 0;
                        self.apps[a].blocks_done += r;
                        any_retired = true;
                    }
                }
            }
            if any_retired {
                let mut view = CellsView::new(cells);
                complete_handoffs(&mut view, &self.sm_enabled);
                finish_apps(
                    &mut self.apps,
                    &mut self.stats,
                    now,
                    self.cfg.reassign_on_finish,
                    &mut view,
                    &self.sm_enabled,
                    &mut self.reassign_buf,
                );
            }
            info = self.sharded_quiescence(cells);
        });

        if self.profiler.is_some() {
            let phase = if any_issued {
                Phase::Issue
            } else {
                self.wait_phase_from(info.min_wake)
            };
            self.bump_phase(phase, 1);
        }

        self.cycle = now + 1;
        self.stats.cycles = self.cycle;
        info
    }

    /// The serial merge phase: replays the reference step's rotation
    /// (`idx = (k + now) % n`) over exactly the SMs that still need the
    /// shared state this cycle — every SM while blocks remain to
    /// dispatch, only the suspended-access SMs afterwards. Returns
    /// whether any block retired here.
    fn sharded_phase_b(
        &mut self,
        now: u64,
        cells: &mut [&mut ShardCell],
        snap: &RunSnapshot,
    ) -> bool {
        let n: usize = cells.iter().map(|c| c.sms.len()).sum();
        let chunk = cells.first().map_or(1, |c| c.sms.len().max(1));
        let mut any_retired = false;

        let dispatch_era = self
            .apps
            .iter()
            .any(|a| a.next_block < a.kernel.grid_blocks);
        if dispatch_era {
            // Blocks remain: full rotation, exactly the reference loop
            // with the SM-local issue half already done in phase A.
            for k in 0..n {
                let idx = (k + now as usize) % n;
                let cell = &mut *cells[idx / chunk];
                let local = idx % chunk;
                let mut touched = false;
                if cell.sms[local].has_pending() {
                    any_retired |= self.resolve_sm(now, cell, local, snap);
                    touched = true;
                }
                let enabled = self.sm_enabled[idx];
                let sm = &mut cell.sms[local];
                if let Some(owner) = sm.owner {
                    let app = &mut self.apps[usize::from(owner.0)];
                    if enabled
                        && app.next_block < app.kernel.grid_blocks
                        && sm.pending_owner.is_none()
                        && sm.can_take_block(&app.kernel, &self.cfg)
                    {
                        sm.dispatch_block(&app.kernel, app.next_block);
                        app.next_block += 1;
                        if !app.started {
                            app.started = true;
                            self.stats.app_mut(owner).start_cycle = now;
                        }
                        touched = true;
                    }
                }
                if touched {
                    cell.refresh(local);
                }
            }
        } else {
            // Post-dispatch: only suspended accesses touch shared
            // state. Cell pending lists are ascending and cells are in
            // id order, so their concatenation is globally ascending;
            // rotate it to start at `now % n`.
            let mut pend = std::mem::take(&mut self.pend_buf);
            pend.clear();
            for cell in cells.iter() {
                pend.extend_from_slice(&cell.pending);
            }
            if !pend.is_empty() {
                let r = (now % n as u64) as u32;
                let split = pend.partition_point(|&id| id < r);
                for i in (split..pend.len()).chain(0..split) {
                    let idx = pend[i] as usize;
                    let cell = &mut *cells[idx / chunk];
                    any_retired |= self.resolve_sm(now, cell, idx % chunk, snap);
                }
            }
            self.pend_buf = pend;
        }
        for cell in cells.iter_mut() {
            cell.pending.clear();
        }
        any_retired
    }

    /// Finishes one SM's suspended access at its rotation turn:
    /// admission check, allocation, request pushes, and the remainder
    /// of its issue budget — reference semantics against the live
    /// memory system.
    fn resolve_sm(
        &mut self,
        now: u64,
        cell: &mut ShardCell,
        local: usize,
        snap: &RunSnapshot,
    ) -> bool {
        let sm = &mut cell.sms[local];
        let owner = sm.owner.expect("suspended SM has an owner");
        let sa = &snap.apps[usize::from(owner.0)];
        let (retired, budget) = sm.resolve_pending(
            now,
            &sa.kernel,
            owner,
            &snap.cfg,
            &mut self.memsys,
            &mut self.stats,
        );
        let mut total = retired;
        if budget > 0 {
            let mut hook = match &sa.replay {
                Some(t) => TraceHook::Replay(t),
                None => TraceHook::None,
            };
            total += sm.issue_more(
                budget,
                now,
                &sa.kernel,
                owner,
                sa.base,
                &snap.cfg,
                &mut self.memsys,
                &mut self.stats,
                &mut hook,
            );
        }
        if total > 0 {
            self.apps[usize::from(owner.0)].blocks_done += total;
        }
        cell.refresh(local);
        total > 0
    }

    /// End-of-step quiescence/horizon summary over the cells' exact
    /// flags — bit-equal to [`Gpu::quiescent_now`] plus the SM-wake
    /// scan, at a fraction of the cost.
    fn sharded_quiescence(&self, cells: &mut [&mut ShardCell]) -> StepInfo {
        let mut any_ready = false;
        for cell in cells.iter() {
            any_ready |= cell.ready_count > 0;
        }
        if any_ready && self.profiler.is_none() {
            // Not quiescent; the wake scan would go unread.
            return StepInfo {
                quiescent: false,
                min_wake: None,
            };
        }
        let mut min_wake = u64::MAX;
        for cell in cells.iter() {
            min_wake = min_wake.min(cell.wake_min);
        }
        let quiescent = !any_ready && !self.sharded_dispatch_possible(cells);
        StepInfo {
            quiescent,
            min_wake: (min_wake != u64::MAX).then_some(min_wake),
        }
    }

    /// [`Gpu::dispatch_possible`] over the cells, with the post-
    /// dispatch early-out: once every app has dispatched its whole
    /// grid, the reference scan is false by construction.
    fn sharded_dispatch_possible(&self, cells: &[&mut ShardCell]) -> bool {
        if !self
            .apps
            .iter()
            .any(|a| a.next_block < a.kernel.grid_blocks)
        {
            return false;
        }
        for cell in cells {
            for (i, sm) in cell.sms.iter().enumerate() {
                let gi = cell.base as usize + i;
                if self.sm_enabled[gi]
                    && sm.owner.is_some_and(|o| {
                        let app = &self.apps[usize::from(o.0)];
                        app.next_block < app.kernel.grid_blocks
                            && sm.pending_owner.is_none()
                            && sm.can_take_block(&app.kernel, &self.cfg)
                    })
                {
                    return true;
                }
            }
        }
        false
    }
}

/// How a sharded drive loop advances the clock (mirrors the two public
/// entry points).
#[derive(Debug, Clone, Copy)]
enum DriveMode {
    /// [`Gpu::run`]: to completion, with a cycle budget.
    Run {
        /// The budget.
        max_cycles: u64,
    },
    /// [`Gpu::run_for`]: to a window barrier.
    RunFor {
        /// Absolute end cycle of the window.
        end: u64,
    },
}

/// Why a sharded drive loop stopped. Errors carry no payload here —
/// the caller materializes [`SimError`] values after the SMs are
/// restored, so diagnostics see the whole device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DriveOutcome {
    Done,
    Timeout,
    Deadlock,
    WindowEnd,
}

/// Post-step summary handed from the serial phase to the drive loop.
#[derive(Debug, Clone, Copy)]
struct StepInfo {
    /// [`Gpu::quiescent_now`] equivalent.
    quiescent: bool,
    /// Earliest SM sleeper wake-up (exact when read; `None` when the
    /// step was not quiescent and profiling is off — then unused).
    min_wake: Option<u64>,
}

/// Phase 4 of the step, shared by both layouts: complete drained
/// handoffs; release drained out-of-service SMs (their owner loses
/// them the moment the last resident block retires).
fn complete_handoffs(sms: &mut impl SmSlab, enabled: &[bool]) {
    for (i, &en) in enabled.iter().enumerate().take(sms.len()) {
        let sm = sms.get_mut(i);
        if en {
            sm.try_complete_handoff();
        } else if sm.owner.is_some() && sm.is_empty() {
            sm.request_handoff(None);
        }
    }
}

/// Phase 5 of the step, shared by both layouts: detect app completion
/// and (optionally) hand a finished app's SMs to the running apps.
fn finish_apps(
    apps: &mut [AppRuntime],
    stats: &mut SimStats,
    now: u64,
    reassign_on_finish: bool,
    sms: &mut impl SmSlab,
    enabled: &[bool],
    reassign_buf: &mut Vec<(AppId, u32)>,
) {
    for a in 0..apps.len() {
        {
            let app = &apps[a];
            if app.finished || !app.started || app.blocks_done != app.kernel.grid_blocks {
                continue;
            }
        }
        apps[a].finished = true;
        let id = AppId(a as u16);
        stats.app_mut(id).finish_cycle = now;
        stats.app_mut(id).blocks_done = apps[a].blocks_done;
        if reassign_on_finish {
            reassign_sms_of(apps, sms, enabled, reassign_buf, id);
        }
    }
}

/// Hands the SMs of a finished app to the running apps, balancing
/// toward the app with the fewest effective SMs.
fn reassign_sms_of(
    apps: &[AppRuntime],
    sms: &mut impl SmSlab,
    enabled: &[bool],
    buf: &mut Vec<(AppId, u32)>,
    finished: AppId,
) {
    buf.clear();
    for (i, app) in apps.iter().enumerate() {
        if !app.finished {
            buf.push((AppId(i as u16), 0));
        }
    }
    if buf.is_empty() {
        return;
    }
    // Effective SM counts of the running apps, in one pass over the
    // SMs (an SM counts toward its pending owner while draining;
    // out-of-service SMs count toward no one).
    for (i, &en) in enabled.iter().enumerate().take(sms.len()) {
        if !en {
            continue;
        }
        let sm = sms.get(i);
        let effective = sm.pending_owner.or(sm.owner);
        if let Some(owner) = effective {
            if let Some(entry) = buf.iter_mut().find(|(a, _)| *a == owner) {
                entry.1 += 1;
            }
        }
    }
    for (i, &en) in enabled.iter().enumerate().take(sms.len()) {
        if !en {
            continue;
        }
        let sm = sms.get_mut(i);
        let effectively_finished = match sm.pending_owner {
            Some(p) => p == finished,
            None => sm.owner == Some(finished),
        };
        if effectively_finished {
            let (target, cnt) = buf
                .iter_mut()
                .min_by_key(|(_, c)| *c)
                .expect("running is non-empty");
            sm.request_handoff(Some(*target));
            *cnt += 1;
        }
    }
}

/// Hands a re-enabled SM to the running application with the fewest
/// effective SMs (deterministic tie-break: lowest app id). Shared by
/// both layouts.
fn hand_recovered_sm(apps: &[AppRuntime], sms: &mut impl SmSlab, enabled: &[bool], sm: u32) {
    let mut best: Option<(u32, AppId)> = None;
    for (i, app) in apps.iter().enumerate() {
        if app.finished {
            continue;
        }
        let id = AppId(i as u16);
        let cnt = sm_count_over(sms, enabled, id);
        let better = match best {
            None => true,
            Some((c, _)) => cnt < c,
        };
        if better {
            best = Some((cnt, id));
        }
    }
    if let Some((_, id)) = best {
        sms.get_mut(sm as usize).request_handoff(Some(id));
    }
}

/// Effective SM count for `app` over any SM layout (see
/// [`Gpu::sm_count`]).
fn sm_count_over(sms: &impl SmSlab, enabled: &[bool], app: AppId) -> u32 {
    let mut count = 0;
    for (i, &en) in enabled.iter().enumerate().take(sms.len()) {
        if !en {
            continue;
        }
        let sm = sms.get(i);
        let owned = match sm.pending_owner {
            Some(p) => p == app,
            None => sm.owner == Some(app),
        };
        if owned {
            count += 1;
        }
    }
    count
}

/// Base address for an app's address space (prevents cross-app cache
/// aliasing).
fn app_base(app: AppId) -> u64 {
    (u64::from(app.0) + 1) << 44
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{AccessPattern, Op, PatternId};

    fn alu_kernel(name: &str, blocks: u32) -> KernelDesc {
        KernelDesc {
            name: name.into(),
            grid_blocks: blocks,
            warps_per_block: 2,
            iters_per_warp: 20,
            body: vec![Op::Alu { latency: 4 }],
            patterns: vec![],
            active_lanes: 32,
        }
    }

    fn mem_kernel(name: &str, blocks: u32, ws: u64) -> KernelDesc {
        KernelDesc {
            name: name.into(),
            grid_blocks: blocks,
            warps_per_block: 2,
            iters_per_warp: 20,
            body: vec![Op::Load(PatternId(0)), Op::Alu { latency: 4 }],
            patterns: vec![AccessPattern::streaming(ws)],
            active_lanes: 32,
        }
    }

    #[test]
    fn single_app_runs_to_completion() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let app = gpu.launch(alu_kernel("a", 16)).unwrap();
        gpu.partition_even();
        gpu.run(1_000_000).unwrap();
        let s = gpu.stats().app(app);
        assert!(s.finished());
        assert_eq!(
            s.thread_insts,
            16 * 2 * 20 * 32,
            "every thread instruction accounted"
        );
        assert!(s.runtime_cycles() > 0);
    }

    #[test]
    fn two_apps_share_the_device() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = gpu.launch(mem_kernel("a", 8, 1 << 22)).unwrap();
        let b = gpu.launch(alu_kernel("b", 8)).unwrap();
        gpu.partition_even();
        assert_eq!(gpu.sm_count(a), 4);
        assert_eq!(gpu.sm_count(b), 4);
        gpu.run(2_000_000).unwrap();
        assert!(gpu.stats().app(a).finished());
        assert!(gpu.stats().app(b).finished());
    }

    #[test]
    fn phase_profile_sums_to_cycles_and_leaves_stats_identical() {
        let run = |profile: bool| {
            let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
            gpu.set_profiling(profile);
            gpu.launch(mem_kernel("a", 8, 1 << 22)).unwrap();
            gpu.launch(alu_kernel("b", 8)).unwrap();
            gpu.partition_even();
            gpu.run(2_000_000).unwrap();
            (gpu.stats().clone(), gpu.cycle(), gpu.phase_cycles())
        };
        let (s_off, c_off, p_off) = run(false);
        let (s_on, c_on, p_on) = run(true);
        assert_eq!(p_off, None, "profiling is off by default");
        let p = p_on.expect("profiling was requested");
        assert_eq!(p.total(), c_on, "every cycle lands in exactly one bucket");
        assert!(p.issue > 0, "the run issued instructions");
        assert_eq!((s_off, c_off), (s_on, c_on), "profiling never perturbs results");
    }

    #[test]
    fn phase_profile_accounts_windowed_runs() {
        // run_for's window barrier must keep the invariant too (clamped
        // horizons land in the smra bucket).
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        gpu.set_profiling(true);
        gpu.launch(mem_kernel("a", 8, 1 << 22)).unwrap();
        gpu.partition_even();
        while !gpu.all_done() && gpu.cycle() < 2_000_000 {
            gpu.run_for(500);
        }
        assert!(gpu.all_done());
        let p = gpu.phase_cycles().unwrap();
        assert_eq!(p.total(), gpu.cycle());
    }

    #[test]
    fn timeout_reported() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        gpu.launch(mem_kernel("a", 64, 1 << 22)).unwrap();
        gpu.partition_even();
        assert!(matches!(gpu.run(10), Err(SimError::Timeout { .. })));
    }

    #[test]
    fn deadlock_detected_without_sms() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        gpu.launch(alu_kernel("a", 4)).unwrap();
        // No partition: no SM ever owns the app.
        assert!(matches!(
            gpu.run(1_000_000),
            Err(SimError::Deadlock { .. })
        ));
    }

    #[test]
    fn oversized_block_rejected() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let k = KernelDesc {
            warps_per_block: 1000,
            ..alu_kernel("big", 1)
        };
        assert!(matches!(gpu.launch(k), Err(SimError::InvalidKernel(_))));
    }

    #[test]
    fn transfer_sms_drains() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = gpu.launch(mem_kernel("a", 32, 1 << 22)).unwrap();
        let b = gpu.launch(mem_kernel("b", 32, 1 << 22)).unwrap();
        gpu.partition_even();
        gpu.run_for(200);
        let moved = gpu.transfer_sms(a, b, 2);
        assert_eq!(moved, 2);
        assert_eq!(gpu.sm_count(a), 2);
        assert_eq!(gpu.sm_count(b), 6);
        gpu.run(4_000_000).unwrap();
        assert!(gpu.all_done());
    }

    #[test]
    fn more_sms_means_faster_for_parallel_app() {
        let run_with = |sms: u32| {
            let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
            let app = gpu.launch(alu_kernel("a", 64)).unwrap();
            let ids: Vec<u32> = (0..sms).collect();
            gpu.assign_sms(app, &ids);
            gpu.run(10_000_000).unwrap();
            gpu.stats().app(app).runtime_cycles()
        };
        let slow = run_with(1);
        let fast = run_with(8);
        assert!(
            fast * 3 < slow,
            "8 SMs should be much faster: {fast} vs {slow}"
        );
    }

    #[test]
    fn finished_apps_donate_sms() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = gpu.launch(alu_kernel("short", 4)).unwrap();
        let b = gpu.launch(mem_kernel("long", 64, 1 << 22)).unwrap();
        gpu.partition_even();
        gpu.run(10_000_000).unwrap();
        assert!(gpu.app_finished(a) && gpu.app_finished(b));
        // After `a` finished its SMs must flow to `b`.
        assert_eq!(gpu.sm_count(b), 8);
    }

    #[test]
    fn three_way_even_partition() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = gpu.launch(alu_kernel("a", 4)).unwrap();
        let b = gpu.launch(alu_kernel("b", 4)).unwrap();
        let c = gpu.launch(alu_kernel("c", 4)).unwrap();
        gpu.partition_even();
        // 8 SMs across 3 apps: 3/3/2 with the remainder to the earliest.
        assert_eq!(gpu.sm_count(a), 3);
        assert_eq!(gpu.sm_count(b), 3);
        assert_eq!(gpu.sm_count(c), 2);
        gpu.run(10_000_000).unwrap();
        assert!(gpu.all_done());
    }

    #[test]
    fn partition_counts_leaves_rest_unowned() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = gpu.launch(alu_kernel("a", 2)).unwrap();
        gpu.partition_counts(&[3]);
        assert_eq!(gpu.sm_count(a), 3);
        gpu.run(10_000_000).unwrap();
        assert!(gpu.app_finished(a));
    }

    #[test]
    fn device_throughput_accumulates_across_apps() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = gpu.launch(alu_kernel("a", 8)).unwrap();
        let b = gpu.launch(alu_kernel("b", 8)).unwrap();
        gpu.partition_even();
        gpu.run(10_000_000).unwrap();
        let total = gpu.stats().app(a).thread_insts + gpu.stats().app(b).thread_insts;
        let thr = gpu.stats().device_throughput();
        assert!((thr - total as f64 / gpu.cycle() as f64).abs() < 1e-9);
    }

    #[test]
    fn run_for_stops_at_budget() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let k = KernelDesc {
            iters_per_warp: 100_000,
            ..alu_kernel("a", 64)
        };
        let app = gpu.launch(k).unwrap();
        gpu.partition_even();
        gpu.run_for(500);
        assert_eq!(gpu.cycle(), 500);
        assert!(!gpu.app_finished(app));
    }

    #[test]
    fn launch_limit() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        for i in 0..MAX_APPS {
            gpu.launch(alu_kernel(&format!("k{i}"), 1)).unwrap();
        }
        assert_eq!(
            gpu.launch(alu_kernel("extra", 1)).unwrap_err(),
            SimError::TooManyApps
        );
    }

    #[test]
    fn error_display() {
        let err = SimError::Timeout {
            cycle: 5,
            diag: Default::default(),
        };
        assert!(err.to_string().contains('5'));
    }

    #[test]
    fn sm_disable_drains_and_survivors_shrink() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = gpu.launch(mem_kernel("a", 32, 1 << 22)).unwrap();
        gpu.partition_even();
        gpu.install_fault_plan(FaultPlan::new().disable_sm(100, 3))
            .unwrap();
        gpu.run_for(150);
        // The outage cycle has fired: SM 3 is out of the surviving set
        // and no longer counts toward the app's share.
        assert!(!gpu.sm_in_service(3));
        assert_eq!(gpu.num_enabled_sms(), 7);
        assert_eq!(gpu.sm_count(a), 7);
        assert_eq!(gpu.surviving_sms(), [0, 1, 2, 4, 5, 6, 7]);
        gpu.run(20_000_000).unwrap();
        assert!(gpu.all_done());
        // Drained out of service: released, still disabled.
        assert!(gpu.sms[3].owner.is_none());
    }

    #[test]
    fn sm_reenable_hands_sm_to_neediest_app() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = gpu.launch(mem_kernel("a", 64, 1 << 22)).unwrap();
        let b = gpu.launch(mem_kernel("b", 64, 1 << 22)).unwrap();
        gpu.partition_even();
        gpu.install_fault_plan(FaultPlan::new().disable_sm(50, 0).enable_sm(5_000, 0))
            .unwrap();
        gpu.run_for(5_001);
        assert!(gpu.sm_in_service(0));
        // SM 0 came back to app `a` (3 SMs vs b's 4 after the outage).
        assert_eq!(gpu.sm_count(a) + gpu.sm_count(b), 8);
        gpu.run(40_000_000).unwrap();
        assert!(gpu.all_done());
    }

    #[test]
    fn fault_replay_is_bit_identical_across_step_modes() {
        let run_with = |mode: StepMode| {
            let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
            gpu.set_step_mode(mode);
            gpu.launch(mem_kernel("a", 24, 1 << 22)).unwrap();
            gpu.launch(alu_kernel("b", 24)).unwrap();
            gpu.partition_even();
            let plan = FaultPlan::new()
                .disable_sm(400, 1)
                .enable_sm(3_000, 1)
                .mem_latency_window(800, 2_000, 30, 90)
                .mshr_window(1_000, 2_500, 4);
            gpu.install_fault_plan(plan).unwrap();
            gpu.run(40_000_000).unwrap();
            (gpu.cycle(), gpu.stats().clone())
        };
        let (c1, s1) = run_with(StepMode::Cycle);
        let (c2, s2) = run_with(StepMode::EventHorizon);
        assert_eq!(c1, c2, "final cycles diverge across step modes");
        assert_eq!(s1, s2, "stats diverge across step modes");
    }

    #[test]
    fn all_sm_outage_rejected_at_install() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let mut plan = FaultPlan::new();
        for sm in 0..8 {
            plan = plan.disable_sm(10 + sm, sm as u32);
        }
        assert!(matches!(
            gpu.install_fault_plan(plan),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn mem_latency_fault_slows_memory_bound_app() {
        let run_with = |plan: Option<FaultPlan>| {
            let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
            let app = gpu.launch(mem_kernel("a", 24, 1 << 22)).unwrap();
            gpu.partition_even();
            if let Some(p) = plan {
                gpu.install_fault_plan(p).unwrap();
            }
            gpu.run(40_000_000).unwrap();
            gpu.stats().app(app).runtime_cycles()
        };
        let healthy = run_with(None);
        let degraded = run_with(Some(FaultPlan::new().mem_latency_window(
            0,
            u64::MAX,
            200,
            600,
        )));
        assert!(
            degraded > healthy,
            "latency fault had no effect: {degraded} vs {healthy}"
        );
    }

    fn rand_kernel(name: &str, blocks: u32, ws: u64) -> KernelDesc {
        KernelDesc {
            name: name.into(),
            grid_blocks: blocks,
            warps_per_block: 2,
            iters_per_warp: 20,
            body: vec![
                Op::Load(PatternId(0)),
                Op::Alu { latency: 4 },
                Op::Store(PatternId(1)),
            ],
            patterns: vec![
                AccessPattern::random(ws, 4),
                AccessPattern::streaming(ws),
            ],
            active_lanes: 32,
        }
    }

    fn record_alone(kernel: KernelDesc) -> (KernelTrace, u64, crate::stats::SimStats) {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let app = gpu.launch(kernel).unwrap();
        gpu.enable_trace_recording(app).unwrap();
        gpu.partition_even();
        gpu.run(40_000_000).unwrap();
        let cycles = gpu.cycle();
        let stats = gpu.stats().clone();
        let trace = gpu.take_trace(app).expect("recording was enabled");
        (trace, cycles, stats)
    }

    #[test]
    fn record_then_replay_alone_is_bit_identical() {
        for kernel in [mem_kernel("m", 16, 1 << 22), rand_kernel("r", 16, 1 << 22)] {
            let (trace, cycles, stats) = record_alone(kernel);
            trace.validate().unwrap();
            let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
            gpu.launch_traced(Arc::new(trace)).unwrap();
            gpu.partition_even();
            gpu.run(40_000_000).unwrap();
            assert_eq!(gpu.cycle(), cycles, "replay cycle count diverges");
            assert_eq!(*gpu.stats(), stats, "replay stats diverge");
        }
    }

    #[test]
    fn replay_is_bit_identical_across_step_modes() {
        let (trace, cycles, stats) = record_alone(rand_kernel("r", 16, 1 << 22));
        let trace = Arc::new(trace);
        for mode in [StepMode::Cycle, StepMode::EventHorizon] {
            let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
            gpu.set_step_mode(mode);
            gpu.launch_traced(Arc::clone(&trace)).unwrap();
            gpu.partition_even();
            gpu.run(40_000_000).unwrap();
            assert_eq!(gpu.cycle(), cycles, "{mode:?} cycle count diverges");
            assert_eq!(*gpu.stats(), stats, "{mode:?} stats diverge");
        }
    }

    #[test]
    fn trace_recorded_in_corun_replays_bit_identically_in_context() {
        // Record member A while co-running with a Random-pattern partner,
        // then replay traced-A next to the same synthetic partner. The
        // RNG-parity burn keeps the partner's per-SM stream untouched.
        let run = |traced: Option<Arc<KernelTrace>>| {
            let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
            let a = match &traced {
                Some(t) => gpu.launch_traced(Arc::clone(t)).unwrap(),
                None => {
                    let a = gpu.launch(mem_kernel("a", 16, 1 << 22)).unwrap();
                    gpu.enable_trace_recording(a).unwrap();
                    a
                }
            };
            gpu.launch(rand_kernel("b", 16, 1 << 22)).unwrap();
            gpu.partition_even();
            gpu.run(40_000_000).unwrap();
            let trace = gpu.take_trace(a);
            (gpu.cycle(), gpu.stats().clone(), trace)
        };
        let (c1, s1, trace) = run(None);
        let trace = Arc::new(trace.expect("recording was enabled"));
        let (c2, s2, none) = run(Some(trace));
        assert!(none.is_none(), "replay app records nothing");
        assert_eq!(c1, c2, "co-run replay cycle count diverges");
        assert_eq!(s1, s2, "co-run replay stats diverge");
    }

    #[test]
    fn trace_recording_state_errors() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = gpu.launch(mem_kernel("a", 4, 1 << 20)).unwrap();
        gpu.partition_even();
        gpu.run_for(10);
        // Too late: the app has already started issuing.
        assert!(matches!(
            gpu.enable_trace_recording(a),
            Err(SimError::InvalidConfig(_))
        ));
        // Replaying apps can't also record.
        let (trace, _, _) = record_alone(mem_kernel("m", 4, 1 << 20));
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let r = gpu.launch_traced(Arc::new(trace)).unwrap();
        assert!(matches!(
            gpu.enable_trace_recording(r),
            Err(SimError::InvalidConfig(_))
        ));
        assert!(gpu.take_trace(r).is_none());
    }

    #[test]
    fn launch_traced_rejects_invalid_trace() {
        let (mut trace, _, _) = record_alone(mem_kernel("m", 4, 1 << 20));
        trace.warps.pop();
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        assert!(matches!(
            gpu.launch_traced(Arc::new(trace)),
            Err(SimError::InvalidKernel(_))
        ));
    }

    #[test]
    fn diagnostics_capture_device_shape() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        gpu.launch(mem_kernel("a", 16, 1 << 22)).unwrap();
        gpu.partition_even();
        gpu.run_for(50);
        let diag = gpu.diagnostics();
        assert_eq!(diag.cycle, 50);
        assert_eq!(diag.sms.len(), 8);
        assert_eq!(diag.slices.len(), 2);
        assert_eq!(diag.enabled_sms(), 8);
        assert!(diag.to_string().contains("8/8 SMs enabled"));
    }
}
