//! The device: SMs + shared memory system + block dispatch + spatial
//! partitioning with drain-based SM migration.
//!
//! This is the simulator's public entry point. A typical single-app run:
//!
//! ```
//! use gcs_sim::config::GpuConfig;
//! use gcs_sim::gpu::Gpu;
//! use gcs_sim::kernel::{AccessPattern, KernelDesc, Op, PatternId};
//!
//! # fn main() -> Result<(), gcs_sim::gpu::SimError> {
//! let mut gpu = Gpu::new(GpuConfig::test_small())?;
//! let app = gpu.launch(KernelDesc {
//!     name: "demo".into(),
//!     grid_blocks: 8,
//!     warps_per_block: 2,
//!     iters_per_warp: 16,
//!     body: vec![Op::Alu { latency: 4 }, Op::Load(PatternId(0))],
//!     patterns: vec![AccessPattern::streaming(1 << 20)],
//!     active_lanes: 32,
//! })?;
//! gpu.partition_even();
//! gpu.run(1_000_000)?;
//! assert!(gpu.stats().app(app).finished());
//! # Ok(())
//! # }
//! ```

use std::error::Error;
use std::fmt;

use crate::config::GpuConfig;
use crate::kernel::{AppId, KernelDesc};
use crate::memsys::{Completion, MemSys};
use crate::sm::Sm;
use crate::stats::SimStats;
use crate::warp::check_pattern_limit;

/// Maximum concurrently launched applications.
pub const MAX_APPS: usize = 8;

/// Errors from device construction and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The device configuration is inconsistent.
    InvalidConfig(String),
    /// A launched kernel failed validation.
    InvalidKernel(String),
    /// `run` exceeded its cycle budget.
    Timeout {
        /// Cycle at which the budget ran out.
        cycle: u64,
    },
    /// No warp can ever make progress again (e.g. every SM is idle and
    /// unowned while blocks remain).
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
    },
    /// Application slot limit reached.
    TooManyApps,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            SimError::InvalidKernel(why) => write!(f, "invalid kernel: {why}"),
            SimError::Timeout { cycle } => write!(f, "cycle budget exhausted at cycle {cycle}"),
            SimError::Deadlock { cycle } => write!(f, "no runnable work at cycle {cycle}"),
            SimError::TooManyApps => write!(f, "application slot limit reached"),
        }
    }
}

impl Error for SimError {}

#[derive(Debug)]
struct AppRuntime {
    kernel: KernelDesc,
    next_block: u32,
    blocks_done: u32,
    started: bool,
    finished: bool,
}

/// How [`Gpu::run`] and [`Gpu::run_for`] advance the device clock.
///
/// Both modes produce bit-identical [`SimStats`] (asserted by the
/// `step_equivalence` suite); this is a runtime knob on the device, not
/// part of [`GpuConfig`], so sweep-cache fingerprints are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepMode {
    /// Step every cycle; fast-forward only fully quiescent sleep phases
    /// (the slow reference behavior).
    Cycle,
    /// Jump straight to the next event horizon — the earliest SM
    /// wake-up or memory-system event — whenever no SM can issue or
    /// dispatch, even while the memory system is busy.
    #[default]
    EventHorizon,
}

/// The simulated device.
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    sms: Vec<Sm>,
    memsys: MemSys,
    apps: Vec<AppRuntime>,
    stats: SimStats,
    cycle: u64,
    comp_buf: Vec<Completion>,
    step_mode: StepMode,
    /// Scratch for `reassign_sms_of` (avoids per-call allocation).
    reassign_buf: Vec<(AppId, u32)>,
}

impl Gpu {
    /// Builds an idle device.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when `cfg` fails validation.
    pub fn new(cfg: GpuConfig) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::InvalidConfig)?;
        let sms = (0..cfg.num_sms).map(|i| Sm::new(i, &cfg)).collect();
        let memsys = MemSys::new(&cfg);
        Ok(Gpu {
            sms,
            memsys,
            apps: Vec::new(),
            stats: SimStats::new(MAX_APPS),
            cycle: 0,
            comp_buf: Vec::with_capacity(64),
            step_mode: StepMode::default(),
            reassign_buf: Vec::new(),
            cfg,
        })
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Clock-advance strategy in force.
    pub fn step_mode(&self) -> StepMode {
        self.step_mode
    }

    /// Selects how `run`/`run_for` advance the clock. Statistics are
    /// bit-identical across modes; [`StepMode::Cycle`] is the slow
    /// reference used by the equivalence tests.
    pub fn set_step_mode(&mut self, mode: StepMode) {
        self.step_mode = mode;
    }

    /// Registers an application. SMs must then be assigned via
    /// [`Gpu::partition_even`], [`Gpu::partition_counts`] or
    /// [`Gpu::assign_sms`].
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidKernel`] for malformed kernels and
    /// [`SimError::TooManyApps`] beyond [`MAX_APPS`] slots.
    pub fn launch(&mut self, kernel: KernelDesc) -> Result<AppId, SimError> {
        kernel.validate().map_err(SimError::InvalidKernel)?;
        check_pattern_limit(&kernel).map_err(SimError::InvalidKernel)?;
        if kernel.warps_per_block > self.cfg.max_warps_per_sm {
            return Err(SimError::InvalidKernel(format!(
                "kernel {} needs {} warps per block but SMs host at most {}",
                kernel.name, kernel.warps_per_block, self.cfg.max_warps_per_sm
            )));
        }
        if self.apps.len() >= MAX_APPS {
            return Err(SimError::TooManyApps);
        }
        let id = AppId(self.apps.len() as u16);
        self.apps.push(AppRuntime {
            kernel,
            next_block: 0,
            blocks_done: 0,
            started: false,
            finished: false,
        });
        Ok(id)
    }

    /// Number of launched applications.
    pub fn num_apps(&self) -> usize {
        self.apps.len()
    }

    /// Whether `app` has retired all of its blocks.
    pub fn app_finished(&self, app: AppId) -> bool {
        self.apps[usize::from(app.0)].finished
    }

    /// All launched applications finished.
    pub fn all_done(&self) -> bool {
        !self.apps.is_empty() && self.apps.iter().all(|a| a.finished)
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Assigns the given SMs to `app` (drain-based when occupied).
    ///
    /// # Panics
    ///
    /// Panics if an SM id is out of range or `app` was never launched.
    pub fn assign_sms(&mut self, app: AppId, sm_ids: &[u32]) {
        assert!(usize::from(app.0) < self.apps.len(), "unknown app");
        for &id in sm_ids {
            self.sms[id as usize].request_handoff(Some(app));
        }
    }

    /// Splits all SMs as evenly as possible across the launched apps, in
    /// launch order (the thesis' initial equal-share policy).
    pub fn partition_even(&mut self) {
        let n = self.apps.len().max(1);
        let per = self.sms.len() / n;
        let mut extra = self.sms.len() % n;
        let mut next = 0usize;
        for a in 0..n {
            let take = per + usize::from(extra > 0);
            extra = extra.saturating_sub(1);
            for _ in 0..take {
                self.sms[next].request_handoff(Some(AppId(a as u16)));
                next += 1;
            }
        }
    }

    /// Partitions by explicit per-app SM counts (`counts[i]` SMs to app
    /// `i`, assigned low-to-high); remaining SMs become unowned.
    ///
    /// # Panics
    ///
    /// Panics if counts sum to more SMs than exist or `counts` is longer
    /// than the launched app list.
    pub fn partition_counts(&mut self, counts: &[u32]) {
        assert!(counts.len() <= self.apps.len(), "counts for unlaunched apps");
        let total: u32 = counts.iter().sum();
        assert!(
            total as usize <= self.sms.len(),
            "partition wants {total} SMs but device has {}",
            self.sms.len()
        );
        let mut next = 0usize;
        for (a, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                self.sms[next].request_handoff(Some(AppId(a as u16)));
                next += 1;
            }
        }
        for sm in &mut self.sms[next..] {
            sm.request_handoff(None);
        }
    }

    /// Effective SM count for `app`: SMs it owns and is not losing, plus
    /// SMs draining toward it.
    pub fn sm_count(&self, app: AppId) -> u32 {
        self.sms
            .iter()
            .filter(|sm| match sm.pending_owner {
                Some(p) => p == app,
                None => sm.owner == Some(app),
            })
            .count() as u32
    }

    /// Moves up to `n` SMs from `from` to `to` using drain-based
    /// handoffs; returns how many transfers were initiated.
    pub fn transfer_sms(&mut self, from: AppId, to: AppId, n: u32) -> u32 {
        let mut moved = 0;
        for sm in &mut self.sms {
            if moved == n {
                break;
            }
            let effectively_from = match sm.pending_owner {
                Some(p) => p == from,
                None => sm.owner == Some(from),
            };
            if effectively_from {
                sm.request_handoff(Some(to));
                moved += 1;
            }
        }
        moved
    }

    /// Advances the device one cycle.
    pub fn step(&mut self) {
        let now = self.cycle;

        // Block retirements are the only trigger for handoff completion
        // and app completion, so phases 4-5 run only when one happened.
        let mut any_retired = false;

        // 1. Deliver memory responses; they may retire warps and blocks.
        self.comp_buf.clear();
        self.memsys.drain_completions(now, &mut self.comp_buf);
        for i in 0..self.comp_buf.len() {
            let c = self.comp_buf[i];
            let sm = &mut self.sms[c.sm as usize];
            let retired = sm.on_mem_response(c.warp_slot);
            if retired > 0 {
                let owner = sm.owner.expect("retiring SM has an owner");
                self.apps[usize::from(owner.0)].blocks_done += retired;
                any_retired = true;
            }
        }

        // 2. Memory system.
        self.memsys.tick(now, &mut self.stats);

        // 3. SM issue + block dispatch. The iteration order rotates each
        // cycle: with a fixed order, low-numbered SMs would enqueue
        // their memory requests first every cycle and systematically
        // win FIFO admission into the shared slices — an unfairness
        // artifact, not a modeled mechanism.
        let n_sms = self.sms.len();
        for k in 0..n_sms {
            let sm = &mut self.sms[(k + now as usize) % n_sms];
            sm.wake(now);
            let Some(owner) = sm.owner else { continue };
            let app = &mut self.apps[usize::from(owner.0)];

            if sm.has_ready_work() {
                let retired = sm.issue(
                    now,
                    &app.kernel,
                    owner,
                    app_base(owner),
                    &self.cfg,
                    &mut self.memsys,
                    &mut self.stats,
                );
                app.blocks_done += retired;
                any_retired |= retired > 0;
            }

            // Dispatch at most one block per SM per cycle.
            if app.next_block < app.kernel.grid_blocks
                && sm.pending_owner.is_none()
                && sm.can_take_block(&app.kernel, &self.cfg)
            {
                sm.dispatch_block(&app.kernel, app.next_block);
                app.next_block += 1;
                if !app.started {
                    app.started = true;
                    self.stats.app_mut(owner).start_cycle = now;
                }
            }
        }

        // Phases 4-5 can only observe a change when a block retired this
        // cycle: handoffs complete on drain (emptiness changes only at a
        // retirement) and app completion tracks `blocks_done`.
        if any_retired {
            // 4. Complete drained handoffs.
            for sm in &mut self.sms {
                sm.try_complete_handoff();
            }

            // 5. Detect app completion.
            for a in 0..self.apps.len() {
                let app = &mut self.apps[a];
                if !app.finished && app.started && app.blocks_done == app.kernel.grid_blocks {
                    app.finished = true;
                    let id = AppId(a as u16);
                    self.stats.app_mut(id).finish_cycle = now;
                    self.stats.app_mut(id).blocks_done = app.blocks_done;
                    if self.cfg.reassign_on_finish {
                        self.reassign_sms_of(id);
                    }
                }
            }
        }

        self.cycle = now + 1;
        self.stats.cycles = self.cycle;
    }

    /// Hands the SMs of a finished app to the running apps, balancing
    /// toward the app with the fewest effective SMs.
    fn reassign_sms_of(&mut self, finished: AppId) {
        self.reassign_buf.clear();
        for i in 0..self.apps.len() {
            if !self.apps[i].finished {
                self.reassign_buf.push((AppId(i as u16), 0));
            }
        }
        if self.reassign_buf.is_empty() {
            return;
        }
        // Effective SM counts of the running apps, in one pass over the
        // SMs (an SM counts toward its pending owner while draining).
        for sm in &self.sms {
            let effective = sm.pending_owner.or(sm.owner);
            if let Some(owner) = effective {
                if let Some(entry) = self.reassign_buf.iter_mut().find(|(a, _)| *a == owner) {
                    entry.1 += 1;
                }
            }
        }
        for sm in &mut self.sms {
            let effectively_finished = match sm.pending_owner {
                Some(p) => p == finished,
                None => sm.owner == Some(finished),
            };
            if effectively_finished {
                let (target, cnt) = self
                    .reassign_buf
                    .iter_mut()
                    .min_by_key(|(_, c)| *c)
                    .expect("running is non-empty");
                sm.request_handoff(Some(*target));
                *cnt += 1;
            }
        }
    }

    /// Earliest cycle at which any component could next change state:
    /// the soonest SM wake-up or memory-system event. `None` means
    /// nothing will ever happen again (deadlock if work remains).
    fn next_horizon(&self) -> Option<u64> {
        let sm_wake = self.sms.iter().filter_map(|sm| sm.next_wake()).min();
        let mem_ev = self.memsys.next_event(self.cycle);
        match (sm_wake, mem_ev) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// True when the cycle just stepped left nothing issuable: no SM has
    /// a ready warp and no block can be dispatched. Every remaining
    /// state change is then bound to a future event, so the clock may
    /// jump to the horizon.
    fn quiescent_now(&self) -> bool {
        !self.sms.iter().any(|sm| sm.has_ready_work()) && !self.dispatch_possible()
    }

    /// Runs until every launched application finishes.
    ///
    /// Under [`StepMode::EventHorizon`] (the default) the clock jumps
    /// over every dead stretch — including memory-bound phases where all
    /// warps wait on DRAM — directly to the next event.
    /// [`StepMode::Cycle`] steps one cycle at a time and fast-forwards
    /// only fully quiescent sleep phases; it exists as the reference
    /// behavior for the equivalence tests.
    ///
    /// # Errors
    ///
    /// [`SimError::Timeout`] past `max_cycles`; [`SimError::Deadlock`]
    /// when nothing can ever run again.
    pub fn run(&mut self, max_cycles: u64) -> Result<(), SimError> {
        if self.apps.is_empty() {
            return Ok(());
        }
        while !self.all_done() {
            if self.cycle >= max_cycles {
                return Err(SimError::Timeout { cycle: self.cycle });
            }
            self.step();
            if self.all_done() {
                break;
            }

            match self.step_mode {
                StepMode::Cycle => {
                    // Fast-forward pure sleep phases.
                    if self.memsys.is_idle() && self.quiescent_now() {
                        match self.sms.iter().filter_map(|sm| sm.next_wake()).min() {
                            Some(wake) if wake > self.cycle => {
                                self.cycle = wake;
                                self.stats.cycles = wake;
                            }
                            Some(_) => {}
                            None => {
                                return Err(SimError::Deadlock { cycle: self.cycle });
                            }
                        }
                    }
                }
                StepMode::EventHorizon => {
                    if self.quiescent_now() {
                        match self.next_horizon() {
                            Some(h) if h > self.cycle => {
                                // Clamp so a timeout is still reported at
                                // the budget boundary.
                                let to = h.min(max_cycles);
                                self.cycle = to;
                                self.stats.cycles = to;
                            }
                            Some(_) => {}
                            None => {
                                return Err(SimError::Deadlock { cycle: self.cycle });
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs for exactly `cycles` more cycles (or until everything
    /// finishes, whichever comes first). Used by controllers that sample
    /// the device periodically (SMRA's `T_C` window).
    ///
    /// The window boundary is a hard barrier for event-horizon stepping:
    /// the clock never jumps past `end`, so controllers observe exactly
    /// the same sampling cycles in either [`StepMode`].
    pub fn run_for(&mut self, cycles: u64) {
        let end = self.cycle + cycles;
        while self.cycle < end && !self.all_done() {
            self.step();
            if self.step_mode != StepMode::EventHorizon
                || self.cycle >= end
                || self.all_done()
                || !self.quiescent_now()
            {
                continue;
            }
            match self.next_horizon() {
                Some(h) if h > self.cycle => {
                    let to = h.min(end);
                    self.cycle = to;
                    self.stats.cycles = to;
                }
                Some(_) => {}
                None => {
                    // Nothing can ever happen again: burn the rest of
                    // the window, exactly as cycle stepping would.
                    self.cycle = end;
                    self.stats.cycles = end;
                }
            }
        }
    }

    /// True if some undispatched block could be placed this cycle.
    fn dispatch_possible(&self) -> bool {
        self.sms.iter().any(|sm| {
            sm.owner.is_some_and(|o| {
                let app = &self.apps[usize::from(o.0)];
                app.next_block < app.kernel.grid_blocks
                    && sm.pending_owner.is_none()
                    && sm.can_take_block(&app.kernel, &self.cfg)
            })
        })
    }

    /// Diagnostic: aggregate L2 hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        self.memsys.l2_hit_rate()
    }
}

/// Base address for an app's address space (prevents cross-app cache
/// aliasing).
fn app_base(app: AppId) -> u64 {
    (u64::from(app.0) + 1) << 44
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{AccessPattern, Op, PatternId};

    fn alu_kernel(name: &str, blocks: u32) -> KernelDesc {
        KernelDesc {
            name: name.into(),
            grid_blocks: blocks,
            warps_per_block: 2,
            iters_per_warp: 20,
            body: vec![Op::Alu { latency: 4 }],
            patterns: vec![],
            active_lanes: 32,
        }
    }

    fn mem_kernel(name: &str, blocks: u32, ws: u64) -> KernelDesc {
        KernelDesc {
            name: name.into(),
            grid_blocks: blocks,
            warps_per_block: 2,
            iters_per_warp: 20,
            body: vec![Op::Load(PatternId(0)), Op::Alu { latency: 4 }],
            patterns: vec![AccessPattern::streaming(ws)],
            active_lanes: 32,
        }
    }

    #[test]
    fn single_app_runs_to_completion() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let app = gpu.launch(alu_kernel("a", 16)).unwrap();
        gpu.partition_even();
        gpu.run(1_000_000).unwrap();
        let s = gpu.stats().app(app);
        assert!(s.finished());
        assert_eq!(
            s.thread_insts,
            16 * 2 * 20 * 32,
            "every thread instruction accounted"
        );
        assert!(s.runtime_cycles() > 0);
    }

    #[test]
    fn two_apps_share_the_device() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = gpu.launch(mem_kernel("a", 8, 1 << 22)).unwrap();
        let b = gpu.launch(alu_kernel("b", 8)).unwrap();
        gpu.partition_even();
        assert_eq!(gpu.sm_count(a), 4);
        assert_eq!(gpu.sm_count(b), 4);
        gpu.run(2_000_000).unwrap();
        assert!(gpu.stats().app(a).finished());
        assert!(gpu.stats().app(b).finished());
    }

    #[test]
    fn timeout_reported() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        gpu.launch(mem_kernel("a", 64, 1 << 22)).unwrap();
        gpu.partition_even();
        assert!(matches!(gpu.run(10), Err(SimError::Timeout { .. })));
    }

    #[test]
    fn deadlock_detected_without_sms() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        gpu.launch(alu_kernel("a", 4)).unwrap();
        // No partition: no SM ever owns the app.
        assert!(matches!(
            gpu.run(1_000_000),
            Err(SimError::Deadlock { .. })
        ));
    }

    #[test]
    fn oversized_block_rejected() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let k = KernelDesc {
            warps_per_block: 1000,
            ..alu_kernel("big", 1)
        };
        assert!(matches!(gpu.launch(k), Err(SimError::InvalidKernel(_))));
    }

    #[test]
    fn transfer_sms_drains() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = gpu.launch(mem_kernel("a", 32, 1 << 22)).unwrap();
        let b = gpu.launch(mem_kernel("b", 32, 1 << 22)).unwrap();
        gpu.partition_even();
        gpu.run_for(200);
        let moved = gpu.transfer_sms(a, b, 2);
        assert_eq!(moved, 2);
        assert_eq!(gpu.sm_count(a), 2);
        assert_eq!(gpu.sm_count(b), 6);
        gpu.run(4_000_000).unwrap();
        assert!(gpu.all_done());
    }

    #[test]
    fn more_sms_means_faster_for_parallel_app() {
        let run_with = |sms: u32| {
            let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
            let app = gpu.launch(alu_kernel("a", 64)).unwrap();
            let ids: Vec<u32> = (0..sms).collect();
            gpu.assign_sms(app, &ids);
            gpu.run(10_000_000).unwrap();
            gpu.stats().app(app).runtime_cycles()
        };
        let slow = run_with(1);
        let fast = run_with(8);
        assert!(
            fast * 3 < slow,
            "8 SMs should be much faster: {fast} vs {slow}"
        );
    }

    #[test]
    fn finished_apps_donate_sms() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = gpu.launch(alu_kernel("short", 4)).unwrap();
        let b = gpu.launch(mem_kernel("long", 64, 1 << 22)).unwrap();
        gpu.partition_even();
        gpu.run(10_000_000).unwrap();
        assert!(gpu.app_finished(a) && gpu.app_finished(b));
        // After `a` finished its SMs must flow to `b`.
        assert_eq!(gpu.sm_count(b), 8);
    }

    #[test]
    fn three_way_even_partition() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = gpu.launch(alu_kernel("a", 4)).unwrap();
        let b = gpu.launch(alu_kernel("b", 4)).unwrap();
        let c = gpu.launch(alu_kernel("c", 4)).unwrap();
        gpu.partition_even();
        // 8 SMs across 3 apps: 3/3/2 with the remainder to the earliest.
        assert_eq!(gpu.sm_count(a), 3);
        assert_eq!(gpu.sm_count(b), 3);
        assert_eq!(gpu.sm_count(c), 2);
        gpu.run(10_000_000).unwrap();
        assert!(gpu.all_done());
    }

    #[test]
    fn partition_counts_leaves_rest_unowned() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = gpu.launch(alu_kernel("a", 2)).unwrap();
        gpu.partition_counts(&[3]);
        assert_eq!(gpu.sm_count(a), 3);
        gpu.run(10_000_000).unwrap();
        assert!(gpu.app_finished(a));
    }

    #[test]
    fn device_throughput_accumulates_across_apps() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = gpu.launch(alu_kernel("a", 8)).unwrap();
        let b = gpu.launch(alu_kernel("b", 8)).unwrap();
        gpu.partition_even();
        gpu.run(10_000_000).unwrap();
        let total = gpu.stats().app(a).thread_insts + gpu.stats().app(b).thread_insts;
        let thr = gpu.stats().device_throughput();
        assert!((thr - total as f64 / gpu.cycle() as f64).abs() < 1e-9);
    }

    #[test]
    fn run_for_stops_at_budget() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let k = KernelDesc {
            iters_per_warp: 100_000,
            ..alu_kernel("a", 64)
        };
        let app = gpu.launch(k).unwrap();
        gpu.partition_even();
        gpu.run_for(500);
        assert_eq!(gpu.cycle(), 500);
        assert!(!gpu.app_finished(app));
    }

    #[test]
    fn launch_limit() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        for i in 0..MAX_APPS {
            gpu.launch(alu_kernel(&format!("k{i}"), 1)).unwrap();
        }
        assert_eq!(
            gpu.launch(alu_kernel("extra", 1)).unwrap_err(),
            SimError::TooManyApps
        );
    }

    #[test]
    fn error_display() {
        assert!(SimError::Timeout { cycle: 5 }.to_string().contains('5'));
    }
}
