//! Self-contained pseudo-random number generation.
//!
//! The simulator must build with **no external dependencies** (offline
//! environments cannot fetch crates), so this module replaces the
//! `rand` crate with a small deterministic generator: a splitmix64
//! seeder feeding an xoshiro256** state. Determinism matters more than
//! statistical perfection here — every [`SimRng`] stream is keyed by a
//! fixed seed (per-SM), which is what makes whole-device simulations
//! bit-reproducible across runs and across the parallel sweep engine's
//! thread counts.

/// Splitmix64 step: the standard seeding permutation (Steele et al.).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, deterministic PRNG (xoshiro256**).
///
/// ```
/// use gcs_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.gen_range(10) < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator whose full 256-bit state is expanded from
    /// `seed` via splitmix64 (distinct seeds give decorrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)` via Lemire's multiply-shift
    /// reduction (bias is at most 2⁻⁶⁴ · bound — irrelevant for the
    /// working-set sizes the simulator draws from).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range with empty range");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "seeds 1 and 2 should give unrelated streams");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SimRng::seed_from_u64(3);
        for bound in [1u64, 2, 7, 64, 1 << 40] {
            for _ in 0..200 {
                assert!(r.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut r = SimRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn zero_bound_panics() {
        SimRng::seed_from_u64(0).gen_range(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
