//! Sharded-SM stepping: data structures and the parallel phase of the
//! sharded simulation loop (DESIGN.md §12).
//!
//! SMs interact only through the shared L2/DRAM [`MemSys`], so a cycle
//! splits into an embarrassingly parallel half (scheduler picks,
//! address generation, L1 probes, SM-local completions) and a serial
//! merge half (memory-system admission, block dispatch, handoffs).
//! [`ShardPlan`] partitions the SM ids into `k` contiguous shards;
//! each shard's parallel half runs against a [`ShardCell`] that owns
//! its SMs for the duration of a `run`/`run_for` call, and the serial
//! half drains the suspended accesses in canonical rotation order so
//! the merged request stream — and therefore every statistic — is
//! bit-identical to the unsharded reference step.
//!
//! The cells also carry exact `ready`/`next-wake` summaries of their
//! SMs, which is what makes sharding *faster* even on one thread: the
//! per-cycle loop skips SMs that provably cannot act, and quiescence
//! checks scan the flags instead of every SM.

use std::sync::{Arc, Condvar, Mutex};

use crate::config::GpuConfig;
use crate::gpu::MAX_APPS;
use crate::kernel::KernelDesc;
use crate::memsys::{tick_cell, Completion, MemShard, MemSys, MemTickCtx};
use crate::sm::Sm;
use crate::stats::{IssueDelta, SimStats};
use crate::trace_fmt::{KernelTrace, TraceHook};

/// A fixed partition of the SM ids `0..num_sms` into `shards`
/// contiguous, equally sized ranges (the last may be short). The
/// partition — and the canonical merge order derived from it — depends
/// only on `(num_sms, shards)`, never on thread timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of SMs being partitioned.
    pub num_sms: u32,
    /// Number of shards (at least 1, at most `num_sms`).
    pub shards: u32,
}

impl ShardPlan {
    /// Builds the plan, clamping `shards` into `[1, num_sms]`.
    pub fn new(num_sms: u32, shards: u32) -> Self {
        ShardPlan {
            num_sms,
            shards: shards.clamp(1, num_sms.max(1)),
        }
    }

    /// SMs per shard (ceiling division; every shard except possibly the
    /// last holds exactly this many).
    pub fn chunk(&self) -> u32 {
        self.num_sms.div_ceil(self.shards)
    }

    /// Shard owning SM `sm`.
    pub fn shard_of(&self, sm: u32) -> u32 {
        sm / self.chunk()
    }

    /// `(first_sm, len)` of each shard, in shard order.
    pub fn ranges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let chunk = self.chunk();
        let n = self.num_sms;
        (0..self.shards).filter_map(move |s| {
            let base = s * chunk;
            if base >= n {
                None
            } else {
                Some((base, chunk.min(n - base)))
            }
        })
    }
}

/// One application's immutable launch state, snapshotted for the
/// duration of a sharded run so the parallel phase never borrows the
/// device (kernels and replay traces are never mutated mid-run).
#[derive(Debug)]
pub(crate) struct SnapApp {
    /// The launched kernel.
    pub kernel: KernelDesc,
    /// Its address-space base.
    pub base: u64,
    /// Replay trace, when the app replays a recording. Recording apps
    /// force the unsharded path, so `Record` never appears here.
    pub replay: Option<Arc<KernelTrace>>,
}

/// Everything the parallel phase needs, owned (no borrow of [`Gpu`]).
#[derive(Debug)]
pub(crate) struct RunSnapshot {
    /// Per-app launch state, indexed by app id.
    pub apps: Vec<SnapApp>,
    /// Device configuration.
    pub cfg: GpuConfig,
}

/// One shard's working state during a sharded run. Owns its SMs
/// (drained out of `Gpu::sms` at run entry, restored at every exit)
/// plus exact per-SM summaries:
///
/// - `ready_nz[i]` ⇔ `sms[i].has_ready_work()`
/// - `wake_at[i]` == `sms[i].next_wake()` (`u64::MAX` = none)
///
/// Both invariants are maintained at every point an SM is touched, so
/// quiescence and horizon computations over the flags are bit-equal to
/// the reference scans over the SMs themselves.
#[derive(Debug)]
pub(crate) struct ShardCell {
    /// Global id of `sms[0]`.
    pub base: u32,
    /// The shard's SMs, in global id order.
    pub sms: Vec<Sm>,
    /// Per-SM ready summary (see type docs).
    pub ready_nz: Vec<bool>,
    /// Per-SM next-wake summary (`u64::MAX` = no sleeper).
    pub wake_at: Vec<u64>,
    /// Number of `true` entries in `ready_nz` (exact at all times).
    pub ready_count: u32,
    /// `min(wake_at)` (exact at all times; `u64::MAX` = no sleeper).
    ///
    /// Exactness holds because outside [`phase_a_cell`]'s visit loop an
    /// SM's `next_wake` can only *decrease* (the serial merge adds
    /// sleepers, never pops them; `Sm::wake` runs only inside the visit
    /// loop), so [`ShardCell::refresh`] can maintain the minimum with a
    /// plain `min`, and the visit loop recomputes it from scratch
    /// whenever it runs.
    pub wake_min: u64,
    /// Global ids (ascending) of SMs holding a suspended access that
    /// the serial merge phase must resolve this cycle.
    pub pending: Vec<u32>,
    /// Per-app issue statistics accumulated by the parallel phase;
    /// folded into [`SimStats`](crate::stats::SimStats) at run exit.
    pub deltas: [IssueDelta; MAX_APPS],
    /// Per-app blocks retired this cycle by the parallel phase
    /// (completions and SM-local issue); folded every cycle.
    pub retired: [u32; MAX_APPS],
    /// Whether any SM of this shard had ready work this cycle (the
    /// reference loop's `any_issued` contribution).
    pub any_issued: bool,
}

impl ShardCell {
    /// Wraps `sms` (whose first element has global id `base`),
    /// computing the initial flag summaries.
    pub fn new(base: u32, sms: Vec<Sm>) -> Self {
        let ready_nz: Vec<bool> = sms.iter().map(Sm::has_ready_work).collect();
        let wake_at: Vec<u64> = sms
            .iter()
            .map(|sm| sm.next_wake().unwrap_or(u64::MAX))
            .collect();
        let ready_count = ready_nz.iter().filter(|&&r| r).count() as u32;
        let wake_min = wake_at.iter().copied().min().unwrap_or(u64::MAX);
        ShardCell {
            base,
            sms,
            ready_nz,
            wake_at,
            ready_count,
            wake_min,
            pending: Vec::new(),
            deltas: [IssueDelta::default(); MAX_APPS],
            retired: [0; MAX_APPS],
            any_issued: false,
        }
    }

    /// Re-derives both flag summaries for local SM `i` (call after any
    /// operation that may change readiness or sleepers).
    #[inline]
    pub fn refresh(&mut self, i: usize) {
        self.refresh_ready(i);
        let wake = self.sms[i].next_wake().unwrap_or(u64::MAX);
        self.wake_at[i] = wake;
        self.wake_min = self.wake_min.min(wake);
    }

    /// Re-derives the ready summary (and count) for local SM `i`.
    #[inline]
    pub fn refresh_ready(&mut self, i: usize) {
        let ready = self.sms[i].has_ready_work();
        if ready != self.ready_nz[i] {
            self.ready_nz[i] = ready;
            if ready {
                self.ready_count += 1;
            } else {
                self.ready_count -= 1;
            }
        }
    }
}

/// The parallel half of one sharded cycle for one cell: applies this
/// shard's memory completions, then visits exactly the SMs that can
/// act (ready work, or a sleeper due at `now`) and runs the SM-local
/// part of their issue path ([`Sm::issue_prepare`]). Suspended
/// accesses are noted in `cell.pending` for the serial merge.
///
/// Touches nothing outside the cell and the snapshot, so cells step
/// concurrently without synchronization and the result is independent
/// of shard-visit order.
pub(crate) fn phase_a_cell(cell: &mut ShardCell, now: u64, comps: &[Completion], snap: &RunSnapshot) {
    cell.any_issued = false;
    debug_assert!(cell.pending.is_empty(), "pending not drained last cycle");

    // 1. This shard's completions, in drain order (per-SM order is all
    // that matters: responses for different SMs never interact).
    let lo = cell.base;
    let hi = cell.base + cell.sms.len() as u32;
    for c in comps {
        if c.sm < lo || c.sm >= hi {
            continue;
        }
        let local = (c.sm - lo) as usize;
        let sm = &mut cell.sms[local];
        let retired = sm.on_mem_response(c.warp_slot);
        if retired > 0 {
            let owner = sm.owner.expect("retiring SM has an owner");
            cell.retired[usize::from(owner.0)] += retired;
        }
        // Responses only flip ready bits (never sleepers).
        cell.refresh_ready(local);
    }

    // 2. Cell-level elision: when no SM is ready and no sleeper is due,
    // every iteration of the visit loop below would `continue`, so skip
    // the loop (and the summary recompute — nothing changed).
    if cell.ready_count == 0 && cell.wake_min > now {
        return;
    }

    // 3. Visit SMs that can possibly act. A skipped SM is exactly one
    // the reference loop would have visited to no effect: `wake` pops
    // nothing (no sleeper due) and `has_ready_work` is false. The loop
    // reads every SM's post-visit wake, so it rebuilds the exact
    // `wake_min` for free.
    let mut wake_min = u64::MAX;
    for i in 0..cell.sms.len() {
        if !cell.ready_nz[i] && cell.wake_at[i] > now {
            wake_min = wake_min.min(cell.wake_at[i]);
            continue;
        }
        let sm = &mut cell.sms[i];
        sm.wake(now);
        if let Some(owner) = sm.owner {
            if sm.has_ready_work() {
                cell.any_issued = true;
                let sa = &snap.apps[usize::from(owner.0)];
                let mut hook = match &sa.replay {
                    Some(trace) => TraceHook::Replay(trace),
                    None => TraceHook::None,
                };
                let retired = sm.issue_prepare(
                    now,
                    &sa.kernel,
                    sa.base,
                    &snap.cfg,
                    &mut hook,
                    &mut cell.deltas[usize::from(owner.0)],
                );
                if retired > 0 {
                    cell.retired[usize::from(owner.0)] += retired;
                }
                if sm.has_pending() {
                    cell.pending.push(lo + i as u32);
                }
            }
        }
        cell.refresh(i);
        wake_min = wake_min.min(cell.wake_at[i]);
    }
    cell.wake_min = wake_min;
}

/// Uniform indexed access to the SM set, whether it lives in
/// `Gpu::sms` (the unsharded path) or is split across [`ShardCell`]s
/// mid-run. Lets the serial phases — handoff completion, finish
/// detection, SM reassignment, fault application — exist once and run
/// bit-identically on both layouts.
pub(crate) trait SmSlab {
    /// Number of SMs.
    fn len(&self) -> usize;
    /// The SM with global id `i`.
    fn get(&self, i: usize) -> &Sm;
    /// The SM with global id `i`, mutably.
    fn get_mut(&mut self, i: usize) -> &mut Sm;
}

impl SmSlab for Vec<Sm> {
    fn len(&self) -> usize {
        Vec::len(self)
    }
    fn get(&self, i: usize) -> &Sm {
        &self[i]
    }
    fn get_mut(&mut self, i: usize) -> &mut Sm {
        &mut self[i]
    }
}

/// [`SmSlab`] over the cells of a sharded run (global id `i` lives in
/// cell `i / chunk` at local index `i % chunk`).
pub(crate) struct CellsView<'a, 'b> {
    cells: &'a mut [&'b mut ShardCell],
    chunk: usize,
    len: usize,
}

impl<'a, 'b> CellsView<'a, 'b> {
    /// Builds the view; `cells` must be in shard order with every cell
    /// except the last holding the same number of SMs.
    pub fn new(cells: &'a mut [&'b mut ShardCell]) -> Self {
        let chunk = cells.first().map_or(1, |c| c.sms.len().max(1));
        let len = cells.iter().map(|c| c.sms.len()).sum();
        CellsView { cells, chunk, len }
    }
}

impl SmSlab for CellsView<'_, '_> {
    fn len(&self) -> usize {
        self.len
    }
    fn get(&self, i: usize) -> &Sm {
        &self.cells[i / self.chunk].sms[i % self.chunk]
    }
    fn get_mut(&mut self, i: usize) -> &mut Sm {
        &mut self.cells[i / self.chunk].sms[i % self.chunk]
    }
}

/// How a sharded run executes its cells: sequentially in one thread,
/// or with the parallel phase fanned out to worker threads. Both give
/// the serial phases exclusive access to every cell in shard order, so
/// results are identical by construction.
pub(crate) trait ShardExec {
    /// Runs the cycle's parallel work for cycle `now`: [`phase_a_cell`]
    /// on every SM cell, and — when the memory system is sharded —
    /// phase M ([`tick_cell`]) on every memory shard, followed by the
    /// serial boundary fold ([`MemSys::fold_shards`]). With one memory
    /// shard, `memsys.tick` runs the reference single-pass path. Phase
    /// A never touches the memory system and phase M never touches SM
    /// state, so the two phases commute and may overlap on workers.
    fn phase_am(
        &mut self,
        now: u64,
        comps: &[Completion],
        snap: &RunSnapshot,
        memsys: &mut MemSys,
        stats: &mut SimStats,
    );
    /// Runs `f` with exclusive access to all cells, in shard order.
    fn with_cells<R>(&mut self, f: impl FnOnce(&mut [&mut ShardCell]) -> R) -> R;
}

/// Single-thread executor: the default, and the one that carries the
/// serial-elision speedup (no synchronization at all).
pub(crate) struct SeqExec<'a> {
    /// The run's cells, in shard order.
    pub cells: &'a mut [ShardCell],
}

impl ShardExec for SeqExec<'_> {
    fn phase_am(
        &mut self,
        now: u64,
        comps: &[Completion],
        snap: &RunSnapshot,
        memsys: &mut MemSys,
        stats: &mut SimStats,
    ) {
        for cell in self.cells.iter_mut() {
            phase_a_cell(cell, now, comps, snap);
        }
        // Dispatches internally: one cell runs the reference path,
        // several run `tick_cell` per cell then fold in cell order.
        memsys.tick(now, stats);
    }

    fn with_cells<R>(&mut self, f: impl FnOnce(&mut [&mut ShardCell]) -> R) -> R {
        let mut refs: Vec<&mut ShardCell> = self.cells.iter_mut().collect();
        f(&mut refs)
    }
}

/// Epoch-barrier shared between the coordinator and the phase-A
/// workers of a threaded run.
#[derive(Debug, Default)]
pub(crate) struct ShardCtl {
    state: Mutex<CtlState>,
    /// Signals a new epoch (or shutdown) to the workers.
    go: Condvar,
    /// Signals per-worker phase-A completion back to the coordinator.
    done: Condvar,
    /// The cycle's completions, published before each epoch.
    comps: Mutex<Vec<Completion>>,
    /// Immutable per-tick memory-system context, published before each
    /// epoch when phase M runs on the workers.
    pub(crate) mem_ctx: Mutex<MemTickCtx>,
}

#[derive(Debug, Default)]
struct CtlState {
    epoch: u64,
    now: u64,
    finished: usize,
    shutdown: bool,
}

impl ShardCtl {
    /// Wakes every worker for one phase-A epoch at cycle `now` and
    /// returns once all `workers` helpers reported done. The caller
    /// must process the coordinator's own shards between publishing
    /// and waiting — this method does both ends of the barrier.
    fn run_epoch(
        &self,
        now: u64,
        comps: &[Completion],
        workers: usize,
        coordinator: impl FnOnce(&[Completion]),
    ) {
        {
            let mut c = self.comps.lock().unwrap();
            c.clear();
            c.extend_from_slice(comps);
        }
        {
            let mut st = self.state.lock().unwrap();
            st.now = now;
            st.finished = 0;
            st.epoch += 1;
        }
        self.go.notify_all();
        coordinator(comps);
        let mut st = self.state.lock().unwrap();
        while st.finished < workers {
            st = self.done.wait(st).unwrap();
        }
    }

    /// Tells the workers to exit; called once the drive loop returns.
    pub fn shutdown(&self) {
        self.state.lock().unwrap().shutdown = true;
        self.go.notify_all();
    }
}

/// Sends shutdown to the workers when dropped, so a panic unwinding
/// out of the coordinator's drive loop cannot leave workers parked on
/// the epoch condvar (which would hang the joining thread scope).
pub(crate) struct ShutdownGuard<'a>(pub &'a ShardCtl);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Body of a parallel-phase worker `id` (of `threads` total,
/// coordinator included): waits for each epoch, steps the SM cells it
/// owns (`shard % threads == id`), then ticks its stripe of memory
/// shards (phase M) when the run shards the memory system, reports
/// done. Returns on shutdown. Memory shards ride the same leased
/// workers — no thread is ever spawned for phase M, so the
/// `GCS_SIM_THREADS` budget holds by construction.
pub(crate) fn worker_loop(
    id: usize,
    threads: usize,
    cells: &[Mutex<ShardCell>],
    mem: &[Mutex<Option<MemShard>>],
    ctl: &ShardCtl,
    snap: &RunSnapshot,
) {
    let mut seen = 0u64;
    loop {
        let now = {
            let mut st = ctl.state.lock().unwrap();
            while st.epoch == seen && !st.shutdown {
                st = ctl.go.wait(st).unwrap();
            }
            if st.shutdown {
                return;
            }
            seen = st.epoch;
            st.now
        };
        {
            let comps = ctl.comps.lock().unwrap();
            for s in (id..cells.len()).step_by(threads) {
                let mut cell = cells[s].lock().unwrap();
                phase_a_cell(&mut cell, now, &comps, snap);
            }
        }
        if !mem.is_empty() {
            let ctx = *ctl.mem_ctx.lock().unwrap();
            for s in (id..mem.len()).step_by(threads) {
                let mut slot = mem[s].lock().unwrap();
                if let Some(cell) = slot.as_mut() {
                    tick_cell(cell, now, &ctx);
                }
            }
        }
        let mut st = ctl.state.lock().unwrap();
        st.finished += 1;
        drop(st);
        ctl.done.notify_one();
    }
}

/// Threaded executor: cells live behind (uncontended) mutexes; the
/// coordinator steps shard stripe 0 itself while `threads - 1` helper
/// workers step the rest, meeting at an epoch barrier. Serial phases
/// lock every cell — exclusive by the barrier — and run unchanged, so
/// thread count can never affect results.
pub(crate) struct ThreadedExec<'a> {
    /// The run's cells, in shard order.
    pub cells: &'a [Mutex<ShardCell>],
    /// Phase-M slots, one per memory shard (empty when the memory
    /// system is unsharded). Filled by the coordinator before each
    /// epoch and drained after the barrier.
    pub mem: &'a [Mutex<Option<MemShard>>],
    /// The epoch barrier shared with the workers.
    pub ctl: &'a ShardCtl,
    /// Total participating threads (coordinator + helpers).
    pub threads: usize,
}

impl ShardExec for ThreadedExec<'_> {
    fn phase_am(
        &mut self,
        now: u64,
        comps: &[Completion],
        snap: &RunSnapshot,
        memsys: &mut MemSys,
        stats: &mut SimStats,
    ) {
        let (cells, mem, ctl, threads) = (self.cells, self.mem, self.ctl, self.threads);
        if mem.is_empty() {
            ctl.run_epoch(now, comps, threads - 1, |comps| {
                for s in (0..cells.len()).step_by(threads) {
                    let mut cell = cells[s].lock().unwrap();
                    phase_a_cell(&mut cell, now, comps, snap);
                }
            });
            memsys.tick(now, stats);
            return;
        }
        // Publish the tick context and fill the shard slots *before*
        // the epoch bump so the workers find both on wake.
        let ctx = memsys.tick_ctx();
        *ctl.mem_ctx.lock().unwrap() = ctx;
        for (slot, cell) in mem.iter().zip(memsys.take_shards()) {
            *slot.lock().unwrap() = Some(cell);
        }
        ctl.run_epoch(now, comps, threads - 1, |comps| {
            for s in (0..cells.len()).step_by(threads) {
                let mut cell = cells[s].lock().unwrap();
                phase_a_cell(&mut cell, now, comps, snap);
            }
            for s in (0..mem.len()).step_by(threads) {
                let mut slot = mem[s].lock().unwrap();
                if let Some(cell) = slot.as_mut() {
                    tick_cell(cell, now, &ctx);
                }
            }
        });
        // Barrier passed: every shard is back at rest. Drain the slots
        // in shard order and run the serial boundary fold.
        let mut shards = Vec::with_capacity(mem.len());
        for slot in mem {
            shards.push(slot.lock().unwrap().take().expect("phase-M slot drained early"));
        }
        memsys.restore_shards(shards);
        memsys.fold_shards(stats);
    }

    fn with_cells<R>(&mut self, f: impl FnOnce(&mut [&mut ShardCell]) -> R) -> R {
        let mut guards: Vec<_> = self.cells.iter().map(|m| m.lock().unwrap()).collect();
        let mut refs: Vec<&mut ShardCell> = guards.iter_mut().map(|g| &mut **g).collect();
        f(&mut refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_partitions_every_sm_once() {
        for n in [1u32, 2, 7, 8, 60, 61] {
            for k in [1u32, 2, 3, 4, 7, 64] {
                let plan = ShardPlan::new(n, k);
                let mut seen = vec![false; n as usize];
                for (s, (base, len)) in plan.ranges().enumerate() {
                    for sm in base..base + len {
                        assert!(!seen[sm as usize], "SM {sm} in two shards");
                        seen[sm as usize] = true;
                        assert_eq!(plan.shard_of(sm), s as u32);
                    }
                }
                assert!(seen.iter().all(|&s| s), "n={n} k={k} missed an SM");
            }
        }
    }

    #[test]
    fn plan_clamps_shards() {
        assert_eq!(ShardPlan::new(8, 0).shards, 1);
        assert_eq!(ShardPlan::new(8, 100).shards, 8);
        assert_eq!(ShardPlan::new(60, 4).chunk(), 15);
    }
}
