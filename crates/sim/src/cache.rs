//! Set-associative cache model with LRU replacement.
//!
//! Used for both the per-SM L1 data caches and the shared L2 slices.
//! The model tracks tags only (no data), which is all the timing model
//! needs; hit/miss/byte counters feed the profiler.

use crate::config::CacheConfig;

/// Result of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Line present.
    Hit,
    /// Line absent; it has been allocated (possibly evicting LRU).
    Miss,
}

/// One way's metadata: tag and LRU stamp side by side, so a set probe
/// walks a single contiguous span instead of two parallel arrays.
#[derive(Debug, Clone, Copy)]
struct WayMeta {
    /// Line number resident in this way; `u64::MAX` marks invalid.
    tag: u64,
    /// LRU stamp (larger = more recently used).
    stamp: u64,
}

/// A tag-only set-associative LRU cache.
///
/// # Example
///
/// ```
/// use gcs_sim::cache::{Cache, Access};
/// use gcs_sim::config::CacheConfig;
///
/// let mut c = Cache::new(CacheConfig { bytes: 1024, line_bytes: 128, ways: 2 });
/// assert_eq!(c.access(0), Access::Miss);
/// assert_eq!(c.access(0), Access::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: u32,
    line_shift: u32,
    /// `sets - 1` when the set count is a power of two; the probe paths
    /// then index with a mask instead of a 64-bit modulo.
    set_mask: u64,
    /// Flat `sets x ways` metadata (tag + stamp interleaved).
    meta: Vec<WayMeta>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache for the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two or the geometry does
    /// not yield at least one set.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let sets = cfg.sets();
        let ways = cfg.ways as usize;
        Cache {
            cfg,
            sets,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: if sets.is_power_of_two() {
                u64::from(sets) - 1
            } else {
                0
            },
            meta: vec![
                WayMeta {
                    tag: u64::MAX,
                    stamp: 0
                };
                sets as usize * ways
            ],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Geometry this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Set index of a line number. All shipped geometries have
    /// power-of-two set counts and take the mask path; the modulo
    /// fallback keeps arbitrary configurations correct.
    #[inline]
    fn set_of(&self, line: u64) -> usize {
        if self.set_mask != 0 {
            (line & self.set_mask) as usize
        } else {
            (line % u64::from(self.sets)) as usize
        }
    }

    /// Probes (and on miss allocates) the line containing `addr`.
    pub fn access(&mut self, addr: u64) -> Access {
        self.clock += 1;
        let line = addr >> self.line_shift;
        let ways = self.cfg.ways as usize;
        let base = self.set_of(line) * ways;
        let slots = &mut self.meta[base..base + ways];

        if let Some(w) = slots.iter().position(|m| m.tag == line) {
            slots[w].stamp = self.clock;
            self.hits += 1;
            return Access::Hit;
        }
        self.misses += 1;
        // Prefer an invalid way, else evict LRU.
        let victim = match slots.iter().position(|m| m.tag == u64::MAX) {
            Some(w) => w,
            None => {
                let mut lru = 0;
                for w in 1..ways {
                    if slots[w].stamp < slots[lru].stamp {
                        lru = w;
                    }
                }
                lru
            }
        };
        slots[victim] = WayMeta {
            tag: line,
            stamp: self.clock,
        };
        Access::Miss
    }

    /// Probes without allocating on miss (used for store lookups when the
    /// policy is write-no-allocate).
    pub fn probe(&mut self, addr: u64) -> Access {
        let line = addr >> self.line_shift;
        let ways = self.cfg.ways as usize;
        let base = self.set_of(line) * ways;
        if let Some(w) = self.meta[base..base + ways]
            .iter()
            .position(|m| m.tag == line)
        {
            self.clock += 1;
            self.meta[base + w].stamp = self.clock;
            self.hits += 1;
            Access::Hit
        } else {
            self.misses += 1;
            Access::Miss
        }
    }

    /// Installs the line containing `addr` without counting a probe
    /// (fill path on a response from the next level). Inserts at MRU.
    pub fn fill(&mut self, addr: u64) {
        self.fill_at(addr, false);
    }

    /// Installs the line at the **LRU** position instead of MRU — the
    /// streaming-resistant insertion policy used for DRAM fills into the
    /// shared L2. A line with no reuse is evicted by the next fill to
    /// its set, so a zero-reuse stream cannot flush a co-runner's hot
    /// working set; lines that do get hit are promoted to MRU by the
    /// probe path and survive.
    pub fn fill_lru(&mut self, addr: u64) {
        self.fill_at(addr, true);
    }

    fn fill_at(&mut self, addr: u64, at_lru: bool) {
        self.clock += 1;
        let line = addr >> self.line_shift;
        let ways = self.cfg.ways as usize;
        let base = self.set_of(line) * ways;
        let slots = &mut self.meta[base..base + ways];
        if slots.iter().any(|m| m.tag == line) {
            return;
        }
        let victim = match slots.iter().position(|m| m.tag == u64::MAX) {
            Some(w) => w,
            None => {
                let mut lru = 0;
                for w in 1..ways {
                    if slots[w].stamp < slots[lru].stamp {
                        lru = w;
                    }
                }
                lru
            }
        };
        let stamp = if at_lru {
            // Just below every resident line's stamp: next insertion to
            // this set evicts this line first unless it gets promoted.
            let min = (0..ways)
                .filter(|&w| w != victim)
                .map(|w| slots[w].stamp)
                .min()
                .unwrap_or(self.clock);
            min.saturating_sub(1)
        } else {
            self.clock
        };
        slots[victim] = WayMeta { tag: line, stamp };
    }

    /// Invalidates everything (used when an SM is handed to a different
    /// application: the incoming app must not inherit warm lines).
    pub fn flush(&mut self) {
        self.meta.fill(WayMeta {
            tag: u64::MAX,
            stamp: 0,
        });
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]`, zero when no accesses happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 128 B lines.
        Cache::new(CacheConfig {
            bytes: 512,
            line_bytes: 128,
            ways: 2,
        })
    }

    #[test]
    fn hit_after_miss() {
        let mut c = tiny();
        assert_eq!(c.access(0x1000), Access::Miss);
        assert_eq!(c.access(0x1000), Access::Hit);
        assert_eq!(c.access(0x1001), Access::Hit, "same line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three distinct lines mapping to set 0: lines 0, 2, 4 (even lines).
        let a = 0u64;
        let b = 2 * 128;
        let d = 4 * 128;
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU, b is LRU
        c.access(d); // evicts b
        assert_eq!(c.access(a), Access::Hit);
        assert_eq!(c.access(b), Access::Miss, "b was evicted");
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        c.access(0); // set 0
        c.access(128); // set 1
        assert_eq!(c.access(0), Access::Hit);
        assert_eq!(c.access(128), Access::Hit);
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut c = tiny();
        assert_eq!(c.probe(0x40), Access::Miss);
        assert_eq!(c.probe(0x40), Access::Miss, "probe must not allocate");
        c.fill(0x40);
        assert_eq!(c.probe(0x40), Access::Hit);
    }

    #[test]
    fn fill_is_idempotent() {
        let mut c = tiny();
        c.fill(0);
        c.fill(0);
        assert_eq!(c.access(0), Access::Hit);
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert_eq!(c.access(0), Access::Miss);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny(); // 4 lines capacity
        let lines = 16u64;
        // Two passes over 16 distinct lines with LRU => all misses.
        for _ in 0..2 {
            for i in 0..lines {
                c.access(i * 128);
            }
        }
        assert_eq!(c.misses(), 32);
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn working_set_within_cache_hits_on_second_pass() {
        let mut c = tiny();
        for _ in 0..2 {
            for i in 0..4u64 {
                c.access(i * 128);
            }
        }
        assert_eq!(c.misses(), 4);
        assert_eq!(c.hits(), 4);
    }
}
#[cfg(test)]
mod lru_insertion_tests {
    use super::*;
    use crate::config::CacheConfig;

    fn tiny() -> Cache {
        // 1 set x 4 ways.
        Cache::new(CacheConfig {
            bytes: 512,
            line_bytes: 128,
            ways: 4,
        })
    }

    #[test]
    fn lru_fills_evict_each_other_not_hot_lines() {
        let mut c = tiny();
        // Three hot lines, promoted by hits.
        for l in 0..3u64 {
            c.access(l * 512); // all map to set 0 (1 set)
            c.access(l * 512);
        }
        // A stream of 32 no-reuse fills at LRU position.
        for l in 10..42u64 {
            c.fill_lru(l * 512);
        }
        // The hot lines must still be resident.
        for l in 0..3u64 {
            assert_eq!(c.probe(l * 512), Access::Hit, "hot line {l} was flushed");
        }
    }

    #[test]
    fn lru_filled_line_promoted_on_hit_survives() {
        let mut c = tiny();
        for l in 0..3u64 {
            c.access(l * 512);
        }
        c.fill_lru(100 * 512);
        assert_eq!(c.probe(100 * 512), Access::Hit, "promoted by this probe");
        // Another LRU fill must now evict something else... the probe
        // promoted line 100 to MRU, so a subsequent fill_lru + probe of
        // a different line leaves line 100 resident.
        c.fill_lru(200 * 512);
        c.fill_lru(300 * 512);
        assert_eq!(c.probe(100 * 512), Access::Hit);
    }
}
