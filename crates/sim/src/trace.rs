//! Windowed time-series tracing: per-window device and per-application
//! rates, as the SMRA controller sees them (§3.2.4 samples every `T_C`
//! cycles). Useful for debugging allocation decisions and for plotting
//! co-run dynamics.

use crate::gpu::Gpu;
use crate::kernel::AppId;
use crate::stats::{window_between, SimStats};

/// One sampled window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSample {
    /// Cycle at the end of the window.
    pub cycle: u64,
    /// Device thread-IPC over the window.
    pub device_ipc: f64,
    /// Per-app thread-IPC over the window.
    pub app_ipc: Vec<f64>,
    /// Per-app DRAM bytes/cycle over the window.
    pub app_bw: Vec<f64>,
    /// Per-app effective SM counts at the sample point.
    pub sm_counts: Vec<u32>,
}

/// Records windowed samples while driving a device.
///
/// # Example
///
/// ```
/// use gcs_sim::config::GpuConfig;
/// use gcs_sim::gpu::Gpu;
/// use gcs_sim::kernel::{KernelDesc, Op};
/// use gcs_sim::trace::WindowTrace;
///
/// # fn main() -> Result<(), gcs_sim::SimError> {
/// let mut gpu = Gpu::new(GpuConfig::test_small())?;
/// let app = gpu.launch(KernelDesc {
///     name: "t".into(),
///     grid_blocks: 8,
///     warps_per_block: 2,
///     iters_per_warp: 64,
///     body: vec![Op::Alu { latency: 4 }],
///     patterns: vec![],
///     active_lanes: 32,
/// })?;
/// gpu.partition_even();
/// let mut trace = WindowTrace::new(500, vec![app], &gpu);
/// trace.run_to_completion(&mut gpu, 10_000_000)?;
/// assert!(!trace.samples().is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct WindowTrace {
    window: u64,
    apps: Vec<AppId>,
    prev: SimStats,
    samples: Vec<WindowSample>,
}

impl WindowTrace {
    /// Creates a tracer sampling every `window` cycles for `apps`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64, apps: Vec<AppId>, gpu: &Gpu) -> Self {
        assert!(window > 0, "window must be positive");
        WindowTrace {
            window,
            apps,
            prev: gpu.stats().clone(),
            samples: Vec::new(),
        }
    }

    /// Advances the device one window and records a sample.
    pub fn step_window(&mut self, gpu: &mut Gpu) {
        gpu.run_for(self.window);
        let now = gpu.stats();
        let delta = now.cycles.saturating_sub(self.prev.cycles);
        if delta == 0 {
            return;
        }
        let w = window_between(&self.prev, now, delta);
        self.samples.push(WindowSample {
            cycle: now.cycles,
            device_ipc: w.device_ipc,
            app_ipc: self
                .apps
                .iter()
                .map(|a| w.app_ipc[usize::from(a.0)])
                .collect(),
            app_bw: self
                .apps
                .iter()
                .map(|a| w.app_bw[usize::from(a.0)])
                .collect(),
            sm_counts: self.apps.iter().map(|&a| gpu.sm_count(a)).collect(),
        });
        self.prev.copy_from(gpu.stats());
    }

    /// Runs to completion, sampling every window.
    ///
    /// # Errors
    ///
    /// [`crate::SimError::Timeout`] past `max_cycles`.
    pub fn run_to_completion(
        &mut self,
        gpu: &mut Gpu,
        max_cycles: u64,
    ) -> Result<(), crate::SimError> {
        while !gpu.all_done() {
            if gpu.cycle() >= max_cycles {
                return Err(gpu.timeout_error());
            }
            self.step_window(gpu);
        }
        Ok(())
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[WindowSample] {
        &self.samples
    }

    /// Renders the trace as CSV: one row per window, one IPC/BW/SM
    /// column group per traced app.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cycle,device_ipc");
        for (i, _) in self.apps.iter().enumerate() {
            out.push_str(&format!(",app{i}_ipc,app{i}_bw,app{i}_sms"));
        }
        out.push('\n');
        for s in &self.samples {
            out.push_str(&format!("{},{:.3}", s.cycle, s.device_ipc));
            for i in 0..self.apps.len() {
                out.push_str(&format!(
                    ",{:.3},{:.3},{}",
                    s.app_ipc[i], s.app_bw[i], s.sm_counts[i]
                ));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::kernel::{KernelDesc, Op};

    fn kernel(blocks: u32) -> KernelDesc {
        KernelDesc {
            name: "t".into(),
            grid_blocks: blocks,
            warps_per_block: 2,
            iters_per_warp: 200,
            body: vec![Op::Alu { latency: 4 }],
            patterns: vec![],
            active_lanes: 32,
        }
    }

    #[test]
    fn traces_a_run_and_renders_csv() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = gpu.launch(kernel(16)).unwrap();
        let b = gpu.launch(kernel(16)).unwrap();
        gpu.partition_even();
        let mut t = WindowTrace::new(1_000, vec![a, b], &gpu);
        t.run_to_completion(&mut gpu, 50_000_000).unwrap();
        assert!(t.samples().len() >= 2, "expected several windows");
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "cycle,device_ipc,app0_ipc,app0_bw,app0_sms,app1_ipc,app1_bw,app1_sms");
        assert_eq!(lines.len(), t.samples().len() + 1);
        // Sampled IPC must be positive while both apps run.
        assert!(t.samples()[0].device_ipc > 0.0);
        assert_eq!(t.samples()[0].sm_counts, vec![4, 4]);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        WindowTrace::new(0, vec![], &gpu);
    }

    #[test]
    fn timeout_propagates() {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = gpu.launch(kernel(64)).unwrap();
        gpu.partition_even();
        let mut t = WindowTrace::new(100, vec![a], &gpu);
        assert!(t.run_to_completion(&mut gpu, 200).is_err());
    }
}
