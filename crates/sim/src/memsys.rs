//! Shared memory system: interconnect, L2 slices and DRAM controllers.
//!
//! This is where inter-application interference happens. All SMs —
//! regardless of which application owns them — funnel their L1 misses
//! through the same L2 slices and memory controllers, so a bandwidth-
//! hungry co-runner inflates everyone's queueing delays and evicts
//! everyone's L2 lines, exactly the mechanism the thesis classifies
//! around (§3.2.2).
//!
//! Topology: the device has `num_mem_ctrls` **slices**, each an L2 bank
//! paired with one DRAM channel. Addresses are row-interleaved across
//! slices so a streaming warp enjoys row-buffer locality within one
//! channel. Each channel schedules with **FR-FCFS** (row hits first,
//! then oldest) by default — the policy the thesis blames for class-M
//! dominance — or plain FCFS for the ablation bench.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::cache::{Access, Cache};
use crate::config::GpuConfig;
use crate::gpu::MAX_APPS;
use crate::kernel::AppId;
use crate::shard::ShardPlan;
use crate::stats::{MemDelta, SimStats};

/// Bound on the slice input queue; SMs are back-pressured beyond this.
/// Kept shallow: a deep queue lets a bandwidth-saturating application
/// bury its co-runners' requests in queueing delay far beyond what a
/// credit-based real interconnect would allow.
const SLICE_QUEUE_DEPTH: usize = 128;

/// A single 128-byte memory transaction from an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Byte address (line-aligned by the issuing SM).
    pub addr: u64,
    /// Write (store) transactions complete silently.
    pub is_write: bool,
    /// Application that issued the transaction.
    pub app: AppId,
    /// Issuing SM.
    pub sm: u32,
    /// Warp slot to wake on completion (ignored for writes).
    pub warp_slot: u32,
    /// Cycle at which the request reaches the slice (after interconnect).
    pub arrive_at: u64,
}

/// A read response ready to wake a warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Cycle at which the response reaches the SM.
    pub at: u64,
    /// Destination SM.
    pub sm: u32,
    /// Destination warp slot.
    pub warp_slot: u32,
}

#[derive(Debug, Clone, Copy)]
struct DramBank {
    open_row: u64,
    ready_at: u64,
}

/// A queued DRAM transaction with its bank index and global row
/// precomputed at enqueue time. FR-FCFS scans the queue every bus slot;
/// carrying these two values kills the division chain
/// (`addr / row_bytes / num_slices % banks`) that the scan would
/// otherwise re-derive per element per cycle.
#[derive(Debug, Clone, Copy)]
struct DramEntry {
    req: MemRequest,
    bank: u32,
    row: u64,
}

/// DRAM controller queue with O(1) out-of-order removal.
///
/// FR-FCFS services requests out of arrival order, which previously
/// cost an O(queue) element shift per pick (`VecDeque::remove`). Here a
/// pick leaves a tombstone instead; live order is preserved and leading
/// tombstones are popped eagerly. A compaction guard bounds the slot
/// storage when an old request starves behind a row-hit stream.
#[derive(Debug, Default)]
struct DramQueue {
    slots: VecDeque<Option<DramEntry>>,
    live: usize,
}

impl DramQueue {
    /// Live (un-serviced) requests.
    fn len(&self) -> usize {
        self.live
    }

    fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn push_back(&mut self, req: MemRequest, bank: u32, row: u64) {
        self.slots.push_back(Some(DramEntry { req, bank, row }));
        self.live += 1;
    }

    /// Live requests oldest-first, each with its raw slot index (valid
    /// until the next `take`/`push_back`).
    fn iter(&self) -> impl Iterator<Item = (usize, &DramEntry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (i, r)))
    }

    /// Removes the live request at raw slot `idx` in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `idx` does not hold a live request.
    fn take(&mut self, idx: usize) -> DramEntry {
        let entry = self.slots[idx].take().expect("take of a live slot");
        self.live -= 1;
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
        }
        // Starvation guard: if tombstones ever dominate (an old request
        // pinned behind a long row-hit stream), compact in place.
        if self.slots.len() > 2 * self.live + 16 {
            self.slots.retain(Option::is_some);
        }
        entry
    }
}

#[derive(Debug)]
struct DramCtrl {
    banks: Vec<DramBank>,
    queue: DramQueue,
    bus_free_at: u64,
}

impl DramCtrl {
    fn new(num_banks: u32) -> Self {
        DramCtrl {
            banks: vec![
                DramBank {
                    open_row: u64::MAX,
                    ready_at: 0,
                };
                num_banks as usize
            ],
            queue: DramQueue::default(),
            bus_free_at: 0,
        }
    }
}

/// Miss-status holding registers per slice: outstanding DRAM reads keyed
/// by line address, with the requests merged onto each fill. The live
/// limit is [`MemSys::mshr_cap`]; a fault plan can throttle it below
/// this nominal capacity.
const MSHRS_PER_SLICE: usize = GpuConfig::MAX_MSHRS_PER_SLICE as usize;

/// Sentinel terminating an intrusive waiter list.
const MSHR_NONE: u32 = u32::MAX;

/// One waiter in the MSHR arena: the merged request plus an intrusive
/// link to the next waiter on the same line (or the next free node when
/// the node is on the free list).
#[derive(Debug, Clone, Copy)]
struct MshrWaiter {
    req: MemRequest,
    next: u32,
}

/// Flat MSHR table: a dense slab of in-flight line addresses (at most
/// [`MSHRS_PER_SLICE`], so lookup is a linear scan over one packed
/// `u64` array — far cheaper than hashing at this size) with per-line
/// waiter lists threaded through a single arena via intrusive links.
/// The arena grows only during warm-up; drained nodes go on a free list
/// and are recycled, so the steady-state miss path never allocates.
#[derive(Debug)]
struct MshrTable {
    /// Packed line addresses of in-flight fills (dense, unordered).
    lines: Vec<u64>,
    /// First waiter of each line's list, parallel to `lines`. The head
    /// is always the request that went to DRAM; merges append.
    heads: Vec<u32>,
    /// Last waiter of each line's list, parallel to `lines` (O(1)
    /// append keeps merge order identical to the old Vec push order).
    tails: Vec<u32>,
    /// Waiter arena; free nodes are chained through `next`.
    nodes: Vec<MshrWaiter>,
    /// Head of the free-node list (`MSHR_NONE` when empty).
    free: u32,
}

impl MshrTable {
    fn new() -> Self {
        MshrTable {
            lines: Vec::with_capacity(MSHRS_PER_SLICE),
            heads: Vec::with_capacity(MSHRS_PER_SLICE),
            tails: Vec::with_capacity(MSHRS_PER_SLICE),
            nodes: Vec::new(),
            free: MSHR_NONE,
        }
    }

    /// Live (in-flight) line entries.
    fn len(&self) -> usize {
        self.lines.len()
    }

    fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Index of `line`'s entry, if a fill for it is in flight.
    #[inline]
    fn find(&self, line: u64) -> Option<usize> {
        self.lines.iter().position(|&l| l == line)
    }

    /// Pops a node off the free list or grows the arena (warm-up only).
    fn alloc_node(&mut self, req: MemRequest) -> u32 {
        if self.free != MSHR_NONE {
            let i = self.free;
            self.free = self.nodes[i as usize].next;
            self.nodes[i as usize] = MshrWaiter {
                req,
                next: MSHR_NONE,
            };
            i
        } else {
            self.nodes.push(MshrWaiter {
                req,
                next: MSHR_NONE,
            });
            (self.nodes.len() - 1) as u32
        }
    }

    /// Allocates a new line entry whose first waiter is `req` (the
    /// request that goes to DRAM). Caller enforces the capacity gate.
    fn insert(&mut self, line: u64, req: MemRequest) {
        let n = self.alloc_node(req);
        self.lines.push(line);
        self.heads.push(n);
        self.tails.push(n);
    }

    /// Appends `req` to the waiter list of entry `idx` (an MSHR hit:
    /// the fill is already in flight, no second fetch).
    fn merge(&mut self, idx: usize, req: MemRequest) {
        let n = self.alloc_node(req);
        let tail = self.tails[idx];
        self.nodes[tail as usize].next = n;
        self.tails[idx] = n;
    }

    /// Removes entry `idx` (O(1) swap-remove; the table is unordered)
    /// and returns the head of its waiter list for draining via
    /// [`MshrTable::drain_next`].
    fn remove(&mut self, idx: usize) -> u32 {
        let head = self.heads[idx];
        self.lines.swap_remove(idx);
        self.heads.swap_remove(idx);
        self.tails.swap_remove(idx);
        head
    }

    /// Frees waiter node `i`, returning its request and successor.
    fn drain_next(&mut self, i: u32) -> (MemRequest, u32) {
        let node = self.nodes[i as usize];
        self.nodes[i as usize].next = self.free;
        self.free = i;
        (node.req, node.next)
    }

    /// Arena size (test hook: steady state must not grow it).
    #[cfg(test)]
    fn arena_len(&self) -> usize {
        self.nodes.len()
    }
}

#[derive(Debug)]
struct Slice {
    l2: Cache,
    input: VecDeque<MemRequest>,
    ctrl: DramCtrl,
    /// In-flight DRAM reads with their merged waiters.
    mshr: MshrTable,
    /// Earliest cycle at which the L2 stage of this slice could possibly
    /// make progress (`u64::MAX` when nothing is queued). Maintained by
    /// `tick` and lowered by `push`; consumed by [`MemSys::next_event`].
    l2_event: u64,
    /// First cycle at which the L2 stage scan must run again. Armed
    /// (to the first future arrival) when a scan consumed nothing and
    /// left only stalled misses: nothing about such a scan can change
    /// until a DRAM service frees queue/MSHR space or fills a line, or
    /// a new request arrives — both of which reset this to zero. Saves
    /// re-probing a full input queue of stalled misses every cycle
    /// while a co-runner saturates the channel. Pure scan elision: no
    /// `SimStats`-visible work is skipped (only the L2 probe tallies
    /// undercount re-probes, exactly as event-horizon jumps already
    /// do).
    scan_wake: u64,
    /// Sharded-mode cache of the DRAM-side event bound for *queries
    /// after the last tick*: exactly what [`dram_bound`] would compute
    /// at `now + 1`, maintained at the end of every sharded slice tick.
    /// Invariants while valid: `u64::MAX` iff the controller queue is
    /// empty; strictly greater than the tick cycle otherwise. `0` marks
    /// the cache stale (the reference `m = 1` tick does not maintain
    /// it); [`MemShard::new`] cold-starts it and the first sharded tick
    /// revalidates. Banks and `bus_free_at` mutate only on a service,
    /// so the value stays exact across elided (skipped) ticks.
    dram_next: u64,
    /// Sharded-mode tick-elision gate: the earliest cycle a tick of
    /// this slice could be anything but a no-op, i.e.
    /// `min(l2_event, dram_next)` at the end of the slice's last tick.
    /// Before that cycle the reference tick provably changes nothing
    /// observable (see `tick_slice`): no due arrival, no consumable
    /// stalled miss (DRAM/MSHR space can only be freed by a service,
    /// which cannot happen before `dram_next`), and no DRAM pick can
    /// succeed. Lowered by `push` (to the new `arrive_at`), reset to 0
    /// by the fault knobs (`set_extra_latency`, `set_mshr_cap`): a
    /// knob change can turn a stalled-miss re-scan from a no-op into
    /// progress, which breaks the proof until the next real tick.
    sleep_at: u64,
    /// Sharded-mode stalled-prefix cache: the first `stalled_skip`
    /// entries of `input` were probed by the last scan and verdicted
    /// "stalled miss" (no L2 line, no MSHR entry to merge with, no
    /// queue/MSHR space to proceed into). Until a DRAM service on this
    /// slice those verdicts cannot change — space frees and lines fill
    /// only on a service, and while the stall reason holds no insert
    /// can create a mergeable MSHR entry either — so the next scan
    /// starts probing at this index instead of re-probing the whole
    /// prefix (the dominant cost of a saturated slice's tick).
    /// Maintained only in sharded (`TRACK`) mode; reset to 0 on every
    /// service, by the fault knobs (`set_mshr_cap` changes the
    /// verdicts) and on repartition. Pure scan elision, like
    /// `scan_wake`: only the L2 probe tallies undercount the skipped
    /// re-probes; nothing `SimStats`-visible moves.
    stalled_skip: u32,
}

/// One shard of the memory system during sharded (`m > 1`) stepping:
/// a contiguous range of slices plus shard-local output buffers and
/// exact summaries, mirroring [`ShardCell`](crate::shard::ShardCell)
/// for SMs. Cells never touch shared state while ticking, so they step
/// concurrently; the serial fold replays their outputs in cell order,
/// which equals global slice order, so the merged response/stat stream
/// is bit-identical to the reference slice loop.
#[derive(Debug)]
pub(crate) struct MemShard {
    /// Global index of `slices[0]`.
    pub base: u32,
    /// The shard's slices, in global order.
    slices: Vec<Slice>,
    /// Per-app stat deltas accumulated by this shard's ticks; folded
    /// into [`SimStats`] in cell order every stepped cycle.
    delta: [MemDelta; MAX_APPS],
    /// Responses `(at, sm, warp_slot)` produced by this shard's ticks,
    /// in generation order; folded into the global heap in cell order
    /// (== the reference push order) every stepped cycle.
    resp: Vec<(u64, u32, u32)>,
    /// Exact aggregate `min(l2_event, dram_next)` over the shard's
    /// slices — this shard's whole contribution to
    /// [`MemSys::next_event`], valid only while `ev_valid`. Lowered by
    /// `push`, recomputed at the end of every (non-skipped) shard tick.
    ev_min: u64,
    /// Whether `ev_min`/`dram_next` are populated. False from
    /// [`MemShard::new`] until the shard's first sharded tick (the
    /// reference path does not maintain the caches); while false,
    /// `next_event` falls back to the exact per-slice reference scan.
    ev_valid: bool,
    /// Exact aggregate `min(sleep_at)` over the shard's slices: before
    /// this cycle the whole shard tick is a no-op and is skipped
    /// outright. Lowered by `push`, zeroed by the fault knobs,
    /// recomputed at the end of every non-skipped shard tick.
    sleep_min: u64,
}

impl MemShard {
    /// Wraps `slices` (whose first element has global index `base`),
    /// cold-starting the elision caches: an empty slice is exactly
    /// idle (bounds `u64::MAX`), a busy one is marked stale and forced
    /// to tick at the next stepped cycle, which revalidates it.
    fn new(base: u32, mut slices: Vec<Slice>) -> Self {
        for s in &mut slices {
            s.stalled_skip = 0;
            if s.input.is_empty() && s.ctrl.queue.is_empty() {
                s.dram_next = u64::MAX;
                s.sleep_at = u64::MAX;
            } else {
                s.dram_next = 0;
                s.sleep_at = 0;
            }
        }
        let sleep_min = slices.iter().map(|s| s.sleep_at).min().unwrap_or(u64::MAX);
        MemShard {
            base,
            slices,
            delta: [MemDelta::default(); MAX_APPS],
            resp: Vec::new(),
            ev_min: u64::MAX,
            ev_valid: false,
            sleep_min,
        }
    }
}

/// Everything a slice tick reads from the enclosing [`MemSys`]: config
/// constants plus the live fault knobs, snapshotted once per stepped
/// cycle so shard workers can tick [`MemShard`]s without borrowing the
/// device. Fault events apply before the memory phase of a cycle, so
/// the snapshot is constant within it.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct MemTickCtx {
    num_slices: u64,
    banks: u64,
    icnt: u64,
    /// Nominal L2 latency plus the fault-injected extra.
    l2_lat: u64,
    extra_dram: u64,
    mshr_cap: usize,
    line_mask: u64,
    line_bytes: u64,
    row_bytes: u64,
    row_shift: u32,
    fr_fcfs: bool,
    l2_ports: u32,
    queue_depth: usize,
    t_row_hit: u64,
    t_row_miss: u64,
    t_burst: u64,
    t_rc: u64,
}

/// Where a slice tick sends its observable outputs: directly into the
/// response heap and [`SimStats`] on the reference (`m = 1`) path, or
/// into the owning shard's local buffers on the sharded path. Both
/// sinks receive the calls in the same order, and every stat is an
/// additive counter, so the fold reproduces the direct writes exactly.
trait MemSink {
    fn response(&mut self, at: u64, sm: u32, warp_slot: u32);
    fn l2_to_l1(&mut self, app: AppId, bytes: u64);
    fn dram_read(&mut self, app: AppId, bytes: u64);
    fn dram_write(&mut self, app: AppId, bytes: u64);
    fn dram_row(&mut self, app: AppId, hit: bool);
}

/// Reference-path sink: the untouched `m = 1` behavior.
struct DirectSink<'a> {
    responses: &'a mut BinaryHeap<Reverse<(u64, u32, u32)>>,
    stats: &'a mut SimStats,
}

impl MemSink for DirectSink<'_> {
    #[inline]
    fn response(&mut self, at: u64, sm: u32, warp_slot: u32) {
        self.responses.push(Reverse((at, sm, warp_slot)));
    }
    #[inline]
    fn l2_to_l1(&mut self, app: AppId, bytes: u64) {
        self.stats.app_mut(app).l2_to_l1_bytes += bytes;
    }
    #[inline]
    fn dram_read(&mut self, app: AppId, bytes: u64) {
        self.stats.app_mut(app).dram_read_bytes += bytes;
    }
    #[inline]
    fn dram_write(&mut self, app: AppId, bytes: u64) {
        self.stats.app_mut(app).dram_write_bytes += bytes;
    }
    #[inline]
    fn dram_row(&mut self, app: AppId, hit: bool) {
        let a = self.stats.app_mut(app);
        if hit {
            a.dram_row_hits += 1;
        } else {
            a.dram_row_misses += 1;
        }
    }
}

/// Shard-local sink: buffers everything for the serial fold.
struct ShardSink<'a> {
    resp: &'a mut Vec<(u64, u32, u32)>,
    delta: &'a mut [MemDelta; MAX_APPS],
}

impl MemSink for ShardSink<'_> {
    #[inline]
    fn response(&mut self, at: u64, sm: u32, warp_slot: u32) {
        self.resp.push((at, sm, warp_slot));
    }
    #[inline]
    fn l2_to_l1(&mut self, app: AppId, bytes: u64) {
        self.delta[usize::from(app.0)].l2_to_l1_bytes += bytes;
    }
    #[inline]
    fn dram_read(&mut self, app: AppId, bytes: u64) {
        self.delta[usize::from(app.0)].dram_read_bytes += bytes;
    }
    #[inline]
    fn dram_write(&mut self, app: AppId, bytes: u64) {
        self.delta[usize::from(app.0)].dram_write_bytes += bytes;
    }
    #[inline]
    fn dram_row(&mut self, app: AppId, hit: bool) {
        let d = &mut self.delta[usize::from(app.0)];
        if hit {
            d.dram_row_hits += 1;
        } else {
            d.dram_row_misses += 1;
        }
    }
}

/// The shared memory hierarchy below the L1s.
///
/// The slices always live inside [`MemShard`] cells: one cell holding
/// every slice is the reference (`m = 1`) layout, and
/// [`MemSys::set_shards`] repartitions them for sharded stepping.
/// `tick`/`next_event` dispatch on the cell count, so the `m = 1` path
/// is the untouched reference computation.
#[derive(Debug)]
pub struct MemSys {
    cfg: GpuConfig,
    cells: Vec<MemShard>,
    /// Total slice count (invariant across repartitions).
    num_slices: u32,
    /// Slices per cell (ceiling division; global slice `g` lives in
    /// cell `g / mem_chunk` at local index `g % mem_chunk`).
    mem_chunk: usize,
    /// Pending read responses ordered by completion cycle.
    responses: BinaryHeap<Reverse<(u64, u32, u32)>>,
    line_bytes: u64,
    /// `!(line_bytes - 1)`: line alignment by mask (line sizes are
    /// asserted powers of two).
    line_mask: u64,
    row_bytes: u64,
    /// `log2(row_bytes)` when `row_bytes` is a power of two (every
    /// shipped config); `u32::MAX` otherwise (divide fallback).
    row_shift: u32,
    /// `num_slices - 1` when the slice count is a power of two, else 0
    /// (modulo fallback — e.g. the 6-channel gtx480).
    slice_mask: u64,
    /// Fault-injected extra L2 access latency (0 = nominal).
    extra_l2_lat: u64,
    /// Fault-injected extra DRAM data latency (0 = nominal). Inflates
    /// data return time only; bank occupancy and bus rate stay nominal.
    extra_dram_lat: u64,
    /// Live per-slice MSHR limit, `<= MSHRS_PER_SLICE`.
    mshr_cap: usize,
}

impl MemSys {
    /// Builds the memory system for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two (the caches
    /// enforce the same invariant).
    pub fn new(cfg: &GpuConfig) -> Self {
        let slices: Vec<Slice> = (0..cfg.num_mem_ctrls)
            .map(|_| Slice {
                l2: Cache::new(cfg.l2_slice),
                input: VecDeque::new(),
                ctrl: DramCtrl::new(cfg.dram.banks),
                mshr: MshrTable::new(),
                l2_event: u64::MAX,
                scan_wake: 0,
                dram_next: u64::MAX,
                sleep_at: u64::MAX,
                stalled_skip: 0,
            })
            .collect();
        let line_bytes = u64::from(cfg.l1.line_bytes);
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let num_slices = slices.len() as u64;
        MemSys {
            line_bytes,
            line_mask: !(line_bytes - 1),
            row_bytes: cfg.dram.row_bytes,
            row_shift: if cfg.dram.row_bytes.is_power_of_two() {
                cfg.dram.row_bytes.trailing_zeros()
            } else {
                u32::MAX
            },
            slice_mask: if num_slices.is_power_of_two() {
                num_slices - 1
            } else {
                0
            },
            cfg: cfg.clone(),
            num_slices: num_slices as u32,
            mem_chunk: (num_slices as usize).max(1),
            cells: vec![MemShard::new(0, slices)],
            responses: BinaryHeap::new(),
            extra_l2_lat: 0,
            extra_dram_lat: 0,
            mshr_cap: MSHRS_PER_SLICE,
        }
    }

    /// Iterates every slice in global order, across cells.
    #[inline]
    fn slices(&self) -> impl Iterator<Item = &Slice> {
        self.cells.iter().flat_map(|c| c.slices.iter())
    }

    /// The slice with global index `g`.
    #[inline]
    fn slice_at(&self, g: usize) -> &Slice {
        &self.cells[g / self.mem_chunk].slices[g % self.mem_chunk]
    }

    /// Global DRAM row of an address (shift when `row_bytes` is a power
    /// of two, divide otherwise).
    #[inline]
    fn row_of(&self, addr: u64) -> u64 {
        if self.row_shift != u32::MAX {
            addr >> self.row_shift
        } else {
            addr / self.row_bytes
        }
    }

    /// Sets fault-injected extra latency on every L2 access and DRAM
    /// data return. `(0, 0)` restores nominal timing.
    pub fn set_extra_latency(&mut self, extra_l2: u32, extra_dram: u32) {
        self.extra_l2_lat = u64::from(extra_l2);
        self.extra_dram_lat = u64::from(extra_dram);
        // Timing changed under sleeping scans; force a re-scan. The
        // sharded sleep gates rest on the same no-op proof, so they
        // reset too; the `ev` caches do not — knobs change no queue
        // state, so the reference `next_event` value is unchanged.
        for cell in &mut self.cells {
            for slice in &mut cell.slices {
                slice.scan_wake = 0;
                slice.sleep_at = 0;
                slice.stalled_skip = 0;
            }
            cell.sleep_min = 0;
        }
    }

    /// Throttles the per-slice MSHR limit, clamped to
    /// `[1, MAX_MSHRS_PER_SLICE]`. Entries already in flight stay live;
    /// the cap only gates new allocations.
    pub fn set_mshr_cap(&mut self, cap: u32) {
        self.mshr_cap = (cap.max(1) as usize).min(MSHRS_PER_SLICE);
        // A raised cap can unstall sleeping misses; force a re-scan
        // (and, sharded, a real tick — see `set_extra_latency`).
        for cell in &mut self.cells {
            for slice in &mut cell.slices {
                slice.scan_wake = 0;
                slice.sleep_at = 0;
                slice.stalled_skip = 0;
            }
            cell.sleep_min = 0;
        }
    }

    /// Current per-slice MSHR limit.
    pub fn mshr_cap(&self) -> usize {
        self.mshr_cap
    }

    /// Slice an address routes to (row-interleaved so streams keep
    /// row-buffer locality within one channel).
    pub fn slice_of(&self, addr: u64) -> usize {
        let row = self.row_of(addr);
        if self.slice_mask != 0 {
            (row & self.slice_mask) as usize
        } else {
            (row % u64::from(self.num_slices)) as usize
        }
    }

    /// Whether the target slice can take one more request.
    pub fn can_accept(&self, addr: u64) -> bool {
        self.slice_at(self.slice_of(addr)).input.len() < SLICE_QUEUE_DEPTH
    }

    /// Whether every address in `addrs` targets a slice that can take
    /// one more request this cycle. This is the whole-access admission
    /// check the issue path applies before pushing any transaction of a
    /// load or store (no partial issue); the sharded merge phase uses it
    /// when resolving suspended accesses in canonical order.
    pub fn can_accept_all(&self, addrs: &[u64]) -> bool {
        addrs.iter().all(|&a| self.can_accept(a))
    }

    /// Injects a transaction (already line-aligned). Call only after
    /// [`MemSys::can_accept`] returned `true` this cycle.
    pub fn push(&mut self, req: MemRequest) {
        let g = self.slice_of(req.addr);
        let cell = &mut self.cells[g / self.mem_chunk];
        let slice = &mut cell.slices[g % self.mem_chunk];
        debug_assert!(slice.input.len() < SLICE_QUEUE_DEPTH + 64);
        slice.l2_event = slice.l2_event.min(req.arrive_at);
        slice.scan_wake = 0;
        // Sharded summaries: the new arrival can matter no earlier than
        // `arrive_at`, so lowering (not zeroing) the gates keeps both
        // exact — `l2_event` dropped by the same amount, so `ev_min`
        // stays the true minimum.
        slice.sleep_at = slice.sleep_at.min(req.arrive_at);
        cell.sleep_min = cell.sleep_min.min(req.arrive_at);
        cell.ev_min = cell.ev_min.min(req.arrive_at);
        slice.input.push_back(req);
    }

    /// The per-cycle constants `tick` would hoist, snapshotted so
    /// shard workers can tick cells without borrowing the device.
    pub(crate) fn tick_ctx(&self) -> MemTickCtx {
        MemTickCtx {
            num_slices: u64::from(self.num_slices),
            banks: u64::from(self.cfg.dram.banks),
            icnt: u64::from(self.cfg.icnt_lat),
            l2_lat: u64::from(self.cfg.l2_lat) + self.extra_l2_lat,
            extra_dram: self.extra_dram_lat,
            mshr_cap: self.mshr_cap,
            line_mask: self.line_mask,
            line_bytes: self.line_bytes,
            row_bytes: self.row_bytes,
            row_shift: self.row_shift,
            fr_fcfs: self.cfg.dram.fr_fcfs,
            l2_ports: self.cfg.l2_ports,
            queue_depth: self.cfg.dram.queue_depth,
            t_row_hit: u64::from(self.cfg.dram.t_row_hit),
            t_row_miss: u64::from(self.cfg.dram.t_row_miss),
            t_burst: u64::from(self.cfg.dram.t_burst),
            t_rc: u64::from(self.cfg.dram.t_rc),
        }
    }

    /// Advances the slices and DRAM controllers by one cycle. Slices
    /// with nothing queued are skipped entirely (MSHR entries imply a
    /// queued read, so the emptiness check is complete).
    ///
    /// With one cell this is the untouched reference loop (responses
    /// and stats written directly, no elision-cache maintenance); with
    /// `m > 1` cells each shard ticks independently against its local
    /// buffers and the serial fold replays the outputs in cell order.
    pub fn tick(&mut self, now: u64, stats: &mut SimStats) {
        let ctx = self.tick_ctx();
        if self.cells.len() == 1 {
            let mut sink = DirectSink {
                responses: &mut self.responses,
                stats,
            };
            for slice in &mut self.cells[0].slices {
                if slice.input.is_empty() && slice.ctrl.queue.is_empty() {
                    debug_assert!(slice.mshr.is_empty());
                    continue;
                }
                tick_slice::<_, false>(slice, now, &ctx, &mut sink);
            }
        } else {
            for cell in &mut self.cells {
                tick_cell(cell, now, &ctx);
            }
            self.fold_shards(stats);
        }
    }
}

/// The DRAM-side event bound the reference `next_event` computes for
/// one slice at query cycle `now`: the next scheduling opportunity
/// (`bus_free_at`, or the earliest bank-ready time when the bus is
/// free but every candidate bank was busy), `u64::MAX` when nothing is
/// queued.
#[inline]
fn dram_bound(slice: &Slice, now: u64) -> u64 {
    let ctrl = &slice.ctrl;
    if ctrl.queue.is_empty() {
        return u64::MAX;
    }
    if ctrl.bus_free_at >= now {
        ctrl.bus_free_at
    } else {
        let mut ev = u64::MAX;
        for (_, e) in ctrl.queue.iter() {
            ev = ev.min(ctrl.banks[e.bank as usize].ready_at);
        }
        ev
    }
}

/// Ticks every non-idle, non-sleeping slice of one shard for cycle
/// `now` against the shard-local buffers, then recomputes the shard's
/// exact `ev_min`/`sleep_min` aggregates. Touches nothing outside the
/// cell, so cells tick concurrently; a shard whose `sleep_min` has not
/// been reached is skipped wholesale (every slice tick would be a
/// no-op, so the aggregates are still current).
pub(crate) fn tick_cell(cell: &mut MemShard, now: u64, ctx: &MemTickCtx) {
    if now < cell.sleep_min {
        return;
    }
    let mut sink = ShardSink {
        resp: &mut cell.resp,
        delta: &mut cell.delta,
    };
    for slice in &mut cell.slices {
        if slice.input.is_empty() && slice.ctrl.queue.is_empty() {
            debug_assert!(slice.mshr.is_empty());
            continue;
        }
        if now < slice.sleep_at {
            continue;
        }
        tick_slice::<_, true>(slice, now, ctx, &mut sink);
    }
    let mut ev = u64::MAX;
    let mut sleep = u64::MAX;
    for slice in &cell.slices {
        ev = ev.min(slice.l2_event.min(slice.dram_next));
        sleep = sleep.min(slice.sleep_at);
    }
    cell.ev_min = ev;
    cell.sleep_min = sleep;
    cell.ev_valid = true;
}

/// One slice's reference cycle: the L2 stage, the DRAM stage and the
/// event bookkeeping, with observable outputs routed through `sink`.
/// `TRACK` additionally maintains the sharded elision caches
/// (`dram_next`, `sleep_at`); the `m = 1` reference path instantiates
/// `TRACK = false` and pays nothing.
fn tick_slice<S: MemSink, const TRACK: bool>(
    slice: &mut Slice,
    now: u64,
    ctx: &MemTickCtx,
    sink: &mut S,
) {
    let num_slices = ctx.num_slices;
    let banks = ctx.banks;
    let icnt = ctx.icnt;
    let l2_lat = ctx.l2_lat;
    let extra_dram = ctx.extra_dram;
    let mshr_cap = ctx.mshr_cap;
    let line_mask = ctx.line_mask;
    let line_bytes = ctx.line_bytes;
    let row_bytes = ctx.row_bytes;
    let row_shift = ctx.row_shift;
    let fr_fcfs = ctx.fr_fcfs;
    {
        {
            // L2 stage: process up to l2_ports arrived requests. A miss
            // that cannot enter a full DRAM queue is *skipped over*, not
            // blocked on: L2 hits behind it would otherwise suffer
            // head-of-line delay whenever a co-runner saturates the
            // channel. Misses stay in arrival order among themselves:
            // consumed entries are compacted out in place (front pops
            // while no miss has been bypassed, one order-preserving
            // tail shift afterwards) instead of an O(queue) element
            // shift per removal.
            let mut processed = 0;
            let mut stalled_kept = false; // bypassed misses left in queue
            let mut due_left = false; // port-limited with due entries left
            let mut next_arrival = u64::MAX; // first not-yet-due arrival
            // A sleeping scan (armed below) would re-probe the same
            // stalled misses to the same verdicts; skip it wholesale
            // until a service or arrival can change the outcome.
            let scanned = now >= slice.scan_wake;
            // Sharded mode: the leading `stalled_skip` entries carry a
            // still-valid "stalled" verdict from an earlier scan (see
            // the field's invariant) — start probing after them.
            let mut verdicted = 0u32;
            if scanned {
                let mut len = slice.input.len();
                let skip = if TRACK {
                    (slice.stalled_skip as usize).min(len)
                } else {
                    0
                };
                let mut i = skip; // read cursor
                let mut w = skip; // write cursor (entries kept)
                if skip > 0 {
                    stalled_kept = true;
                }
                while i < len {
                    let req = slice.input[i];
                    if processed >= ctx.l2_ports {
                        if req.arrive_at <= now {
                            due_left = true;
                        } else {
                            next_arrival = req.arrive_at;
                        }
                        break;
                    }
                    if req.arrive_at > now {
                        next_arrival = req.arrive_at;
                        break; // queue is FIFO in arrival time
                    }
                    let dram_full = slice.ctrl.queue.len() >= ctx.queue_depth;
                    // Probe without allocating: a stalled miss retries
                    // later, and an early allocation would turn that
                    // retry into a phantom hit. Lines are filled on DRAM
                    // response.
                    let line = req.addr & line_mask;
                    let consumed = match slice.l2.probe(req.addr) {
                        Access::Hit => {
                            if !req.is_write {
                                // Write hits are absorbed silently.
                                let at = now + l2_lat + icnt;
                                sink.l2_to_l1(req.app, line_bytes);
                                sink.response(at, req.sm, req.warp_slot);
                            }
                            true
                        }
                        Access::Miss => {
                            // MSHR hit: a fill for this line is already
                            // in flight; merge instead of fetching twice
                            // (merging is not gated by a full DRAM queue).
                            let mshr_hit = if req.is_write {
                                None
                            } else {
                                slice.mshr.find(line)
                            };
                            if let Some(idx) = mshr_hit {
                                slice.mshr.merge(idx, req);
                                true
                            } else if !dram_full
                                && (req.is_write || slice.mshr.len() < mshr_cap)
                            {
                                if !req.is_write {
                                    slice.mshr.insert(line, req);
                                }
                                let row = if row_shift != u32::MAX {
                                    req.addr >> row_shift
                                } else {
                                    req.addr / row_bytes
                                };
                                let bank = ((row / num_slices) % banks) as u32;
                                slice.ctrl.queue.push_back(req, bank, row);
                                true
                            } else {
                                false // stalled; younger requests bypass
                            }
                        }
                    };
                    if consumed {
                        processed += 1;
                        if i == 0 && w == 0 {
                            slice.input.pop_front(); // no gap yet: O(1)
                            len -= 1;
                        } else {
                            i += 1; // leave a gap; closed below
                        }
                    } else {
                        stalled_kept = true;
                        if w != i {
                            slice.input[w] = slice.input[i];
                        }
                        w += 1;
                        i += 1;
                    }
                }
                // Every kept entry below the cursor was probed (this
                // scan or a still-valid earlier one) and stalled.
                verdicted = w as u32;
                // Close the gap: shift the unexamined tail down over the
                // consumed entries, preserving order.
                if w != i {
                    while i < len {
                        slice.input[w] = slice.input[i];
                        w += 1;
                        i += 1;
                    }
                    slice.input.truncate(w);
                }
            }

            // DRAM stage: one scheduling decision per free bus slot.
            let mut serviced = false;
            if slice.ctrl.bus_free_at <= now && !slice.ctrl.queue.is_empty() {
                let pick = MemSys::schedule_dram(&slice.ctrl, now, fr_fcfs);
                if let Some(idx) = pick {
                    serviced = true;
                    let entry = slice.ctrl.queue.take(idx);
                    let req = entry.req;
                    let global_row = entry.row;
                    // Rows are distributed to slices by `row % slices`, so
                    // the bank index uses the row bits *above* the slice
                    // selection (precomputed at enqueue) or slices would
                    // only ever exercise gcd(slices, banks) of their
                    // banks.
                    let bank = &mut slice.ctrl.banks[entry.bank as usize];
                    let row_hit = bank.open_row == global_row;
                    let lat = if row_hit { ctx.t_row_hit } else { ctx.t_row_miss };
                    // Data latency differs from bank occupancy: an open
                    // row pipelines CAS-to-CAS at bus rate, while a row
                    // miss ties the bank up for the activate cycle.
                    let occupancy = if row_hit { ctx.t_burst } else { ctx.t_rc };
                    let start = now.max(bank.ready_at);
                    let done = start + lat + extra_dram;
                    bank.open_row = global_row;
                    bank.ready_at = start + occupancy;
                    slice.ctrl.bus_free_at = now + ctx.t_burst;

                    if req.is_write {
                        sink.dram_write(req.app, line_bytes);
                    } else {
                        sink.dram_read(req.app, line_bytes);
                        sink.l2_to_l1(req.app, line_bytes);
                        sink.dram_row(req.app, row_hit);
                        slice.l2.fill_lru(req.addr);
                        let at = done + l2_lat + icnt;
                        let line = req.addr & line_mask;
                        match slice.mshr.find(line) {
                            Some(idx) => {
                                // Drain the waiter chain in arrival order
                                // (the chain head is the request that went
                                // to DRAM), returning each node to the
                                // free list.
                                let mut node = slice.mshr.remove(idx);
                                while node != MSHR_NONE {
                                    let (w, next) = slice.mshr.drain_next(node);
                                    if w.warp_slot != req.warp_slot || w.sm != req.sm {
                                        // Merged request: counts as L2
                                        // traffic for its own app.
                                        sink.l2_to_l1(w.app, line_bytes);
                                    }
                                    sink.response(at, w.sm, w.warp_slot);
                                    node = next;
                                }
                            }
                            None => {
                                // Read issued before MSHR tracking began
                                // (cannot happen in practice; defensive).
                                sink.response(at, req.sm, req.warp_slot);
                            }
                        }
                    }
                }
            }

            // Event-horizon bookkeeping: the earliest cycle this slice's
            // L2 stage could make progress again. Port-limited due work
            // retries next cycle. A bypassed (stalled) miss can only
            // proceed after a DRAM service frees queue or MSHR space
            // (or fills its line), so it re-arms only when one happened
            // this cycle — otherwise the DRAM-side bound computed by
            // `next_event` covers the wait. Failing those, the first
            // future arrival decides.
            if scanned {
                let mut ev = next_arrival;
                if due_left || (stalled_kept && serviced) {
                    ev = ev.min(now + 1);
                }
                slice.l2_event = ev;
                if stalled_kept && processed == 0 && !due_left && !serviced {
                    // Nothing consumed, nothing freed: the next scan is
                    // identical until a service or push wakes us.
                    slice.scan_wake = next_arrival;
                }
            } else if serviced {
                // A service while the scan slept: stalled misses may now
                // proceed — scan (and let the horizon step) next cycle.
                slice.scan_wake = 0;
                slice.l2_event = slice.l2_event.min(now + 1);
            }

            if TRACK {
                // Stalled-prefix upkeep: a service invalidates every
                // cached verdict (space freed, lines filled);
                // otherwise this scan's verdicted prefix (or the
                // carried one, if the scan slept) stays valid until
                // the next service.
                if serviced {
                    slice.stalled_skip = 0;
                } else if scanned {
                    slice.stalled_skip = verdicted;
                }
                // The DRAM bound for queries after this tick is
                // exactly what the reference `next_event` would
                // compute at `now + 1`, and it stays exact across
                // elided cycles: banks and the bus mutate only on a
                // service, and no service can happen before it.
                slice.dram_next = dram_bound(slice, now + 1);
                // Before min(l2_event, dram_next) a tick is a full
                // no-op: no arrival is due (l2_event covers due work
                // and port-limited retries; a re-scan over only
                // stalled misses probes to the same verdicts because
                // queue/MSHR space can only be freed by a service),
                // and no DRAM pick can succeed before dram_next.
                slice.sleep_at = slice.l2_event.min(slice.dram_next);
            }
        }
    }
}

impl MemSys {
    /// FR-FCFS (or plain FCFS) arbitration: index into the queue of the
    /// request to service next, `None` if no bank is ready.
    fn schedule_dram(ctrl: &DramCtrl, now: u64, fr_fcfs: bool) -> Option<usize> {
        if fr_fcfs {
            // First ready: oldest request that hits an open row on a
            // ready bank. Bank and row were precomputed at enqueue, so
            // the scan is a pair of loads per entry.
            for (i, e) in ctrl.queue.iter() {
                let bank = &ctrl.banks[e.bank as usize];
                if bank.ready_at <= now && bank.open_row == e.row {
                    return Some(i);
                }
            }
        }
        // Then oldest-first on any ready bank.
        for (i, e) in ctrl.queue.iter() {
            if ctrl.banks[e.bank as usize].ready_at <= now {
                return Some(i);
            }
        }
        // All banks busy: the oldest request waits for its bank.
        // Admit it anyway once the bank frees soon; modeled by picking
        // the oldest whose bank frees earliest only when every bank is
        // strictly busy *past* now — here simply stall the bus slot.
        None
    }

    /// Earliest cycle `>= now` at which the memory system could change
    /// observable state, or `None` when it is completely idle (nothing
    /// will ever happen again without new requests).
    ///
    /// `now` is the next cycle the device will execute; [`MemSys::tick`]
    /// must already have run for `now - 1`. The bound is the minimum of
    /// the response-heap head, each slice's next L2-stage event
    /// (maintained by `tick`/`push`), and each DRAM channel's next
    /// scheduling opportunity (`bus_free_at`, or the earliest bank-ready
    /// time when the bus is free but every candidate bank was busy).
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let mut ev = u64::MAX;
        if let Some(&Reverse((at, _, _))) = self.responses.peek() {
            ev = ev.min(at);
        }
        for cell in &self.cells {
            if cell.ev_valid {
                // Sharded cells maintain `ev_min = min(l2_event,
                // dram_next)` over their slices at the end of every
                // tick, so the horizon reads O(k) state.
                ev = ev.min(cell.ev_min);
            } else {
                // Cold cell (fresh repartition, or the single-cell
                // reference path, whose tick never maintains the
                // caches): exact per-slice scan.
                for slice in &cell.slices {
                    ev = ev.min(slice.l2_event);
                    ev = ev.min(dram_bound(slice, now));
                }
            }
        }
        if ev == u64::MAX {
            None
        } else {
            Some(ev.max(now))
        }
    }

    /// Pops every response due at or before `now`.
    pub fn drain_completions(&mut self, now: u64, out: &mut Vec<Completion>) {
        while let Some(&Reverse((at, sm, slot))) = self.responses.peek() {
            if at > now {
                break;
            }
            self.responses.pop();
            out.push(Completion {
                at,
                sm,
                warp_slot: slot,
            });
        }
    }

    /// True when any DRAM controller has queued requests (the phase
    /// profiler's DRAM-bound vs. L2-bound discriminator).
    pub fn any_dram_queued(&self) -> bool {
        self.slices().any(|s| !s.ctrl.queue.is_empty())
    }

    /// True when no request or response is anywhere in flight.
    pub fn is_idle(&self) -> bool {
        self.responses.is_empty()
            && self
                .slices()
                .all(|s| s.input.is_empty() && s.ctrl.queue.is_empty() && s.mshr.is_empty())
    }

    /// Appends one [`SliceDiag`](crate::stats::SliceDiag) per slice —
    /// queue depths and MSHR occupancy for error snapshots.
    pub fn slice_diags(&self, out: &mut Vec<crate::stats::SliceDiag>) {
        for (i, s) in self.slices().enumerate() {
            out.push(crate::stats::SliceDiag {
                id: i as u32,
                input_depth: s.input.len() as u32,
                dram_queue_depth: s.ctrl.queue.len() as u32,
                mshr_used: s.mshr.len() as u32,
            });
        }
    }

    /// Aggregate L2 hit rate across slices (diagnostics).
    pub fn l2_hit_rate(&self) -> f64 {
        let (h, m) = self
            .slices()
            .fold((0u64, 0u64), |(h, m), s| (h + s.l2.hits(), m + s.l2.misses()));
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Repartitions the slices into `shards` memory-shard cells
    /// (clamped to `[1, num_slices]`). Contiguous ranges, identical to
    /// the SM-side [`ShardPlan`] split. Safe to call mid-run: every
    /// rebuilt cell cold-starts its summaries ([`MemShard::new`]), so
    /// the next horizon query falls back to the exact per-slice scan
    /// and the next tick revalidates every busy slice.
    pub fn set_shards(&mut self, shards: u32) {
        let plan = ShardPlan::new(self.num_slices, shards);
        if plan.shards as usize == self.cells.len() {
            return;
        }
        let mut slices: Vec<Slice> = Vec::with_capacity(self.num_slices as usize);
        for cell in self.cells.drain(..) {
            slices.extend(cell.slices);
        }
        self.mem_chunk = plan.chunk() as usize;
        for (base, len) in plan.ranges() {
            let rest = slices.split_off((len as usize).min(slices.len()));
            self.cells
                .push(MemShard::new(base, std::mem::replace(&mut slices, rest)));
        }
    }

    /// Number of memory-shard cells (1 = unsharded reference path).
    pub fn num_shards(&self) -> usize {
        self.cells.len()
    }

    /// Moves the cells out for threaded phase-M stepping. The `MemSys`
    /// shell (response heap, geometry) stays behind; callers must
    /// [`MemSys::restore_shards`] before touching anything slice-side.
    pub(crate) fn take_shards(&mut self) -> Vec<MemShard> {
        std::mem::take(&mut self.cells)
    }

    /// Returns cells taken with [`MemSys::take_shards`]. Order must be
    /// preserved by the caller (cells are slotted by index).
    pub(crate) fn restore_shards(&mut self, cells: Vec<MemShard>) {
        debug_assert!(self.cells.is_empty());
        debug_assert!(cells
            .iter()
            .enumerate()
            .all(|(i, c)| c.base as usize == i * self.mem_chunk));
        self.cells = cells;
    }

    /// Serial boundary phase: folds every cell's buffered responses and
    /// stats deltas into the shared heap and [`SimStats`], in cell
    /// order — i.e. ascending slice order, matching the rotation the
    /// reference single-pass tick visits slices in. Responses carry
    /// their `(at, sm, warp_slot)` ordering key, so heap insertion
    /// order only matters for equal tuples, which are interchangeable.
    pub(crate) fn fold_shards(&mut self, stats: &mut SimStats) {
        let MemSys { cells, responses, .. } = self;
        for cell in cells.iter_mut() {
            for &(at, sm, slot) in &cell.resp {
                responses.push(Reverse((at, sm, slot)));
            }
            cell.resp.clear();
            for (app, delta) in cell.delta.iter_mut().enumerate() {
                if !delta.is_zero() {
                    stats.app_mut(crate::AppId(app as u16)).apply_mem_delta(delta);
                    *delta = MemDelta::default();
                }
            }
        }
    }

    /// Test-only direct access to a slice by global index.
    #[cfg(test)]
    fn slice_mut(&mut self, g: usize) -> &mut Slice {
        &mut self.cells[g / self.mem_chunk].slices[g % self.mem_chunk]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn mk() -> (MemSys, SimStats) {
        let cfg = GpuConfig::test_small();
        (MemSys::new(&cfg), SimStats::new(4))
    }

    fn read(addr: u64, at: u64) -> MemRequest {
        MemRequest {
            addr,
            is_write: false,
            app: AppId(0),
            sm: 0,
            warp_slot: 0,
            arrive_at: at,
        }
    }

    #[test]
    fn l2_hit_completes_quickly() {
        let (mut ms, mut st) = mk();
        // Warm the line via a full DRAM round trip.
        ms.push(read(0x0, 0));
        let mut out = Vec::new();
        for c in 0..1000 {
            ms.tick(c, &mut st);
            ms.drain_completions(c, &mut out);
        }
        assert_eq!(out.len(), 1);
        let miss_at = out[0].at;
        out.clear();

        // Second access: L2 hit, must be much faster.
        ms.push(read(0x0, miss_at));
        for c in miss_at..miss_at + 1000 {
            ms.tick(c, &mut st);
            ms.drain_completions(c, &mut out);
        }
        assert_eq!(out.len(), 1);
        let hit_lat = out[0].at - miss_at;
        assert!(hit_lat < miss_at, "hit {hit_lat} vs miss {miss_at}");
        assert!(st.app_mut(AppId(0)).l2_to_l1_bytes >= 256);
        assert_eq!(st.app_mut(AppId(0)).dram_read_bytes, 128);
    }

    #[test]
    fn writes_do_not_complete() {
        let (mut ms, mut st) = mk();
        ms.push(MemRequest {
            is_write: true,
            ..read(0x0, 0)
        });
        let mut out = Vec::new();
        for c in 0..1000 {
            ms.tick(c, &mut st);
            ms.drain_completions(c, &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(st.app_mut(AppId(0)).dram_write_bytes, 128);
        assert!(ms.is_idle());
    }

    #[test]
    fn row_hits_faster_than_row_misses() {
        let cfg = GpuConfig::test_small();
        let mut ms = MemSys::new(&cfg);
        let mut st = SimStats::new(4);
        let mut out = Vec::new();
        // Two lines in the same row: second should be a row hit.
        ms.push(read(0, 0));
        ms.push(read(128, 0));
        for c in 0..2000 {
            ms.tick(c, &mut st);
            ms.drain_completions(c, &mut out);
        }
        assert_eq!(out.len(), 2);
        let a = st.app_mut(AppId(0));
        assert_eq!(a.dram_row_hits, 1);
        assert_eq!(a.dram_row_misses, 1);
    }

    #[test]
    fn random_rows_all_miss() {
        let cfg = GpuConfig::test_small();
        let row = cfg.dram.row_bytes;
        let mut ms = MemSys::new(&cfg);
        let mut st = SimStats::new(4);
        let mut out = Vec::new();
        // Different rows on the same slice: stride by row_bytes * slices.
        let stride = row * u64::from(cfg.num_mem_ctrls);
        for i in 0..4u64 {
            ms.push(read(i * 7919 * stride, 0));
        }
        for c in 0..20_000 {
            ms.tick(c, &mut st);
            ms.drain_completions(c, &mut out);
        }
        assert_eq!(out.len(), 4);
        assert_eq!(st.app_mut(AppId(0)).dram_row_hits, 0);
    }

    #[test]
    fn slice_routing_is_row_granular() {
        let (ms, _) = mk();
        let row = GpuConfig::test_small().dram.row_bytes;
        assert_eq!(ms.slice_of(0), ms.slice_of(row - 1));
        assert_ne!(ms.slice_of(0), ms.slice_of(row));
    }

    #[test]
    fn mshr_merges_concurrent_reads_to_one_line() {
        let (mut ms, mut st) = mk();
        // Two different warps read the same line in the same cycle: one
        // DRAM fetch, two responses.
        let mut second = read(0x0, 0);
        second.warp_slot = 5;
        ms.push(read(0x0, 0));
        ms.push(second);
        let mut out = Vec::new();
        for c in 0..2000 {
            ms.tick(c, &mut st);
            ms.drain_completions(c, &mut out);
        }
        assert_eq!(out.len(), 2, "both warps woken");
        assert_eq!(
            st.app_mut(AppId(0)).dram_read_bytes,
            128,
            "single DRAM fetch"
        );
        assert_eq!(
            st.app_mut(AppId(0)).l2_to_l1_bytes,
            256,
            "both requests produce L2->L1 traffic"
        );
        assert!(ms.is_idle());
    }

    #[test]
    fn mshr_duplicate_transactions_from_one_warp_both_complete() {
        let (mut ms, mut st) = mk();
        // Same warp, same line, two transactions: the warp needs two
        // responses or it would wait forever.
        ms.push(read(0x0, 0));
        ms.push(read(0x0, 0));
        let mut out = Vec::new();
        for c in 0..2000 {
            ms.tick(c, &mut st);
            ms.drain_completions(c, &mut out);
        }
        assert_eq!(out.len(), 2);
        assert!(ms.is_idle());
    }

    #[test]
    fn mshr_same_line_merge_is_unbounded() {
        // Merging onto an in-flight line is not capped: every reader of
        // the line lands on one MSHR entry and one DRAM fetch, however
        // many there are.
        let mut cfg = GpuConfig::test_small();
        cfg.l2_ports = 16;
        let mut ms = MemSys::new(&cfg);
        let mut st = SimStats::new(4);
        // Hold the DRAM bus so tick 0 only runs the L2/MSHR stage and
        // the table state stays observable.
        ms.slice_mut(0).ctrl.bus_free_at = 100;
        for slot in 0..16u32 {
            let mut r = read(0x0, 0);
            r.warp_slot = slot;
            ms.push(r);
        }
        ms.tick(0, &mut st);
        assert_eq!(ms.slice_mut(0).mshr.len(), 1, "one entry for one line");
        assert_eq!(ms.slice_mut(0).mshr.arena_len(), 16, "one node per waiter");
        let mut out = Vec::new();
        for c in 1..2000 {
            ms.tick(c, &mut st);
            ms.drain_completions(c, &mut out);
        }
        assert_eq!(out.len(), 16, "every merged reader woken");
        assert_eq!(st.app_mut(AppId(0)).dram_read_bytes, 128, "one fetch");
        assert!(ms.is_idle());
    }

    #[test]
    fn mshr_arena_reused_after_drain() {
        // Waiter nodes drained by a fill go on the free list; a second
        // burst of equal width must recycle them rather than grow the
        // arena — the steady-state miss path is allocation-free.
        let mut cfg = GpuConfig::test_small();
        cfg.l2_ports = 8;
        let row = cfg.dram.row_bytes;
        let slices = u64::from(cfg.num_mem_ctrls);
        let mut ms = MemSys::new(&cfg);
        let mut st = SimStats::new(4);
        let mut out = Vec::new();

        let burst = |ms: &mut MemSys, line_addr: u64, at: u64| {
            for slot in 0..4u32 {
                let mut r = read(line_addr, at);
                r.warp_slot = slot;
                ms.push(r);
            }
        };
        burst(&mut ms, 0, 0);
        for c in 0..2000 {
            ms.tick(c, &mut st);
            ms.drain_completions(c, &mut out);
        }
        assert_eq!(out.len(), 4);
        let arena = ms.slice_mut(0).mshr.arena_len();
        assert_eq!(arena, 4, "one node per waiter");

        // Second burst to a *different* line (the first is now in L2),
        // still on slice 0.
        burst(&mut ms, row * slices, 2000);
        for c in 2000..4000 {
            ms.tick(c, &mut st);
            ms.drain_completions(c, &mut out);
        }
        assert_eq!(out.len(), 8);
        assert_eq!(
            ms.slice_mut(0).mshr.arena_len(),
            arena,
            "drained nodes recycled, arena did not grow"
        );
        assert!(ms.is_idle());
    }

    #[test]
    fn mshr_full_table_stalls_new_read_misses() {
        // Distinct-line read misses beyond the MSHR cap stay in the
        // slice input queue (stalled, order preserved) until a fill
        // frees an entry; they complete eventually.
        let mut cfg = GpuConfig::test_small();
        cfg.l2_ports = 8;
        let row = cfg.dram.row_bytes;
        let slices = u64::from(cfg.num_mem_ctrls);
        let mut ms = MemSys::new(&cfg);
        ms.set_mshr_cap(2);
        let mut st = SimStats::new(4);
        // Hold the DRAM bus so the first tick cannot already fill (and
        // free) an entry.
        ms.slice_mut(0).ctrl.bus_free_at = 100;
        for i in 0..4u64 {
            let mut r = read(i * row * slices, 0); // all slice 0, distinct lines
            r.warp_slot = i as u32;
            ms.push(r);
        }
        ms.tick(0, &mut st);
        assert_eq!(ms.slice_mut(0).mshr.len(), 2, "table full at the cap");
        let kept: Vec<u32> = ms.slice_mut(0).input.iter().map(|r| r.warp_slot).collect();
        assert_eq!(kept, [2, 3], "overflow misses stalled in arrival order");
        let mut out = Vec::new();
        for c in 1..5000 {
            ms.tick(c, &mut st);
            ms.drain_completions(c, &mut out);
        }
        assert_eq!(out.len(), 4, "stalled misses complete after fills");
        assert!(ms.is_idle());
    }

    #[test]
    fn backpressure_reported() {
        let (mut ms, _) = mk();
        let mut n = 0u64;
        while ms.can_accept(0) {
            ms.push(read(0, 0));
            n += 1;
            assert!(n < 10_000, "queue never fills");
        }
        assert_eq!(n as usize, SLICE_QUEUE_DEPTH);
    }

    #[test]
    fn fr_fcfs_prioritizes_open_row() {
        let cfg = GpuConfig::test_small();
        let row = cfg.dram.row_bytes;
        let slices = u64::from(cfg.num_mem_ctrls);
        let mut ms = MemSys::new(&cfg);
        let mut st = SimStats::new(4);
        let mut out = Vec::new();

        // Open row 0 with a first access, then queue: a different-row
        // request (older) and a row-0 request (younger). FR-FCFS should
        // service the row-0 request first.
        ms.push(read(0, 0));
        for c in 0..500 {
            ms.tick(c, &mut st);
            ms.drain_completions(c, &mut out);
        }
        out.clear();
        let other_row = read(32 * row * slices, 500);
        // Pick an address on slice 0 but a different row: row index must be
        // a multiple of `slices` to land on slice 0.
        assert_eq!(ms.slice_of(other_row.addr), 0);
        let mut same_row = read(128, 500);
        same_row.warp_slot = 7;
        assert_eq!(ms.slice_of(same_row.addr), 0);
        ms.push(other_row);
        ms.push(same_row);
        for c in 500..3000 {
            ms.tick(c, &mut st);
            ms.drain_completions(c, &mut out);
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].warp_slot, 7, "row hit serviced first");
    }

    #[test]
    fn fcfs_mode_services_in_order() {
        let mut cfg = GpuConfig::test_small();
        cfg.dram.fr_fcfs = false;
        let row = cfg.dram.row_bytes;
        let slices = u64::from(cfg.num_mem_ctrls);
        let mut ms = MemSys::new(&cfg);
        let mut st = SimStats::new(4);
        let mut out = Vec::new();
        ms.push(read(0, 0));
        for c in 0..500 {
            ms.tick(c, &mut st);
            ms.drain_completions(c, &mut out);
        }
        out.clear();
        let mut other_row = read(32 * row * slices, 500);
        other_row.warp_slot = 1;
        let mut same_row = read(128, 500);
        same_row.warp_slot = 7;
        ms.push(other_row);
        ms.push(same_row);
        for c in 500..5000 {
            ms.tick(c, &mut st);
            ms.drain_completions(c, &mut out);
        }
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].warp_slot, 1, "plain FCFS keeps arrival order");
    }

    #[test]
    fn stalled_misses_keep_arrival_order_while_hits_bypass() {
        // Pins the L2 bypass semantics the in-place compaction must
        // preserve: when the DRAM queue is full, misses stay queued *in
        // arrival order among themselves* while younger L2 hits are
        // consumed past them.
        let mut cfg = GpuConfig::test_small();
        cfg.l2_ports = 8; // process the whole scenario in one tick
        cfg.dram.fr_fcfs = false;
        let depth = cfg.dram.queue_depth;
        let mut ms = MemSys::new(&cfg);
        let mut st = SimStats::new(4);
        let mut out = Vec::new();

        // Warm line 0 into slice 0's L2 via a full round trip.
        ms.push(read(0, 0));
        for c in 0..500 {
            ms.tick(c, &mut st);
            ms.drain_completions(c, &mut out);
        }
        assert_eq!(out.len(), 1);
        assert!(ms.is_idle());

        // Keep the DRAM queue full for the tick under test: writes
        // occupy queue slots but produce no responses, and only one
        // leaves per bus slot.
        for _ in 0..depth + 4 {
            ms.slice_mut(0).ctrl.queue.push_back(
                MemRequest {
                    is_write: true,
                    ..read(0, 500)
                },
                0,
                0,
            );
        }

        // Same slice (rows 2, 4, 6 with 2 slices): three misses with two
        // hits interleaved behind them, all due at cycle 500.
        let line = |r: u64, slot: u32| MemRequest {
            warp_slot: slot,
            ..read(r * cfg.dram.row_bytes, 500)
        };
        ms.push(line(2, 1)); // miss A
        ms.push(line(4, 2)); // miss B
        ms.push(line(0, 3)); // hit
        ms.push(line(6, 4)); // miss C
        ms.push(line(0, 5)); // hit
        ms.tick(500, &mut st);

        let kept: Vec<u32> = ms.slice_mut(0).input.iter().map(|r| r.warp_slot).collect();
        assert_eq!(kept, [1, 2, 4], "stalled misses kept, arrival order");
        assert_eq!(ms.responses.len(), 2, "both hits consumed past them");
        assert_eq!(
            ms.slice_mut(0).l2_event,
            501,
            "a DRAM service this tick may have freed space: retry next cycle"
        );
    }

    #[test]
    fn dram_queue_take_is_order_preserving() {
        let mut q = DramQueue::default();
        for i in 0..6u64 {
            q.push_back(read(i, 0), 0, 0);
        }
        // Service out of order (as FR-FCFS does), middle then front.
        let (idx, _) = q.iter().find(|(_, e)| e.req.addr == 3).expect("live");
        assert_eq!(q.take(idx).req.addr, 3);
        let (idx, _) = q.iter().next().expect("live");
        assert_eq!(q.take(idx).req.addr, 0);
        assert_eq!(q.len(), 4);
        let rest: Vec<u64> = q.iter().map(|(_, e)| e.req.addr).collect();
        assert_eq!(rest, [1, 2, 4, 5], "oldest-first order survives takes");

        // Starvation guard: repeated push/take churn with one pinned
        // request must not grow the slot storage without bound.
        for i in 0..10_000u64 {
            q.push_back(read(100 + i, 0), 0, 0);
            let (idx, _) = q.iter().last().expect("live");
            q.take(idx);
        }
        assert!(
            q.slots.len() <= 2 * q.live + 16,
            "tombstones dominate: {} slots for {} live",
            q.slots.len(),
            q.live
        );
    }

    #[test]
    fn next_event_tracks_pending_work() {
        let (mut ms, mut st) = mk();
        assert_eq!(ms.next_event(5), None, "idle memsys has no events");

        ms.push(read(0, 10));
        assert_eq!(ms.next_event(0), Some(10), "next event is the arrival");
        assert_eq!(ms.next_event(12), Some(12), "past events clamp to now");

        let mut out = Vec::new();
        let mut c = 0;
        while !ms.is_idle() {
            ms.tick(c, &mut st);
            ms.drain_completions(c, &mut out);
            // While anything is in flight the memsys must always offer
            // a bound — a busy system with no next event would deadlock
            // the event-horizon stepper.
            if !ms.is_idle() {
                assert!(ms.next_event(c + 1).is_some(), "busy but eventless at {c}");
            }
            c += 1;
            assert!(c < 2000, "single read never completed");
        }
        assert_eq!(out.len(), 1);
        assert_eq!(ms.next_event(c), None, "drained memsys is eventless again");
    }
}
