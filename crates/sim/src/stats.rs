//! Simulation statistics: per-application and device-level counters.
//!
//! Everything the paper's methodology consumes is here: thread-level
//! instruction counts and cycles (throughput, Eq. 1.1), DRAM bytes
//! (memory bandwidth), L2→L1 bytes, and the memory-to-compute ratio R
//! used by the classifier (Table 3.1), plus windowed deltas for the
//! SMRA controller (Algorithm 1 samples every `T_C` cycles).

use crate::kernel::AppId;

/// Counters for one application slot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AppStats {
    /// Warp-level instructions issued.
    pub warp_insts: u64,
    /// Thread-level instructions (warp instructions × active lanes).
    pub thread_insts: u64,
    /// Memory (load + store) warp instructions issued.
    pub mem_insts: u64,
    /// Arithmetic/SFU warp instructions issued.
    pub alu_insts: u64,
    /// L1 data cache hits.
    pub l1_hits: u64,
    /// L1 data cache misses.
    pub l1_misses: u64,
    /// Bytes read from DRAM on behalf of this app.
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM on behalf of this app.
    pub dram_write_bytes: u64,
    /// Bytes returned from the L2 to any L1 for this app.
    pub l2_to_l1_bytes: u64,
    /// DRAM row-buffer hits (reads).
    pub dram_row_hits: u64,
    /// DRAM row-buffer misses (reads).
    pub dram_row_misses: u64,
    /// Cycle the first block was dispatched.
    pub start_cycle: u64,
    /// Cycle the last warp retired (`u64::MAX` while running).
    pub finish_cycle: u64,
    /// Blocks completed.
    pub blocks_done: u32,
}

impl AppStats {
    /// Fresh counters with an unset finish cycle.
    pub fn new() -> Self {
        AppStats {
            finish_cycle: u64::MAX,
            ..Default::default()
        }
    }

    /// Whether the application has retired all its work.
    pub fn finished(&self) -> bool {
        self.finish_cycle != u64::MAX
    }

    /// Cycles from first dispatch to retirement.
    ///
    /// # Panics
    ///
    /// Panics if the application has not finished.
    pub fn runtime_cycles(&self) -> u64 {
        assert!(self.finished(), "application still running");
        self.finish_cycle - self.start_cycle
    }

    /// Total DRAM traffic in bytes (reads + writes).
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Thread-level IPC over the app's own runtime.
    pub fn thread_ipc(&self) -> f64 {
        let cycles = if self.finished() {
            self.runtime_cycles()
        } else {
            return 0.0;
        };
        if cycles == 0 {
            0.0
        } else {
            self.thread_insts as f64 / cycles as f64
        }
    }

    /// Dynamic memory-to-compute ratio: memory instructions over all
    /// instructions (the paper's `R`).
    pub fn memory_ratio(&self) -> f64 {
        if self.warp_insts == 0 {
            0.0
        } else {
            self.mem_insts as f64 / self.warp_insts as f64
        }
    }

    /// DRAM row-buffer hit rate of this app's reads, in `[0, 1]`.
    pub fn dram_row_hit_rate(&self) -> f64 {
        let t = self.dram_row_hits + self.dram_row_misses;
        if t == 0 {
            0.0
        } else {
            self.dram_row_hits as f64 / t as f64
        }
    }

    /// L1 hit rate in `[0, 1]`.
    pub fn l1_hit_rate(&self) -> f64 {
        let t = self.l1_hits + self.l1_misses;
        if t == 0 {
            0.0
        } else {
            self.l1_hits as f64 / t as f64
        }
    }
}

/// All per-app counters plus the device cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    apps: Vec<AppStats>,
    /// Device cycles elapsed.
    pub cycles: u64,
}

impl SimStats {
    /// Creates counters for up to `max_apps` application slots.
    pub fn new(max_apps: usize) -> Self {
        SimStats {
            apps: vec![AppStats::new(); max_apps],
            cycles: 0,
        }
    }

    /// Counters for `app` (read-only).
    ///
    /// # Panics
    ///
    /// Panics if `app` is outside the slot range.
    pub fn app(&self, app: AppId) -> &AppStats {
        &self.apps[usize::from(app.0)]
    }

    /// Counters for `app` (mutable).
    ///
    /// # Panics
    ///
    /// Panics if `app` is outside the slot range.
    pub fn app_mut(&mut self, app: AppId) -> &mut AppStats {
        &mut self.apps[usize::from(app.0)]
    }

    /// Number of application slots.
    pub fn num_apps(&self) -> usize {
        self.apps.len()
    }

    /// Iterates over `(AppId, &AppStats)`.
    pub fn iter(&self) -> impl Iterator<Item = (AppId, &AppStats)> {
        self.apps
            .iter()
            .enumerate()
            .map(|(i, s)| (AppId(i as u16), s))
    }

    /// Overwrites `self` with `src` without allocating (the app vector
    /// is reused). Windowed observers snapshot simulator stats every few
    /// thousand cycles; this keeps that path free of clone churn.
    pub fn copy_from(&mut self, src: &SimStats) {
        self.apps.clear();
        self.apps.extend_from_slice(&src.apps);
        self.cycles = src.cycles;
    }

    /// Device throughput: total thread instructions over device cycles
    /// (Eq. 1.1 of the thesis).
    pub fn device_throughput(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        let insts: u64 = self.apps.iter().map(|a| a.thread_insts).sum();
        insts as f64 / self.cycles as f64
    }
}

/// Issue-path counter deltas accumulated shard-locally during sharded
/// stepping (DESIGN.md §12) and folded into [`AppStats`] at run exit.
///
/// Only the counters the SM issue phase touches are here; everything
/// the memory system accounts (DRAM bytes, row-buffer outcomes,
/// L2→L1 bytes) travels through [`MemDelta`] instead — written
/// directly by the reference `MemSys::tick`, or accumulated per
/// memory shard during phase M and folded in cell order. All fields
/// are additive, so the fold commutes with the direct writes of the
/// serial phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IssueDelta {
    /// Warp-level instructions issued.
    pub warp_insts: u64,
    /// Thread-level instructions.
    pub thread_insts: u64,
    /// Memory warp instructions issued.
    pub mem_insts: u64,
    /// Arithmetic/SFU warp instructions issued.
    pub alu_insts: u64,
    /// L1 data cache hits.
    pub l1_hits: u64,
    /// L1 data cache misses.
    pub l1_misses: u64,
}

impl IssueDelta {
    /// True when no counter moved (lets the fold skip untouched slots).
    pub fn is_zero(&self) -> bool {
        *self == IssueDelta::default()
    }
}

impl AppStats {
    /// Folds shard-local issue deltas into the cumulative counters.
    pub fn apply_issue_delta(&mut self, d: &IssueDelta) {
        self.warp_insts += d.warp_insts;
        self.thread_insts += d.thread_insts;
        self.mem_insts += d.mem_insts;
        self.alu_insts += d.alu_insts;
        self.l1_hits += d.l1_hits;
        self.l1_misses += d.l1_misses;
    }
}

/// Memory-system counter deltas accumulated shard-locally during
/// sharded memory stepping (DESIGN.md §12, phase M) and folded into
/// [`AppStats`] in cell order at the end of every stepped cycle.
///
/// All fields are additive `u64` counters, so folding the per-shard
/// deltas in ascending cell order produces exactly the sums the
/// reference `MemSys::tick` would have written in slice order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemDelta {
    /// Bytes read from DRAM.
    pub dram_read_bytes: u64,
    /// Bytes written to DRAM.
    pub dram_write_bytes: u64,
    /// Bytes returned from the L2 to any L1.
    pub l2_to_l1_bytes: u64,
    /// DRAM row-buffer hits (reads).
    pub dram_row_hits: u64,
    /// DRAM row-buffer misses (reads).
    pub dram_row_misses: u64,
}

impl MemDelta {
    /// True when no counter moved (lets the fold skip untouched slots).
    pub fn is_zero(&self) -> bool {
        *self == MemDelta::default()
    }
}

impl AppStats {
    /// Folds shard-local memory-system deltas into the cumulative
    /// counters.
    pub fn apply_mem_delta(&mut self, d: &MemDelta) {
        self.dram_read_bytes += d.dram_read_bytes;
        self.dram_write_bytes += d.dram_write_bytes;
        self.l2_to_l1_bytes += d.l2_to_l1_bytes;
        self.dram_row_hits += d.dram_row_hits;
        self.dram_row_misses += d.dram_row_misses;
    }
}

/// Per-SM state captured in a [`DiagSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmDiag {
    /// SM index.
    pub id: u32,
    /// Warps currently ready to issue.
    pub ready_warps: u32,
    /// Warps resident (ready or blocked on memory).
    pub live_warps: u32,
    /// Owning application slot, if any.
    pub owner: Option<u16>,
    /// Whether the SM is in service (false while fault-disabled).
    pub enabled: bool,
}

/// Per-L2-slice / memory-controller state captured in a
/// [`DiagSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceDiag {
    /// Slice / controller index.
    pub id: u32,
    /// Requests queued at the slice input.
    pub input_depth: u32,
    /// Requests live in the DRAM controller queue.
    pub dram_queue_depth: u32,
    /// MSHR entries in use.
    pub mshr_used: u32,
}

/// A structured snapshot of device state, attached to
/// [`SimError`](crate::gpu::SimError) so a timeout or deadlock reports
/// *where* the machine was stuck instead of just when.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiagSnapshot {
    /// Device cycle at capture.
    pub cycle: u64,
    /// One entry per SM.
    pub sms: Vec<SmDiag>,
    /// One entry per L2 slice / memory controller.
    pub slices: Vec<SliceDiag>,
}

impl DiagSnapshot {
    /// Number of SMs in service at capture.
    pub fn enabled_sms(&self) -> u32 {
        self.sms.iter().filter(|s| s.enabled).count() as u32
    }
}

impl std::fmt::Display for DiagSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ready: u32 = self.sms.iter().map(|s| s.ready_warps).sum();
        let live: u32 = self.sms.iter().map(|s| s.live_warps).sum();
        let dram: u32 = self.slices.iter().map(|s| s.dram_queue_depth).sum();
        let l2in: u32 = self.slices.iter().map(|s| s.input_depth).sum();
        let mshr: u32 = self.slices.iter().map(|s| s.mshr_used).sum();
        write!(
            f,
            "{}/{} SMs enabled, {ready} ready / {live} live warps, \
             {l2in} L2-queued, {dram} DRAM-queued, {mshr} MSHRs in use",
            self.enabled_sms(),
            self.sms.len(),
        )
    }
}

/// A snapshot of the windowed quantities SMRA consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Device thread-IPC over the window.
    pub device_ipc: f64,
    /// Per-app thread-IPC over the window (slots beyond the running apps
    /// read 0).
    pub app_ipc: [f64; 8],
    /// Per-app DRAM bytes/cycle over the window.
    pub app_bw: [f64; 8],
}

/// Computes windowed rates between two cumulative snapshots taken
/// `delta_cycles` apart.
///
/// # Panics
///
/// Panics if `delta_cycles` is zero or either snapshot has more than 8
/// application slots.
pub fn window_between(before: &SimStats, after: &SimStats, delta_cycles: u64) -> Window {
    assert!(delta_cycles > 0, "empty window");
    assert!(before.num_apps() <= 8 && after.num_apps() <= 8);
    let dc = delta_cycles as f64;
    let mut w = Window {
        device_ipc: 0.0,
        app_ipc: [0.0; 8],
        app_bw: [0.0; 8],
    };
    let mut total = 0u64;
    for (id, a) in after.iter() {
        let b = before.app(id);
        let di = a.thread_insts - b.thread_insts;
        let db = a.dram_bytes() - b.dram_bytes();
        w.app_ipc[usize::from(id.0)] = di as f64 / dc;
        w.app_bw[usize::from(id.0)] = db as f64 / dc;
        total += di;
    }
    w.device_ipc = total as f64 / dc;
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_ratio() {
        let mut s = AppStats::new();
        s.start_cycle = 100;
        s.finish_cycle = 1100;
        s.thread_insts = 32_000;
        s.warp_insts = 1000;
        s.mem_insts = 250;
        assert!((s.thread_ipc() - 32.0).abs() < 1e-12);
        assert!((s.memory_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unfinished_app_has_zero_ipc() {
        let s = AppStats::new();
        assert!(!s.finished());
        assert_eq!(s.thread_ipc(), 0.0);
    }

    #[test]
    #[should_panic(expected = "still running")]
    fn runtime_of_running_app_panics() {
        AppStats::new().runtime_cycles();
    }

    #[test]
    fn device_throughput_sums_apps() {
        let mut st = SimStats::new(2);
        st.cycles = 100;
        st.app_mut(AppId(0)).thread_insts = 3000;
        st.app_mut(AppId(1)).thread_insts = 2000;
        assert!((st.device_throughput() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn window_rates() {
        let mut a = SimStats::new(2);
        let mut b = SimStats::new(2);
        b.app_mut(AppId(0)).thread_insts = 1000;
        b.app_mut(AppId(0)).dram_read_bytes = 6400;
        b.app_mut(AppId(1)).thread_insts = 500;
        let w = window_between(&a, &b, 100);
        assert!((w.app_ipc[0] - 10.0).abs() < 1e-12);
        assert!((w.app_bw[0] - 64.0).abs() < 1e-12);
        assert!((w.app_ipc[1] - 5.0).abs() < 1e-12);
        assert!((w.device_ipc - 15.0).abs() < 1e-12);
        // identical snapshots -> zero rates
        a = b.clone();
        let w2 = window_between(&a, &b, 50);
        assert_eq!(w2.device_ipc, 0.0);
    }

    #[test]
    fn row_hit_rate_bounds() {
        let mut s = AppStats::new();
        assert_eq!(s.dram_row_hit_rate(), 0.0);
        s.dram_row_hits = 3;
        s.dram_row_misses = 9;
        assert!((s.dram_row_hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn l1_hit_rate_bounds() {
        let mut s = AppStats::new();
        assert_eq!(s.l1_hit_rate(), 0.0);
        s.l1_hits = 3;
        s.l1_misses = 1;
        assert!((s.l1_hit_rate() - 0.75).abs() < 1e-12);
    }
}
