//! Warp scheduling policies.
//!
//! The device issues from a per-SM pool of *ready* warps. Two policies
//! are provided:
//!
//! * [`WarpSchedPolicy::Gto`] — greedy-then-oldest (Rogers et al.,
//!   MICRO 2012), the policy of Table 4.1: keep issuing from the warp
//!   that issued last until it stalls, then fall back to the oldest
//!   ready warp.
//! * [`WarpSchedPolicy::Lrr`] — loose round-robin, the classic baseline;
//!   used by the scheduler-ablation bench.

/// Which warp the SM issues from next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WarpSchedPolicy {
    /// Greedy-then-oldest.
    #[default]
    Gto,
    /// Loose round-robin.
    Lrr,
}

/// Per-SM scheduler state: picks among ready warp slots.
#[derive(Debug, Clone)]
pub struct WarpScheduler {
    policy: WarpSchedPolicy,
    last_issued: Option<usize>,
    rr_cursor: usize,
}

impl WarpScheduler {
    /// Creates a scheduler with the given policy.
    pub fn new(policy: WarpSchedPolicy) -> Self {
        WarpScheduler {
            policy,
            last_issued: None,
            rr_cursor: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> WarpSchedPolicy {
        self.policy
    }

    /// Picks the next slot to issue from.
    ///
    /// `ready` is a bitmask of slots that can issue this cycle (bit
    /// `slot` set = ready); `ages[slot]` is a monotone dispatch sequence
    /// number (smaller = older). At most 64 slots are supported — the
    /// mask lets both policies scan with popcount-class instructions
    /// instead of walking a boolean array. Returns `None` when no slot
    /// is ready.
    pub fn pick(&mut self, ready: u64, ages: &[u64]) -> Option<usize> {
        debug_assert!(ages.len() <= 64, "more warp slots than mask bits");
        if ready == 0 {
            return None;
        }
        let chosen = match self.policy {
            WarpSchedPolicy::Gto => {
                // Greedy part: stick with the last issued warp.
                if let Some(last) = self.last_issued {
                    if last < 64 && ready & (1u64 << last) != 0 {
                        return Some(self.note(last));
                    }
                }
                // Oldest part: smallest age among ready slots. Ascending
                // bit order + strict `<` keeps the lowest slot on age
                // ties, matching the original array scan.
                let mut m = ready;
                let mut best = m.trailing_zeros() as usize;
                m &= m - 1;
                while m != 0 {
                    let slot = m.trailing_zeros() as usize;
                    m &= m - 1;
                    if ages[slot] < ages[best] {
                        best = slot;
                    }
                }
                Some(best)
            }
            WarpSchedPolicy::Lrr => {
                // First ready slot at or after the cursor, wrapping.
                let n = ages.len();
                let above = ready & (u64::MAX << self.rr_cursor);
                let slot = if above != 0 {
                    above.trailing_zeros() as usize
                } else {
                    ready.trailing_zeros() as usize
                };
                self.rr_cursor = (slot + 1) % n;
                Some(slot)
            }
        };
        chosen.map(|s| self.note(s))
    }

    fn note(&mut self, slot: usize) -> usize {
        self.last_issued = Some(slot);
        slot
    }

    /// Clears greedy/round-robin state (used on SM reassignment).
    pub fn reset(&mut self) {
        self.last_issued = None;
        self.rr_cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gto_sticks_with_last_warp() {
        let mut s = WarpScheduler::new(WarpSchedPolicy::Gto);
        let ages = vec![10, 5, 7];
        // First pick: oldest ready (slot 1, age 5).
        assert_eq!(s.pick(0b111, &ages), Some(1));
        // Greedy: keeps slot 1 while it stays ready.
        assert_eq!(s.pick(0b111, &ages), Some(1));
        // Slot 1 stalls: falls back to oldest ready = slot 2 (age 7).
        assert_eq!(s.pick(0b101, &ages), Some(2));
    }

    #[test]
    fn gto_none_when_all_stalled() {
        let mut s = WarpScheduler::new(WarpSchedPolicy::Gto);
        assert_eq!(s.pick(0, &[1, 2]), None);
    }

    #[test]
    fn gto_age_tie_prefers_lowest_slot() {
        let mut s = WarpScheduler::new(WarpSchedPolicy::Gto);
        // Equal ages: the ascending bit scan with strict `<` must keep
        // the lowest ready slot, as the original array scan did.
        assert_eq!(s.pick(0b110, &[7, 7, 7]), Some(1));
    }

    #[test]
    fn lrr_rotates() {
        let mut s = WarpScheduler::new(WarpSchedPolicy::Lrr);
        let ages = vec![0, 0, 0];
        assert_eq!(s.pick(0b111, &ages), Some(0));
        assert_eq!(s.pick(0b111, &ages), Some(1));
        assert_eq!(s.pick(0b111, &ages), Some(2));
        assert_eq!(s.pick(0b111, &ages), Some(0));
    }

    #[test]
    fn lrr_skips_stalled() {
        let mut s = WarpScheduler::new(WarpSchedPolicy::Lrr);
        let ages = vec![0, 0, 0];
        assert_eq!(s.pick(0b101, &ages), Some(0));
        assert_eq!(s.pick(0b101, &ages), Some(2));
        assert_eq!(s.pick(0b101, &ages), Some(0));
    }

    #[test]
    fn lrr_full_width_mask() {
        // 64 slots: the cursor reaches slot 63 and the `u64::MAX << 64`
        // hazard would bite if the wrap were not by modulo.
        let mut s = WarpScheduler::new(WarpSchedPolicy::Lrr);
        let ages = vec![0u64; 64];
        let only_last = 1u64 << 63;
        assert_eq!(s.pick(only_last, &ages), Some(63));
        assert_eq!(s.pick(only_last | 1, &ages), Some(0), "cursor wrapped");
    }

    #[test]
    fn reset_clears_greedy_state() {
        let mut s = WarpScheduler::new(WarpSchedPolicy::Gto);
        let ages = vec![2, 1];
        assert_eq!(s.pick(0b11, &ages), Some(1));
        s.reset();
        // After reset the greedy memory is gone; picks oldest again.
        assert_eq!(s.pick(0b11, &ages), Some(1));
    }

    #[test]
    fn empty_slots() {
        let mut s = WarpScheduler::new(WarpSchedPolicy::Lrr);
        assert_eq!(s.pick(0, &[]), None);
        let mut g = WarpScheduler::new(WarpSchedPolicy::Gto);
        assert_eq!(g.pick(0, &[]), None);
    }
}
