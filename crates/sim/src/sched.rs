//! Warp scheduling policies.
//!
//! The device issues from a per-SM pool of *ready* warps. Two policies
//! are provided:
//!
//! * [`WarpSchedPolicy::Gto`] — greedy-then-oldest (Rogers et al.,
//!   MICRO 2012), the policy of Table 4.1: keep issuing from the warp
//!   that issued last until it stalls, then fall back to the oldest
//!   ready warp.
//! * [`WarpSchedPolicy::Lrr`] — loose round-robin, the classic baseline;
//!   used by the scheduler-ablation bench.

/// Which warp the SM issues from next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WarpSchedPolicy {
    /// Greedy-then-oldest.
    #[default]
    Gto,
    /// Loose round-robin.
    Lrr,
}

/// Per-SM scheduler state: picks among ready warp slots.
#[derive(Debug, Clone)]
pub struct WarpScheduler {
    policy: WarpSchedPolicy,
    last_issued: Option<usize>,
    rr_cursor: usize,
}

impl WarpScheduler {
    /// Creates a scheduler with the given policy.
    pub fn new(policy: WarpSchedPolicy) -> Self {
        WarpScheduler {
            policy,
            last_issued: None,
            rr_cursor: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> WarpSchedPolicy {
        self.policy
    }

    /// Picks the next slot to issue from.
    ///
    /// `ready` flags which slots can issue this cycle; `ages[slot]` is a
    /// monotone dispatch sequence number (smaller = older). Returns
    /// `None` when no slot is ready.
    pub fn pick(&mut self, ready: &[bool], ages: &[u64]) -> Option<usize> {
        debug_assert_eq!(ready.len(), ages.len());
        let chosen = match self.policy {
            WarpSchedPolicy::Gto => {
                // Greedy part: stick with the last issued warp.
                if let Some(last) = self.last_issued {
                    if ready.get(last).copied().unwrap_or(false) {
                        return Some(self.note(last));
                    }
                }
                // Oldest part: smallest age among ready slots.
                let mut best: Option<usize> = None;
                for (slot, &r) in ready.iter().enumerate() {
                    if r {
                        match best {
                            None => best = Some(slot),
                            Some(b) if ages[slot] < ages[b] => best = Some(slot),
                            _ => {}
                        }
                    }
                }
                best
            }
            WarpSchedPolicy::Lrr => {
                let n = ready.len();
                if n == 0 {
                    return None;
                }
                let mut found = None;
                for off in 0..n {
                    let slot = (self.rr_cursor + off) % n;
                    if ready[slot] {
                        found = Some(slot);
                        break;
                    }
                }
                if let Some(slot) = found {
                    self.rr_cursor = (slot + 1) % n;
                }
                found
            }
        };
        chosen.map(|s| self.note(s))
    }

    fn note(&mut self, slot: usize) -> usize {
        self.last_issued = Some(slot);
        slot
    }

    /// Clears greedy/round-robin state (used on SM reassignment).
    pub fn reset(&mut self) {
        self.last_issued = None;
        self.rr_cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gto_sticks_with_last_warp() {
        let mut s = WarpScheduler::new(WarpSchedPolicy::Gto);
        let ages = vec![10, 5, 7];
        // First pick: oldest ready (slot 1, age 5).
        assert_eq!(s.pick(&[true, true, true], &ages), Some(1));
        // Greedy: keeps slot 1 while it stays ready.
        assert_eq!(s.pick(&[true, true, true], &ages), Some(1));
        // Slot 1 stalls: falls back to oldest ready = slot 2 (age 7).
        assert_eq!(s.pick(&[true, false, true], &ages), Some(2));
    }

    #[test]
    fn gto_none_when_all_stalled() {
        let mut s = WarpScheduler::new(WarpSchedPolicy::Gto);
        assert_eq!(s.pick(&[false, false], &[1, 2]), None);
    }

    #[test]
    fn lrr_rotates() {
        let mut s = WarpScheduler::new(WarpSchedPolicy::Lrr);
        let ages = vec![0, 0, 0];
        assert_eq!(s.pick(&[true, true, true], &ages), Some(0));
        assert_eq!(s.pick(&[true, true, true], &ages), Some(1));
        assert_eq!(s.pick(&[true, true, true], &ages), Some(2));
        assert_eq!(s.pick(&[true, true, true], &ages), Some(0));
    }

    #[test]
    fn lrr_skips_stalled() {
        let mut s = WarpScheduler::new(WarpSchedPolicy::Lrr);
        let ages = vec![0, 0, 0];
        assert_eq!(s.pick(&[true, false, true], &ages), Some(0));
        assert_eq!(s.pick(&[true, false, true], &ages), Some(2));
        assert_eq!(s.pick(&[true, false, true], &ages), Some(0));
    }

    #[test]
    fn reset_clears_greedy_state() {
        let mut s = WarpScheduler::new(WarpSchedPolicy::Gto);
        let ages = vec![2, 1];
        assert_eq!(s.pick(&[true, true], &ages), Some(1));
        s.reset();
        // After reset the greedy memory is gone; picks oldest again.
        assert_eq!(s.pick(&[true, true], &ages), Some(1));
    }

    #[test]
    fn empty_slots() {
        let mut s = WarpScheduler::new(WarpSchedPolicy::Lrr);
        assert_eq!(s.pick(&[], &[]), None);
        let mut g = WarpScheduler::new(WarpSchedPolicy::Gto);
        assert_eq!(g.pick(&[], &[]), None);
    }
}
