//! # gcs-sim — a cycle-level GPU simulator for spatial multitasking
//!
//! This crate stands in for the modified GPGPU-Sim the thesis evaluated
//! on (repro substitution documented in `DESIGN.md`). It models a GTX
//! 480-class device — streaming multiprocessors with GTO/LRR warp
//! scheduling and private L1s, a banked shared L2, and FR-FCFS memory
//! controllers — with first-class support for the experiments the paper
//! runs:
//!
//! * **Spatial partitioning**: SMs are assigned to applications; all
//!   partitions share the L2 and the DRAM channels, which is where
//!   inter-application interference arises.
//! * **Drain-based SM migration**: an SM can be handed to another app
//!   once its resident blocks finish — the third (cheapest) reallocation
//!   mechanism of §3.2.4, which the SMRA controller relies on.
//! * **Per-application profiling**: thread-IPC, DRAM bandwidth, L2→L1
//!   bandwidth and memory-to-compute ratio, the four signals of the
//!   classifier (Table 3.1).
//!
//! Kernels are synthetic ([`kernel::KernelDesc`]): a loop body of ALU /
//! SFU / load / store ops plus parameterized address patterns. The
//! companion `gcs-workloads` crate provides fourteen models calibrated
//! to the Rodinia profile table of the thesis.
//!
//! ## Quick start
//!
//! ```
//! use gcs_sim::config::GpuConfig;
//! use gcs_sim::gpu::Gpu;
//! use gcs_sim::kernel::{AccessPattern, KernelDesc, Op, PatternId};
//!
//! # fn main() -> Result<(), gcs_sim::gpu::SimError> {
//! let mut gpu = Gpu::new(GpuConfig::test_small())?;
//! let app = gpu.launch(KernelDesc {
//!     name: "stream".into(),
//!     grid_blocks: 16,
//!     warps_per_block: 2,
//!     iters_per_warp: 32,
//!     body: vec![Op::Load(PatternId(0)), Op::Alu { latency: 4 }],
//!     patterns: vec![AccessPattern::streaming(4 << 20)],
//!     active_lanes: 32,
//! })?;
//! gpu.partition_even();
//! gpu.run(10_000_000)?;
//! let stats = gpu.stats().app(app);
//! println!("IPC = {:.1}", stats.thread_ipc());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod fault;
pub mod gpu;
pub mod kernel;
pub mod memsys;
pub mod rng;
pub mod sched;
pub mod shard;
pub mod sm;
pub mod stats;
pub mod trace;
pub mod trace_fmt;
pub mod warp;

pub use config::GpuConfig;
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use gpu::{Gpu, SimError, StepMode};
pub use shard::ShardPlan;
pub use kernel::{AccessPattern, AppId, KernelDesc, Op, PatternId, PatternKind};
pub use trace_fmt::{KernelTrace, TraceBuilder, TraceFmtError, TraceRecorder};
pub use stats::{AppStats, DiagSnapshot, SimStats, SliceDiag, SmDiag};
