//! Streaming multiprocessor: warp slots, block residency, L1 cache and
//! the per-cycle issue path.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cache::{Access, Cache};
use crate::config::GpuConfig;
use crate::kernel::{AppId, KernelDesc, Op, PatternId};
use crate::memsys::{MemRequest, MemSys};
use crate::rng::SimRng;
use crate::sched::WarpScheduler;
use crate::stats::{IssueDelta, SimStats};
use crate::trace_fmt::TraceHook;
use crate::warp::{burn_random_draws, generate_addresses, PendingAccess, WarpTable};

/// A block resident on an SM: its id and how many of its warps are
/// still alive (drain-based SM migration waits for this to reach zero
/// for every resident block — §3.2.4's third deallocation method).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ResidentBlock {
    block: u32,
    warps_left: u32,
    /// Warp slots currently parked at a block barrier.
    barrier_waiters: Vec<u32>,
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    /// SM index on the device.
    pub id: u32,
    /// Application currently owning this SM (`None` = idle).
    pub owner: Option<AppId>,
    /// Set while a drain-based handoff is pending.
    pub pending_owner: Option<AppId>,
    /// Per-slot warp state, struct-of-arrays (see [`WarpTable`]).
    warps: WarpTable,
    /// Bitmask of slots that can issue this cycle (bit `slot` set).
    ready: u64,
    /// Bitmask of slots holding a live warp.
    occupied: u64,
    /// `(1 << slots) - 1`: every valid slot bit.
    slot_mask: u64,
    /// Sleeping warps keyed by wake cycle.
    sleepers: BinaryHeap<Reverse<(u64, u32)>>,
    blocks: Vec<ResidentBlock>,
    l1: Cache,
    sched: WarpScheduler,
    rng: SimRng,
    age_seq: u64,
    free_slots: u32,
    /// Scratch buffer for generated addresses (avoids per-issue allocation).
    addr_buf: Vec<u64>,
    /// Access suspended between the sharded prepare and merge phases;
    /// always `None` outside a sharded step (DESIGN.md §12).
    pending: Option<PendingAccess>,
}

impl Sm {
    /// Creates an idle SM.
    ///
    /// # Panics
    ///
    /// Panics if the configuration asks for more than 64 warp slots —
    /// the ready/occupancy bitmasks are single words.
    pub fn new(id: u32, cfg: &GpuConfig) -> Self {
        let slots = cfg.max_warps_per_sm as usize;
        assert!(slots <= 64, "at most 64 warp slots per SM");
        Sm {
            id,
            owner: None,
            pending_owner: None,
            warps: WarpTable::new(slots),
            ready: 0,
            occupied: 0,
            slot_mask: if slots == 64 {
                u64::MAX
            } else {
                (1u64 << slots) - 1
            },
            sleepers: BinaryHeap::new(),
            blocks: Vec::with_capacity(cfg.max_blocks_per_sm as usize),
            l1: Cache::new(cfg.l1),
            sched: WarpScheduler::new(cfg.sched),
            rng: SimRng::seed_from_u64(0x9E37_79B9 ^ u64::from(id)),
            age_seq: 0,
            free_slots: cfg.max_warps_per_sm,
            addr_buf: Vec::with_capacity(32),
            pending: None,
        }
    }

    /// Flips a ready bit. Every write to the mask goes through here.
    #[inline]
    fn set_ready(&mut self, slot: usize, val: bool) {
        let bit = 1u64 << slot;
        if val {
            self.ready |= bit;
        } else {
            self.ready &= !bit;
        }
    }

    /// Number of resident blocks.
    pub fn resident_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of live warps.
    pub fn live_warps(&self) -> u32 {
        self.warps.slots() as u32 - self.free_slots
    }

    /// Number of warps currently ready to issue (diagnostics).
    pub fn ready_warps(&self) -> u32 {
        self.ready.count_ones()
    }

    /// True when no warp is resident.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Whether a new block of `kernel` fits right now.
    pub fn can_take_block(&self, kernel: &KernelDesc, cfg: &GpuConfig) -> bool {
        self.pending_owner.is_none()
            && (self.blocks.len() as u32) < cfg.max_blocks_per_sm
            && self.free_slots >= kernel.warps_per_block
    }

    /// Installs block `block_id` of `kernel`, creating its warps.
    ///
    /// # Panics
    ///
    /// Panics if the block does not fit (call [`Sm::can_take_block`]).
    pub fn dispatch_block(&mut self, kernel: &KernelDesc, block_id: u32) {
        assert!(
            self.free_slots >= kernel.warps_per_block,
            "dispatch without capacity check"
        );
        self.blocks.push(ResidentBlock {
            block: block_id,
            warps_left: kernel.warps_per_block,
            barrier_waiters: Vec::new(),
        });
        // Lowest free slots first, exactly as the old linear scan did.
        let mut placed = 0;
        while placed < kernel.warps_per_block {
            let slot = (!self.occupied & self.slot_mask).trailing_zeros() as usize;
            self.warps
                .init(slot, block_id, placed, self.age_seq, kernel.iters_per_warp);
            self.age_seq += 1;
            self.occupied |= 1u64 << slot;
            self.set_ready(slot, true);
            self.free_slots -= 1;
            placed += 1;
        }
    }

    /// Handles a returning memory transaction for `slot`. Returns 1 when
    /// this response retired the warp *and* completed its block.
    pub fn on_mem_response(&mut self, slot: u32) -> u32 {
        let slot = slot as usize;
        if self.occupied & (1u64 << slot) != 0 {
            debug_assert!(
                self.warps.outstanding[slot] > 0,
                "response for warp with no pending loads"
            );
            self.warps.outstanding[slot] -= 1;
            if self.warps.outstanding[slot] == 0 {
                if self.warps.retiring[slot] {
                    return self.retire(slot);
                }
                self.set_ready(slot, true);
            }
        } else {
            debug_assert!(false, "response for an empty warp slot");
        }
        0
    }

    /// Wakes sleeping warps due at `now`.
    pub fn wake(&mut self, now: u64) {
        while let Some(&Reverse((at, slot))) = self.sleepers.peek() {
            if at > now {
                break;
            }
            self.sleepers.pop();
            if self.occupied & (1u64 << slot) != 0 {
                self.set_ready(slot as usize, true);
            }
        }
    }

    /// Cheap check whether `issue` could do anything this cycle.
    pub fn has_ready_work(&self) -> bool {
        // `ready` bits are authoritative; sleepers are woken by `wake`.
        self.ready != 0
    }

    /// Next wake-up cycle of any sleeping warp, if all are asleep.
    pub fn next_wake(&self) -> Option<u64> {
        self.sleepers.peek().map(|&Reverse((at, _))| at)
    }

    /// Issues up to `cfg.issue_per_sm` instructions. Returns the number
    /// of retired warps (so the caller can track block/app completion).
    #[allow(clippy::too_many_arguments)]
    pub fn issue(
        &mut self,
        now: u64,
        kernel: &KernelDesc,
        app: AppId,
        app_base: u64,
        cfg: &GpuConfig,
        memsys: &mut MemSys,
        stats: &mut SimStats,
        hook: &mut TraceHook<'_>,
    ) -> u32 {
        let mut retired_blocks = 0;
        let body_len = kernel.body.len() as u32;
        let total_warps = kernel.total_warps();
        let line = u64::from(cfg.l1.line_bytes);

        for _ in 0..cfg.issue_per_sm {
            let Some(slot) = self.sched.pick(self.ready, &self.warps.ages) else {
                break;
            };
            // Every arm below clears the picked warp's ready bit (it
            // either sleeps, waits on memory, parks at a barrier or
            // retires), so clear it once up front.
            self.set_ready(slot, false);
            debug_assert!(self.occupied & (1u64 << slot) != 0, "ready slot has a warp");
            let op = kernel.body[self.warps.pc[slot] as usize];

            match op {
                Op::Alu { latency } | Op::Sfu { latency } => {
                    let s = stats.app_mut(app);
                    s.warp_insts += 1;
                    s.thread_insts += u64::from(kernel.active_lanes);
                    s.alu_insts += 1;
                    let done = self.warps.advance(slot, body_len);
                    if done {
                        retired_blocks += self.retire(slot);
                    } else {
                        self.sleepers
                            .push(Reverse((now + u64::from(latency), slot as u32)));
                    }
                }
                Op::Load(PatternId(p)) => {
                    let p = usize::from(p);
                    let pattern = &kernel.patterns[p];
                    let block = self.warps.block[slot];
                    let warp_in_block = self.warps.warp_in_block[slot];
                    let global_warp = u64::from(block) * u64::from(kernel.warps_per_block)
                        + u64::from(warp_in_block);
                    self.addr_buf.clear();
                    if let TraceHook::Replay(trace) = hook {
                        trace.fill_addrs(
                            global_warp,
                            self.warps.replay_group[slot],
                            self.warps.replay_attempt[slot],
                            app_base,
                            &mut self.addr_buf,
                        );
                        burn_random_draws(pattern, line, &mut self.rng);
                    } else {
                        generate_addresses(
                            pattern,
                            p,
                            app_base,
                            block,
                            warp_in_block,
                            self.warps.pattern_ctr[slot][p],
                            global_warp,
                            total_warps,
                            line,
                            &mut self.rng,
                            &mut self.addr_buf,
                        );
                    }
                    if let TraceHook::Record(rec) = hook {
                        rec.record_attempt(global_warp, &self.addr_buf);
                    }

                    // L1 probe per transaction WITHOUT allocating: a load
                    // may still be rejected by back-pressure below, and
                    // allocating now would turn its retry into a phantom
                    // hit. Misses are compacted to the front of the buffer.
                    let mut miss_addrs = 0usize;
                    let mut hits = 0u64;
                    {
                        let mut i = 0;
                        while i < self.addr_buf.len() {
                            match self.l1.probe(self.addr_buf[i]) {
                                Access::Hit => {
                                    hits += 1;
                                    self.addr_buf.swap_remove(i);
                                }
                                Access::Miss => {
                                    miss_addrs += 1;
                                    i += 1;
                                }
                            }
                        }
                    }

                    // Back-pressure: if any miss target cannot accept,
                    // retry the whole load later (no partial issue).
                    if miss_addrs > 0 && self.addr_buf.iter().any(|&a| !memsys.can_accept(a)) {
                        self.warps.bump_attempt(slot);
                        self.sleepers.push(Reverse((now + 2, slot as u32)));
                        continue;
                    }
                    // The load issues for real: allocate the missing lines
                    // (allocate-at-issue; responses find the line present).
                    for &a in &self.addr_buf {
                        self.l1.fill(a);
                    }

                    let s = stats.app_mut(app);
                    s.warp_insts += 1;
                    s.thread_insts += u64::from(kernel.active_lanes);
                    s.mem_insts += 1;
                    s.l1_hits += hits;
                    s.l1_misses += miss_addrs as u64;

                    if let TraceHook::Record(rec) = hook {
                        rec.commit(global_warp);
                    }
                    self.warps.bump_counter(slot, p);
                    self.warps.bump_access(slot);
                    let done = self.warps.advance(slot, body_len);
                    if miss_addrs == 0 {
                        // All hits: short fixed latency, or immediate
                        // retirement when this was the final instruction.
                        if done {
                            retired_blocks += self.retire(slot);
                        } else {
                            self.sleepers
                                .push(Reverse((now + u64::from(cfg.l1_hit_lat), slot as u32)));
                        }
                    } else {
                        self.warps.outstanding[slot] = miss_addrs as u16;
                        // Retirement (if this was the final instruction)
                        // waits until the last response returns, so the
                        // slot cannot be recycled under in-flight events.
                        self.warps.retiring[slot] = done;
                        for &addr in &self.addr_buf {
                            memsys.push(MemRequest {
                                addr,
                                is_write: false,
                                app,
                                sm: self.id,
                                warp_slot: slot as u32,
                                arrive_at: now + u64::from(cfg.icnt_lat),
                            });
                        }
                    }
                }
                Op::Barrier => {
                    let s = stats.app_mut(app);
                    s.warp_insts += 1;
                    s.thread_insts += u64::from(kernel.active_lanes);
                    s.alu_insts += 1;
                    let block = self.warps.block[slot];
                    let b = self
                        .blocks
                        .iter_mut()
                        .find(|b| b.block == block)
                        .expect("warp's block is resident");
                    b.barrier_waiters.push(slot as u32);
                    if b.barrier_waiters.len() as u32 == b.warps_left {
                        // Last arrival: release everyone past the barrier.
                        let waiters = std::mem::take(&mut b.barrier_waiters);
                        for w_slot in waiters {
                            let ws = w_slot as usize;
                            let done = self.warps.advance(ws, body_len);
                            if done {
                                retired_blocks += self.retire(ws);
                            } else {
                                self.sleepers.push(Reverse((now + 1, w_slot)));
                            }
                        }
                    }
                }
                Op::Store(PatternId(p)) => {
                    let p = usize::from(p);
                    let pattern = &kernel.patterns[p];
                    let block = self.warps.block[slot];
                    let warp_in_block = self.warps.warp_in_block[slot];
                    let global_warp = u64::from(block) * u64::from(kernel.warps_per_block)
                        + u64::from(warp_in_block);
                    self.addr_buf.clear();
                    if let TraceHook::Replay(trace) = hook {
                        trace.fill_addrs(
                            global_warp,
                            self.warps.replay_group[slot],
                            self.warps.replay_attempt[slot],
                            app_base,
                            &mut self.addr_buf,
                        );
                        burn_random_draws(pattern, line, &mut self.rng);
                    } else {
                        generate_addresses(
                            pattern,
                            p,
                            app_base,
                            block,
                            warp_in_block,
                            self.warps.pattern_ctr[slot][p],
                            global_warp,
                            total_warps,
                            line,
                            &mut self.rng,
                            &mut self.addr_buf,
                        );
                    }
                    if let TraceHook::Record(rec) = hook {
                        rec.record_attempt(global_warp, &self.addr_buf);
                    }
                    if self.addr_buf.iter().any(|&a| !memsys.can_accept(a)) {
                        self.warps.bump_attempt(slot);
                        self.sleepers.push(Reverse((now + 2, slot as u32)));
                        continue;
                    }
                    let s = stats.app_mut(app);
                    s.warp_insts += 1;
                    s.thread_insts += u64::from(kernel.active_lanes);
                    s.mem_insts += 1;
                    // Stores bypass the L1 (write-through, no-allocate).
                    for &addr in &self.addr_buf {
                        memsys.push(MemRequest {
                            addr,
                            is_write: true,
                            app,
                            sm: self.id,
                            warp_slot: u32::MAX,
                            arrive_at: now + u64::from(cfg.icnt_lat),
                        });
                    }
                    if let TraceHook::Record(rec) = hook {
                        rec.commit(global_warp);
                    }
                    self.warps.bump_counter(slot, p);
                    self.warps.bump_access(slot);
                    let done = self.warps.advance(slot, body_len);
                    if done {
                        // Stores are fire-and-forget; nothing to wait for.
                        retired_blocks += self.retire(slot);
                    } else {
                        // Warp may issue again next cycle.
                        self.sleepers.push(Reverse((now + 1, slot as u32)));
                    }
                }
            }
        }
        retired_blocks
    }

    /// Whether a prepared access is waiting for the serial merge phase.
    pub(crate) fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// The parallel half of a sharded issue cycle: runs the issue loop
    /// using only SM-local state — scheduler pick, address generation
    /// (including replay-cursor and RNG draws), L1 probes, and full
    /// completion of ops that never touch the shared memory system
    /// (ALU/SFU, barriers, all-hit loads). The loop suspends at the
    /// first op that needs `MemSys` admission (a load with L1 misses,
    /// or any store), parking it in `self.pending` for
    /// [`Sm::resolve_pending`] to finish in canonical order. Statistics
    /// go to `delta`, folded into [`SimStats`] at run exit.
    ///
    /// Must mirror [`Sm::issue`] exactly up to the suspension point —
    /// the `shard_equivalence` suite pins the two paths bit-identical.
    /// Recording hooks are unreachable here (recording forces the
    /// unsharded step), so only `None`/`Replay` hooks arrive.
    pub(crate) fn issue_prepare(
        &mut self,
        now: u64,
        kernel: &KernelDesc,
        app_base: u64,
        cfg: &GpuConfig,
        hook: &mut TraceHook<'_>,
        delta: &mut IssueDelta,
    ) -> u32 {
        debug_assert!(self.pending.is_none(), "unresolved access from a previous cycle");
        debug_assert!(
            !matches!(hook, TraceHook::Record(_)),
            "recording runs the unsharded step"
        );
        let mut retired_blocks = 0;
        let body_len = kernel.body.len() as u32;
        let total_warps = kernel.total_warps();
        let line = u64::from(cfg.l1.line_bytes);

        for i in 0..cfg.issue_per_sm {
            let Some(slot) = self.sched.pick(self.ready, &self.warps.ages) else {
                break;
            };
            self.set_ready(slot, false);
            debug_assert!(self.occupied & (1u64 << slot) != 0, "ready slot has a warp");
            let op = kernel.body[self.warps.pc[slot] as usize];

            match op {
                Op::Alu { latency } | Op::Sfu { latency } => {
                    delta.warp_insts += 1;
                    delta.thread_insts += u64::from(kernel.active_lanes);
                    delta.alu_insts += 1;
                    let done = self.warps.advance(slot, body_len);
                    if done {
                        retired_blocks += self.retire(slot);
                    } else {
                        self.sleepers
                            .push(Reverse((now + u64::from(latency), slot as u32)));
                    }
                }
                Op::Load(PatternId(p)) => {
                    let p = usize::from(p);
                    self.generate_access_addrs(slot, p, kernel, app_base, total_warps, line, hook);

                    // Same allocate-on-accept probe as the reference
                    // path: misses compact to the front of the buffer.
                    let mut miss_addrs = 0usize;
                    let mut hits = 0u64;
                    {
                        let mut j = 0;
                        while j < self.addr_buf.len() {
                            match self.l1.probe(self.addr_buf[j]) {
                                Access::Hit => {
                                    hits += 1;
                                    self.addr_buf.swap_remove(j);
                                }
                                Access::Miss => {
                                    miss_addrs += 1;
                                    j += 1;
                                }
                            }
                        }
                    }

                    if miss_addrs > 0 {
                        // Needs MemSys admission: suspend for the merge
                        // phase. The miss addresses stay in `addr_buf`.
                        self.pending = Some(PendingAccess {
                            slot: slot as u32,
                            pattern: p as u32,
                            l1_hits: hits,
                            is_store: false,
                            budget_left: cfg.issue_per_sm - 1 - i,
                        });
                        return retired_blocks;
                    }
                    // All hits: fully SM-local, identical to the
                    // reference accept arm with an empty miss set.
                    delta.warp_insts += 1;
                    delta.thread_insts += u64::from(kernel.active_lanes);
                    delta.mem_insts += 1;
                    delta.l1_hits += hits;
                    self.warps.bump_counter(slot, p);
                    self.warps.bump_access(slot);
                    let done = self.warps.advance(slot, body_len);
                    if done {
                        retired_blocks += self.retire(slot);
                    } else {
                        self.sleepers
                            .push(Reverse((now + u64::from(cfg.l1_hit_lat), slot as u32)));
                    }
                }
                Op::Barrier => {
                    delta.warp_insts += 1;
                    delta.thread_insts += u64::from(kernel.active_lanes);
                    delta.alu_insts += 1;
                    let block = self.warps.block[slot];
                    let b = self
                        .blocks
                        .iter_mut()
                        .find(|b| b.block == block)
                        .expect("warp's block is resident");
                    b.barrier_waiters.push(slot as u32);
                    if b.barrier_waiters.len() as u32 == b.warps_left {
                        let waiters = std::mem::take(&mut b.barrier_waiters);
                        for w_slot in waiters {
                            let ws = w_slot as usize;
                            let done = self.warps.advance(ws, body_len);
                            if done {
                                retired_blocks += self.retire(ws);
                            } else {
                                self.sleepers.push(Reverse((now + 1, w_slot)));
                            }
                        }
                    }
                }
                Op::Store(PatternId(p)) => {
                    let p = usize::from(p);
                    self.generate_access_addrs(slot, p, kernel, app_base, total_warps, line, hook);
                    // Stores always face the admission check: suspend.
                    self.pending = Some(PendingAccess {
                        slot: slot as u32,
                        pattern: p as u32,
                        l1_hits: 0,
                        is_store: true,
                        budget_left: cfg.issue_per_sm - 1 - i,
                    });
                    return retired_blocks;
                }
            }
        }
        retired_blocks
    }

    /// Fills `addr_buf` for one access of `slot` through pattern `p`:
    /// replay-cursor lookup (with RNG-parity burn) or synthetic
    /// generation, exactly as the reference issue arms do.
    #[allow(clippy::too_many_arguments)]
    fn generate_access_addrs(
        &mut self,
        slot: usize,
        p: usize,
        kernel: &KernelDesc,
        app_base: u64,
        total_warps: u64,
        line: u64,
        hook: &mut TraceHook<'_>,
    ) {
        let pattern = &kernel.patterns[p];
        let block = self.warps.block[slot];
        let warp_in_block = self.warps.warp_in_block[slot];
        let global_warp =
            u64::from(block) * u64::from(kernel.warps_per_block) + u64::from(warp_in_block);
        self.addr_buf.clear();
        if let TraceHook::Replay(trace) = hook {
            trace.fill_addrs(
                global_warp,
                self.warps.replay_group[slot],
                self.warps.replay_attempt[slot],
                app_base,
                &mut self.addr_buf,
            );
            burn_random_draws(pattern, line, &mut self.rng);
        } else {
            generate_addresses(
                pattern,
                p,
                app_base,
                block,
                warp_in_block,
                self.warps.pattern_ctr[slot][p],
                global_warp,
                total_warps,
                line,
                &mut self.rng,
                &mut self.addr_buf,
            );
        }
    }

    /// The serial half of a sharded issue cycle: resolves the suspended
    /// access against the live memory system, exactly as the reference
    /// arms would at this SM's rotation turn — reject re-sleeps the warp
    /// with an attempt bump; accept allocates L1 lines, counts stats
    /// directly (the serial phase may touch [`SimStats`]), and pushes
    /// the transactions in buffer order. Returns retired blocks and the
    /// issue budget left for [`Sm::issue_more`].
    pub(crate) fn resolve_pending(
        &mut self,
        now: u64,
        kernel: &KernelDesc,
        app: AppId,
        cfg: &GpuConfig,
        memsys: &mut MemSys,
        stats: &mut SimStats,
    ) -> (u32, u32) {
        let pa = self.pending.take().expect("a prepared access is pending");
        let slot = pa.slot as usize;
        let p = pa.pattern as usize;
        let body_len = kernel.body.len() as u32;

        if !memsys.can_accept_all(&self.addr_buf) {
            self.warps.bump_attempt(slot);
            self.sleepers.push(Reverse((now + 2, pa.slot)));
            return (0, pa.budget_left);
        }

        if pa.is_store {
            let s = stats.app_mut(app);
            s.warp_insts += 1;
            s.thread_insts += u64::from(kernel.active_lanes);
            s.mem_insts += 1;
            // Stores bypass the L1 (write-through, no-allocate).
            for &addr in &self.addr_buf {
                memsys.push(MemRequest {
                    addr,
                    is_write: true,
                    app,
                    sm: self.id,
                    warp_slot: u32::MAX,
                    arrive_at: now + u64::from(cfg.icnt_lat),
                });
            }
            self.warps.bump_counter(slot, p);
            self.warps.bump_access(slot);
            let done = self.warps.advance(slot, body_len);
            if done {
                (self.retire(slot), pa.budget_left)
            } else {
                self.sleepers.push(Reverse((now + 1, pa.slot)));
                (0, pa.budget_left)
            }
        } else {
            // Loads only suspend with at least one miss in the buffer.
            let miss_addrs = self.addr_buf.len();
            debug_assert!(miss_addrs > 0);
            for &a in &self.addr_buf {
                self.l1.fill(a);
            }
            let s = stats.app_mut(app);
            s.warp_insts += 1;
            s.thread_insts += u64::from(kernel.active_lanes);
            s.mem_insts += 1;
            s.l1_hits += pa.l1_hits;
            s.l1_misses += miss_addrs as u64;
            self.warps.bump_counter(slot, p);
            self.warps.bump_access(slot);
            let done = self.warps.advance(slot, body_len);
            self.warps.outstanding[slot] = miss_addrs as u16;
            self.warps.retiring[slot] = done;
            for &addr in &self.addr_buf {
                memsys.push(MemRequest {
                    addr,
                    is_write: false,
                    app,
                    sm: self.id,
                    warp_slot: pa.slot,
                    arrive_at: now + u64::from(cfg.icnt_lat),
                });
            }
            (0, pa.budget_left)
        }
    }

    /// Continues an SM's issue loop with `budget` iterations against
    /// the live memory system — the remainder of a sharded cycle after
    /// [`Sm::resolve_pending`], running at the SM's rotation turn in
    /// the serial phase. Semantically the tail of [`Sm::issue`]'s loop.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn issue_more(
        &mut self,
        budget: u32,
        now: u64,
        kernel: &KernelDesc,
        app: AppId,
        app_base: u64,
        cfg: &GpuConfig,
        memsys: &mut MemSys,
        stats: &mut SimStats,
        hook: &mut TraceHook<'_>,
    ) -> u32 {
        let mut retired_blocks = 0;
        let body_len = kernel.body.len() as u32;
        let total_warps = kernel.total_warps();
        let line = u64::from(cfg.l1.line_bytes);

        for _ in 0..budget {
            let Some(slot) = self.sched.pick(self.ready, &self.warps.ages) else {
                break;
            };
            self.set_ready(slot, false);
            let op = kernel.body[self.warps.pc[slot] as usize];

            match op {
                Op::Alu { latency } | Op::Sfu { latency } => {
                    let s = stats.app_mut(app);
                    s.warp_insts += 1;
                    s.thread_insts += u64::from(kernel.active_lanes);
                    s.alu_insts += 1;
                    let done = self.warps.advance(slot, body_len);
                    if done {
                        retired_blocks += self.retire(slot);
                    } else {
                        self.sleepers
                            .push(Reverse((now + u64::from(latency), slot as u32)));
                    }
                }
                Op::Load(PatternId(p)) => {
                    let p = usize::from(p);
                    self.generate_access_addrs(slot, p, kernel, app_base, total_warps, line, hook);
                    let mut miss_addrs = 0usize;
                    let mut hits = 0u64;
                    {
                        let mut j = 0;
                        while j < self.addr_buf.len() {
                            match self.l1.probe(self.addr_buf[j]) {
                                Access::Hit => {
                                    hits += 1;
                                    self.addr_buf.swap_remove(j);
                                }
                                Access::Miss => {
                                    miss_addrs += 1;
                                    j += 1;
                                }
                            }
                        }
                    }
                    if miss_addrs > 0 && !memsys.can_accept_all(&self.addr_buf) {
                        self.warps.bump_attempt(slot);
                        self.sleepers.push(Reverse((now + 2, slot as u32)));
                        continue;
                    }
                    for &a in &self.addr_buf {
                        self.l1.fill(a);
                    }
                    let s = stats.app_mut(app);
                    s.warp_insts += 1;
                    s.thread_insts += u64::from(kernel.active_lanes);
                    s.mem_insts += 1;
                    s.l1_hits += hits;
                    s.l1_misses += miss_addrs as u64;
                    self.warps.bump_counter(slot, p);
                    self.warps.bump_access(slot);
                    let done = self.warps.advance(slot, body_len);
                    if miss_addrs == 0 {
                        if done {
                            retired_blocks += self.retire(slot);
                        } else {
                            self.sleepers
                                .push(Reverse((now + u64::from(cfg.l1_hit_lat), slot as u32)));
                        }
                    } else {
                        self.warps.outstanding[slot] = miss_addrs as u16;
                        self.warps.retiring[slot] = done;
                        for &addr in &self.addr_buf {
                            memsys.push(MemRequest {
                                addr,
                                is_write: false,
                                app,
                                sm: self.id,
                                warp_slot: slot as u32,
                                arrive_at: now + u64::from(cfg.icnt_lat),
                            });
                        }
                    }
                }
                Op::Barrier => {
                    let s = stats.app_mut(app);
                    s.warp_insts += 1;
                    s.thread_insts += u64::from(kernel.active_lanes);
                    s.alu_insts += 1;
                    let block = self.warps.block[slot];
                    let b = self
                        .blocks
                        .iter_mut()
                        .find(|b| b.block == block)
                        .expect("warp's block is resident");
                    b.barrier_waiters.push(slot as u32);
                    if b.barrier_waiters.len() as u32 == b.warps_left {
                        let waiters = std::mem::take(&mut b.barrier_waiters);
                        for w_slot in waiters {
                            let ws = w_slot as usize;
                            let done = self.warps.advance(ws, body_len);
                            if done {
                                retired_blocks += self.retire(ws);
                            } else {
                                self.sleepers.push(Reverse((now + 1, w_slot)));
                            }
                        }
                    }
                }
                Op::Store(PatternId(p)) => {
                    let p = usize::from(p);
                    self.generate_access_addrs(slot, p, kernel, app_base, total_warps, line, hook);
                    if !memsys.can_accept_all(&self.addr_buf) {
                        self.warps.bump_attempt(slot);
                        self.sleepers.push(Reverse((now + 2, slot as u32)));
                        continue;
                    }
                    let s = stats.app_mut(app);
                    s.warp_insts += 1;
                    s.thread_insts += u64::from(kernel.active_lanes);
                    s.mem_insts += 1;
                    for &addr in &self.addr_buf {
                        memsys.push(MemRequest {
                            addr,
                            is_write: true,
                            app,
                            sm: self.id,
                            warp_slot: u32::MAX,
                            arrive_at: now + u64::from(cfg.icnt_lat),
                        });
                    }
                    self.warps.bump_counter(slot, p);
                    self.warps.bump_access(slot);
                    let done = self.warps.advance(slot, body_len);
                    if done {
                        retired_blocks += self.retire(slot);
                    } else {
                        self.sleepers.push(Reverse((now + 1, slot as u32)));
                    }
                }
            }
        }
        retired_blocks
    }

    /// Retires the warp in `slot`; returns 1 if its block completed.
    fn retire(&mut self, slot: usize) -> u32 {
        debug_assert!(
            self.occupied & (1u64 << slot) != 0,
            "retiring empty slot"
        );
        let block = self.warps.block[slot];
        self.warps.release(slot);
        self.occupied &= !(1u64 << slot);
        self.set_ready(slot, false);
        self.free_slots += 1;
        let idx = self
            .blocks
            .iter()
            .position(|b| b.block == block)
            .expect("warp's block is resident");
        self.blocks[idx].warps_left -= 1;
        if self.blocks[idx].warps_left == 0 {
            self.blocks.swap_remove(idx);
            1
        } else {
            0
        }
    }

    /// Requests a drain-based ownership change. Takes effect once every
    /// resident block finishes ([`Sm::try_complete_handoff`]).
    pub fn request_handoff(&mut self, new_owner: Option<AppId>) {
        self.pending_owner = new_owner;
        if self.is_empty() {
            self.complete_handoff();
        }
    }

    /// Completes a pending handoff if the SM has drained. Returns `true`
    /// when ownership changed this call.
    pub fn try_complete_handoff(&mut self) -> bool {
        if self.pending_owner.is_some() && self.is_empty() {
            self.complete_handoff();
            true
        } else {
            false
        }
    }

    fn complete_handoff(&mut self) {
        self.owner = self.pending_owner.take();
        // The incoming application must not inherit warm lines.
        self.l1.flush();
        self.sched.reset();
    }

    /// L1 statistics (hits, misses).
    pub fn l1_stats(&self) -> (u64, u64) {
        (self.l1.hits(), self.l1.misses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::AccessPattern;

    fn cfg() -> GpuConfig {
        GpuConfig::test_small()
    }

    fn alu_kernel() -> KernelDesc {
        KernelDesc {
            name: "alu".into(),
            grid_blocks: 2,
            warps_per_block: 2,
            iters_per_warp: 3,
            body: vec![Op::Alu { latency: 2 }],
            patterns: vec![],
            active_lanes: 32,
        }
    }

    fn run_to_idle(sm: &mut Sm, kernel: &KernelDesc, cfg: &GpuConfig) -> (u64, u32) {
        let mut ms = MemSys::new(cfg);
        let mut st = SimStats::new(2);
        let mut done_blocks = 0;
        let mut cycle = 0u64;
        while !sm.is_empty() {
            sm.wake(cycle);
            let mut comps = Vec::new();
            ms.drain_completions(cycle, &mut comps);
            for c in comps {
                done_blocks += sm.on_mem_response(c.warp_slot);
            }
            ms.tick(cycle, &mut st);
            done_blocks +=
                sm.issue(cycle, kernel, AppId(0), 0, cfg, &mut ms, &mut st, &mut TraceHook::None);
            cycle += 1;
            assert!(cycle < 1_000_000, "SM never drained");
        }
        (cycle, done_blocks)
    }

    #[test]
    fn dispatch_and_capacity() {
        let cfg = cfg();
        let mut sm = Sm::new(0, &cfg);
        let k = alu_kernel();
        assert!(sm.can_take_block(&k, &cfg));
        sm.dispatch_block(&k, 0);
        assert_eq!(sm.resident_blocks(), 1);
        assert_eq!(sm.live_warps(), 2);
    }

    #[test]
    fn alu_kernel_retires_blocks() {
        let cfg = cfg();
        let mut sm = Sm::new(0, &cfg);
        let k = alu_kernel();
        sm.dispatch_block(&k, 0);
        sm.dispatch_block(&k, 1);
        let (_, done) = run_to_idle(&mut sm, &k, &cfg);
        assert_eq!(done, 2);
        assert!(sm.is_empty());
        assert_eq!(sm.live_warps(), 0);
    }

    #[test]
    fn load_kernel_counts_memory_traffic() {
        let cfg = cfg();
        let mut sm = Sm::new(0, &cfg);
        let k = KernelDesc {
            name: "ld".into(),
            grid_blocks: 1,
            warps_per_block: 1,
            iters_per_warp: 8,
            body: vec![Op::Load(PatternId(0))],
            patterns: vec![AccessPattern::streaming(1 << 20)],
            active_lanes: 32,
        };
        sm.dispatch_block(&k, 0);
        let mut ms = MemSys::new(&cfg);
        let mut st = SimStats::new(1);
        let mut cycle = 0u64;
        while !sm.is_empty() || !ms.is_idle() {
            sm.wake(cycle);
            let mut comps = Vec::new();
            ms.drain_completions(cycle, &mut comps);
            for c in comps {
                let _ = sm.on_mem_response(c.warp_slot);
            }
            ms.tick(cycle, &mut st);
            sm.issue(cycle, &k, AppId(0), 0, &cfg, &mut ms, &mut st, &mut TraceHook::None);
            cycle += 1;
            assert!(cycle < 100_000);
        }
        let a = st.app(AppId(0));
        assert_eq!(a.mem_insts, 8);
        assert!(a.dram_read_bytes > 0, "streaming loads reach DRAM");
    }

    #[test]
    fn store_kernel_does_not_block() {
        let cfg = cfg();
        let mut sm = Sm::new(0, &cfg);
        let k = KernelDesc {
            name: "st".into(),
            grid_blocks: 1,
            warps_per_block: 1,
            iters_per_warp: 4,
            body: vec![Op::Store(PatternId(0))],
            patterns: vec![AccessPattern::streaming(1 << 20)],
            active_lanes: 32,
        };
        sm.dispatch_block(&k, 0);
        let (cycles, done) = run_to_idle(&mut sm, &k, &cfg);
        assert_eq!(done, 1);
        // 4 stores at 1 cycle apiece plus wake slack.
        assert!(cycles < 64, "stores stalled the warp: {cycles} cycles");
    }

    #[test]
    fn handoff_waits_for_drain() {
        let cfg = cfg();
        let mut sm = Sm::new(0, &cfg);
        sm.owner = Some(AppId(0));
        let k = alu_kernel();
        sm.dispatch_block(&k, 0);
        sm.request_handoff(Some(AppId(1)));
        assert_eq!(sm.owner, Some(AppId(0)), "still draining");
        assert!(!sm.try_complete_handoff());
        let _ = run_to_idle(&mut sm, &k, &cfg);
        assert!(sm.try_complete_handoff());
        assert_eq!(sm.owner, Some(AppId(1)));
    }

    #[test]
    fn handoff_immediate_when_empty() {
        let cfg = cfg();
        let mut sm = Sm::new(0, &cfg);
        sm.owner = Some(AppId(0));
        sm.request_handoff(Some(AppId(1)));
        assert_eq!(sm.owner, Some(AppId(1)));
        assert!(sm.pending_owner.is_none());
    }

    #[test]
    fn barrier_synchronizes_block() {
        let cfg = cfg();
        let mut sm = Sm::new(0, &cfg);
        // Two warps with very different ALU latencies before a barrier:
        // both must leave the barrier together.
        let k = KernelDesc {
            name: "bar".into(),
            grid_blocks: 1,
            warps_per_block: 4,
            iters_per_warp: 6,
            body: vec![Op::Alu { latency: 12 }, Op::Barrier, Op::Alu { latency: 2 }],
            patterns: vec![],
            active_lanes: 32,
        };
        sm.dispatch_block(&k, 0);
        let (_, done) = run_to_idle(&mut sm, &k, &cfg);
        assert_eq!(done, 1, "block retires despite barriers");
    }

    #[test]
    fn barrier_as_last_op_retires_cleanly() {
        let cfg = cfg();
        let mut sm = Sm::new(0, &cfg);
        let k = KernelDesc {
            name: "bar-tail".into(),
            grid_blocks: 2,
            warps_per_block: 2,
            iters_per_warp: 3,
            body: vec![Op::Alu { latency: 4 }, Op::Barrier],
            patterns: vec![],
            active_lanes: 32,
        };
        sm.dispatch_block(&k, 0);
        sm.dispatch_block(&k, 1);
        let (_, done) = run_to_idle(&mut sm, &k, &cfg);
        assert_eq!(done, 2);
        assert!(sm.is_empty());
    }

    #[test]
    fn barrier_with_memory_ops_interleaved() {
        let cfg = cfg();
        let mut sm = Sm::new(0, &cfg);
        let k = KernelDesc {
            name: "bar-mem".into(),
            grid_blocks: 1,
            warps_per_block: 3,
            iters_per_warp: 4,
            body: vec![
                Op::Load(PatternId(0)),
                Op::Barrier,
                Op::Alu { latency: 2 },
            ],
            patterns: vec![AccessPattern::streaming(1 << 20)],
            active_lanes: 32,
        };
        sm.dispatch_block(&k, 0);
        let (_, done) = run_to_idle(&mut sm, &k, &cfg);
        assert_eq!(done, 1);
    }

    #[test]
    fn block_limit_respected() {
        let cfg = cfg();
        let mut sm = Sm::new(0, &cfg);
        let k = alu_kernel();
        for b in 0..cfg.max_blocks_per_sm {
            assert!(sm.can_take_block(&k, &cfg));
            sm.dispatch_block(&k, b);
        }
        assert!(!sm.can_take_block(&k, &cfg), "block limit");
    }

    #[test]
    fn warp_slot_limit_respected() {
        let cfg = cfg();
        let mut sm = Sm::new(0, &cfg);
        let k = KernelDesc {
            warps_per_block: cfg.max_warps_per_sm,
            ..alu_kernel()
        };
        assert!(sm.can_take_block(&k, &cfg));
        sm.dispatch_block(&k, 0);
        assert!(!sm.can_take_block(&k, &cfg), "warp slots exhausted");
    }
}
