//! Versioned per-warp instruction + address trace format (record /
//! replay).
//!
//! A [`KernelTrace`] is the recorded ground truth of one kernel run:
//! the kernel's op body and declared access patterns, plus — per global
//! warp, in program order — every address-generation *attempt* the
//! issue path made. Traces are produced three ways:
//!
//! * **Recorded** from a live run via [`TraceRecorder`] (installed with
//!   [`Gpu::enable_trace_recording`](crate::gpu::Gpu::enable_trace_recording),
//!   harvested with [`Gpu::take_trace`](crate::gpu::Gpu::take_trace));
//! * **Decoded** from the binary wire format ([`KernelTrace::decode`]);
//! * **Hand-authored** through [`TraceBuilder`] for workloads the
//!   synthetic pattern generators cannot express.
//!
//! Replay ([`Gpu::launch_traced`](crate::gpu::Gpu::launch_traced))
//! serves addresses back from the trace instead of calling the pattern
//! generators. The contract pinned by `tests/trace_roundtrip.rs`: a
//! trace recorded in some device context replays **bit-identically**
//! (same `SimStats`, same cycle count, same SMRA actions) in that
//! context, in both step modes and at any sweep thread count.
//!
//! Two design points carry that contract:
//!
//! * **Attempts, not just accesses.** A back-pressured load retries
//!   without bumping its pattern counter, and `Random` patterns draw
//!   fresh addresses from the per-SM RNG on every retry. Each group (one
//!   successful access) therefore stores *all* of its attempts; replay
//!   walks them in order and clamps to the last one, so a replay context
//!   that retries more often than the recording still sees deterministic
//!   addresses.
//! * **Relative addresses.** Stored addresses are relative to the
//!   recording application's base, and the replayer adds its *own* base
//!   back — a trace recorded in app slot 0 replays unchanged from any
//!   slot, which is what lets traced and synthetic workloads co-run.
//!
//! ## Wire format (version 1)
//!
//! Fixed-width little-endian throughout. A 16-byte header — magic
//! `"GCST"`, `version: u32`, `fingerprint: u64` (FNV-1a over the
//! payload) — then the payload: trace metadata (kernel name, geometry
//! and the device fields the recording ran under), the op body, the
//! access patterns, and the per-warp streams
//! (`warp → group → attempt → addresses`). The fingerprint is verified
//! on decode, doubles as the content hash in sweep-engine cache keys,
//! and is printed by the `trace_record` / `trace_replay` binaries.

use std::fmt;

use crate::config::GpuConfig;
use crate::kernel::{AccessPattern, KernelDesc, Op, PatternId, PatternKind};

/// Magic bytes opening every encoded trace.
pub const TRACE_MAGIC: [u8; 4] = *b"GCST";

/// Current wire-format version.
pub const TRACE_VERSION: u32 = 1;

/// Upper bound (exclusive) on stored relative addresses: application
/// bases are spaced `1 << 44` apart (`gpu::app_base`), so any relative
/// address below this re-bases losslessly into any app slot.
pub const REL_ADDR_LIMIT: u64 = 1 << 44;

/// Typed failure decoding, validating or building a trace.
///
/// Named `TraceFmtError` (not `TraceError`) to stay distinct from
/// `gcs_workloads::TraceError`, which covers *arrival* traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceFmtError {
    /// The byte stream ended before the structure it promised.
    Truncated {
        /// Offset at which more bytes were needed.
        at: usize,
        /// Bytes wanted at that offset.
        want: usize,
    },
    /// The stream does not start with [`TRACE_MAGIC`].
    BadMagic([u8; 4]),
    /// The header carries a version this build cannot read.
    UnsupportedVersion(u32),
    /// Structurally unreadable payload (fingerprint mismatch, unknown
    /// tags, trailing bytes).
    Corrupt(String),
    /// Readable but semantically inconsistent trace (geometry/stream
    /// mismatches, kernel validation failures, out-of-range addresses).
    Invalid(String),
}

impl fmt::Display for TraceFmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFmtError::Truncated { at, want } => {
                write!(f, "trace truncated: wanted {want} more byte(s) at offset {at}")
            }
            TraceFmtError::BadMagic(m) => write!(f, "not a kernel trace (magic {m:02x?})"),
            TraceFmtError::UnsupportedVersion(v) => {
                write!(f, "unsupported trace version {v} (this build reads {TRACE_VERSION})")
            }
            TraceFmtError::Corrupt(why) => write!(f, "corrupt trace: {why}"),
            TraceFmtError::Invalid(why) => write!(f, "invalid trace: {why}"),
        }
    }
}

impl std::error::Error for TraceFmtError {}

/// Kernel + device metadata stamped into every trace header.
///
/// The device fields (`num_sms` …) document the configuration the
/// recording ran under. They are informational: replay on a different
/// device is legal and deterministic, it just is not expected to be
/// bit-identical to the recording run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Kernel name (also the workload name replays report).
    pub name: String,
    /// SMs of the recording device.
    pub num_sms: u32,
    /// L1 line size of the recording device in bytes.
    pub line_bytes: u32,
    /// Warp-slot capacity per SM of the recording device.
    pub max_warps_per_sm: u32,
    /// Block capacity per SM of the recording device.
    pub max_blocks_per_sm: u32,
    /// Grid size in blocks.
    pub grid_blocks: u32,
    /// Warps per block.
    pub warps_per_block: u32,
    /// Loop iterations per warp.
    pub iters_per_warp: u32,
    /// Active lanes per warp (1..=32).
    pub active_lanes: u8,
}

/// All address-generation attempts behind one successful access: the
/// rejected (back-pressured) tries first, the issued one last. Stored
/// addresses are relative to the recording app's base.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessGroup {
    /// One `Vec<u64>` of relative addresses per attempt; every attempt
    /// carries exactly the pattern's `transactions` addresses.
    pub attempts: Vec<Vec<u64>>,
}

/// The ordered access groups of one global warp.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarpStream {
    /// Groups in program order: iteration-major, then the body's memory
    /// ops in order.
    pub groups: Vec<AccessGroup>,
}

/// A complete recorded (or authored) kernel run: metadata, op body,
/// declared patterns and the per-warp address streams.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTrace {
    /// Header metadata.
    pub meta: TraceMeta,
    /// The kernel's loop body.
    pub body: Vec<Op>,
    /// Declared access patterns. During replay these supply the
    /// transaction counts (and the RNG-parity draws for `Random`); the
    /// addresses themselves come from the streams.
    pub patterns: Vec<AccessPattern>,
    /// One stream per global warp, indexed by
    /// `block * warps_per_block + warp_in_block`.
    pub warps: Vec<WarpStream>,
}

impl KernelTrace {
    /// Reconstructs the [`KernelDesc`] this trace replays as. The
    /// descriptor is what flows through launch validation, stats and
    /// classification, so traced workloads are indistinguishable from
    /// synthetic ones downstream.
    pub fn kernel_desc(&self) -> KernelDesc {
        KernelDesc {
            name: self.meta.name.clone(),
            grid_blocks: self.meta.grid_blocks,
            warps_per_block: self.meta.warps_per_block,
            iters_per_warp: self.meta.iters_per_warp,
            body: self.body.clone(),
            patterns: self.patterns.clone(),
            active_lanes: self.meta.active_lanes,
        }
    }

    /// The body's memory-op pattern ids in program order; group `g` of
    /// any warp belongs to pattern `mem_pids[g % mem_pids.len()]`.
    pub fn mem_pattern_ids(&self) -> Vec<PatternId> {
        self.body
            .iter()
            .filter_map(|op| match op {
                Op::Load(p) | Op::Store(p) => Some(*p),
                _ => None,
            })
            .collect()
    }

    /// FNV-1a fingerprint of the encoded payload — the trace's content
    /// hash, carried in the header and in sweep-cache keys.
    pub fn fingerprint(&self) -> u64 {
        fnv1a_bytes(&self.encode_payload())
    }

    /// Checks every structural invariant replay relies on.
    ///
    /// # Errors
    ///
    /// [`TraceFmtError::Invalid`] describing the first violation: an
    /// invalid reconstructed kernel, a warp-count or group-count
    /// mismatch against the geometry, an empty group, an attempt whose
    /// address count disagrees with its pattern's `transactions`, or a
    /// relative address at or beyond [`REL_ADDR_LIMIT`].
    pub fn validate(&self) -> Result<(), TraceFmtError> {
        let kernel = self.kernel_desc();
        kernel.validate().map_err(TraceFmtError::Invalid)?;
        let total_warps = kernel.total_warps();
        if self.warps.len() as u64 != total_warps {
            return Err(TraceFmtError::Invalid(format!(
                "trace {} carries {} warp streams but the geometry has {} warps",
                self.meta.name,
                self.warps.len(),
                total_warps
            )));
        }
        let mem_pids = self.mem_pattern_ids();
        let groups_per_warp = self.meta.iters_per_warp as usize * mem_pids.len();
        for (w, stream) in self.warps.iter().enumerate() {
            if stream.groups.len() != groups_per_warp {
                return Err(TraceFmtError::Invalid(format!(
                    "warp {w}: {} access groups recorded, geometry implies {groups_per_warp}",
                    stream.groups.len()
                )));
            }
            for (g, group) in stream.groups.iter().enumerate() {
                if group.attempts.is_empty() {
                    return Err(TraceFmtError::Invalid(format!(
                        "warp {w} group {g}: no attempts"
                    )));
                }
                let pid = mem_pids[g % mem_pids.len()];
                let want = usize::from(self.patterns[usize::from(pid.0)].transactions);
                for (a, attempt) in group.attempts.iter().enumerate() {
                    if attempt.len() != want {
                        return Err(TraceFmtError::Invalid(format!(
                            "warp {w} group {g} attempt {a}: {} addresses, \
                             pattern {} issues {want} transactions",
                            attempt.len(),
                            pid.0
                        )));
                    }
                    if let Some(&bad) = attempt.iter().find(|&&r| r >= REL_ADDR_LIMIT) {
                        return Err(TraceFmtError::Invalid(format!(
                            "warp {w} group {g} attempt {a}: relative address {bad:#x} \
                             exceeds the app-slot span"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Serves the addresses of one replay attempt, re-based onto
    /// `app_base`, into `out` (which is cleared first).
    ///
    /// `attempt` indexes the recorded attempts of the group and clamps
    /// to the last one: a replay context that back-pressures a warp more
    /// often than the recording did keeps re-reading the final
    /// (successful) attempt, which keeps cross-context replay
    /// deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `warp`/`group` fall outside the validated stream — the
    /// simulator's issue path cannot produce such indices for a trace
    /// that passed [`KernelTrace::validate`], so a miss is a simulator
    /// bug, not a data condition.
    pub fn fill_addrs(&self, warp: u64, group: u32, attempt: u32, app_base: u64, out: &mut Vec<u64>) {
        out.clear();
        let stream = &self.warps[warp as usize];
        let g = &stream.groups[group as usize];
        let a = (attempt as usize).min(g.attempts.len() - 1);
        out.extend(g.attempts[a].iter().map(|&rel| app_base + rel));
    }

    /// Total recorded accesses (groups) across all warps.
    pub fn total_accesses(&self) -> u64 {
        self.warps.iter().map(|w| w.groups.len() as u64).sum()
    }

    /// Total recorded attempts across all warps (≥ accesses; the excess
    /// counts back-pressure retries).
    pub fn total_attempts(&self) -> u64 {
        self.warps
            .iter()
            .flat_map(|w| w.groups.iter())
            .map(|g| g.attempts.len() as u64)
            .sum()
    }

    // ------------------------------------------------------------------
    // Binary wire format
    // ------------------------------------------------------------------

    /// Encodes the trace: 16-byte header (magic, version, payload
    /// fingerprint), then the payload.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(16 + payload.len());
        out.extend_from_slice(&TRACE_MAGIC);
        out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a_bytes(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        // Metadata.
        let name = self.meta.name.as_bytes();
        p.extend_from_slice(&(name.len() as u16).to_le_bytes());
        p.extend_from_slice(name);
        for v in [
            self.meta.num_sms,
            self.meta.line_bytes,
            self.meta.max_warps_per_sm,
            self.meta.max_blocks_per_sm,
            self.meta.grid_blocks,
            self.meta.warps_per_block,
            self.meta.iters_per_warp,
        ] {
            p.extend_from_slice(&v.to_le_bytes());
        }
        p.push(self.meta.active_lanes);
        // Body.
        p.extend_from_slice(&(self.body.len() as u16).to_le_bytes());
        for op in &self.body {
            let (tag, operand) = match *op {
                Op::Alu { latency } => (0u8, latency),
                Op::Sfu { latency } => (1, latency),
                Op::Load(PatternId(pid)) => (2, pid),
                Op::Store(PatternId(pid)) => (3, pid),
                Op::Barrier => (4, 0),
            };
            p.push(tag);
            p.push(operand);
        }
        // Patterns.
        p.push(self.patterns.len() as u8);
        for pat in &self.patterns {
            match pat.kind {
                PatternKind::Streaming => p.push(0),
                PatternKind::Strided { stride } => {
                    p.push(1);
                    p.extend_from_slice(&stride.to_le_bytes());
                }
                PatternKind::Random => p.push(2),
                PatternKind::Tiled { tile_bytes } => {
                    p.push(3);
                    p.extend_from_slice(&tile_bytes.to_le_bytes());
                }
            }
            p.extend_from_slice(&pat.working_set.to_le_bytes());
            p.push(pat.transactions);
        }
        // Warp streams.
        p.extend_from_slice(&(self.warps.len() as u32).to_le_bytes());
        for warp in &self.warps {
            p.extend_from_slice(&(warp.groups.len() as u32).to_le_bytes());
            for group in &warp.groups {
                p.extend_from_slice(&(group.attempts.len() as u16).to_le_bytes());
                for attempt in &group.attempts {
                    p.extend_from_slice(&(attempt.len() as u16).to_le_bytes());
                    for &addr in attempt {
                        p.extend_from_slice(&addr.to_le_bytes());
                    }
                }
            }
        }
        p
    }

    /// Decodes and validates an encoded trace.
    ///
    /// Never panics on malformed input: every structural problem comes
    /// back as a typed [`TraceFmtError`].
    ///
    /// # Errors
    ///
    /// [`TraceFmtError::BadMagic`] / [`TraceFmtError::UnsupportedVersion`]
    /// for a foreign or newer header, [`TraceFmtError::Truncated`] when
    /// the stream ends early, [`TraceFmtError::Corrupt`] on fingerprint
    /// mismatch, unknown tags or trailing bytes, and
    /// [`TraceFmtError::Invalid`] when the decoded trace fails
    /// [`KernelTrace::validate`].
    pub fn decode(bytes: &[u8]) -> Result<KernelTrace, TraceFmtError> {
        let mut c = Cursor { bytes, pos: 0 };
        let magic = c.take(4)?;
        if magic != TRACE_MAGIC {
            return Err(TraceFmtError::BadMagic([magic[0], magic[1], magic[2], magic[3]]));
        }
        let version = c.u32()?;
        if version != TRACE_VERSION {
            return Err(TraceFmtError::UnsupportedVersion(version));
        }
        let fingerprint = c.u64()?;
        let payload = &bytes[c.pos..];
        let actual = fnv1a_bytes(payload);
        if actual != fingerprint {
            return Err(TraceFmtError::Corrupt(format!(
                "payload fingerprint {actual:016x} does not match header {fingerprint:016x}"
            )));
        }

        let name_len = usize::from(c.u16()?);
        let name = String::from_utf8(c.take(name_len)?.to_vec())
            .map_err(|_| TraceFmtError::Corrupt("kernel name is not UTF-8".into()))?;
        let num_sms = c.u32()?;
        let line_bytes = c.u32()?;
        let max_warps_per_sm = c.u32()?;
        let max_blocks_per_sm = c.u32()?;
        let grid_blocks = c.u32()?;
        let warps_per_block = c.u32()?;
        let iters_per_warp = c.u32()?;
        let active_lanes = c.u8()?;

        let body_len = usize::from(c.u16()?);
        let mut body = Vec::with_capacity(body_len.min(1024));
        for _ in 0..body_len {
            let tag = c.u8()?;
            let operand = c.u8()?;
            body.push(match tag {
                0 => Op::Alu { latency: operand },
                1 => Op::Sfu { latency: operand },
                2 => Op::Load(PatternId(operand)),
                3 => Op::Store(PatternId(operand)),
                4 => Op::Barrier,
                t => return Err(TraceFmtError::Corrupt(format!("unknown op tag {t}"))),
            });
        }

        let n_patterns = usize::from(c.u8()?);
        let mut patterns = Vec::with_capacity(n_patterns.min(256));
        for _ in 0..n_patterns {
            let kind = match c.u8()? {
                0 => PatternKind::Streaming,
                1 => PatternKind::Strided { stride: c.u64()? },
                2 => PatternKind::Random,
                3 => PatternKind::Tiled { tile_bytes: c.u64()? },
                t => return Err(TraceFmtError::Corrupt(format!("unknown pattern tag {t}"))),
            };
            let working_set = c.u64()?;
            let transactions = c.u8()?;
            patterns.push(AccessPattern {
                kind,
                working_set,
                transactions,
            });
        }

        let n_warps = c.u32()? as usize;
        let mut warps = Vec::new();
        for _ in 0..n_warps {
            let n_groups = c.u32()? as usize;
            let mut groups = Vec::new();
            for _ in 0..n_groups {
                let n_attempts = usize::from(c.u16()?);
                let mut attempts = Vec::new();
                for _ in 0..n_attempts {
                    let n_addrs = usize::from(c.u16()?);
                    let mut addrs = Vec::with_capacity(n_addrs);
                    for _ in 0..n_addrs {
                        addrs.push(c.u64()?);
                    }
                    attempts.push(addrs);
                }
                groups.push(AccessGroup { attempts });
            }
            warps.push(WarpStream { groups });
        }
        if c.pos != bytes.len() {
            return Err(TraceFmtError::Corrupt(format!(
                "{} trailing byte(s) after the warp streams",
                bytes.len() - c.pos
            )));
        }

        let trace = KernelTrace {
            meta: TraceMeta {
                name,
                num_sms,
                line_bytes,
                max_warps_per_sm,
                max_blocks_per_sm,
                grid_blocks,
                warps_per_block,
                iters_per_warp,
                active_lanes,
            },
            body,
            patterns,
            warps,
        };
        trace.validate()?;
        Ok(trace)
    }

    // ------------------------------------------------------------------
    // JSON debug view
    // ------------------------------------------------------------------

    /// Renders the full trace as human-readable JSON (a debug view; the
    /// binary format is the interchange format). Warp streams nest as
    /// `warps[warp][group][attempt][address]`.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"format\": \"GCST\",\n  \"version\": {TRACE_VERSION},\n"));
        s.push_str(&format!("  \"fingerprint\": \"{:016x}\",\n", self.fingerprint()));
        s.push_str("  \"meta\": {\n");
        s.push_str(&format!("    \"name\": \"{}\",\n", escape_json(&self.meta.name)));
        s.push_str(&format!("    \"num_sms\": {},\n", self.meta.num_sms));
        s.push_str(&format!("    \"line_bytes\": {},\n", self.meta.line_bytes));
        s.push_str(&format!("    \"max_warps_per_sm\": {},\n", self.meta.max_warps_per_sm));
        s.push_str(&format!("    \"max_blocks_per_sm\": {},\n", self.meta.max_blocks_per_sm));
        s.push_str(&format!("    \"grid_blocks\": {},\n", self.meta.grid_blocks));
        s.push_str(&format!("    \"warps_per_block\": {},\n", self.meta.warps_per_block));
        s.push_str(&format!("    \"iters_per_warp\": {},\n", self.meta.iters_per_warp));
        s.push_str(&format!("    \"active_lanes\": {}\n  }},\n", self.meta.active_lanes));
        s.push_str("  \"body\": [");
        for (i, op) in self.body.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            match *op {
                Op::Alu { latency } => s.push_str(&format!("{{\"op\":\"alu\",\"latency\":{latency}}}")),
                Op::Sfu { latency } => s.push_str(&format!("{{\"op\":\"sfu\",\"latency\":{latency}}}")),
                Op::Load(PatternId(p)) => s.push_str(&format!("{{\"op\":\"load\",\"pattern\":{p}}}")),
                Op::Store(PatternId(p)) => s.push_str(&format!("{{\"op\":\"store\",\"pattern\":{p}}}")),
                Op::Barrier => s.push_str("{\"op\":\"barrier\"}"),
            }
        }
        s.push_str("],\n  \"patterns\": [");
        for (i, pat) in self.patterns.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let kind = match pat.kind {
                PatternKind::Streaming => "{\"kind\":\"streaming\"".to_string(),
                PatternKind::Strided { stride } => format!("{{\"kind\":\"strided\",\"stride\":{stride}"),
                PatternKind::Random => "{\"kind\":\"random\"".to_string(),
                PatternKind::Tiled { tile_bytes } => {
                    format!("{{\"kind\":\"tiled\",\"tile_bytes\":{tile_bytes}")
                }
            };
            s.push_str(&format!(
                "{kind},\"working_set\":{},\"transactions\":{}}}",
                pat.working_set, pat.transactions
            ));
        }
        s.push_str("],\n");
        s.push_str(&format!(
            "  \"summary\": {{\"warps\": {}, \"accesses\": {}, \"attempts\": {}}},\n",
            self.warps.len(),
            self.total_accesses(),
            self.total_attempts()
        ));
        s.push_str("  \"warps\": [\n");
        for (w, warp) in self.warps.iter().enumerate() {
            s.push_str("    [");
            for (g, group) in warp.groups.iter().enumerate() {
                if g > 0 {
                    s.push(',');
                }
                s.push('[');
                for (a, attempt) in group.attempts.iter().enumerate() {
                    if a > 0 {
                        s.push(',');
                    }
                    s.push('[');
                    for (i, addr) in attempt.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        s.push_str(&addr.to_string());
                    }
                    s.push(']');
                }
                s.push(']');
            }
            s.push(']');
            if w + 1 < self.warps.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// FNV-1a 64-bit over raw bytes (the string variant lives in the sweep
/// engine; both use the standard offset basis and prime).
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceFmtError> {
        if self.bytes.len() - self.pos < n {
            return Err(TraceFmtError::Truncated {
                at: self.pos,
                want: n - (self.bytes.len() - self.pos),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, TraceFmtError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, TraceFmtError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, TraceFmtError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, TraceFmtError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }
}

// ----------------------------------------------------------------------
// Recorder
// ----------------------------------------------------------------------

/// Captures a kernel's issue-path address stream into a
/// [`KernelTrace`].
///
/// The SM issue path drives it with one [`TraceRecorder::record_attempt`]
/// per address-generation attempt (including attempts the memory system
/// back-pressures) and one [`TraceRecorder::commit`] when the access
/// actually issues, which closes the group.
#[derive(Debug)]
pub struct TraceRecorder {
    meta: TraceMeta,
    body: Vec<Op>,
    patterns: Vec<AccessPattern>,
    app_base: u64,
    warps: Vec<RecordedWarp>,
}

#[derive(Debug, Default)]
struct RecordedWarp {
    groups: Vec<AccessGroup>,
    open: Option<AccessGroup>,
}

impl TraceRecorder {
    /// A recorder for `kernel` running from `app_base` on a `cfg`
    /// device.
    pub fn new(kernel: &KernelDesc, cfg: &GpuConfig, app_base: u64) -> TraceRecorder {
        let total = kernel.total_warps() as usize;
        TraceRecorder {
            meta: TraceMeta {
                name: kernel.name.clone(),
                num_sms: cfg.num_sms,
                line_bytes: cfg.l1.line_bytes,
                max_warps_per_sm: cfg.max_warps_per_sm,
                max_blocks_per_sm: cfg.max_blocks_per_sm,
                grid_blocks: kernel.grid_blocks,
                warps_per_block: kernel.warps_per_block,
                iters_per_warp: kernel.iters_per_warp,
                active_lanes: kernel.active_lanes,
            },
            body: kernel.body.clone(),
            patterns: kernel.patterns.clone(),
            app_base,
            warps: (0..total).map(|_| RecordedWarp::default()).collect(),
        }
    }

    /// Records one address-generation attempt of `warp` (absolute
    /// addresses, relativized against the app base here).
    pub fn record_attempt(&mut self, warp: u64, addrs: &[u64]) {
        let w = &mut self.warps[warp as usize];
        let group = w.open.get_or_insert_with(AccessGroup::default);
        group.attempts.push(
            addrs
                .iter()
                .map(|&a| {
                    debug_assert!(
                        a >= self.app_base && a - self.app_base < REL_ADDR_LIMIT,
                        "recorded address {a:#x} outside app slot at base {:#x}",
                        self.app_base
                    );
                    a.wrapping_sub(self.app_base)
                })
                .collect(),
        );
    }

    /// Marks the open attempt group of `warp` as issued.
    pub fn commit(&mut self, warp: u64) {
        let w = &mut self.warps[warp as usize];
        debug_assert!(w.open.is_some(), "commit without a recorded attempt");
        if let Some(group) = w.open.take() {
            w.groups.push(group);
        }
    }

    /// Finalizes the recording. Attempt groups still open (a run cut
    /// short mid-access) are dropped: only a kernel run to completion
    /// yields a trace that passes [`KernelTrace::validate`].
    pub fn finish(self) -> KernelTrace {
        KernelTrace {
            meta: self.meta,
            body: self.body,
            patterns: self.patterns,
            warps: self
                .warps
                .into_iter()
                .map(|w| WarpStream { groups: w.groups })
                .collect(),
        }
    }
}

/// Per-application trace mode threaded through the SM issue path.
#[derive(Debug)]
pub enum TraceHook<'a> {
    /// Normal synthetic execution.
    None,
    /// Record every address-generation attempt.
    Record(&'a mut TraceRecorder),
    /// Serve addresses from a recorded trace instead of generating.
    Replay(&'a KernelTrace),
}

// ----------------------------------------------------------------------
// Builder (hand-authored traces)
// ----------------------------------------------------------------------

/// Builds a [`KernelTrace`] by hand — for workloads the parametric
/// pattern generators cannot express (phase changes, mixed-reuse tensor
/// pipelines). Authored groups carry a single attempt; replay's attempt
/// clamping serves it for back-pressure retries too.
///
/// ```
/// use gcs_sim::config::GpuConfig;
/// use gcs_sim::kernel::{AccessPattern, Op, PatternId};
/// use gcs_sim::trace_fmt::TraceBuilder;
///
/// let cfg = GpuConfig::test_small();
/// let mut b = TraceBuilder::new("tiny", &cfg)
///     .geometry(1, 1, 2, 32)
///     .body(vec![Op::Load(PatternId(0)), Op::Alu { latency: 4 }])
///     .patterns(vec![AccessPattern::streaming(1 << 20)]);
/// for i in 0..2u64 {
///     b = b.push_access(0, vec![i * 128]);
/// }
/// let trace = b.build().expect("valid trace");
/// assert_eq!(trace.total_accesses(), 2);
/// ```
#[derive(Debug)]
pub struct TraceBuilder {
    meta: TraceMeta,
    body: Vec<Op>,
    patterns: Vec<AccessPattern>,
    warps: Vec<WarpStream>,
}

impl TraceBuilder {
    /// A builder stamped with `cfg`'s device fields; set the geometry
    /// with [`TraceBuilder::geometry`] before pushing accesses.
    pub fn new(name: &str, cfg: &GpuConfig) -> TraceBuilder {
        TraceBuilder {
            meta: TraceMeta {
                name: name.to_string(),
                num_sms: cfg.num_sms,
                line_bytes: cfg.l1.line_bytes,
                max_warps_per_sm: cfg.max_warps_per_sm,
                max_blocks_per_sm: cfg.max_blocks_per_sm,
                grid_blocks: 0,
                warps_per_block: 0,
                iters_per_warp: 0,
                active_lanes: 32,
            },
            body: Vec::new(),
            patterns: Vec::new(),
            warps: Vec::new(),
        }
    }

    /// Sets the grid geometry and sizes the warp streams.
    pub fn geometry(
        mut self,
        grid_blocks: u32,
        warps_per_block: u32,
        iters_per_warp: u32,
        active_lanes: u8,
    ) -> TraceBuilder {
        self.meta.grid_blocks = grid_blocks;
        self.meta.warps_per_block = warps_per_block;
        self.meta.iters_per_warp = iters_per_warp;
        self.meta.active_lanes = active_lanes;
        let total = u64::from(grid_blocks) * u64::from(warps_per_block);
        self.warps = (0..total).map(|_| WarpStream::default()).collect();
        self
    }

    /// Sets the loop body.
    pub fn body(mut self, ops: Vec<Op>) -> TraceBuilder {
        self.body = ops;
        self
    }

    /// Sets the declared access patterns (transaction counts must match
    /// the pushed accesses).
    pub fn patterns(mut self, patterns: Vec<AccessPattern>) -> TraceBuilder {
        self.patterns = patterns;
        self
    }

    /// Appends one single-attempt access group to `warp`'s stream with
    /// the given *relative* addresses. Groups must be pushed in program
    /// order: iteration-major, then the body's memory ops in order.
    ///
    /// # Panics
    ///
    /// Panics if `warp` is outside the geometry set via
    /// [`TraceBuilder::geometry`].
    pub fn push_access(mut self, warp: u64, rel_addrs: Vec<u64>) -> TraceBuilder {
        self.warps[warp as usize].groups.push(AccessGroup {
            attempts: vec![rel_addrs],
        });
        self
    }

    /// Finalizes and validates the trace.
    ///
    /// # Errors
    ///
    /// Whatever [`KernelTrace::validate`] reports.
    pub fn build(self) -> Result<KernelTrace, TraceFmtError> {
        let trace = KernelTrace {
            meta: self.meta,
            body: self.body,
            patterns: self.patterns,
            warps: self.warps,
        };
        trace.validate()?;
        Ok(trace)
    }
}
