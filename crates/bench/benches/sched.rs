//! Micro-benchmarks for the online scheduling layer (`gcs_sched`):
//! epoch-plan cost per policy and the discrete-event loop itself with
//! co-run measurements served from the warm memo cache. The loop must
//! stay cheap relative to the simulations it dispatches — scheduling
//! overhead is pure loss from the device's point of view.
//!
//! Runs on the internal `gcs_bench::timing` harness; collected into
//! `BENCH_sched.json` by `scripts/bench.sh` and regression-gated the
//! same way as `BENCH_sim.json`.

use std::sync::Arc;

use gcs_bench::timing::bench;
use gcs_core::interference::InterferenceMatrix;
use gcs_core::runner::{AllocationPolicy, Pipeline, RunConfig};
use gcs_core::SweepEngine;
use gcs_sched::{Job, OnlineScheduler, PolicyKind, SchedConfig};
use gcs_sim::config::GpuConfig;
use gcs_workloads::{ArrivalTrace, Benchmark, Scale};

fn pipeline() -> Pipeline {
    let cfg = RunConfig {
        gpu: GpuConfig::test_small(),
        scale: Scale::TEST,
        concurrency: 2,
    };
    Pipeline::with_matrix_and_engine(
        cfg,
        InterferenceMatrix::synthetic_paper_shape(),
        Arc::new(SweepEngine::sequential()),
    )
    .expect("pipeline")
}

fn pending_14() -> Vec<Job> {
    gcs_core::queues::thesis_queue_14()
        .into_iter()
        .enumerate()
        .map(|(id, bench)| Job {
            id,
            bench,
            arrival: id as u64,
        })
        .collect()
}

fn main() {
    let p = pipeline();
    let pending = pending_14();

    // Epoch-plan cost over a full thesis-mix census: the ILP solve is
    // the expensive epoch step; greedy and FCFS are the cheap floors it
    // must stay worth paying for.
    for kind in PolicyKind::ALL {
        let mut policy = kind.build();
        bench(&format!("sched/plan/{}_census_14", kind.name()), || {
            policy.plan(&p, std::hint::black_box(&pending)).expect("plan")
        });
    }

    // Trace generation: 1k Poisson arrivals through the deterministic
    // ln path (platform-stable math is only worth it if it stays fast).
    bench("sched/trace/poisson_1k", || {
        ArrivalTrace::poisson(&Benchmark::ALL, 1_000, 10_000.0, 42).len()
    });

    // The full event loop over a 20-job trace with every co-run served
    // from the warm memo cache: what remains is admission, planning and
    // event bookkeeping — the scheduler's own overhead.
    let trace = ArrivalTrace::poisson(&Benchmark::ALL, 20, 30_000.0, 42);
    let mut loop_p = pipeline();
    let cfg = SchedConfig {
        num_gpus: 2,
        queue_capacity: 20,
        alloc: AllocationPolicy::Even,
        replan_interval: None,
    };
    // Warm the memo cache outside the timed region.
    let mut warm = PolicyKind::IlpEpoch.build();
    OnlineScheduler::new(&mut loop_p, cfg)
        .expect("config")
        .run(&trace, warm.as_mut())
        .expect("warmup run");
    bench("sched/loop/trace20_ilp_warm_cache", || {
        let mut policy = PolicyKind::IlpEpoch.build();
        OnlineScheduler::new(&mut loop_p, cfg)
            .expect("config")
            .run(&trace, policy.as_mut())
            .expect("run")
            .makespan
    });
}
