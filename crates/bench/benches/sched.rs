//! Micro-benchmarks for the online scheduling layer (`gcs_sched`):
//! epoch-plan cost per policy and the discrete-event loop itself with
//! co-run measurements served from the warm memo cache. The loop must
//! stay cheap relative to the simulations it dispatches — scheduling
//! overhead is pure loss from the device's point of view.
//!
//! Runs on the internal `gcs_bench::timing` harness; collected into
//! `BENCH_sched.json` by `scripts/bench.sh` and regression-gated the
//! same way as `BENCH_sim.json`.

use std::sync::Arc;

use gcs_bench::timing::bench;
use gcs_core::interference::InterferenceMatrix;
use gcs_core::latency::NanoStats;
use gcs_core::runner::{AllocationPolicy, Pipeline, RunConfig};
use gcs_core::SweepEngine;
use gcs_fleet::{
    allocate, run_fleet, DeviceProfile, FleetMode, FleetPredictor, FleetRunConfig, FleetSpec,
};
use gcs_sched::{
    DaemonConfig, DaemonCore, Job, OnlineScheduler, OverloadPolicy, PolicyKind, Request, Response,
    SchedConfig,
};
use gcs_sim::config::GpuConfig;
use gcs_workloads::{ArrivalTrace, Benchmark, Scale};

fn pipeline() -> Pipeline {
    let cfg = RunConfig {
        gpu: GpuConfig::test_small(),
        scale: Scale::TEST,
        concurrency: 2,
    };
    Pipeline::with_matrix_and_engine(
        cfg,
        InterferenceMatrix::synthetic_paper_shape(),
        Arc::new(SweepEngine::sequential()),
    )
    .expect("pipeline")
}

fn pending_14() -> Vec<Job> {
    gcs_core::queues::thesis_queue_14()
        .into_iter()
        .enumerate()
        .map(|(id, bench)| Job {
            id,
            bench,
            arrival: id as u64,
        })
        .collect()
}

fn main() {
    let p = pipeline();
    let pending = pending_14();

    // Epoch-plan cost over a full thesis-mix census: the ILP solve is
    // the expensive epoch step; greedy and FCFS are the cheap floors it
    // must stay worth paying for.
    for kind in PolicyKind::ALL {
        let mut policy = kind.build();
        bench(&format!("sched/plan/{}_census_14", kind.name()), || {
            policy.plan(&p, std::hint::black_box(&pending)).expect("plan")
        });
    }

    // Trace generation: 1k Poisson arrivals through the deterministic
    // ln path (platform-stable math is only worth it if it stays fast).
    bench("sched/trace/poisson_1k", || {
        ArrivalTrace::poisson(&Benchmark::ALL, 1_000, 10_000.0, 42).len()
    });

    // The full event loop over a 20-job trace with every co-run served
    // from the warm memo cache: what remains is admission, planning and
    // event bookkeeping — the scheduler's own overhead.
    let trace = ArrivalTrace::poisson(&Benchmark::ALL, 20, 30_000.0, 42);
    let mut loop_p = pipeline();
    let cfg = SchedConfig {
        num_gpus: 2,
        queue_capacity: 20,
        alloc: AllocationPolicy::Even,
        replan_interval: None,
    };
    // Warm the memo cache outside the timed region.
    let mut warm = PolicyKind::IlpEpoch.build();
    OnlineScheduler::new(&mut loop_p, cfg)
        .expect("config")
        .run(&trace, warm.as_mut())
        .expect("warmup run");
    bench("sched/loop/trace20_ilp_warm_cache", || {
        let mut policy = PolicyKind::IlpEpoch.build();
        OnlineScheduler::new(&mut loop_p, cfg)
            .expect("config")
            .run(&trace, policy.as_mut())
            .expect("run")
            .makespan
    });

    // The same trace through the daemon's request path: one
    // DaemonCore::handle call per submission plus the drain, i.e. what
    // a client pays per decision once framing is off the wire. The
    // decision-stats sidecar from the session becomes the
    // decisions_per_sec / p99 entries in BENCH_sched.json.
    let mut daemon_p = pipeline();
    let dcfg = DaemonConfig {
        sched: cfg,
        overload: OverloadPolicy::default(),
    };
    let session = |p: &mut Pipeline| -> NanoStats {
        let mut daemon = DaemonCore::new(p, PolicyKind::IlpEpoch.build(), dcfg).expect("daemon");
        for (id, a) in trace.arrivals().iter().enumerate() {
            match daemon.handle(Request::Submit {
                id: id as u64,
                bench: a.bench,
                at: a.time,
            }) {
                Response::Submitted { .. } => {}
                other => panic!("unexpected submit response: {other:?}"),
            }
        }
        match daemon.handle(Request::Drain) {
            Response::Drained { .. } => {}
            other => panic!("unexpected drain response: {other:?}"),
        }
        daemon.decision_stats()
    };
    // Warm the memo cache outside the timed region.
    session(&mut daemon_p);
    bench("sched/daemon/session_trace20_ilp_warm_cache", || {
        session(&mut daemon_p).count
    });

    // Decision-latency sidecar on the census-14 queue: one plan call
    // per submission, summarized per session by DaemonCore's NanoStats
    // and aggregated over many sessions so the p99 is stable enough
    // for the min_ns gate. The throughput number moves the other way
    // from min_ns, so it goes in the ungated `daemon` section of
    // BENCH_sched.json instead.
    const SESSIONS: usize = 200;
    let census_session = |p: &mut Pipeline| -> NanoStats {
        let mut daemon = DaemonCore::new(p, PolicyKind::IlpEpoch.build(), dcfg).expect("daemon");
        for job in &pending {
            match daemon.handle(Request::Submit {
                id: job.id as u64,
                bench: job.bench,
                at: job.arrival,
            }) {
                Response::Submitted { .. } => {}
                other => panic!("unexpected submit response: {other:?}"),
            }
        }
        match daemon.handle(Request::Drain) {
            Response::Drained { .. } => {}
            other => panic!("unexpected drain response: {other:?}"),
        }
        daemon.decision_stats()
    };
    census_session(&mut daemon_p); // warm the census co-run memos
    let reps: Vec<NanoStats> = (0..SESSIONS).map(|_| census_session(&mut daemon_p)).collect();
    let p99_mean = reps.iter().map(|s| s.p99_ns).sum::<u64>() / reps.len() as u64;
    let p99_min = reps.iter().map(|s| s.p99_ns).min().expect("sessions");
    let p50_mean = reps.iter().map(|s| s.p50_ns).sum::<u64>() / reps.len() as u64;
    let mean_ns = reps.iter().map(|s| s.mean_ns).sum::<f64>() / reps.len() as f64;
    let per_sec = 1e9 / mean_ns;
    println!(
        "sched/daemon census-14 decisions: p50 {p50_mean} ns, p99 {p99_mean} ns (best {p99_min} ns), {per_sec:.0} decisions/sec over {SESSIONS} sessions"
    );
    if std::env::var_os("BENCH_JSON").is_some() {
        println!(
            "BENCH_JSON {{\"name\":\"sched/daemon/decision_p99_census_14\",\"mean_ns\":{p99_mean},\"min_ns\":{p99_min}}}"
        );
        println!(
            "BENCH_DAEMON_JSON {{\"sessions\":{SESSIONS},\"decisions_per_session\":{},\"decisions_per_sec\":{per_sec:.0},\"decision_p50_ns\":{p50_mean},\"decision_p99_ns\":{p99_mean}}}",
            reps[0].count
        );
    }

    // Fleet family: the marginal-gain allocator on a warmed predictor
    // (pure curve arithmetic — must stay negligible next to a plan
    // solve) and the full heterogeneous event loop with every profile
    // and co-run served from the warm memo cache.
    let spec = FleetSpec::new(vec![
        DeviceProfile { id: "gpu8".into(), num_sms: 8 },
        DeviceProfile { id: "gpu15".into(), num_sms: 15 },
        DeviceProfile { id: "gpu30".into(), num_sms: 30 },
    ])
    .expect("fleet spec");
    let fleet_p = pipeline();
    let rc = fleet_p.config();
    let predictor = FleetPredictor::warm(
        fleet_p.engine(),
        &rc.gpu,
        rc.scale,
        &spec,
        &Benchmark::ALL,
    )
    .expect("warm predictor");
    let all_devices: Vec<usize> = (0..spec.len()).collect();
    bench("fleet/alloc/hetero3_census_14", || {
        allocate(
            &predictor,
            &spec,
            std::hint::black_box(&pending),
            &all_devices,
            2,
        )
        .placed()
    });

    let fleet_trace = ArrivalTrace::waves(&Benchmark::ALL, 3, 5, 40_000, 42);
    let fleet_cfg = FleetRunConfig {
        queue_capacity: fleet_trace.len(),
        mode: FleetMode::MarginalGain,
    };
    // Warm the memo cache outside the timed region.
    run_fleet(&fleet_p, &spec, &fleet_cfg, &fleet_trace).expect("warmup fleet run");
    bench("fleet/loop/hetero3_waves15_warm_cache", || {
        run_fleet(&fleet_p, &spec, &fleet_cfg, &fleet_trace)
            .expect("fleet run")
            .makespan
    });
}
