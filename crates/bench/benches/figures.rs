//! Micro-benchmarks for the analysis-side building blocks of the
//! figure pipeline (the heavy simulation sweeps live in the `fig*`
//! binaries, not here): e-coefficient computation, grouping end to end
//! from a matrix, and queue construction.
//!
//! Runs on the internal `gcs_bench::timing` harness; no external
//! benchmarking dependency.

use gcs_bench::timing::bench;
use gcs_core::ilp::solve_grouping;
use gcs_core::interference::InterferenceMatrix;
use gcs_core::pattern::enumerate_patterns;
use gcs_core::queues::{census, queue_with_distribution_seeded, Distribution};

fn main() {
    let m = InterferenceMatrix::synthetic_paper_shape();

    let patterns = enumerate_patterns(3);
    bench("figures/e_vector_nc3", || {
        patterns.iter().map(|p| p.e_coefficient(&m)).sum::<f64>()
    });

    let queue = queue_with_distribution_seeded(Distribution::Equal, 20, 0);
    let counts = census(&queue);
    bench("figures/group_20apps_nc2", || {
        solve_grouping(counts, 2, &m).expect("feasible")
    });

    let mut seed = 0u64;
    bench("figures/build_queue_20", || {
        seed = seed.wrapping_add(1);
        queue_with_distribution_seeded(Distribution::MHeavy, 20, seed)
    });
}
