//! Criterion benchmarks for the analysis-side building blocks of the
//! figure pipeline (the heavy simulation sweeps live in the `fig*`
//! binaries, not here): e-coefficient computation, grouping end to end
//! from a matrix, and queue construction.

use criterion::{criterion_group, criterion_main, Criterion};
use gcs_core::ilp::solve_grouping;
use gcs_core::interference::InterferenceMatrix;
use gcs_core::pattern::enumerate_patterns;
use gcs_core::queues::{census, queue_with_distribution_seeded, Distribution};

fn e_coefficients(c: &mut Criterion) {
    let m = InterferenceMatrix::synthetic_paper_shape();
    c.bench_function("figures/e_vector_nc3", |b| {
        let patterns = enumerate_patterns(3);
        b.iter(|| {
            patterns
                .iter()
                .map(|p| p.e_coefficient(&m))
                .sum::<f64>()
        });
    });
}

fn grouping_end_to_end(c: &mut Criterion) {
    let m = InterferenceMatrix::synthetic_paper_shape();
    c.bench_function("figures/group_20apps_nc2", |b| {
        let queue = queue_with_distribution_seeded(Distribution::Equal, 20, 0);
        let counts = census(&queue);
        b.iter(|| solve_grouping(counts, 2, &m).expect("feasible"));
    });
}

fn queue_construction(c: &mut Criterion) {
    c.bench_function("figures/build_queue_20", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            queue_with_distribution_seeded(Distribution::MHeavy, 20, seed)
        });
    });
}

criterion_group!(benches, e_coefficients, grouping_end_to_end, queue_construction);
criterion_main!(benches);
