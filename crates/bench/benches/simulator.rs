//! Criterion benchmarks for the simulator substrate: cache probes, warp
//! scheduler picks, and whole-device stepping (simulation speed in
//! simulated cycles per wall-second is the practical limit on experiment
//! sizes).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gcs_sim::cache::Cache;
use gcs_sim::config::{CacheConfig, GpuConfig};
use gcs_sim::gpu::Gpu;
use gcs_sim::sched::{WarpSchedPolicy, WarpScheduler};
use gcs_workloads::{Benchmark, Scale};

fn cache_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/cache");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("probe_1k_streaming", |b| {
        let mut cache = Cache::new(CacheConfig {
            bytes: 128 * 1024,
            line_bytes: 128,
            ways: 8,
        });
        let mut addr = 0u64;
        b.iter(|| {
            for _ in 0..1024 {
                cache.access(addr);
                addr = addr.wrapping_add(128);
            }
        });
    });
    group.finish();
}

fn scheduler_pick(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/sched");
    for policy in [WarpSchedPolicy::Gto, WarpSchedPolicy::Lrr] {
        group.bench_function(format!("{policy:?}_pick_48"), |b| {
            let mut s = WarpScheduler::new(policy);
            let ready = vec![true; 48];
            let ages: Vec<u64> = (0..48).collect();
            b.iter(|| s.pick(std::hint::black_box(&ready), &ages));
        });
    }
    group.finish();
}

fn device_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/device");
    group.sample_size(10);
    group.bench_function("test_small_5k_cycles_mixed_pair", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::test_small()).expect("gpu");
            gpu.launch(Benchmark::Blk.kernel(Scale::TEST)).expect("a");
            gpu.launch(Benchmark::Sad.kernel(Scale::TEST)).expect("b");
            gpu.partition_even();
            gpu.run_for(5_000);
            gpu.cycle()
        });
    });
    group.finish();
}

criterion_group!(benches, cache_access, scheduler_pick, device_step);
criterion_main!(benches);
