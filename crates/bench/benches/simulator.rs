//! Micro-benchmarks for the simulator substrate: cache probes, warp
//! scheduler picks, and whole-device stepping (simulation speed in
//! simulated cycles per wall-second is the practical limit on experiment
//! sizes).
//!
//! Runs on the internal `gcs_bench::timing` harness; no external
//! benchmarking dependency.

use gcs_bench::timing::bench;
use gcs_sim::cache::Cache;
use gcs_sim::config::{CacheConfig, GpuConfig};
use gcs_sim::gpu::Gpu;
use gcs_sim::sched::{WarpSchedPolicy, WarpScheduler};
use gcs_workloads::{Benchmark, Scale};

fn main() {
    let mut cache = Cache::new(CacheConfig {
        bytes: 128 * 1024,
        line_bytes: 128,
        ways: 8,
    });
    let mut addr = 0u64;
    bench("sim/cache/probe_1k_streaming", || {
        for _ in 0..1024 {
            cache.access(addr);
            addr = addr.wrapping_add(128);
        }
    });

    for policy in [WarpSchedPolicy::Gto, WarpSchedPolicy::Lrr] {
        let mut s = WarpScheduler::new(policy);
        let ready = vec![true; 48];
        let ages: Vec<u64> = (0..48).collect();
        bench(&format!("sim/sched/{policy:?}_pick_48"), || {
            s.pick(std::hint::black_box(&ready), &ages)
        });
    }

    bench("sim/device/test_small_5k_cycles_mixed_pair", || {
        let mut gpu = Gpu::new(GpuConfig::test_small()).expect("gpu");
        gpu.launch(Benchmark::Blk.kernel(Scale::TEST)).expect("a");
        gpu.launch(Benchmark::Sad.kernel(Scale::TEST)).expect("b");
        gpu.partition_even();
        gpu.run_for(5_000);
        gpu.cycle()
    });
}
