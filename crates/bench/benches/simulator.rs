//! Micro-benchmarks for the simulator substrate: cache probes, warp
//! scheduler picks, and whole-device stepping (simulation speed in
//! simulated cycles per wall-second is the practical limit on experiment
//! sizes).
//!
//! Runs on the internal `gcs_bench::timing` harness; no external
//! benchmarking dependency.

use gcs_bench::timing::bench;
use gcs_core::smra::{SmraController, SmraParams};
use gcs_sim::cache::Cache;
use gcs_sim::config::{CacheConfig, GpuConfig};
use gcs_sim::gpu::Gpu;
use gcs_sim::kernel::{AccessPattern, KernelDesc, Op, PatternId};
use gcs_sim::sched::{WarpSchedPolicy, WarpScheduler};
use gcs_workloads::{Benchmark, Scale};

/// A pointer-chase-style kernel: one dependent random DRAM read per
/// iteration, far too few warps to cover the miss latency. Performance
/// is pure memory latency (`R` would be enormous under the paper's
/// classifier); virtually every cycle of a run is a dead wait.
fn ptr_chase_kernel(name: &str, grid_blocks: u32) -> KernelDesc {
    KernelDesc {
        name: name.into(),
        grid_blocks,
        warps_per_block: 1,
        iters_per_warp: 4000,
        body: vec![Op::Load(PatternId(0))],
        patterns: vec![AccessPattern::random(256 << 20, 1)],
        active_lanes: 8,
    }
}

fn main() {
    let mut cache = Cache::new(CacheConfig {
        bytes: 128 * 1024,
        line_bytes: 128,
        ways: 8,
    });
    let mut addr = 0u64;
    bench("sim/cache/probe_1k_streaming", || {
        for _ in 0..1024 {
            cache.access(addr);
            addr = addr.wrapping_add(128);
        }
    });

    for policy in [WarpSchedPolicy::Gto, WarpSchedPolicy::Lrr] {
        let mut s = WarpScheduler::new(policy);
        let ready: u64 = (1u64 << 48) - 1;
        let ages: Vec<u64> = (0..48).collect();
        bench(&format!("sim/sched/{policy:?}_pick_48"), || {
            s.pick(std::hint::black_box(ready), &ages)
        });
    }

    bench("sim/device/test_small_5k_cycles_mixed_pair", || {
        let mut gpu = Gpu::new(GpuConfig::test_small()).expect("gpu");
        gpu.launch(Benchmark::Blk.kernel(Scale::TEST)).expect("a");
        gpu.launch(Benchmark::Sad.kernel(Scale::TEST)).expect("b");
        gpu.partition_even();
        gpu.run_for(5_000);
        gpu.cycle()
    });

    // Memory-bound co-run on the full device model: GUPS (bandwidth
    // hostile) next to SPMV (irregular). Most cycles stall on DRAM, so
    // this is the benchmark that event-horizon stepping must speed up.
    bench("sim/device/gtx480_20k_cycles_gups_spmv_even", || {
        let mut gpu = Gpu::new(GpuConfig::gtx480()).expect("gpu");
        gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("a");
        gpu.launch(Benchmark::Spmv.kernel(Scale::TEST)).expect("b");
        gpu.partition_even();
        gpu.run_for(20_000);
        gpu.cycle()
    });

    // Memory-*latency*-bound co-run: two low-occupancy pointer-chase
    // kernels whose warps all sleep on DRAM misses, so almost every
    // cycle is dead while the memory system stays busy. This is the
    // regime event-horizon stepping exists for — the old engine had to
    // step each of those cycles one by one.
    bench("sim/device/gtx480_ptr_chase_pair_complete", || {
        let mut gpu = Gpu::new(GpuConfig::gtx480()).expect("gpu");
        gpu.launch(ptr_chase_kernel("chase_a", 4)).expect("a");
        gpu.launch(ptr_chase_kernel("chase_b", 4)).expect("b");
        gpu.partition_even();
        gpu.run(50_000_000).expect("run");
        gpu.cycle()
    });

    // Same pairing run to completion on the small device: includes the
    // drain tail where only a few warps remain in flight. Despite the
    // shared workload pair this is a genuinely different setup from
    // `gtx480_20k_cycles_gups_spmv_even` above — small device vs full
    // GTX 480 model, run-to-completion vs a fixed 20k-cycle window —
    // and the two have historically landed on near-identical min_ns
    // (~102 ms in the pre-flat-layout baseline) purely by coincidence:
    // the big device simulates ~6x more SM-cycles per device cycle but
    // stops at 20k cycles, while the small one runs ~6x longer. They
    // regress independently, so both stay in the suite.
    bench("sim/device/test_small_gups_spmv_even_complete", || {
        let mut gpu = Gpu::new(GpuConfig::test_small()).expect("gpu");
        gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("a");
        gpu.launch(Benchmark::Spmv.kernel(Scale::TEST)).expect("b");
        gpu.partition_even();
        gpu.run(50_000_000).expect("run");
        gpu.cycle()
    });

    // Sharded-SM stepping: the same fixed 60k-cycle SMRA co-run at
    // shard counts 1, 2 and 4. Bit-identity across shard counts is
    // pinned by tests/shard_equivalence.rs; this measures the
    // wall-clock side. The win comes from elision, not threads: the
    // sharded engine's exact ready/wake summaries let it skip whole
    // shards whose SMs provably cannot act and replace the reference's
    // full-device quiescence scans with per-cell aggregates, so even
    // single-threaded (the only configuration a 1-CPU CI box can
    // measure) k > 1 must beat k = 1, while k = 1 itself stays on the
    // untouched reference path. The workload is a latency-bound
    // pointer-chase pair under a live SMRA controller: most stepped
    // cycles touch only a few of the 60 SMs, which is precisely the
    // regime where per-shard elision pays (a dense-issue workload
    // keeps every SM busy and gives sharding nothing to skip).
    for shards in [1u32, 2, 4] {
        bench(
            &format!("sim/device/gtx480_60k_cycles_smra_corun_sharded/s{shards}"),
            || {
                let mut gpu = Gpu::new(GpuConfig::gtx480()).expect("gpu");
                gpu.set_shards(shards);
                let a = gpu.launch(ptr_chase_kernel("chase_a", 16)).expect("a");
                let b = gpu.launch(ptr_chase_kernel("chase_b", 16)).expect("b");
                gpu.partition_even();
                let params = SmraParams {
                    tc: 5_000,
                    ..SmraParams::for_device(gpu.config().num_sms, 2)
                };
                let mut ctl = SmraController::new(params, vec![a, b], &gpu);
                for _ in 0..12 {
                    gpu.run_for(params.tc);
                    if gpu.all_done() {
                        break;
                    }
                    ctl.decide(&mut gpu);
                }
                gpu.cycle()
            },
        );
    }

    // Sharded-memory stepping (phase M): a dense-issue GUPS × SPMV
    // co-run on the full device at memory-shard counts 1, 2 and 4,
    // with SM shards fixed at 4 (the configuration PR 7 left ~flat,
    // because a dense workload gives SM-side elision nothing to skip
    // — the cycles go to the serial per-slice memory tick instead).
    // Bit-identity across m is pinned by
    // tests/memsys_shard_equivalence.rs; this measures wall-clock. As
    // with SM sharding the single-thread win comes from elision, not
    // threads: the sharded cells carry exact per-slice
    // `sleep_at = min(l2_event, dram_next)` gates, so saturated slices
    // skip the ticks between DRAM services (bus busy) and the failed
    // FR-FCFS scans while every bank is busy — exactly the cycles the
    // m = 1 reference lane, which stays on the untouched single-pass
    // path, must grind through one by one.
    for mem_shards in [1u32, 2, 4] {
        bench(
            &format!("sim/device/gtx480_60k_cycles_gups_spmv_corun_memsharded/m{mem_shards}"),
            || {
                let mut gpu = Gpu::new(GpuConfig::gtx480()).expect("gpu");
                gpu.set_shards(4);
                gpu.set_mem_shards(mem_shards);
                gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("a");
                gpu.launch(Benchmark::Spmv.kernel(Scale::TEST)).expect("b");
                gpu.partition_even();
                gpu.run_for(60_000);
                gpu.cycle()
            },
        );
    }

    // Trace replay overhead: record BLK once, then time a full replay
    // run against the synthetic baseline above. Replay swaps address
    // generation for a cursor walk over the recorded attempts, so it
    // should cost no more than synthetic execution.
    let blk_trace = {
        let mut gpu = Gpu::new(GpuConfig::test_small()).expect("gpu");
        let app = gpu.launch(Benchmark::Blk.kernel(Scale::TEST)).expect("a");
        gpu.enable_trace_recording(app).expect("recorder");
        gpu.partition_even();
        gpu.run(50_000_000).expect("run");
        std::sync::Arc::new(gpu.take_trace(app).expect("trace"))
    };
    bench("sim/device/test_small_trace_replay_blk_complete", || {
        let mut gpu = Gpu::new(GpuConfig::test_small()).expect("gpu");
        gpu.launch_traced(std::sync::Arc::clone(&blk_trace)).expect("a");
        gpu.partition_even();
        gpu.run(50_000_000).expect("run");
        gpu.cycle()
    });
}
