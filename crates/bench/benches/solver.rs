//! Micro-benchmarks for the MILP solver: the grouping ILPs the
//! scheduler solves online (Eq. 3.3–3.7) and the enumeration oracle.
//!
//! Runs on the internal `gcs_bench::timing` harness; no external
//! benchmarking dependency.

use gcs_bench::timing::bench;
use gcs_core::ilp::{build_problem, PAPER_APPENDIX_E};
use gcs_core::interference::InterferenceMatrix;
use gcs_core::pattern::enumerate_patterns;
use gcs_milp::enumerate::solve_by_enumeration;

fn main() {
    let nc2 = build_problem([2, 5, 2, 5], 2, &PAPER_APPENDIX_E);
    bench("ilp/grouping_nc2_appendix_a", || {
        nc2.clone().solve().expect("feasible")
    });

    let m = InterferenceMatrix::synthetic_paper_shape();
    let patterns = enumerate_patterns(3);
    let e: Vec<f64> = patterns.iter().map(|p| p.e_coefficient(&m)).collect();
    let nc3 = build_problem([6, 6, 3, 6], 3, &e);
    bench("ilp/grouping_nc3_21apps", || {
        nc3.clone().solve().expect("feasible")
    });

    bench("ilp/enumeration_oracle_nc2", || {
        solve_by_enumeration(&nc2).expect("feasible")
    });

    bench("pattern/enumerate_nc3", || {
        enumerate_patterns(std::hint::black_box(3))
    });
}
