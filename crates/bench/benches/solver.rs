//! Criterion benchmarks for the MILP solver: the grouping ILPs the
//! scheduler solves online (Eq. 3.3–3.7) and the enumeration oracle.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gcs_core::ilp::{build_problem, PAPER_APPENDIX_E};
use gcs_core::interference::InterferenceMatrix;
use gcs_core::pattern::enumerate_patterns;
use gcs_milp::enumerate::solve_by_enumeration;

fn grouping_ilp_nc2(c: &mut Criterion) {
    c.bench_function("ilp/grouping_nc2_appendix_a", |b| {
        let p = build_problem([2, 5, 2, 5], 2, &PAPER_APPENDIX_E);
        b.iter_batched(
            || p.clone(),
            |p| p.solve().expect("feasible"),
            BatchSize::SmallInput,
        );
    });
}

fn grouping_ilp_nc3(c: &mut Criterion) {
    let m = InterferenceMatrix::synthetic_paper_shape();
    let patterns = enumerate_patterns(3);
    let e: Vec<f64> = patterns.iter().map(|p| p.e_coefficient(&m)).collect();
    c.bench_function("ilp/grouping_nc3_21apps", |b| {
        let p = build_problem([6, 6, 3, 6], 3, &e);
        b.iter_batched(
            || p.clone(),
            |p| p.solve().expect("feasible"),
            BatchSize::SmallInput,
        );
    });
}

fn enumeration_oracle(c: &mut Criterion) {
    c.bench_function("ilp/enumeration_oracle_nc2", |b| {
        let p = build_problem([2, 5, 2, 5], 2, &PAPER_APPENDIX_E);
        b.iter(|| solve_by_enumeration(&p).expect("feasible"));
    });
}

fn pattern_enumeration(c: &mut Criterion) {
    c.bench_function("pattern/enumerate_nc3", |b| {
        b.iter(|| enumerate_patterns(std::hint::black_box(3)));
    });
}

criterion_group!(
    benches,
    grouping_ilp_nc2,
    grouping_ilp_nc3,
    enumeration_oracle,
    pattern_enumeration
);
criterion_main!(benches);
