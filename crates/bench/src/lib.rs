//! # gcs-bench — figure/table regeneration harness
//!
//! One binary per table/figure of the thesis (see `DESIGN.md` §4 for the
//! index). Every binary prints the rows/series the corresponding figure
//! plots, alongside the paper's reference values where the thesis
//! reports them.
//!
//! Shared plumbing lives here: workload-scale selection via the
//! `GCS_SCALE` environment variable (`full`, `small`, `test`) and tiny
//! table-printing helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gcs_core::runner::{Pipeline, RunConfig};
use gcs_sim::config::GpuConfig;
use gcs_workloads::{Benchmark, Scale};

/// Resolves the workload scale from `GCS_SCALE` (default: `small`).
///
/// `full` runs the exact experiment sizes, `small` quarters the work,
/// `test` is only meant for smoke-testing the binaries.
pub fn scale_from_env() -> Scale {
    match std::env::var("GCS_SCALE").as_deref() {
        Ok("full") => Scale::FULL,
        Ok("test") => Scale::TEST,
        _ => Scale::SMALL,
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a ratio as a percent delta against a baseline of 1.0
/// (`1.36` → `"+36.0%"`).
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// Builds the full measurement pipeline (suite profiling + interference
/// matrix) for `concurrency` co-running applications on the GTX 480
/// model at the environment-selected scale.
///
/// This is the expensive, shared prologue of every chapter-4 figure;
/// each binary builds it once and reuses it across policies. The
/// 105-co-run interference matrix is cached on disk
/// (`results/.matrix-cache-*`) keyed by the workload scale, so repeated
/// harness invocations skip the sweep; delete the cache after changing
/// the simulator or the workload models.
///
/// # Panics
///
/// Panics if profiling or interference measurement fails — the harness
/// has no useful way to continue.
pub fn build_pipeline(concurrency: u32) -> Pipeline {
    let cfg = RunConfig {
        gpu: GpuConfig::gtx480(),
        scale: scale_from_env(),
        concurrency,
    };
    let cache = matrix_cache_path(&cfg.scale);
    if let Some(matrix) = load_matrix(&cache) {
        println!("[setup] interference matrix loaded from {cache:?}; profiling suite ...");
        return Pipeline::with_matrix(cfg, matrix).expect("pipeline construction");
    }
    println!(
        "[setup] profiling suite + measuring interference (scale {:?}) ...",
        cfg.scale
    );
    let pipeline = Pipeline::new(cfg).expect("pipeline construction");
    store_matrix(&cache, pipeline.matrix());
    pipeline
}

fn matrix_cache_path(scale: &Scale) -> std::path::PathBuf {
    std::path::PathBuf::from(format!(
        "results/.matrix-cache-i{}-g{}.txt",
        scale.iters, scale.grid
    ))
}

/// Parses a cached matrix: 16 whitespace-separated floats, row-major.
fn load_matrix(path: &std::path::Path) -> Option<gcs_core::InterferenceMatrix> {
    let text = std::fs::read_to_string(path).ok()?;
    let vals: Vec<f64> = text
        .split_whitespace()
        .map(str::parse)
        .collect::<Result<_, _>>()
        .ok()?;
    if vals.len() != 16 || vals.iter().any(|v| !v.is_finite() || *v < 1.0) {
        return None;
    }
    let mut s = [[1.0f64; 4]; 4];
    for (i, v) in vals.iter().enumerate() {
        s[i / 4][i % 4] = *v;
    }
    Some(gcs_core::InterferenceMatrix::from_entries(s))
}

fn store_matrix(path: &std::path::Path, m: &gcs_core::InterferenceMatrix) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut text = String::new();
    for row in m.entries() {
        for v in row {
            text.push_str(&format!("{v:.6} "));
        }
        text.push('\n');
    }
    if std::fs::write(path, text).is_err() {
        eprintln!("warning: could not cache interference matrix at {path:?}");
    }
}

/// The 12-application queue of §4.2 (three-application execution):
/// the suite minus RAY and NN, matching the groups shown in Fig 4.10.
pub fn queue_12() -> Vec<Benchmark> {
    gcs_core::queues::thesis_queue_14()
        .into_iter()
        .filter(|b| !matches!(b, Benchmark::Ray | Benchmark::Nn))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_deltas() {
        assert_eq!(pct(1.36), "+36.0%");
        assert_eq!(pct(0.9), "-10.0%");
    }

    #[test]
    fn default_scale_is_small() {
        // Do not mutate the environment (tests run in parallel); only
        // check the default path when the variable is absent.
        if std::env::var("GCS_SCALE").is_err() {
            assert_eq!(scale_from_env(), Scale::SMALL);
        }
    }
}
