//! # gcs-bench — figure/table regeneration harness
//!
//! One binary per table/figure of the thesis (see `DESIGN.md` §4 for the
//! index). Every binary prints the rows/series the corresponding figure
//! plots, alongside the paper's reference values where the thesis
//! reports them.
//!
//! Shared plumbing lives here: workload-scale selection via the
//! `GCS_SCALE` environment variable (`full`, `small`, `test`) and tiny
//! table-printing helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use gcs_core::runner::{Pipeline, RunConfig};
use gcs_core::sweep::SweepEngine;
use gcs_sim::config::GpuConfig;
use gcs_workloads::{Benchmark, Scale};

pub mod timing;

/// Resolves the workload scale from `GCS_SCALE` (default: `small`).
///
/// `full` runs the exact experiment sizes, `small` quarters the work,
/// `test` is only meant for smoke-testing the binaries.
pub fn scale_from_env() -> Scale {
    match std::env::var("GCS_SCALE").as_deref() {
        Ok("full") => Scale::FULL,
        Ok("test") => Scale::TEST,
        _ => Scale::SMALL,
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats a ratio as a percent delta against a baseline of 1.0
/// (`1.36` → `"+36.0%"`).
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", (ratio - 1.0) * 100.0)
}

/// Directory where the sweep engine persists memoized simulation
/// results (one small JSON file per profile/co-run job).
pub const SWEEP_CACHE_DIR: &str = "results/cache";

/// Whether the invocation asked for a phase-cycle profile: the
/// `--profile` command-line flag on any fig binary, or `GCS_PROFILE=1`
/// in the environment (for harnesses that cannot pass arguments
/// through).
pub fn profile_requested() -> bool {
    std::env::args().skip(1).any(|a| a == "--profile")
        || std::env::var("GCS_PROFILE").as_deref() == Ok("1")
}

/// A machine-sized [`SweepEngine`] persisting its memo cache under
/// [`SWEEP_CACHE_DIR`] — the engine every harness binary should share.
/// Delete the cache directory after changing the simulator or the
/// workload models, or set `GCS_CACHE=off` to bypass it for one run
/// (used by `scripts/bench.sh` to time truly cold sweeps). With
/// `--profile` (or `GCS_PROFILE=1`) the engine also collects per-phase
/// device cycles for every job it simulates; note cached jobs
/// contribute no cycles, so profile a cold sweep (`GCS_CACHE=off`) to
/// see the full picture. `GCS_THREADS=n` pins the worker count (the
/// profile line is byte-stable at any value; `scripts/ci.sh
/// --profile-smoke` sweeps it to prove that). `GCS_SIM_THREADS=k` steps
/// every simulated device with `k` SM shards
/// ([`gcs_sim::Gpu::set_shards`]) and lets jobs lease idle worker
/// threads for the sharded step — results and cache keys are
/// bit-identical at any value; only the wall-clock cost of cache misses
/// changes.
pub fn default_engine() -> SweepEngine {
    let engine = match std::env::var("GCS_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        Some(n) => SweepEngine::new(n),
        None => SweepEngine::auto(),
    };
    let engine = match std::env::var("GCS_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        Some(n) => engine.with_sim_threads(n),
        None => engine,
    };
    let engine = if std::env::var("GCS_CACHE").as_deref() == Ok("off") {
        engine
    } else {
        engine.with_cache_dir(SWEEP_CACHE_DIR)
    };
    engine.with_phase_profiling(profile_requested())
}

/// Prints the deterministic phase-cycle report when profiling was
/// requested; a no-op otherwise. Call at the end of a fig binary so the
/// report covers every job the run simulated. The line is byte-stable
/// at any worker thread count (pure cycle counters, no wall-clock).
pub fn report_profile(pipeline: &Pipeline) {
    if profile_requested() {
        println!("{}", pipeline.sweep_stats().profile_report());
    }
}

/// Builds the full measurement pipeline (suite profiling + interference
/// matrix) for `concurrency` co-running applications on the GTX 480
/// model at the environment-selected scale.
///
/// This is the expensive, shared prologue of every chapter-4 figure;
/// each binary builds it once and reuses it across policies. The sweep
/// (14 alone profiles + 105 pair co-runs) fans out across the machine's
/// cores and every simulation is memoized under [`SWEEP_CACHE_DIR`]
/// keyed by device config, scale and workload, so repeated harness
/// invocations re-simulate nothing — the printed [`gcs_core::SweepStats`] line
/// shows exactly how many jobs came from the cache.
///
/// # Panics
///
/// Panics if profiling or interference measurement fails — the harness
/// has no useful way to continue.
pub fn build_pipeline(concurrency: u32) -> Pipeline {
    let cfg = RunConfig {
        gpu: GpuConfig::gtx480(),
        scale: scale_from_env(),
        concurrency,
    };
    let engine = Arc::new(default_engine());
    println!(
        "[setup] profiling suite + measuring interference (scale {:?}; {} threads; cache {}) ...",
        cfg.scale,
        engine.threads(),
        SWEEP_CACHE_DIR,
    );
    let pipeline = Pipeline::new_with_engine(cfg, engine).expect("pipeline construction");
    println!("[setup] {}", pipeline.sweep_stats());
    pipeline
}

/// The 12-application queue of §4.2 (three-application execution):
/// the suite minus RAY and NN, matching the groups shown in Fig 4.10.
pub fn queue_12() -> Vec<Benchmark> {
    gcs_core::queues::thesis_queue_14()
        .into_iter()
        .filter(|b| !matches!(b, Benchmark::Ray | Benchmark::Nn))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_deltas() {
        assert_eq!(pct(1.36), "+36.0%");
        assert_eq!(pct(0.9), "-10.0%");
    }

    #[test]
    fn default_scale_is_small() {
        // Do not mutate the environment (tests run in parallel); only
        // check the default path when the variable is absent.
        if std::env::var("GCS_SCALE").is_err() {
            assert_eq!(scale_from_env(), Scale::SMALL);
        }
    }
}
