//! schedd — the scheduler-as-a-service daemon over TCP (DESIGN.md §13).
//!
//! Binds a TCP listener, builds the full measurement pipeline once, and
//! serves the `gcs_sched` frame protocol until a client drains the
//! session (graceful shutdown: in-flight jobs finish, the final
//! `SchedReport` goes to the draining client, then the process exits).
//!
//! ```text
//! schedd [--listen ADDR]        # default 127.0.0.1:7077
//! ```
//!
//! Environment knobs (defaults in parentheses):
//!
//! * `GCS_SCHED_POLICY`    — `fcfs` | `greedy` | `ilp` (`ilp`)
//! * `GCS_SCHED_FLEET`     — path to a `FleetSpec` JSON; serves the
//!   heterogeneous fleet policy instead of `GCS_SCHED_POLICY` (the
//!   report's policy name comes out `fleet`, or `ilp` for the
//!   degenerate 1-device spec)
//! * `GCS_SCHED_GPUS`      — simulated devices (`1`)
//! * `GCS_SCHED_CAPACITY`  — admission queue bound (`16`)
//! * `GCS_SCHED_READ_MS`   — per-connection read deadline in ms, `0`
//!   disables (`2000`); the slow-loris defence
//! * `GCS_SCHED_REPLAN_SHED` — overload rung 1: pending count above
//!   which cached plans survive admissions (off)
//! * `GCS_SCHED_ILP_SHED`  — overload rung 2: pending count above which
//!   planning falls back to the greedy pairing (off)
//!
//! Plus the usual pipeline knobs: `GCS_SCALE`, `GCS_THREADS`,
//! `GCS_SIM_THREADS`, `GCS_CACHE`.

use std::time::Duration;

use gcs_bench::{build_pipeline, header};
use gcs_core::runner::AllocationPolicy;
use gcs_fleet::{FleetPolicy, FleetSpec};
use gcs_sched::{
    DaemonConfig, DaemonCore, OverloadPolicy, Policy, PolicyKind, SchedConfig, TcpAcceptor,
};

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn main() {
    let mut listen = "127.0.0.1:7077".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--listen" => listen = args.next().expect("--listen needs an address"),
            other => {
                eprintln!("unknown argument {other:?}; usage: schedd [--listen ADDR]");
                std::process::exit(2);
            }
        }
    }

    let policy_name = std::env::var("GCS_SCHED_POLICY").unwrap_or_else(|_| "ilp".into());
    let Some(kind) = PolicyKind::from_name(&policy_name) else {
        eprintln!("GCS_SCHED_POLICY={policy_name:?} is not fcfs|greedy|ilp");
        std::process::exit(2);
    };
    let cfg = DaemonConfig {
        sched: SchedConfig {
            num_gpus: env_usize("GCS_SCHED_GPUS").unwrap_or(1) as u32,
            queue_capacity: env_usize("GCS_SCHED_CAPACITY").unwrap_or(16),
            alloc: AllocationPolicy::Smra,
            replan_interval: None,
        },
        overload: OverloadPolicy {
            replan_pending_limit: env_usize("GCS_SCHED_REPLAN_SHED"),
            ilp_pending_limit: env_usize("GCS_SCHED_ILP_SHED"),
        },
    };
    let read_ms = env_usize("GCS_SCHED_READ_MS").unwrap_or(2000);
    let read_deadline = (read_ms > 0).then(|| Duration::from_millis(read_ms as u64));

    let listener = match std::net::TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    let addr = listener.local_addr().expect("local addr");

    let mut pipeline = build_pipeline(2);
    // GCS_SCHED_FLEET overrides the policy kind with the heterogeneous
    // fleet allocator loaded from a FleetSpec JSON file.
    let policy: Box<dyn Policy> = match std::env::var("GCS_SCHED_FLEET") {
        Ok(path) => {
            let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("GCS_SCHED_FLEET={path:?}: cannot read spec: {e}");
                std::process::exit(2);
            });
            let spec = FleetSpec::from_json(&json).unwrap_or_else(|e| {
                eprintln!("GCS_SCHED_FLEET={path:?}: invalid spec: {e}");
                std::process::exit(2);
            });
            Box::new(FleetPolicy::new(spec))
        }
        Err(_) => kind.build(),
    };
    let policy_label = policy.name();
    let mut daemon = DaemonCore::new(&mut pipeline, policy, cfg).expect("daemon configuration");
    let mut acceptor = TcpAcceptor::new(listener, read_deadline, Some(Duration::from_secs(10)));

    header("schedd: scheduler daemon");
    println!(
        "listening on {addr}; policy {}; {} device(s); capacity {}; read deadline {:?}",
        policy_label,
        cfg.sched.num_gpus,
        cfg.sched.queue_capacity,
        read_deadline,
    );

    if let Err(e) = daemon.serve(&mut acceptor) {
        eprintln!("serve failed: {e}");
        std::process::exit(1);
    }

    let stats = daemon.decision_stats();
    println!(
        "drained; {} planning decisions, p50 {} ns, p99 {} ns, max {} ns",
        stats.count, stats.p50_ns, stats.p99_ns, stats.max_ns
    );
}
