//! The thesis' **headline numbers**: ILP-SMRA improves device
//! throughput by ~36 % on average for two concurrent applications and
//! ~23 % for three, compared to the Even baseline across the five queue
//! distributions (abstract and §5).
//!
//! ```text
//! cargo run --release -p gcs-bench --bin headline
//! ```

use gcs_bench::{build_pipeline, header, pct, report_profile};
use gcs_core::queues::{queue_with_distribution, Distribution};
use gcs_core::runner::{AllocationPolicy, GroupingPolicy};

fn main() {
    for (nc, len, paper) in [(2u32, 20u32, "+36%"), (3, 21, "+23%")] {
        let mut pipeline = build_pipeline(nc);
        header(&format!("headline — {nc} concurrent applications"));
        let mut gains = Vec::new();
        for dist in Distribution::ALL {
            let queue = queue_with_distribution(dist, len);
            let even = pipeline
                .run_queue(&queue, GroupingPolicy::Fcfs, AllocationPolicy::Even)
                .expect("even");
            let smra = pipeline
                .run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Smra)
                .expect("smra");
            let g = smra.device_throughput / even.device_throughput;
            println!("  {:>12}: ILP-SMRA vs Even {}", dist.label(), pct(g));
            gains.push(g);
        }
        let avg = gains.iter().sum::<f64>() / gains.len() as f64;
        println!("  average: {} (paper: {paper})", pct(avg));
        report_profile(&pipeline);
    }
}
