//! Developer diagnostic: group-by-group breakdown of one queue under
//! FCFS / ILP grouping and Even / SMRA allocation.
//!
//! ```text
//! cargo run --release -p gcs-bench --bin debug_queue -- mheavy
//! ```

use gcs_bench::{build_pipeline, report_profile, scale_from_env};
use gcs_core::queues::{queue_with_distribution, Distribution};
use gcs_core::runner::{AllocationPolicy, GroupingPolicy};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "mheavy".into());
    let dist = match which.as_str() {
        "equal" => Distribution::Equal,
        "mheavy" => Distribution::MHeavy,
        "mcheavy" => Distribution::McHeavy,
        "cheavy" => Distribution::CHeavy,
        _ => Distribution::AHeavy,
    };
    let mut pipeline = build_pipeline(2);
    let queue = queue_with_distribution(dist, 20);
    println!("queue ({:?} at {:?}): {:?}", dist, scale_from_env(), queue);

    for (grouping, alloc) in [
        (GroupingPolicy::Fcfs, AllocationPolicy::Even),
        (GroupingPolicy::Ilp, AllocationPolicy::Even),
        (GroupingPolicy::Ilp, AllocationPolicy::Smra),
    ] {
        let r = pipeline.run_queue(&queue, grouping, alloc).expect("run");
        println!(
            "\n{grouping:?}/{alloc:?}: total {} cycles, throughput {:.1}",
            r.total_cycles, r.device_throughput
        );
        for g in &r.groups {
            let names: Vec<String> = g
                .apps
                .iter()
                .map(|a| format!("{}({})", a.bench.name(), pipeline.class_of(a.bench)))
                .collect();
            println!("  {:<28} makespan {:>9}", names.join("+"), g.makespan);
        }
    }

    report_profile(&pipeline);
}
