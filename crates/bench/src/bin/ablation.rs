//! Design-choice ablations (DESIGN.md §7):
//!
//! 1. **Warp scheduler**: GTO (Table 4.1's choice) vs loose round-robin.
//! 2. **Memory scheduler**: FR-FCFS vs plain FCFS. The thesis blames
//!    FR-FCFS's row-hit priority for class-M dominance (§3.2.2); with
//!    plain FCFS the slowdown class M imposes on others should shrink.
//!
//! ```text
//! cargo run --release -p gcs-bench --bin ablation
//! ```

use gcs_bench::{header, scale_from_env};
use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::Gpu;
use gcs_sim::sched::WarpSchedPolicy;
use gcs_workloads::Benchmark;

fn co_run(cfg: &GpuConfig, a: Benchmark, b: Benchmark) -> (u64, u64, f64) {
    let scale = scale_from_env();
    let mut gpu = Gpu::new(cfg.clone()).expect("gpu");
    let ia = gpu.launch(a.kernel(scale)).expect("a");
    let ib = gpu.launch(b.kernel(scale)).expect("b");
    gpu.partition_even();
    gpu.run(500_000_000).expect("run");
    (
        gpu.stats().app(ia).runtime_cycles(),
        gpu.stats().app(ib).runtime_cycles(),
        gpu.stats().device_throughput(),
    )
}

fn main() {
    header("ablation 1 — warp scheduler: GTO vs LRR (BLK+SAD co-run)");
    for sched in [WarpSchedPolicy::Gto, WarpSchedPolicy::Lrr] {
        let mut cfg = GpuConfig::gtx480();
        cfg.sched = sched;
        let (ca, cb, thr) = co_run(&cfg, Benchmark::Blk, Benchmark::Sad);
        println!("  {sched:?}: BLK {ca} cycles, SAD {cb} cycles, device {thr:.1} IPC");
    }

    header("ablation 2 — memory scheduler: FR-FCFS vs FCFS (BLK+BP co-run)");
    let mut blk = Vec::new();
    let mut bp = Vec::new();
    for fr in [true, false] {
        let mut cfg = GpuConfig::gtx480();
        cfg.dram.fr_fcfs = fr;
        let (ca, cb, thr) = co_run(&cfg, Benchmark::Blk, Benchmark::Bp);
        let label = if fr { "FR-FCFS" } else { "FCFS   " };
        println!("  {label}: BLK {ca} cycles, BP {cb} cycles, device {thr:.1} IPC");
        blk.push(ca);
        bp.push(cb);
    }
    // Row-hit-first scheduling raises *aggregate* bandwidth, so both
    // apps run faster under FR-FCFS than under plain FCFS; the thesis'
    // point is about the *relative* advantage it hands the streaming
    // class-M application.
    let blk_gain = blk[1] as f64 / blk[0] as f64;
    let bp_gain = bp[1] as f64 / bp[0] as f64;
    println!("\nspeedup from FR-FCFS: BLK {blk_gain:.2}x vs BP {bp_gain:.2}x");
    println!(
        "class M benefits more from row-hit priority: {}",
        if blk_gain > bp_gain { "yes (the thesis' mechanism)" } else { "NO" }
    );
}
