//! Regenerates **Fig 4.9**: device throughput for three-application
//! execution on the 12-app queue — serial vs FCFS vs ILP grouping.
//!
//! Paper: ILP ≈ 2× serial and ≈ 45 % above FCFS.
//!
//! ```text
//! cargo run --release -p gcs-bench --bin fig49_three_app
//! ```

use gcs_bench::{build_pipeline, report_profile, header, pct, queue_12};
use gcs_core::runner::{AllocationPolicy, GroupingPolicy};

fn main() {
    let mut pipeline = build_pipeline(3);
    let queue = queue_12();

    header("Fig 4.9 — three-application execution, 12-app queue");
    let serial = pipeline
        .run_queue(&queue, GroupingPolicy::Serial, AllocationPolicy::Even)
        .expect("serial");
    let fcfs = pipeline
        .run_queue(&queue, GroupingPolicy::Fcfs, AllocationPolicy::Even)
        .expect("fcfs");
    let ilp = pipeline
        .run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Even)
        .expect("ilp");

    let base = serial.device_throughput;
    println!("{:>8} {:>14} {:>12}", "method", "throughput", "vs serial");
    for (name, r) in [("Serial", &serial), ("FCFS", &fcfs), ("ILP", &ilp)] {
        println!(
            "{:>8} {:>14.1} {:>12}",
            name,
            r.device_throughput,
            pct(r.device_throughput / base)
        );
    }
    println!(
        "\nILP vs FCFS:   {} (paper: +45%)",
        pct(ilp.device_throughput / fcfs.device_throughput)
    );
    println!(
        "ILP vs serial: {} (paper: ~2x)",
        pct(ilp.device_throughput / base)
    );

    report_profile(&pipeline);
}
