//! schedd_sim — online scheduler policy comparison over seeded arrival
//! traces (DESIGN.md §10).
//!
//! Feeds Poisson arrivals of the thesis mix (the 14-app suite census,
//! repeated for longer queues) through the `gcs_sched` discrete-event
//! loop under all three epoch policies, on one simulated GTX 480, and
//! reports throughput (STP), fairness (ANTT) and queueing-latency
//! percentiles per policy. The offered load is set well above the
//! device's service rate so a real backlog forms — that is the regime
//! where grouping quality matters; at low load every policy degenerates
//! to "run whatever arrived".
//!
//! Writes one `SchedReport` JSON per (queue length, policy) plus a
//! summary document with FCFS→ILP deltas to `results/sched/`:
//!
//! ```text
//! results/sched/sched_{scale}_q{len}_{policy}.json
//! results/sched/summary_{scale}.json
//! ```
//!
//! Scale comes from `GCS_SCALE` as usual; the committed results are the
//! SMALL-scale run, while `scripts/ci.sh --sched-smoke` replays a TEST
//! scale pass (those files are gitignored).

use std::fs;

use gcs_bench::{build_pipeline, report_profile, header, scale_from_env};
use gcs_core::queues::thesis_queue_14;
use gcs_core::runner::AllocationPolicy;
use gcs_sched::{LatencyStats, OnlineScheduler, PolicyKind, SchedConfig, SchedReport};
use gcs_workloads::{ArrivalTrace, Benchmark};

const SEED: u64 = 42;

/// File-name tag for the active scale (`Scale`'s Debug form is a
/// struct, not a name).
fn scale_tag(scale: gcs_workloads::Scale) -> &'static str {
    if scale == gcs_workloads::Scale::FULL {
        "full"
    } else if scale == gcs_workloads::Scale::TEST {
        "test"
    } else {
        "small"
    }
}

fn fmt_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{s}.0")
    }
}

fn latency_json(l: &LatencyStats) -> String {
    format!(
        "{{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {}, \"max\": {}}}",
        l.p50,
        l.p95,
        l.p99,
        fmt_f64(l.mean),
        l.max
    )
}

fn main() {
    let scale = scale_from_env();
    let scale_tag = scale_tag(scale);
    let mut pipeline = build_pipeline(2);
    fs::create_dir_all("results/sched").expect("create results/sched");

    // Offered load: one job every mean_alone/4 cycles against a device
    // that serves roughly one job per 0.6 * mean_alone cycles — ~2.4x
    // oversubscribed, so the admission queue holds a meaningful census
    // at every epoch.
    let mean_alone: f64 = Benchmark::ALL
        .iter()
        .map(|&b| pipeline.profile(b).cycles as f64)
        .sum::<f64>()
        / Benchmark::ALL.len() as f64;
    let mean_gap = mean_alone / 4.0;

    header("schedd_sim: online policy comparison, thesis mix");
    println!(
        "scale {scale:?}; seed {SEED}; 1 device; SMRA allocation; mean inter-arrival {:.0} cycles",
        mean_gap
    );

    let mut summary_configs: Vec<String> = Vec::new();
    for repeats in [1usize, 2] {
        let mut queue: Vec<Benchmark> = Vec::new();
        for _ in 0..repeats {
            queue.extend(thesis_queue_14());
        }
        let len = queue.len();
        let trace = ArrivalTrace::poisson_from_queue(&queue, mean_gap, SEED);

        header(&format!("queue length {len} (thesis mix x{repeats})"));
        println!(
            "{:<8} {:>12} {:>8} {:>8} {:>12} {:>12} {:>12}",
            "policy", "makespan", "STP", "ANTT", "p50 delay", "p95 delay", "p99 delay"
        );

        let mut reports: Vec<(PolicyKind, SchedReport)> = Vec::new();
        for kind in PolicyKind::ALL {
            let cfg = SchedConfig {
                num_gpus: 1,
                queue_capacity: len,
                alloc: AllocationPolicy::Smra,
                replan_interval: None,
            };
            let mut policy = kind.build();
            let report = OnlineScheduler::new(&mut pipeline, cfg)
                .expect("config")
                .run(&trace, policy.as_mut())
                .expect("scheduler run");
            let delay = report.queue_delay_stats();
            println!(
                "{:<8} {:>12} {:>8.3} {:>8.3} {:>12} {:>12} {:>12}",
                report.policy,
                report.makespan,
                report.stp(),
                report.antt(),
                delay.p50,
                delay.p95,
                delay.p99
            );
            let path = format!("results/sched/sched_{scale_tag}_q{len}_{}.json", kind.name());
            fs::write(&path, report.to_json()).expect("write report");
            reports.push((kind, report));
        }

        let fcfs = &reports[0].1;
        let ilp = &reports[2].1;
        let (fd, id) = (fcfs.queue_delay_stats(), ilp.queue_delay_stats());
        println!(
            "ilp vs fcfs: STP {:+.3}, p50 {:+}, p95 {:+}, p99 {:+} cycles",
            ilp.stp() - fcfs.stp(),
            id.p50 as i64 - fd.p50 as i64,
            id.p95 as i64 - fd.p95 as i64,
            id.p99 as i64 - fd.p99 as i64,
        );

        let policy_entries: Vec<String> = reports
            .iter()
            .map(|(kind, r)| {
                format!(
                    "      \"{}\": {{\"stp\": {}, \"antt\": {}, \"makespan\": {}, \"queue_delay\": {}}}",
                    kind.name(),
                    fmt_f64(r.stp()),
                    fmt_f64(r.antt()),
                    r.makespan,
                    latency_json(&r.queue_delay_stats()),
                )
            })
            .collect();
        summary_configs.push(format!(
            "    {{\n      \"queue_len\": {len},\n{},\n      \"ilp_vs_fcfs\": {{\"stp_delta\": {}, \"p50_delay_delta\": {}, \"p95_delay_delta\": {}, \"p99_delay_delta\": {}}}\n    }}",
            policy_entries.join(",\n"),
            fmt_f64(ilp.stp() - fcfs.stp()),
            id.p50 as i64 - fd.p50 as i64,
            id.p95 as i64 - fd.p95 as i64,
            id.p99 as i64 - fd.p99 as i64,
        ));
    }

    let summary = format!
        (
        "{{\n  \"scale\": \"{scale_tag}\",\n  \"seed\": {SEED},\n  \"device\": \"gtx480 x1, SMRA, concurrency 2\",\n  \"configs\": [\n{}\n  ]\n}}\n",
        summary_configs.join(",\n")
    );
    let summary_path = format!("results/sched/summary_{scale_tag}.json");
    fs::write(&summary_path, summary).expect("write summary");
    println!("\nwrote results/sched/sched_{scale_tag}_q*.json and {summary_path}");

    report_profile(&pipeline);
}
