//! Records a synthetic suite benchmark's instruction + address trace.
//!
//! Runs the named benchmark alone on the `test_small` device at the
//! `GCS_SCALE`-selected scale with the issue-path recorder enabled, and
//! writes the versioned binary trace. With `--json PATH` it also dumps
//! the human-readable debug view.
//!
//! ```text
//! cargo run --release -p gcs-bench --bin trace_record -- BLK blk.trace
//! cargo run --release -p gcs-bench --bin trace_record -- BLK blk.trace --json blk.json
//! ```
//!
//! The printed `record:` line (name, content fingerprint, sizes) is
//! byte-stable across machines and thread counts — `scripts/ci.sh
//! --trace-smoke` pins that.

use gcs_bench::scale_from_env;
use gcs_core::profile::PROFILE_MAX_CYCLES;
use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::Gpu;
use gcs_workloads::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        eprintln!("usage: trace_record <BENCH> <OUT.trace> [--json OUT.json]");
        eprintln!(
            "benchmarks: {}",
            Benchmark::ALL
                .iter()
                .map(|b| b.name())
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    }
    let Some(bench) = Benchmark::ALL
        .iter()
        .copied()
        .find(|b| b.name().eq_ignore_ascii_case(&args[0]))
    else {
        eprintln!("unknown benchmark {:?}", args[0]);
        std::process::exit(2);
    };
    let out_path = &args[1];
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1));

    let cfg = GpuConfig::test_small();
    let scale = scale_from_env();
    let mut gpu = Gpu::new(cfg.clone()).expect("device");
    let app = gpu.launch(bench.kernel(scale)).expect("launch");
    gpu.enable_trace_recording(app).expect("recorder");
    let ids: Vec<u32> = (0..cfg.num_sms).collect();
    gpu.assign_sms(app, &ids);
    gpu.run(PROFILE_MAX_CYCLES).expect("run");
    let trace = gpu.take_trace(app).expect("trace");

    let bytes = trace.encode();
    std::fs::write(out_path, &bytes).expect("write trace");
    if let Some(p) = json_path {
        std::fs::write(p, trace.to_json()).expect("write json");
    }
    println!(
        "record: name={} fp={:016x} warps={} accesses={} attempts={} bytes={}",
        trace.meta.name,
        trace.fingerprint(),
        trace.warps.len(),
        trace.total_accesses(),
        trace.total_attempts(),
        bytes.len(),
    );
}
