//! Regenerates **Fig 3.4**: average per-class slowdown under pairwise
//! co-execution (even SM split) relative to running alone on the whole
//! device.
//!
//! Expected shape (§3.2.2): class M slows every class down the most —
//! the FR-FCFS memory scheduler keeps prioritizing the streaming apps'
//! row hits — and class-MC applications suffer more from class M than
//! class M itself does. A-A pairs interfere least.
//!
//! ```text
//! cargo run --release -p gcs-bench --bin fig34_interference
//! ```

use gcs_bench::{default_engine, header, scale_from_env};
use gcs_core::classify::AppClass;
use gcs_core::interference::InterferenceMatrix;
use gcs_sim::config::GpuConfig;

fn main() {
    let cfg = GpuConfig::gtx480();
    let scale = scale_from_env();
    let engine = default_engine();

    header("Fig 3.4 — average application slowdown due to co-execution");
    let m = InterferenceMatrix::measure_full_with(&engine, &cfg, scale)
        .expect("interference measurement");
    println!("[setup] {}", engine.stats());
    print!("{m}");

    let col_avg = |a: AppClass| -> f64 {
        AppClass::ALL.iter().map(|&v| m.slowdown(v, a)).sum::<f64>() / 4.0
    };
    println!("\naverage slowdown imposed by each aggressor class:");
    for a in AppClass::ALL {
        println!("  {:>2}: {:.2}x", a.label(), col_avg(a));
    }
    println!("\npaper shape checks:");
    println!(
        "  M imposes the largest average slowdown: {}",
        if AppClass::ALL.iter().all(|&c| col_avg(AppClass::M) >= col_avg(c)) {
            "yes"
        } else {
            "NO"
        }
    );
    // §3.2.2: "when class M applications are executed along with class
    // MC applications ... class MC applications suffer more than class
    // M applications" — i.e. within the M+MC pair.
    println!(
        "  in an M+MC pair, MC suffers more:       {}",
        if m.slowdown(AppClass::Mc, AppClass::M) > m.slowdown(AppClass::M, AppClass::Mc) {
            "yes"
        } else {
            "NO"
        }
    );
    println!(
        "  A-A is the gentlest pairing:            {}",
        if AppClass::ALL
            .iter()
            .all(|&c| m.slowdown(AppClass::A, AppClass::A) <= m.slowdown(AppClass::A, c))
        {
            "yes"
        } else {
            "NO"
        }
    );
}
