//! Regenerates **Fig 4.12**: per-benchmark average device throughput
//! under three-application execution (equal-distribution queue), four
//! methods, normalized per benchmark to Even.
//!
//! ```text
//! cargo run --release -p gcs-bench --bin fig412_three_perapp
//! ```

use std::collections::BTreeMap;

use gcs_bench::{build_pipeline, report_profile, header};
use gcs_core::queues::{queue_with_distribution, Distribution};
use gcs_core::runner::{AllocationPolicy, GroupingPolicy, QueueReport};
use gcs_workloads::Benchmark;

fn per_bench(report: &QueueReport) -> BTreeMap<Benchmark, f64> {
    report.per_bench_ipc().into_iter().collect()
}

fn main() {
    let mut pipeline = build_pipeline(3);
    let queue = queue_with_distribution(Distribution::Equal, 21);

    let even = pipeline
        .run_queue(&queue, GroupingPolicy::Fcfs, AllocationPolicy::Even)
        .expect("even");
    let profile = pipeline
        .run_queue(&queue, GroupingPolicy::Fcfs, AllocationPolicy::ProfileBased)
        .expect("profile");
    let ilp = pipeline
        .run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Even)
        .expect("ilp");
    let smra = pipeline
        .run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Smra)
        .expect("smra");

    header("Fig 4.12 — per-benchmark throughput, NC = 3 (normalized to Even)");
    let (e, p, i, s) = (
        per_bench(&even),
        per_bench(&profile),
        per_bench(&ilp),
        per_bench(&smra),
    );
    println!(
        "{:>6} {:>8} {:>14} {:>8} {:>10}",
        "bench", "Even", "Profile-based", "ILP", "ILP-SMRA"
    );
    for (b, base) in &e {
        let rel = |m: &BTreeMap<Benchmark, f64>| m.get(b).copied().unwrap_or(0.0) / base.max(1e-9);
        println!(
            "{:>6} {:>8.2} {:>14.2} {:>8.2} {:>10.2}",
            b.name(),
            1.0,
            rel(&p),
            rel(&i),
            rel(&s),
        );
    }

    report_profile(&pipeline);
}
