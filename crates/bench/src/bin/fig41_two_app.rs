//! Regenerates **Fig 4.1**: device throughput of the 14-application
//! queue under serial execution, FCFS pairing and ILP pairing (even SM
//! split inside pairs), normalized to serial.
//!
//! Paper: ILP ≈ 21 % better than FCFS and ≈ 80 % better than serial.
//!
//! ```text
//! cargo run --release -p gcs-bench --bin fig41_two_app
//! ```

use gcs_bench::{build_pipeline, report_profile, header, pct};
use gcs_core::queues::thesis_queue_14;
use gcs_core::runner::{AllocationPolicy, GroupingPolicy};

fn main() {
    let mut pipeline = build_pipeline(2);
    let queue = thesis_queue_14();

    header("Fig 4.1 — two-application execution, 14-app queue");
    let serial = pipeline
        .run_queue(&queue, GroupingPolicy::Serial, AllocationPolicy::Even)
        .expect("serial run");
    let fcfs = pipeline
        .run_queue(&queue, GroupingPolicy::Fcfs, AllocationPolicy::Even)
        .expect("fcfs run");
    let ilp = pipeline
        .run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Even)
        .expect("ilp run");

    let base = serial.device_throughput;
    println!("{:>8} {:>14} {:>12}", "method", "throughput", "vs serial");
    for (name, r) in [("Serial", &serial), ("FCFS", &fcfs), ("ILP", &ilp)] {
        println!(
            "{:>8} {:>14.1} {:>12}",
            name,
            r.device_throughput,
            pct(r.device_throughput / base)
        );
    }
    println!(
        "\nILP vs FCFS: {}   (paper: +21%)",
        pct(ilp.device_throughput / fcfs.device_throughput)
    );
    println!(
        "ILP vs serial: {} (paper: >+80%)",
        pct(ilp.device_throughput / base)
    );

    report_profile(&pipeline);
}
