//! Regenerates **Fig 4.10**: cycles taken by each three-application
//! group, normalized to the group's serial execution time, for (a) ILP
//! and (b) FCFS grouping.
//!
//! Paper: 3 of 4 ILP groups finish under 40 % of serial; only 1 of 4
//! FCFS groups does.
//!
//! ```text
//! cargo run --release -p gcs-bench --bin fig410_group_cycles
//! ```

use std::collections::BTreeMap;

use gcs_bench::{build_pipeline, report_profile, header, queue_12};
use gcs_core::runner::{AllocationPolicy, GroupingPolicy};
use gcs_workloads::Benchmark;

fn main() {
    let mut pipeline = build_pipeline(3);
    let queue = queue_12();

    let serial = pipeline
        .run_queue(&queue, GroupingPolicy::Serial, AllocationPolicy::Even)
        .expect("serial");
    let mut alone: BTreeMap<Benchmark, u64> = BTreeMap::new();
    for g in &serial.groups {
        alone.insert(g.apps[0].bench, g.makespan);
    }

    for policy in [GroupingPolicy::Ilp, GroupingPolicy::Fcfs] {
        header(&format!(
            "Fig 4.10 — group cycles vs serial ({policy:?} grouping, NC = 3)"
        ));
        let report = pipeline
            .run_queue(&queue, policy, AllocationPolicy::Even)
            .expect("run");
        let mut under = 0;
        let mut groups = 0;
        for g in &report.groups {
            let serial_sum: u64 = g.apps.iter().map(|a| alone[&a.bench]).sum();
            let ratio = g.makespan as f64 / serial_sum as f64;
            let names: Vec<&str> = g.apps.iter().map(|a| a.bench.name()).collect();
            println!("{:>16}: {:.2} of serial", names.join("-"), ratio);
            if g.apps.len() == 3 {
                groups += 1;
                if ratio < 0.4 {
                    under += 1;
                }
            }
        }
        println!("groups under 40% of serial: {under}/{groups}");
    }
    println!("\npaper: ILP 3/4 groups under 40%, FCFS 1/4");

    report_profile(&pipeline);
}
