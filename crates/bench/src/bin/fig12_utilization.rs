//! Regenerates **Fig 1.2**: maximum device utilization of each
//! benchmark running alone on the full device (IPC over peak thread
//! IPC).
//!
//! The shape to reproduce: wide spread, with several benchmarks well
//! under 50 % — the headroom that motivates multi-application execution.
//!
//! ```text
//! cargo run --release -p gcs-bench --bin fig12_utilization
//! ```

use gcs_bench::{default_engine, header, scale_from_env};
use gcs_sim::config::GpuConfig;
use gcs_workloads::Benchmark;

fn main() {
    let cfg = GpuConfig::gtx480();
    let scale = scale_from_env();
    let engine = default_engine();

    header("Fig 1.2 — max utilization of Rodinia benchmarks");
    let profiles = engine
        .profile_suite(&cfg, scale, &Benchmark::ALL)
        .expect("profiling");
    println!("[setup] {}", engine.stats());
    println!("{:>6} {:>8} {:>10}", "bench", "util", "bar");
    let mut below_half = 0;
    for (b, p) in Benchmark::ALL.iter().zip(&profiles) {
        let pctg = p.utilization * 100.0;
        if pctg < 50.0 {
            below_half += 1;
        }
        println!(
            "{:>6} {:>7.1}% {}",
            b.name(),
            pctg,
            "#".repeat((pctg / 2.0).round() as usize)
        );
    }
    println!("\nbenchmarks under 50% utilization: {below_half}/14");
    println!("(the thesis' motivation: most apps leave the device underused)");
}
