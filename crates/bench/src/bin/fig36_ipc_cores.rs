//! Regenerates **Fig 3.6**: absolute IPC of every benchmark at
//! 10 / 15 / 20 / 30 cores (normalized to each benchmark's 10-core
//! point in the print-out, matching the figure's bar groups).
//!
//! ```text
//! cargo run --release -p gcs-bench --bin fig36_ipc_cores
//! ```

use gcs_bench::{default_engine, header, scale_from_env};
use gcs_sim::config::GpuConfig;
use gcs_workloads::Benchmark;

fn main() {
    let cfg = GpuConfig::gtx480();
    let scale = scale_from_env();
    let engine = default_engine();
    let counts = [10u32, 15, 20, 30];

    header("Fig 3.6 — IPC of benchmarks with different numbers of cores");
    // 14 benchmarks x 4 core counts, all independent: one flat sweep.
    let points = engine
        .run_parallel(Benchmark::ALL.len() * counts.len(), |i| {
            let (b, n) = (Benchmark::ALL[i / counts.len()], counts[i % counts.len()]);
            engine.profile(&cfg, scale, b, n).map(|p| p.ipc)
        })
        .expect("scalability profiling");
    println!("[setup] {}", engine.stats());
    print!("{:>6}", "bench");
    for c in counts {
        print!(" {:>9}", format!("{c} cores"));
    }
    println!("  (thread IPC)");
    for (bi, b) in Benchmark::ALL.iter().enumerate() {
        print!("{:>6}", b.name());
        for ipc in &points[bi * counts.len()..(bi + 1) * counts.len()] {
            print!(" {:>9.1}", ipc);
        }
        println!();
    }
}
