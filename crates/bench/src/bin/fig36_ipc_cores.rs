//! Regenerates **Fig 3.6**: absolute IPC of every benchmark at
//! 10 / 15 / 20 / 30 cores (normalized to each benchmark's 10-core
//! point in the print-out, matching the figure's bar groups).
//!
//! ```text
//! cargo run --release -p gcs-bench --bin fig36_ipc_cores
//! ```

use gcs_bench::{header, scale_from_env};
use gcs_core::profile::scalability_curve;
use gcs_sim::config::GpuConfig;
use gcs_workloads::Benchmark;

fn main() {
    let cfg = GpuConfig::gtx480();
    let scale = scale_from_env();
    let counts = [10u32, 15, 20, 30];

    header("Fig 3.6 — IPC of benchmarks with different numbers of cores");
    print!("{:>6}", "bench");
    for c in counts {
        print!(" {:>9}", format!("{c} cores"));
    }
    println!("  (thread IPC)");
    for b in Benchmark::ALL {
        let curve =
            scalability_curve(&b.kernel(scale), &cfg, &counts).expect("scalability profiling");
        print!("{:>6}", b.name());
        for (_, ipc) in &curve {
            print!(" {:>9.1}", ipc);
        }
        println!();
    }
}
