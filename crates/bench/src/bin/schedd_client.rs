//! schedd_client — drives a daemon session and proves it equals batch
//! (DESIGN.md §13).
//!
//! Generates a seeded Poisson arrival trace, submits it to a scheduler
//! daemon one request at a time, drains, and writes the final
//! `SchedReport` JSON. With `--batch-out` it also runs the *batch*
//! `OnlineScheduler` over the identical trace and writes that report,
//! so the CI smoke can `cmp` the two files byte-for-byte — the daemon
//! session and the batch run are the same computation.
//!
//! ```text
//! schedd_client --virtual [options]          # in-process daemon, virtual sockets
//! schedd_client --connect ADDR [options]     # a running `schedd` over TCP
//!
//! --jobs N          arrivals in the trace (default 14)
//! --mean-gap F      mean inter-arrival gap in cycles (default 30000)
//! --seed N          trace seed (default 42)
//! --policy NAME     fcfs | greedy | ilp (default ilp)
//! --capacity N      daemon admission bound (default: jobs)
//! --out FILE        write the drained report JSON here
//! --batch-out FILE  also run the batch scheduler, write its JSON here
//! --pace RATE       pace submissions in wall time at RATE cycles/sec
//!                   (open-loop driver; logical results are unchanged)
//! --faults SEED     (virtual only) wrap the client in the seeded
//!                   fault-injection proxy: drop/truncate/flip/delay
//! --transcript FILE write the deterministic fault transcript here
//! ```
//!
//! The in-process daemon honours the same `GCS_SCHED_*` overload knobs
//! as `schedd` (`GCS_SCHED_REPLAN_SHED`, `GCS_SCHED_ILP_SHED`).

use std::time::Duration;

use gcs_bench::{build_pipeline, header};
use gcs_core::runner::AllocationPolicy;
use gcs_sched::{
    virtual_link, DaemonConfig, DaemonCore, FaultSpec, FaultyTransport, OnlineScheduler,
    OverloadPolicy, PolicyKind, Request, Response, RetryConfig, SchedClient, SchedConfig,
    TcpTransport, Transport, TransportError, VirtualConnector,
};
use gcs_workloads::{ArrivalTrace, Benchmark, OpenLoopDriver};

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn overload_from_env() -> OverloadPolicy {
    OverloadPolicy {
        replan_pending_limit: env_usize("GCS_SCHED_REPLAN_SHED"),
        ilp_pending_limit: env_usize("GCS_SCHED_ILP_SHED"),
    }
}

/// Submits every arrival exactly once (as the batch loop does — a
/// client retry would add rejection rows batch mode doesn't have),
/// then drains and returns the final report JSON.
fn drive_session<T: Transport>(
    client: &mut SchedClient<T>,
    trace: &ArrivalTrace,
    pace: Option<f64>,
) -> String {
    let submit = |client: &mut SchedClient<T>, i: usize, bench: Benchmark, at: u64| {
        let resp = client
            .request(&Request::Submit {
                id: i as u64,
                bench,
                at,
            })
            .expect("submit");
        match resp {
            Response::Submitted { .. } | Response::Rejected { .. } => {}
            other => panic!("unexpected submit response: {other:?}"),
        }
    };
    match pace {
        Some(rate) => {
            let mut worst = Duration::ZERO;
            for (i, (a, late)) in OpenLoopDriver::new(trace, rate).enumerate() {
                worst = worst.max(late);
                submit(client, i, a.bench, a.time);
            }
            println!("[pace] open-loop at {rate} cycles/sec; worst lateness {worst:?}");
        }
        None => {
            for (i, a) in trace.arrivals().iter().enumerate() {
                submit(client, i, a.bench, a.time);
            }
        }
    }
    client.drain().expect("drain")
}

/// The deterministic fault scenario (same client policy the daemon
/// integration test pins): strict send/recv alternation, abandon the
/// connection after any error response or transport failure, per-
/// connection seeds, clean unfaulted drain at the end. Returns the
/// concatenated transcript and the final report JSON.
fn fault_session(
    connector: &VirtualConnector,
    trace: &ArrivalTrace,
    fault_seed: u64,
) -> (Vec<String>, String) {
    let fresh = |conn_idx: u64| {
        let mut sock = connector.connect().expect("connect");
        sock.recv_deadline = Some(Duration::from_millis(250));
        FaultyTransport::new(sock, fault_seed + conn_idx, FaultSpec::SMOKE)
    };
    let collect = |t: &mut Vec<String>,
                   idx: u64,
                   f: FaultyTransport<gcs_sched::VirtualSocket>| {
        t.extend(
            f.into_transcript()
                .into_iter()
                .map(|l| format!("conn {idx}: {l}")),
        );
    };
    let mut transcript: Vec<String> = Vec::new();
    let mut conn_idx = 0u64;
    let mut faulty = fresh(conn_idx);
    let arrivals = trace.arrivals();
    let mut i = 0usize;
    while i < arrivals.len() {
        let req = Request::Submit {
            id: i as u64,
            bench: arrivals[i].bench,
            at: arrivals[i].time,
        };
        let sent = faulty.send_frame(&req.encode()).is_ok();
        let mut dead = !sent;
        if sent {
            match faulty.recv_frame() {
                Ok(frame) => match Response::decode(&frame) {
                    Ok(Response::Error { .. }) | Err(_) => dead = true,
                    Ok(_) => i += 1,
                },
                Err(TransportError::TimedOut) => i += 1, // dropped frame: job lost
                Err(_) => dead = true,
            }
        }
        if dead {
            let old = std::mem::replace(&mut faulty, fresh(conn_idx + 1));
            collect(&mut transcript, conn_idx, old);
            conn_idx += 1;
            assert!(conn_idx < 256, "reconnect storm");
        }
    }
    collect(&mut transcript, conn_idx, faulty);

    let mut clean = SchedClient::new(
        connector.connect().expect("connect"),
        RetryConfig::default(),
    );
    let json = clean.drain().expect("drain after fault storm");
    (transcript, json)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let mut virt = false;
    let mut connect: Option<String> = None;
    let mut jobs = 14usize;
    let mut mean_gap = 30_000.0f64;
    let mut seed = 42u64;
    let mut policy_name = "ilp".to_string();
    let mut capacity: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut batch_out: Option<String> = None;
    let mut pace: Option<f64> = None;
    let mut faults: Option<u64> = None;
    let mut transcript_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    let missing = |flag: &str| -> ! {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    };
    while let Some(a) = args.next() {
        let mut val = |flag: &str| args.next().unwrap_or_else(|| missing(flag));
        match a.as_str() {
            "--virtual" => virt = true,
            "--connect" => connect = Some(val("--connect")),
            "--jobs" => jobs = val("--jobs").parse().expect("--jobs"),
            "--mean-gap" => mean_gap = val("--mean-gap").parse().expect("--mean-gap"),
            "--seed" => seed = val("--seed").parse().expect("--seed"),
            "--policy" => policy_name = val("--policy"),
            "--capacity" => capacity = Some(val("--capacity").parse().expect("--capacity")),
            "--out" => out = Some(val("--out")),
            "--batch-out" => batch_out = Some(val("--batch-out")),
            "--pace" => pace = Some(val("--pace").parse().expect("--pace")),
            "--faults" => faults = Some(val("--faults").parse().expect("--faults")),
            "--transcript" => transcript_out = Some(val("--transcript")),
            other => {
                eprintln!("unknown argument {other:?} (see the module docs for usage)");
                std::process::exit(2);
            }
        }
    }
    if virt == connect.is_some() {
        eprintln!("exactly one of --virtual / --connect ADDR is required");
        std::process::exit(2);
    }
    if faults.is_some() && !virt {
        eprintln!("--faults requires --virtual (deterministic in-process sockets)");
        std::process::exit(2);
    }
    let Some(kind) = PolicyKind::from_name(&policy_name) else {
        eprintln!("--policy {policy_name:?} is not fcfs|greedy|ilp");
        std::process::exit(2);
    };

    let trace = ArrivalTrace::poisson(&Benchmark::ALL, jobs, mean_gap, seed);
    let cfg = SchedConfig {
        num_gpus: 1,
        queue_capacity: capacity.unwrap_or(jobs),
        alloc: AllocationPolicy::Smra,
        replan_interval: None,
    };

    header("schedd_client: daemon session");
    println!(
        "{} jobs, mean gap {mean_gap:.0} cycles, seed {seed}, policy {}, capacity {}",
        trace.len(),
        kind.name(),
        cfg.queue_capacity,
    );

    if let Some(path) = &batch_out {
        let mut pipeline = build_pipeline(2);
        let mut policy = kind.build();
        let report = OnlineScheduler::new(&mut pipeline, cfg)
            .expect("batch config")
            .run(&trace, policy.as_mut())
            .expect("batch run");
        std::fs::write(path, report.to_json()).expect("write --batch-out");
        println!("[batch] reference report written to {path}");
    }

    let json = if virt {
        let (connector, listener) = virtual_link(None);
        let daemon_cfg = DaemonConfig {
            sched: cfg,
            overload: overload_from_env(),
        };
        let daemon = std::thread::spawn(move || {
            let mut pipeline = build_pipeline(2);
            let mut d =
                DaemonCore::new(&mut pipeline, kind.build(), daemon_cfg).expect("daemon config");
            let mut listener = listener;
            d.serve(&mut listener).expect("serve");
            let stats = d.decision_stats();
            println!(
                "[daemon] drained; {} planning decisions, p50 {} ns, p99 {} ns",
                stats.count, stats.p50_ns, stats.p99_ns
            );
        });
        let json = if let Some(fault_seed) = faults {
            let (transcript, json) = fault_session(&connector, &trace, fault_seed);
            println!("[faults] {} transcript line(s)", transcript.len());
            if let Some(path) = &transcript_out {
                std::fs::write(path, transcript.join("\n") + "\n").expect("write --transcript");
                println!("[faults] transcript written to {path}");
            }
            json
        } else {
            let mut client = SchedClient::new(
                connector.connect().expect("connect"),
                RetryConfig {
                    seed,
                    ..RetryConfig::default()
                },
            );
            drive_session(&mut client, &trace, pace)
        };
        drop(connector);
        daemon.join().expect("daemon thread");
        json
    } else {
        let addr = connect.expect("checked above");
        let stream = std::net::TcpStream::connect(&addr).expect("connect");
        let conn =
            TcpTransport::new(stream, Some(Duration::from_secs(60)), None).expect("transport");
        let mut client = SchedClient::new(
            conn,
            RetryConfig {
                seed,
                ..RetryConfig::default()
            },
        );
        drive_session(&mut client, &trace, pace)
    };

    match &out {
        Some(path) => {
            std::fs::write(path, &json).expect("write --out");
            println!("report written to {path}");
        }
        None => println!("{json}"),
    }
}
