//! Replays a recorded trace through the sweep engine and reports its
//! alone-run profile.
//!
//! Decodes the binary trace written by `trace_record` (rejecting
//! corrupt or truncated files with a typed error), then profiles it on
//! the `test_small` device via [`SweepEngine::profile_workload`] — the
//! same memoized path synthetic benchmarks take, honoring
//! `GCS_THREADS` and `GCS_CACHE`.
//!
//! ```text
//! cargo run --release -p gcs-bench --bin trace_replay -- blk.trace
//! ```
//!
//! The printed `replay:` line is byte-stable across thread counts and
//! step modes (`scripts/ci.sh --trace-smoke` pins that).
//!
//! [`SweepEngine::profile_workload`]: gcs_core::sweep::SweepEngine::profile_workload

use std::sync::Arc;

use gcs_bench::{default_engine, scale_from_env};
use gcs_core::sweep::Workload;
use gcs_sim::config::GpuConfig;
use gcs_sim::KernelTrace;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 1 {
        eprintln!("usage: trace_replay <IN.trace>");
        std::process::exit(2);
    }
    let bytes = match std::fs::read(&args[0]) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read {:?}: {e}", args[0]);
            std::process::exit(2);
        }
    };
    let trace = match KernelTrace::decode(&bytes) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("invalid trace {:?}: {e}", args[0]);
            std::process::exit(1);
        }
    };

    let cfg = GpuConfig::test_small();
    let engine = default_engine();
    let workload = Workload::Trace(Arc::new(trace));
    let p = engine
        .profile_workload(&cfg, scale_from_env(), &workload, cfg.num_sms)
        .expect("replay profile");
    println!(
        "replay: name={} cycles={} insts={} ipc={:.4} bw={:.3} l2l1={:.3} r={:.4} util={:.4}",
        p.name, p.cycles, p.thread_insts, p.ipc, p.memory_bw, p.l2_l1_bw, p.r, p.utilization,
    );
}
