//! Regenerates **Fig 4.3**: device throughput of two-application
//! execution across the five 20-app queue distributions, for the four
//! compared methods (Even, Profile-based \[17\], ILP, ILP-SMRA),
//! normalized to Even per distribution.
//!
//! FCFS-style baselines are sensitive to arrival order, so every cell
//! averages three arrival-order seeds.
//!
//! Paper: ILP +19 % on average (best +40 % on the C-oriented queue);
//! ILP-SMRA +36 % on average (best +48 % on the A-oriented queue).
//!
//! ```text
//! cargo run --release -p gcs-bench --bin fig43_two_app_dist
//! ```

use gcs_bench::{build_pipeline, report_profile, header, pct};
use gcs_core::queues::{queue_with_distribution_seeded, Distribution};
use gcs_core::runner::{AllocationPolicy, GroupingPolicy};

const SEEDS: [u64; 3] = [0, 1, 2];

fn main() {
    let mut pipeline = build_pipeline(2);

    header("Fig 4.3 — two-application execution across queue distributions");
    println!(
        "{:>12} {:>8} {:>14} {:>10} {:>10}",
        "queue", "Even", "Profile-based", "ILP", "ILP-SMRA"
    );
    let mut gain_ilp = Vec::new();
    let mut gain_smra = Vec::new();
    for dist in Distribution::ALL {
        let (mut p_acc, mut i_acc, mut s_acc) = (0.0, 0.0, 0.0);
        for seed in SEEDS {
            let queue = queue_with_distribution_seeded(dist, 20, seed);
            let even = pipeline
                .run_queue(&queue, GroupingPolicy::Fcfs, AllocationPolicy::Even)
                .expect("even");
            let profile = pipeline
                .run_queue(&queue, GroupingPolicy::Fcfs, AllocationPolicy::ProfileBased)
                .expect("profile-based");
            let ilp = pipeline
                .run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Even)
                .expect("ilp");
            let smra = pipeline
                .run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Smra)
                .expect("ilp-smra");
            let base = even.device_throughput;
            p_acc += profile.device_throughput / base;
            i_acc += ilp.device_throughput / base;
            s_acc += smra.device_throughput / base;
        }
        let n = SEEDS.len() as f64;
        println!(
            "{:>12} {:>8.2} {:>14.2} {:>10.2} {:>10.2}",
            dist.label(),
            1.0,
            p_acc / n,
            i_acc / n,
            s_acc / n,
        );
        gain_ilp.push(i_acc / n);
        gain_smra.push(s_acc / n);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nILP average gain over Even:      {} (paper: +19%)",
        pct(avg(&gain_ilp))
    );
    println!(
        "ILP-SMRA average gain over Even: {} (paper: +36%)",
        pct(avg(&gain_smra))
    );

    report_profile(&pipeline);
}
