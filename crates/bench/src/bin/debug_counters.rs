//! Developer diagnostic: raw simulator counters for one benchmark.
//! Not part of the figure index; kept for calibration work.
//!
//! ```text
//! cargo run --release -p gcs-bench --bin debug_counters -- BLK
//! ```

use gcs_bench::scale_from_env;
use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::Gpu;
use gcs_workloads::Benchmark;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "BLK".into());
    let bench = Benchmark::from_name(&name).expect("unknown benchmark");
    let cfg = GpuConfig::gtx480();
    let mut gpu = Gpu::new(cfg.clone()).expect("config");
    let app = gpu.launch(bench.kernel(scale_from_env())).expect("launch");
    gpu.partition_even();
    gpu.run(500_000_000).expect("run");
    let s = gpu.stats().app(app);
    let cycles = s.runtime_cycles();
    let gb = |b: u64| cfg.bytes_per_cycle_to_gbps(b as f64 / cycles as f64);
    println!("bench          : {}", bench.name());
    println!("cycles         : {cycles}");
    println!("warp insts     : {}", s.warp_insts);
    println!("thread insts   : {}  (IPC {:.1})", s.thread_insts, s.thread_ipc());
    println!("mem insts      : {}  (R {:.3})", s.mem_insts, s.memory_ratio());
    println!("l1 hits/misses : {} / {}  (hit rate {:.2})", s.l1_hits, s.l1_misses, s.l1_hit_rate());
    println!("dram read      : {} B  ({:.1} GB/s)", s.dram_read_bytes, gb(s.dram_read_bytes));
    println!("dram write     : {} B  ({:.1} GB/s)", s.dram_write_bytes, gb(s.dram_write_bytes));
    println!("l2->l1         : {} B  ({:.1} GB/s)", s.l2_to_l1_bytes, gb(s.l2_to_l1_bytes));
    println!("dram row hit   : {}  miss {}  (hit rate {:.2})",
        s.dram_row_hits,
        s.dram_row_misses,
        s.dram_row_hits as f64 / (s.dram_row_hits + s.dram_row_misses).max(1) as f64
    );
    println!("l2 hit rate    : {:.2}", gpu.l2_hit_rate());
}
