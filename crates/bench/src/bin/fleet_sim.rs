//! fleet_sim — heterogeneous multi-GPU fleet allocation versus
//! whole-device FCFS (DESIGN.md §14).
//!
//! Drives a fleet-shaped wave trace through [`run_fleet`] twice on the
//! same memoized engine — once under marginal-gain SM budgeting, once
//! under the naive one-job-per-device FCFS baseline — on a 3-device
//! heterogeneous fleet (`test_small` at 8, 15 and 30 SMs), and prints
//! cross-device STP, ANTT, churn and per-device utilization for both.
//! The FCFS baseline's per-group STP is exactly 1.0 by construction,
//! so the STP delta is the headline number.
//!
//! Also runs the degenerate-fleet equivalence pair: the same Poisson
//! trace through [`OnlineScheduler`] under a homogeneous 1-device
//! [`FleetPolicy`] and under plain `IlpEpoch`. The two reports must be
//! byte-identical (`scripts/ci.sh --fleet-smoke` diffs the files).
//!
//! Writes to `results/fleet/`:
//!
//! ```text
//! results/fleet/fleet_{scale}_fleet.json
//! results/fleet/fleet_{scale}_fcfs.json
//! results/fleet/fleet_hom_{scale}_fleetpolicy.json
//! results/fleet/fleet_hom_{scale}_ilp.json
//! ```
//!
//! Scale comes from `GCS_SCALE` as usual; the committed results are the
//! SMALL-scale run, while the CI smoke replays TEST scale (gitignored).

use std::fs;
use std::sync::Arc;

use gcs_bench::{default_engine, header, scale_from_env};
use gcs_core::interference::InterferenceMatrix;
use gcs_core::runner::{AllocationPolicy, Pipeline, RunConfig};
use gcs_fleet::{
    run_fleet, DeviceProfile, FleetMode, FleetPolicy, FleetReport, FleetRunConfig, FleetSpec,
};
use gcs_sched::{OnlineScheduler, PolicyKind, SchedConfig};
use gcs_sim::config::GpuConfig;
use gcs_workloads::{ArrivalTrace, Benchmark, Scale};

const SEED: u64 = 42;

/// Census for the fleet runs: a compute/memory mix that gives the
/// marginal-gain loop real scalability knees to exploit.
const POOL: [Benchmark; 6] = [
    Benchmark::Gups,
    Benchmark::Hs,
    Benchmark::Lud,
    Benchmark::Sad,
    Benchmark::Fft,
    Benchmark::Spmv,
];

/// File-name tag for the active scale.
fn scale_tag(scale: Scale) -> &'static str {
    if scale == Scale::FULL {
        "full"
    } else if scale == Scale::TEST {
        "test"
    } else {
        "small"
    }
}

/// The heterogeneous 3-device fleet the acceptance pins use.
fn hetero3() -> FleetSpec {
    FleetSpec::new(vec![
        DeviceProfile { id: "gpu8".into(), num_sms: 8 },
        DeviceProfile { id: "gpu15".into(), num_sms: 15 },
        DeviceProfile { id: "gpu30".into(), num_sms: 30 },
    ])
    .expect("fleet spec")
}

fn print_report(spec: &FleetSpec, r: &FleetReport) {
    println!(
        "{:<6} {:>12} {:>8.3} {:>8.3} {:>6} {:>5}",
        r.mode,
        r.makespan,
        r.stp(),
        r.antt(),
        r.churn,
        r.rejections.len(),
    );
    for (d, dev) in spec.devices().iter().enumerate() {
        println!(
            "       {:<6} {:>2} SMs  {:>3} groups  util {:>6.1}%",
            dev.id,
            dev.num_sms,
            r.devices[d].groups,
            100.0 * r.utilization(d),
        );
    }
}

fn main() {
    let scale = scale_from_env();
    let tag = scale_tag(scale);
    let engine = Arc::new(default_engine());
    fs::create_dir_all("results/fleet").expect("create results/fleet");

    // The fleet base is the small device model; device capacities come
    // from the spec. The synthetic matrix skips the 105-pair
    // interference sweep the fleet path never consults.
    let cfg = RunConfig {
        gpu: GpuConfig::test_small(),
        scale,
        concurrency: 2,
    };
    let mut pipeline = Pipeline::with_matrix_and_engine(
        cfg,
        InterferenceMatrix::synthetic_paper_shape(),
        Arc::clone(&engine),
    )
    .expect("pipeline construction");
    println!("[setup] {}", pipeline.sweep_stats());

    let spec = hetero3();
    // Wave cadence: half the mean alone runtime on the base device, so
    // waves overlap the previous wave's drain and every dispatch epoch
    // sees a real placement decision.
    let mean_alone: f64 = POOL
        .iter()
        .map(|&b| pipeline.profile(b).cycles as f64)
        .sum::<f64>()
        / POOL.len() as f64;
    let gap = (mean_alone / 2.0).max(1.0) as u64;
    let trace = ArrivalTrace::waves(&POOL, 4, 6, gap, SEED);

    header("fleet_sim: marginal-gain budgeting vs whole-device FCFS");
    println!(
        "scale {scale:?}; seed {SEED}; fleet {}; {} arrivals in waves of 6 every {gap} cycles",
        spec.to_json(),
        trace.len(),
    );
    println!(
        "{:<6} {:>12} {:>8} {:>8} {:>6} {:>5}",
        "mode", "makespan", "STP", "ANTT", "churn", "rej"
    );

    let mut reports: Vec<FleetReport> = Vec::new();
    for mode in [FleetMode::MarginalGain, FleetMode::WholeDeviceFcfs] {
        let run_cfg = FleetRunConfig {
            queue_capacity: trace.len(),
            mode,
        };
        let report = run_fleet(&pipeline, &spec, &run_cfg, &trace).expect("fleet run");
        print_report(&spec, &report);
        let path = format!("results/fleet/fleet_{tag}_{}.json", mode.tag());
        fs::write(&path, report.to_json()).expect("write report");
        reports.push(report);
    }
    let (fleet, fcfs) = (&reports[0], &reports[1]);
    println!(
        "fleet vs fcfs: STP {:+.3} ({:.3} vs {:.3}), makespan {:+}",
        fleet.stp() - fcfs.stp(),
        fleet.stp(),
        fcfs.stp(),
        fleet.makespan as i64 - fcfs.makespan as i64,
    );
    assert!(
        fleet.stp() > fcfs.stp(),
        "marginal-gain budgeting must beat whole-device FCFS on STP"
    );

    header("degenerate fleet: 1-device FleetPolicy == IlpEpoch, byte-for-byte");
    let hom_trace = ArrivalTrace::poisson(&POOL, 8, mean_alone / 4.0, SEED);
    let sched_cfg = SchedConfig {
        num_gpus: 1,
        queue_capacity: hom_trace.len(),
        alloc: AllocationPolicy::Even,
        replan_interval: None,
    };
    let mut ilp = PolicyKind::IlpEpoch.build();
    let ilp_report = OnlineScheduler::new(&mut pipeline, sched_cfg)
        .expect("config")
        .run(&hom_trace, ilp.as_mut())
        .expect("ilp run");
    let base_sms = GpuConfig::test_small().num_sms;
    let mut fleet_policy =
        FleetPolicy::new(FleetSpec::homogeneous(1, base_sms).expect("homogeneous spec"));
    let fleet_report = OnlineScheduler::new(&mut pipeline, sched_cfg)
        .expect("config")
        .run(&hom_trace, &mut fleet_policy)
        .expect("fleet policy run");
    let identical = fleet_report.to_json() == ilp_report.to_json();
    println!(
        "1-device FleetPolicy report {} IlpEpoch report ({} jobs)",
        if identical { "==" } else { "!=" },
        hom_trace.len(),
    );
    fs::write(
        format!("results/fleet/fleet_hom_{tag}_fleetpolicy.json"),
        fleet_report.to_json(),
    )
    .expect("write fleetpolicy report");
    fs::write(
        format!("results/fleet/fleet_hom_{tag}_ilp.json"),
        ilp_report.to_json(),
    )
    .expect("write ilp report");
    assert!(identical, "degenerate fleet must reproduce the single-GPU report");

    println!("\n[done] {}", engine.stats());
}
