//! Canonical-stats probe for the sharded-stepping CI gate
//! (`scripts/ci.sh --shard-smoke`).
//!
//! Runs one fixed SMRA co-run (GUPS + SPMV at TEST scale on the GTX 480
//! model) with the SM shard count given as the first argument and the
//! memory shard count (phase M) as the optional second, and prints
//! every statistic the run produced — per-app counters, device cycle,
//! and the controller's action log — as one canonical JSON line
//! (`stats: {...}`). The line deliberately omits both shard counts,
//! so the gate can diff the output across the s1/s4 × m1/m2/m4 grid
//! byte-for-byte: any divergence means sharding changed a result, which
//! tests/shard_equivalence.rs and tests/memsys_shard_equivalence.rs pin
//! as impossible.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

use gcs_core::smra::{SmraController, SmraParams};
use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::Gpu;
use gcs_workloads::{Benchmark, Scale};

fn main() {
    let shards: u32 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mem_shards: u32 = std::env::args()
        .nth(2)
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut gpu = Gpu::new(GpuConfig::gtx480()).expect("gpu");
    gpu.set_shards(shards);
    gpu.set_mem_shards(mem_shards);
    let a = gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("a");
    let b = gpu.launch(Benchmark::Spmv.kernel(Scale::TEST)).expect("b");
    gpu.partition_even();
    let params = SmraParams {
        tc: 2_000,
        ..SmraParams::for_device(gpu.config().num_sms, 2)
    };
    let mut ctl = SmraController::new(params, vec![a, b], &gpu);
    for _ in 0..10 {
        gpu.run_for(params.tc);
        if gpu.all_done() {
            break;
        }
        ctl.decide(&mut gpu);
    }

    let mut line = String::new();
    let stats = gpu.stats();
    write!(line, "{{\"cycle\":{}", gpu.cycle()).unwrap();
    line.push_str(",\"actions\":[");
    for (i, act) in ctl.actions().iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        write!(line, "\"{act:?}\"").unwrap();
    }
    line.push_str("],\"apps\":[");
    for (i, (_, s)) in stats.iter().enumerate().take(2) {
        if i > 0 {
            line.push(',');
        }
        write!(
            line,
            "{{\"warp_insts\":{},\"thread_insts\":{},\"mem_insts\":{},\
             \"alu_insts\":{},\"l1_hits\":{},\"l1_misses\":{},\
             \"dram_read_bytes\":{},\"dram_write_bytes\":{},\
             \"l2_to_l1_bytes\":{},\"dram_row_hits\":{},\
             \"dram_row_misses\":{},\"start_cycle\":{},\
             \"finish_cycle\":{},\"blocks_done\":{}}}",
            s.warp_insts,
            s.thread_insts,
            s.mem_insts,
            s.alu_insts,
            s.l1_hits,
            s.l1_misses,
            s.dram_read_bytes,
            s.dram_write_bytes,
            s.l2_to_l1_bytes,
            s.dram_row_hits,
            s.dram_row_misses,
            s.start_cycle,
            s.finish_cycle,
            s.blocks_done,
        )
        .unwrap();
    }
    line.push_str("]}");
    eprintln!(
        "[shard_smoke] shards={} ({} effective) mem_shards={} ({} effective)",
        shards,
        gpu.shards(),
        mem_shards,
        gpu.mem_shards()
    );
    println!("stats: {line}");
}
