//! Reproduces **Appendix A**: the worked ILP example with the thesis'
//! own e-coefficients — queue of 14 (2 M, 5 MC, 2 C, 5 A), NC = 2 —
//! and checks the solution vector of Eq. 5.7, then re-solves with the
//! interference matrix *measured* on our simulator.
//!
//! ```text
//! cargo run --release -p gcs-bench --bin appendix_a
//! ```

use gcs_bench::{default_engine, header, scale_from_env};
use gcs_core::ilp::{solve_grouping, solve_with_e, PAPER_APPENDIX_E};
use gcs_core::interference::InterferenceMatrix;
use gcs_core::pattern::enumerate_patterns;
use gcs_sim::config::GpuConfig;

fn main() {
    header("Appendix A — worked ILP example, paper coefficients");
    let sol = solve_with_e([2, 5, 2, 5], 2, &PAPER_APPENDIX_E).expect("solve");
    println!("objective f = {:.4}", sol.objective);
    for (p, m) in &sol.multiplicities {
        println!("  {m} x {p}");
    }
    let patterns = enumerate_patterns(2);
    let mut vector = vec![0u32; patterns.len()];
    for (p, m) in &sol.multiplicities {
        vector[patterns.iter().position(|q| q == p).expect("pattern")] = *m;
    }
    println!(
        "solution vector {vector:?}\npaper (Eq. 5.7)  [0, 0, 2, 0, 2, 0, 1, 0, 0, 2] -> {}",
        if vector == [0, 0, 2, 0, 2, 0, 1, 0, 0, 2] {
            "MATCH"
        } else {
            "MISMATCH"
        }
    );

    header("same queue with OUR measured interference matrix");
    let engine = default_engine();
    let m = InterferenceMatrix::measure_full_with(&engine, &GpuConfig::gtx480(), scale_from_env())
        .expect("interference measurement");
    println!("[setup] {}", engine.stats());
    print!("{m}");
    let sol = solve_grouping([2, 5, 2, 5], 2, &m).expect("solve");
    println!("objective f = {:.4}", sol.objective);
    for (p, mult) in &sol.multiplicities {
        println!("  {mult} x {p}");
    }
}
