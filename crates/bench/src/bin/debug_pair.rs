//! Developer diagnostic: co-run two benchmarks on an even split and
//! compare against their alone-on-full-device runtimes.
//!
//! ```text
//! cargo run --release -p gcs-bench --bin debug_pair -- BLK BLK
//! ```

use gcs_bench::scale_from_env;
use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::Gpu;
use gcs_workloads::Benchmark;

fn main() {
    let mut args = std::env::args().skip(1);
    let a = Benchmark::from_name(&args.next().unwrap_or_else(|| "BLK".into())).expect("bench a");
    let b = Benchmark::from_name(&args.next().unwrap_or_else(|| "BLK".into())).expect("bench b");
    let cfg = GpuConfig::gtx480();
    let scale = scale_from_env();

    let alone = |bench: Benchmark| -> (u64, f64) {
        let mut gpu = Gpu::new(cfg.clone()).expect("gpu");
        let id = gpu.launch(bench.kernel(scale)).expect("launch");
        gpu.partition_even();
        gpu.run(500_000_000).expect("run");
        let s = gpu.stats().app(id);
        let cycles = s.runtime_cycles();
        (cycles, cfg.bytes_per_cycle_to_gbps(s.dram_bytes() as f64 / cycles as f64))
    };
    let (ca, bwa) = alone(a);
    let (cb, bwb) = alone(b);
    println!("{a} alone: {ca} cycles, {bwa:.1} GB/s");
    println!("{b} alone: {cb} cycles, {bwb:.1} GB/s");

    let mut gpu = Gpu::new(cfg.clone()).expect("gpu");
    let ia = gpu.launch(a.kernel(scale)).expect("launch");
    let ib = gpu.launch(b.kernel(scale)).expect("launch");
    gpu.partition_even();
    gpu.run(500_000_000).expect("run");
    let sa = gpu.stats().app(ia);
    let sb = gpu.stats().app(ib);
    let (cca, ccb) = (sa.runtime_cycles(), sb.runtime_cycles());
    let makespan = gpu.cycle();
    println!(
        "co-run: {a} {cca} cycles ({:.1} GB/s, slowdown {:.2}), {b} {ccb} cycles ({:.1} GB/s, slowdown {:.2}), makespan {makespan}",
        cfg.bytes_per_cycle_to_gbps(sa.dram_bytes() as f64 / cca as f64),
        cca as f64 / ca as f64,
        cfg.bytes_per_cycle_to_gbps(sb.dram_bytes() as f64 / ccb as f64),
        ccb as f64 / cb as f64,
    );
}
