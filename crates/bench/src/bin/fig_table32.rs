//! Regenerates **Table 3.2**: per-benchmark profile (memory bandwidth,
//! L2→L1 bandwidth, IPC, R) and class, next to the thesis' reference
//! values.
//!
//! ```text
//! cargo run --release -p gcs-bench --bin fig_table32
//! ```

use gcs_bench::{default_engine, header, scale_from_env};
use gcs_core::classify::{classify_suite, AppClass};
use gcs_sim::config::GpuConfig;
use gcs_workloads::{Benchmark, PAPER_PROFILES};

fn main() {
    let cfg = GpuConfig::gtx480();
    let scale = scale_from_env();
    let engine = default_engine();

    header("Table 3.2 — classification of Rodinia benchmarks (measured vs paper)");
    let profiles = engine
        .profile_suite(&cfg, scale, &Benchmark::ALL)
        .unwrap_or_else(|e| panic!("profiling failed: {e}"));
    println!("[setup] {}", engine.stats());
    let (thresholds, classes) = classify_suite(&cfg, &profiles);

    println!(
        "{:>6} | {:>8} {:>8} {:>8} {:>6} {:>5} | {:>8} {:>8} {:>8} {:>6} {:>5} | match",
        "bench", "MB", "L2->L1", "IPC", "R", "class", "MB*", "L2->L1*", "IPC*", "R*", "cls*"
    );
    let mut class_matches = 0;
    for ((b, p), c) in Benchmark::ALL.iter().zip(&profiles).zip(&classes) {
        let paper = PAPER_PROFILES
            .iter()
            .find(|r| r.bench == *b)
            .expect("paper row");
        let want = AppClass::from_label(&paper.class.to_string()).expect("class letter");
        let ok = *c == want;
        class_matches += u32::from(ok);
        println!(
            "{:>6} | {:>8.1} {:>8.1} {:>8.1} {:>6.2} {:>5} | {:>8.1} {:>8.1} {:>8.1} {:>6.2} {:>5} | {}",
            b.name(),
            p.memory_bw,
            p.l2_l1_bw,
            p.ipc,
            p.r,
            c.label(),
            paper.memory_bw,
            paper.l2_l1_bw,
            paper.ipc,
            paper.r,
            want.label(),
            if ok { "yes" } else { "NO" },
        );
    }
    println!(
        "\nthresholds: alpha = {:.1} GB/s, beta = {:.1} GB/s, gamma = {:.1} GB/s, epsilon = {:.1} IPC",
        thresholds.alpha, thresholds.beta, thresholds.gamma, thresholds.epsilon
    );
    println!("classes matching the paper: {class_matches}/14");
}
