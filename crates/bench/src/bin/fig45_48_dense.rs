//! Regenerates **Figs 4.5–4.8**: per-benchmark throughput for the four
//! skewed queue distributions (A-, M-, MC-, C-oriented), two concurrent
//! applications, four methods, normalized per benchmark to Even.
//!
//! Paper highlights: M-oriented queues gain most from ILP matching
//! (+32.5 % vs Even), C-oriented queues gain most from SMRA (+29 %),
//! MC-oriented queues are roughly policy-neutral.
//!
//! ```text
//! cargo run --release -p gcs-bench --bin fig45_48_dense
//! ```

use std::collections::BTreeMap;

use gcs_bench::{build_pipeline, report_profile, header, pct};
use gcs_core::queues::{queue_with_distribution, Distribution};
use gcs_core::runner::{AllocationPolicy, GroupingPolicy, QueueReport};
use gcs_workloads::Benchmark;

fn per_bench(report: &QueueReport) -> BTreeMap<Benchmark, f64> {
    report.per_bench_ipc().into_iter().collect()
}

fn main() {
    let mut pipeline = build_pipeline(2);

    for (fig, dist) in [
        ("Fig 4.5", Distribution::AHeavy),
        ("Fig 4.6", Distribution::MHeavy),
        ("Fig 4.7", Distribution::McHeavy),
        ("Fig 4.8", Distribution::CHeavy),
    ] {
        let queue = queue_with_distribution(dist, 20);
        let even = pipeline
            .run_queue(&queue, GroupingPolicy::Fcfs, AllocationPolicy::Even)
            .expect("even");
        let profile = pipeline
            .run_queue(&queue, GroupingPolicy::Fcfs, AllocationPolicy::ProfileBased)
            .expect("profile");
        let ilp = pipeline
            .run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Even)
            .expect("ilp");
        let smra = pipeline
            .run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Smra)
            .expect("smra");

        header(&format!(
            "{fig} — per-benchmark throughput, {} queue (normalized to Even)",
            dist.label()
        ));
        let (e, p, i, s) = (
            per_bench(&even),
            per_bench(&profile),
            per_bench(&ilp),
            per_bench(&smra),
        );
        println!(
            "{:>6} {:>8} {:>14} {:>8} {:>10}",
            "bench", "Even", "Profile-based", "ILP", "ILP-SMRA"
        );
        for (b, base) in &e {
            let rel =
                |m: &BTreeMap<Benchmark, f64>| m.get(b).copied().unwrap_or(0.0) / base.max(1e-9);
            println!(
                "{:>6} {:>8.2} {:>14.2} {:>8.2} {:>10.2}",
                b.name(),
                1.0,
                rel(&p),
                rel(&i),
                rel(&s),
            );
        }
        println!(
            "device: Profile {}  ILP {}  ILP-SMRA {}",
            pct(profile.device_throughput / even.device_throughput),
            pct(ilp.device_throughput / even.device_throughput),
            pct(smra.device_throughput / even.device_throughput),
        );
    }

    report_profile(&pipeline);
}
