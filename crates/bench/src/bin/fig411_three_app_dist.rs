//! Regenerates **Fig 4.11**: device throughput of three-application
//! execution across the five queue distributions, four methods,
//! normalized to Even per distribution.
//!
//! Paper: ILP-SMRA +23 % on average over Even (best +40 % on the
//! A-oriented queue); the Profile-based method lands close to ILP-SMRA.
//!
//! ```text
//! cargo run --release -p gcs-bench --bin fig411_three_app_dist
//! ```

use gcs_bench::{build_pipeline, report_profile, header, pct};
use gcs_core::queues::{queue_with_distribution, Distribution};
use gcs_core::runner::{AllocationPolicy, GroupingPolicy};

fn main() {
    let mut pipeline = build_pipeline(3);

    header("Fig 4.11 — three-application execution across queue distributions");
    println!(
        "{:>12} {:>8} {:>14} {:>10} {:>10}",
        "queue", "Even", "Profile-based", "ILP", "ILP-SMRA"
    );
    let mut gain_ilp = Vec::new();
    let mut gain_smra = Vec::new();
    for dist in Distribution::ALL {
        // 21 applications: divisible by 3, mirrors the 20-app pair queues.
        let queue = queue_with_distribution(dist, 21);
        let even = pipeline
            .run_queue(&queue, GroupingPolicy::Fcfs, AllocationPolicy::Even)
            .expect("even");
        let profile = pipeline
            .run_queue(&queue, GroupingPolicy::Fcfs, AllocationPolicy::ProfileBased)
            .expect("profile");
        let ilp = pipeline
            .run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Even)
            .expect("ilp");
        let smra = pipeline
            .run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Smra)
            .expect("smra");
        let base = even.device_throughput;
        println!(
            "{:>12} {:>8.2} {:>14.2} {:>10.2} {:>10.2}",
            dist.label(),
            1.0,
            profile.device_throughput / base,
            ilp.device_throughput / base,
            smra.device_throughput / base,
        );
        gain_ilp.push(ilp.device_throughput / base);
        gain_smra.push(smra.device_throughput / base);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("\nILP average gain over Even:      {}", pct(avg(&gain_ilp)));
    println!(
        "ILP-SMRA average gain over Even: {} (paper: +23%)",
        pct(avg(&gain_smra))
    );

    report_profile(&pipeline);
}
