//! Regenerates **Fig 4.2**: cycles taken by each application pair,
//! normalized to the pair's serial execution time, for (a) ILP pairing
//! and (b) FCFS pairing.
//!
//! Paper: 5 of 7 ILP pairs finish in under 50 % of their serial time;
//! only 2 of 7 FCFS pairs do.
//!
//! ```text
//! cargo run --release -p gcs-bench --bin fig42_pair_cycles
//! ```

use std::collections::BTreeMap;

use gcs_bench::{build_pipeline, report_profile, header};
use gcs_core::queues::thesis_queue_14;
use gcs_core::runner::{AllocationPolicy, GroupingPolicy};
use gcs_workloads::Benchmark;

fn main() {
    let mut pipeline = build_pipeline(2);
    let queue = thesis_queue_14();

    // Serial time per benchmark (alone on the full device).
    let serial = pipeline
        .run_queue(&queue, GroupingPolicy::Serial, AllocationPolicy::Even)
        .expect("serial run");
    let mut alone: BTreeMap<Benchmark, u64> = BTreeMap::new();
    for g in &serial.groups {
        alone.insert(g.apps[0].bench, g.makespan);
    }

    for policy in [GroupingPolicy::Ilp, GroupingPolicy::Fcfs] {
        header(&format!("Fig 4.2 — pair cycles vs serial ({policy:?} pairing)"));
        let report = pipeline
            .run_queue(&queue, policy, AllocationPolicy::Even)
            .expect("queue run");
        let mut under_half = 0;
        let mut pairs = 0;
        for g in &report.groups {
            let serial_sum: u64 = g.apps.iter().map(|a| alone[&a.bench]).sum();
            let ratio = g.makespan as f64 / serial_sum as f64;
            let names: Vec<&str> = g.apps.iter().map(|a| a.bench.name()).collect();
            println!("{:>12}: {:.2} of serial", names.join("-"), ratio);
            if g.apps.len() == 2 {
                pairs += 1;
                if ratio < 0.5 {
                    under_half += 1;
                }
            }
        }
        println!("pairs under 50% of serial: {under_half}/{pairs}");
    }
    println!("\npaper: ILP 5/7 pairs under 50%, FCFS 2/7");

    report_profile(&pipeline);
}
