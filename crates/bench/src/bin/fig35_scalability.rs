//! Regenerates **Fig 3.5**: normalized IPC scalability of the
//! distinctive benchmarks as the SM count grows (10 → 30 SMs in the
//! thesis' chart; we also print 60).
//!
//! Expected shapes: LUD flat (12-block grid), HS near-ideal, LPS
//! saturating, FFT saturating then degrading (its per-block tiles spill
//! the shared L2 as more blocks become resident), GUPS flat-to-falling
//! (bandwidth-saturated at every core count; the thesis shows a mild
//! decline), BFS2 rising but far below ideal.
//!
//! ```text
//! cargo run --release -p gcs-bench --bin fig35_scalability
//! ```

use gcs_bench::{default_engine, header, scale_from_env};
use gcs_sim::config::GpuConfig;
use gcs_workloads::Benchmark;

fn main() {
    let cfg = GpuConfig::gtx480();
    let scale = scale_from_env();
    let engine = default_engine();
    let counts = [10u32, 15, 20, 25, 30, 60];
    let benches = [
        Benchmark::Bfs2,
        Benchmark::Lud,
        Benchmark::Fft,
        Benchmark::Lps,
        Benchmark::Gups,
        Benchmark::Hs,
    ];

    header("Fig 3.5 — scalability trends (IPC normalized to the 10-SM point)");
    // Every (benchmark, SM count) point is an independent simulation:
    // fan the whole grid out at once instead of one curve at a time.
    let points = engine
        .run_parallel(benches.len() * counts.len(), |i| {
            let (b, n) = (benches[i / counts.len()], counts[i % counts.len()]);
            engine.profile(&cfg, scale, b, n).map(|p| p.ipc)
        })
        .expect("scalability profiling");
    println!("[setup] {}", engine.stats());
    print!("{:>6}", "bench");
    for c in counts {
        print!(" {:>7}", format!("{c} SM"));
    }
    println!();
    for (bi, b) in benches.iter().enumerate() {
        let curve = &points[bi * counts.len()..(bi + 1) * counts.len()];
        let base = curve[0].max(1e-9);
        print!("{:>6}", b.name());
        for ipc in curve {
            print!(" {:>7.2}", ipc / base);
        }
        println!();
    }
    print!("{:>6}", "ideal");
    for c in counts {
        print!(" {:>7.2}", f64::from(c) / 10.0);
    }
    println!();
}
