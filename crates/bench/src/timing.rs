//! Minimal wall-clock micro-benchmark harness.
//!
//! The `benches/` targets use this instead of an external benchmarking
//! crate so the workspace builds offline. The methodology is simple:
//! one calibration pass sizes the iteration count to ~200 ms, then
//! three timed samples report the mean and best per-iteration time.
//! That is enough to spot order-of-magnitude regressions in the solver
//! and simulator hot paths; it makes no statistical claims beyond that.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall time per measured sample.
const TARGET: Duration = Duration::from_millis(200);

/// Timed samples per benchmark.
const SAMPLES: u32 = 3;

/// Runs `f` repeatedly and prints the per-iteration mean and minimum.
///
/// The return value is passed through [`black_box`] so the work cannot
/// be optimized away.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per_iter = t.elapsed() / iters;
        total += per_iter;
        best = best.min(per_iter);
    }
    let mean = total / SAMPLES;
    println!("{name:<44} {iters:>8} iters/sample   mean {mean:>12.3?}   min {best:>12.3?}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_returns() {
        // Smoke test: the harness must terminate quickly on a trivial
        // closure and must actually invoke it.
        let mut calls = 0u64;
        bench("timing/self_test", || {
            calls += 1;
            calls
        });
        assert!(calls > 0);
    }
}
