//! Minimal wall-clock micro-benchmark harness.
//!
//! The `benches/` targets use this instead of an external benchmarking
//! crate so the workspace builds offline. The methodology is simple:
//! one calibration pass sizes the iteration count to ~200 ms, then
//! three timed samples report the mean and best per-iteration time.
//! That is enough to spot order-of-magnitude regressions in the solver
//! and simulator hot paths; it makes no statistical claims beyond that.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall time per measured sample (override: `BENCH_TARGET_MS`).
const TARGET: Duration = Duration::from_millis(200);

/// Timed samples per benchmark (override: `BENCH_SAMPLES`).
const SAMPLES: u32 = 3;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs `f` repeatedly and prints the per-iteration mean and minimum.
///
/// The return value is passed through [`black_box`] so the work cannot
/// be optimized away.
///
/// When the `BENCH_JSON` environment variable is set (any value), each
/// benchmark additionally prints one machine-readable line of the form
/// `BENCH_JSON {"name":"...","mean_ns":N,"min_ns":N}` that
/// `scripts/bench.sh` collects into `BENCH_sim.json`.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    let target = Duration::from_millis(env_u64("BENCH_TARGET_MS", TARGET.as_millis() as u64));
    let samples = env_u64("BENCH_SAMPLES", u64::from(SAMPLES)).max(1) as u32;
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per_iter = t.elapsed() / iters;
        total += per_iter;
        best = best.min(per_iter);
    }
    let mean = total / samples;
    println!("{name:<44} {iters:>8} iters/sample   mean {mean:>12.3?}   min {best:>12.3?}");
    if std::env::var_os("BENCH_JSON").is_some() {
        println!(
            "BENCH_JSON {{\"name\":\"{name}\",\"mean_ns\":{},\"min_ns\":{}}}",
            mean.as_nanos(),
            best.as_nanos()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_returns() {
        // Smoke test: the harness must terminate quickly on a trivial
        // closure and must actually invoke it.
        let mut calls = 0u64;
        bench("timing/self_test", || {
            calls += 1;
            calls
        });
        assert!(calls > 0);
    }
}
