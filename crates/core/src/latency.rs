//! Wall-clock decision-latency accounting.
//!
//! The online scheduler's canonical reports are *simulated-time* and
//! byte-stable; wall-clock measurements (how long a planning decision
//! actually took on the host) must therefore live beside the report,
//! not inside it. [`NanoStats`] is that sidecar: a nearest-rank
//! percentile summary over nanosecond samples, the unit `scripts/
//! bench.sh` already gates (`min_ns`), plus a derived decisions-per-
//! second rate. The daemon collects one sample per [`Policy::plan`]
//! call and the bench harness turns the summary into `BENCH_JSON`
//! entries.
//!
//! [`Policy::plan`]: https://docs.rs/gcs-sched (gcs_sched::Policy::plan)

/// Nearest-rank percentile summary of nanosecond samples.
///
/// Same estimator as the scheduler's cycle-domain `LatencyStats`
/// (nearest-rank, never interpolated), applied to host wall time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NanoStats {
    /// Number of samples summarized.
    pub count: usize,
    /// 50th percentile in nanoseconds (nearest-rank).
    pub p50_ns: u64,
    /// 95th percentile in nanoseconds (nearest-rank).
    pub p95_ns: u64,
    /// 99th percentile in nanoseconds (nearest-rank).
    pub p99_ns: u64,
    /// Arithmetic mean in nanoseconds.
    pub mean_ns: f64,
    /// Maximum sample in nanoseconds.
    pub max_ns: u64,
}

impl NanoStats {
    /// Summarizes `samples_ns` (order irrelevant). All-zero for an
    /// empty set.
    pub fn from_samples(samples_ns: &[u64]) -> NanoStats {
        if samples_ns.is_empty() {
            return NanoStats::default();
        }
        let mut sorted = samples_ns.to_vec();
        sorted.sort_unstable();
        let pct = |p: u64| -> u64 {
            let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
            sorted[rank - 1]
        };
        NanoStats {
            count: sorted.len(),
            p50_ns: pct(50),
            p95_ns: pct(95),
            p99_ns: pct(99),
            mean_ns: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            max_ns: *sorted.last().expect("non-empty"),
        }
    }

    /// Sustained decision rate implied by the mean latency
    /// (1 s / mean). 0 when no samples were taken.
    pub fn per_sec(&self) -> f64 {
        if self.count == 0 || self.mean_ns <= 0.0 {
            return 0.0;
        }
        1e9 / self.mean_ns
    }
}

impl std::fmt::Display for NanoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} p50={}ns p95={}ns p99={}ns mean={:.0}ns max={}ns",
            self.count, self.p50_ns, self.p95_ns, self.p99_ns, self.mean_ns, self.max_ns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let samples: Vec<u64> = (1..=200).collect();
        let s = NanoStats::from_samples(&samples);
        assert_eq!(s.count, 200);
        assert_eq!(s.p50_ns, 100);
        assert_eq!(s.p95_ns, 190);
        assert_eq!(s.p99_ns, 198);
        assert_eq!(s.max_ns, 200);
        assert!((s.mean_ns - 100.5).abs() < 1e-12);
        // Singleton sets report that sample everywhere.
        let one = NanoStats::from_samples(&[7]);
        assert_eq!((one.p50_ns, one.p99_ns, one.max_ns), (7, 7, 7));
        assert_eq!(NanoStats::from_samples(&[]), NanoStats::default());
    }

    #[test]
    fn per_sec_inverts_the_mean() {
        let s = NanoStats::from_samples(&[1_000; 10]);
        assert!((s.per_sec() - 1e6).abs() < 1e-6);
        assert_eq!(NanoStats::default().per_sec(), 0.0);
    }

    #[test]
    fn display_is_compact() {
        let s = NanoStats::from_samples(&[10, 20, 30]);
        let text = s.to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("p99=30ns"));
    }
}
