//! Wall-clock decision-latency accounting.
//!
//! The online scheduler's canonical reports are *simulated-time* and
//! byte-stable; wall-clock measurements (how long a planning decision
//! actually took on the host) must therefore live beside the report,
//! not inside it. [`NanoStats`] is that sidecar: a nearest-rank
//! percentile summary over nanosecond samples, the unit `scripts/
//! bench.sh` already gates (`min_ns`), plus a derived decisions-per-
//! second rate. The daemon collects one sample per [`Policy::plan`]
//! call and the bench harness turns the summary into `BENCH_JSON`
//! entries.
//!
//! [`Policy::plan`]: https://docs.rs/gcs-sched (gcs_sched::Policy::plan)

/// Nearest-rank percentile summary of nanosecond samples.
///
/// Same estimator as the scheduler's cycle-domain `LatencyStats`
/// (nearest-rank, never interpolated), applied to host wall time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NanoStats {
    /// Number of samples summarized.
    pub count: usize,
    /// 50th percentile in nanoseconds (nearest-rank).
    pub p50_ns: u64,
    /// 95th percentile in nanoseconds (nearest-rank).
    pub p95_ns: u64,
    /// 99th percentile in nanoseconds (nearest-rank).
    pub p99_ns: u64,
    /// Arithmetic mean in nanoseconds.
    pub mean_ns: f64,
    /// Maximum sample in nanoseconds.
    pub max_ns: u64,
}

impl NanoStats {
    /// Summarizes `samples_ns` (order irrelevant). All-zero for an
    /// empty set.
    pub fn from_samples(samples_ns: &[u64]) -> NanoStats {
        if samples_ns.is_empty() {
            return NanoStats::default();
        }
        let mut sorted = samples_ns.to_vec();
        sorted.sort_unstable();
        let pct = |p: u64| -> u64 {
            let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
            sorted[rank - 1]
        };
        NanoStats {
            count: sorted.len(),
            p50_ns: pct(50),
            p95_ns: pct(95),
            p99_ns: pct(99),
            mean_ns: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            max_ns: *sorted.last().expect("non-empty"),
        }
    }

    /// Sustained decision rate implied by the mean latency
    /// (1 s / mean). 0 when no samples were taken.
    pub fn per_sec(&self) -> f64 {
        if self.count == 0 || self.mean_ns <= 0.0 {
            return 0.0;
        }
        1e9 / self.mean_ns
    }
}

impl std::fmt::Display for NanoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} p50={}ns p95={}ns p99={}ns mean={:.0}ns max={}ns",
            self.count, self.p50_ns, self.p95_ns, self.p99_ns, self.mean_ns, self.max_ns
        )
    }
}

/// Sliding-window variant of [`NanoStats`]: a fixed-capacity ring of
/// the most recent samples, summarized on demand with the identical
/// nearest-rank estimator.
///
/// Groundwork for decision-latency SLO enforcement (shed load when the
/// p99 *over a window* exceeds a target, not when the queue is deep):
/// the batch summary answers "how did this session do", the window
/// answers "how are we doing right now". While fewer than `capacity`
/// samples have been pushed the window is exactly the batch set, so
/// [`WindowedNanoStats::stats`] agrees with
/// [`NanoStats::from_samples`] byte-for-byte on identical inputs.
#[derive(Debug, Clone)]
pub struct WindowedNanoStats {
    ring: Vec<u64>,
    capacity: usize,
    /// Next slot to overwrite once the ring is full.
    head: usize,
    /// Lifetime sample count (saturating at usize::MAX).
    pushed: usize,
}

impl WindowedNanoStats {
    /// An empty window keeping the most recent `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity — a window that can hold nothing can
    /// answer nothing.
    pub fn new(capacity: usize) -> WindowedNanoStats {
        assert!(capacity > 0, "window capacity must be at least 1");
        WindowedNanoStats {
            ring: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            pushed: 0,
        }
    }

    /// Records one sample, evicting the oldest once the ring is full.
    pub fn push(&mut self, sample_ns: u64) {
        if self.ring.len() < self.capacity {
            self.ring.push(sample_ns);
        } else {
            self.ring[self.head] = sample_ns;
            self.head = (self.head + 1) % self.capacity;
        }
        self.pushed = self.pushed.saturating_add(1);
    }

    /// Samples currently in the window (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True before the first push.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Lifetime samples pushed, including evicted ones.
    pub fn total_pushed(&self) -> usize {
        self.pushed
    }

    /// Nearest-rank summary over the samples currently in the window —
    /// the same estimator as [`NanoStats::from_samples`], so the two
    /// agree exactly whenever the window still holds every sample.
    pub fn stats(&self) -> NanoStats {
        NanoStats::from_samples(&self.ring)
    }

    /// Windowed p99 in nanoseconds: the SLO-facing number. 0 while
    /// empty.
    pub fn p99_ns(&self) -> u64 {
        self.stats().p99_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let samples: Vec<u64> = (1..=200).collect();
        let s = NanoStats::from_samples(&samples);
        assert_eq!(s.count, 200);
        assert_eq!(s.p50_ns, 100);
        assert_eq!(s.p95_ns, 190);
        assert_eq!(s.p99_ns, 198);
        assert_eq!(s.max_ns, 200);
        assert!((s.mean_ns - 100.5).abs() < 1e-12);
        // Singleton sets report that sample everywhere.
        let one = NanoStats::from_samples(&[7]);
        assert_eq!((one.p50_ns, one.p99_ns, one.max_ns), (7, 7, 7));
        assert_eq!(NanoStats::from_samples(&[]), NanoStats::default());
    }

    #[test]
    fn per_sec_inverts_the_mean() {
        let s = NanoStats::from_samples(&[1_000; 10]);
        assert!((s.per_sec() - 1e6).abs() < 1e-6);
        assert_eq!(NanoStats::default().per_sec(), 0.0);
    }

    #[test]
    fn display_is_compact() {
        let s = NanoStats::from_samples(&[10, 20, 30]);
        let text = s.to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("p99=30ns"));
    }

    #[test]
    fn window_matches_batch_until_eviction() {
        // Deterministic but unsorted sample stream.
        let samples: Vec<u64> = (0..128u64).map(|i| (i * 7919) % 1000).collect();
        let mut w = WindowedNanoStats::new(128);
        for (i, &s) in samples.iter().enumerate() {
            w.push(s);
            // Window still holds everything: identical to the batch
            // summary over the same prefix, field for field.
            assert_eq!(w.stats(), NanoStats::from_samples(&samples[..=i]));
        }
        assert_eq!(w.len(), 128);
        assert_eq!(w.total_pushed(), 128);
    }

    #[test]
    fn window_evicts_oldest_first() {
        let mut w = WindowedNanoStats::new(4);
        for s in [100, 200, 300, 400, 500, 600] {
            w.push(s);
        }
        // Only the last 4 samples remain.
        assert_eq!(w.len(), 4);
        assert_eq!(w.total_pushed(), 6);
        assert_eq!(w.stats(), NanoStats::from_samples(&[300, 400, 500, 600]));
        assert_eq!(w.stats().max_ns, 600);
        assert_eq!(w.p99_ns(), 600);
    }

    #[test]
    fn window_p99_tracks_recent_regressions() {
        let mut w = WindowedNanoStats::new(8);
        for _ in 0..64 {
            w.push(10);
        }
        assert_eq!(w.p99_ns(), 10);
        // A burst of slow decisions dominates the window immediately,
        // long before it would move a lifetime percentile.
        for _ in 0..8 {
            w.push(10_000);
        }
        assert_eq!(w.p99_ns(), 10_000);
    }

    #[test]
    #[should_panic(expected = "window capacity")]
    fn zero_capacity_window_is_rejected() {
        let _ = WindowedNanoStats::new(0);
    }
}
