//! Parallel co-run sweep engine with memoized simulation results.
//!
//! Every experiment in this repository reduces to a bag of *independent*
//! device simulations: alone-run profiles, pair co-runs for the
//! interference matrix, and whole-group co-runs under an allocation
//! policy. Each job is a pure function of `(GpuConfig, Scale, benches,
//! mode)` — the simulator seeds its per-SM RNGs from the SM index alone
//! (see `gcs_sim::rng`), so a job's outcome does not depend on wall
//! clock, thread scheduling, or what else ran before it.
//!
//! [`SweepEngine`] exploits both properties:
//!
//! * **Parallelism** — [`SweepEngine::run_parallel`] fans jobs across a
//!   fixed thread pool (`std::thread::scope`, no external runtime) and
//!   stores each result in a slot keyed by its job index, so the
//!   assembled output is bit-identical to the sequential path at any
//!   thread count.
//! * **Memoization** — every typed job is keyed by an FNV-1a
//!   fingerprint of its full canonical description. Results live in an
//!   in-process map and, when a cache directory is configured, as one
//!   small JSON file per entry under e.g. `results/cache/`. Floats are
//!   stored as IEEE-754 bit patterns so round-trips are exact; a
//!   corrupted or truncated file is treated as a miss, never an error.
//!
//! [`SweepStats`] counts what happened (jobs simulated vs. served from
//! cache, peak in-flight parallelism, simulated cycles, estimated
//! speedup) and is printed by the `gcs-bench` harness.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::{Gpu, PhaseCycles};
use gcs_sim::kernel::AppId;
use gcs_workloads::{Benchmark, Scale};

use gcs_sim::gpu::SimError;
use gcs_sim::KernelTrace;

use crate::fault::RetryPolicy;
use crate::profile::{
    profile_kernel_job, profile_trace_job, AppProfile, SimShards, PROFILE_MAX_CYCLES,
};
use crate::smra::{SmraController, SmraParams};
use crate::CoreError;

/// A schedulable workload: a synthetic suite benchmark or a recorded /
/// hand-authored trace replayed through the simulator.
///
/// Traces are content-addressed — the cache-key token embeds the
/// trace's FNV fingerprint, so two different traces that share a name
/// can never collide in the memo cache, while `Bench` tokens stay
/// byte-identical to the pre-trace key format.
#[derive(Debug, Clone)]
pub enum Workload {
    /// A synthetic suite benchmark (scaled at launch time).
    Bench(Benchmark),
    /// A recorded or authored trace (scale-invariant content).
    Trace(Arc<KernelTrace>),
}

impl Workload {
    /// Display name (benchmark name or the trace's recorded name).
    pub fn name(&self) -> String {
        match self {
            Workload::Bench(b) => b.name().to_string(),
            Workload::Trace(t) => t.meta.name.clone(),
        }
    }

    /// Cache-key token. `Bench` tokens equal the bare benchmark name so
    /// every pre-existing cache key stays byte-identical; `Trace`
    /// tokens carry the content fingerprint.
    fn key_token(&self) -> String {
        match self {
            Workload::Bench(b) => b.name().to_string(),
            Workload::Trace(t) => format!("trace:{}#{:016x}", t.meta.name, t.fingerprint()),
        }
    }

    /// Launches the workload on `gpu`.
    fn launch(&self, gpu: &mut Gpu, scale: Scale) -> Result<AppId, SimError> {
        match self {
            Workload::Bench(b) => gpu.launch(b.kernel(scale)),
            Workload::Trace(t) => gpu.launch_traced(Arc::clone(t)),
        }
    }
}

impl From<Benchmark> for Workload {
    fn from(b: Benchmark) -> Workload {
        Workload::Bench(b)
    }
}

impl From<Arc<KernelTrace>> for Workload {
    fn from(t: Arc<KernelTrace>) -> Workload {
        Workload::Trace(t)
    }
}

/// How a co-run job divides SMs among its group members.
#[derive(Debug, Clone, PartialEq)]
pub enum CorunMode {
    /// Equal split ([`Gpu::partition_even`]).
    Even,
    /// Explicit per-app SM counts ([`Gpu::partition_counts`]).
    Counts(Vec<u32>),
    /// Even start plus the Algorithm 1 dynamic controller.
    Smra(SmraParams),
}

/// Outcome of one co-run job, in launch order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupOutcome {
    /// Per-app runtime cycles (first dispatch to retirement, ≥ 1).
    pub cycles: Vec<u64>,
    /// Per-app thread instructions retired.
    pub thread_insts: Vec<u64>,
    /// Device cycles until every member finished.
    pub makespan: u64,
}

/// Snapshot of the engine's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepStats {
    /// Typed jobs requested (cached + simulated).
    pub jobs_total: u64,
    /// Jobs that actually ran on the simulator.
    pub jobs_simulated: u64,
    /// Jobs served from the in-process or on-disk cache.
    pub jobs_cached: u64,
    /// Peak number of jobs executing concurrently.
    pub max_in_flight: usize,
    /// Simulated device cycles across all simulated jobs.
    pub sim_cycles: u64,
    /// Sum of per-job wall times (what a sequential sweep would cost).
    pub serial_nanos: u64,
    /// Wall time spent inside parallel batches.
    pub wall_nanos: u64,
    /// Jobs that failed at least once and then succeeded on retry.
    pub jobs_retried: u64,
    /// Corrupt on-disk cache entries moved to the quarantine directory.
    pub jobs_quarantined: u64,
    /// Phase-cycle totals across all *simulated* jobs; all zero unless
    /// the engine was built with [`SweepEngine::with_phase_profiling`].
    /// Cached jobs contribute nothing (their cycles are not in
    /// `sim_cycles` either), so `phases.total() == sim_cycles` whenever
    /// profiling was on for the engine's whole life.
    pub phases: PhaseCycles,
}

impl SweepStats {
    /// Estimated parallel speedup: summed per-job time over batch wall
    /// time. 1.0 when nothing ran in a batch yet.
    pub fn speedup(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 1.0;
        }
        self.serial_nanos as f64 / self.wall_nanos as f64
    }

    /// Deterministic phase-profile report: pure cycle counters, no
    /// wall-clock fields, so the output is byte-identical at any worker
    /// thread count (job sums commute).
    pub fn profile_report(&self) -> String {
        let p = &self.phases;
        format!(
            "profile: issue={} l1={} l2={} dram={} smra={} idle={} total={} sim_cycles={}",
            p.issue,
            p.l1,
            p.l2,
            p.dram,
            p.smra,
            p.idle,
            p.total(),
            self.sim_cycles,
        )
    }
}

impl std::fmt::Display for SweepStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sweep: {} jobs ({} simulated, {} cached), peak {} in flight, \
             {:.2e} simulated cycles, est. speedup {:.2}x ({:.2}s serial vs {:.2}s wall)",
            self.jobs_total,
            self.jobs_simulated,
            self.jobs_cached,
            self.max_in_flight,
            self.sim_cycles as f64,
            self.speedup(),
            self.serial_nanos as f64 / 1e9,
            self.wall_nanos as f64 / 1e9,
        )?;
        if self.jobs_retried > 0 {
            write!(f, ", {} retried", self.jobs_retried)?;
        }
        if self.jobs_quarantined > 0 {
            write!(f, ", {} cache entries quarantined", self.jobs_quarantined)?;
        }
        Ok(())
    }
}

/// A memoized cache entry: the full canonical key (stored to detect
/// fingerprint collisions) plus a flat field map. Floats are encoded as
/// `to_bits()` so decode is exact.
#[derive(Debug, Clone)]
struct Entry {
    key: String,
    fields: Vec<(String, u64)>,
}

/// The parallel sweep executor + memoization cache.
///
/// Cheap to share: wrap it in an [`Arc`] and hand clones to every
/// consumer so they pool cache hits and statistics.
#[derive(Debug)]
pub struct SweepEngine {
    threads: usize,
    /// Intra-simulation parallelism target: each simulated job steps its
    /// device with `min(sim_threads, num_sms)` SM shards, and asks the
    /// thread-budget arbiter for up to `sim_threads - 1` extra worker
    /// threads. 1 (the default) runs the plain unsharded reference path.
    sim_threads: usize,
    /// Extra worker threads currently leased to sharded simulations.
    leased: AtomicUsize,
    /// Pool worker threads currently committed to batches — the
    /// arbiter's view of how much of `threads` is already spoken for.
    committed: AtomicUsize,
    cache_dir: Option<PathBuf>,
    retry: RetryPolicy,
    /// When set, simulated jobs run with the device phase profiler on
    /// and their [`PhaseCycles`] accumulate into `phases`. Never part of
    /// cache keys or entries: profiling does not change results.
    profile_phases: bool,
    phases: Mutex<PhaseCycles>,
    mem: Mutex<HashMap<u64, Entry>>,
    jobs_total: AtomicU64,
    jobs_simulated: AtomicU64,
    jobs_cached: AtomicU64,
    in_flight: AtomicUsize,
    max_in_flight: AtomicUsize,
    sim_cycles: AtomicU64,
    serial_nanos: AtomicU64,
    wall_nanos: AtomicU64,
    jobs_retried: AtomicU64,
    jobs_quarantined: AtomicU64,
}

impl SweepEngine {
    /// An engine running jobs on `threads` worker threads (clamped to at
    /// least 1), with no disk cache.
    pub fn new(threads: usize) -> Self {
        SweepEngine {
            threads: threads.max(1),
            sim_threads: 1,
            leased: AtomicUsize::new(0),
            committed: AtomicUsize::new(0),
            cache_dir: None,
            retry: RetryPolicy::NONE,
            profile_phases: false,
            phases: Mutex::new(PhaseCycles::default()),
            mem: Mutex::new(HashMap::new()),
            jobs_total: AtomicU64::new(0),
            jobs_simulated: AtomicU64::new(0),
            jobs_cached: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            max_in_flight: AtomicUsize::new(0),
            sim_cycles: AtomicU64::new(0),
            serial_nanos: AtomicU64::new(0),
            wall_nanos: AtomicU64::new(0),
            jobs_retried: AtomicU64::new(0),
            jobs_quarantined: AtomicU64::new(0),
        }
    }

    /// Strictly sequential engine (one worker, no disk cache) — the
    /// reference the determinism tests compare against.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// An engine sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Persists (and reads back) memoized results under `dir`, one JSON
    /// file per entry. The directory is created lazily on first store.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Retries transiently failing jobs under `policy` (the default is
    /// [`RetryPolicy::NONE`]: simulator jobs are deterministic, so a
    /// failure normally replays identically). Panics are never retried.
    #[must_use]
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Collects per-phase device cycles for every job this engine
    /// simulates (the `--profile` flag of the fig binaries). Off by
    /// default; results and cache keys are unaffected either way.
    #[must_use]
    pub fn with_phase_profiling(mut self, on: bool) -> Self {
        self.profile_phases = on;
        self
    }

    /// Whether phase profiling is on.
    pub fn phase_profiling(&self) -> bool {
        self.profile_phases
    }

    /// Steps every simulated job's device with `min(n, num_sms)` SM
    /// shards (`GCS_SIM_THREADS` in the harness). Results are
    /// bit-identity pinned — sharding never changes a profile, co-run
    /// outcome or cache entry, only the wall-clock cost of a miss — so
    /// cache keys are deliberately unaffected.
    ///
    /// Extra worker threads for the sharded step come from the engine's
    /// single thread budget (`threads`): a job leases up to `n - 1`
    /// threads beyond the ones already committed to batch fan-out, so
    /// job-level and intra-simulation parallelism never oversubscribe
    /// the machine. With a full batch in flight every lease is denied
    /// and sharded jobs step single-threaded (still benefiting from
    /// shard-elision); as a batch drains, the tail jobs pick up the
    /// freed threads.
    #[must_use]
    pub fn with_sim_threads(mut self, n: usize) -> Self {
        self.sim_threads = n.max(1);
        self
    }

    /// The intra-simulation parallelism target (1 = sharding off).
    pub fn sim_threads(&self) -> usize {
        self.sim_threads
    }

    /// The arbiter: tries to lease up to `sim_threads - 1` extra worker
    /// threads from the unspoken-for part of the budget. The lease is
    /// returned on drop. Never blocks — a denied lease just means the
    /// job steps its shards on the calling thread alone.
    fn lease_shard_workers(&self) -> ShardLease<'_> {
        let want = self.sim_threads.saturating_sub(1);
        let mut extra = 0;
        if want > 0 {
            let mut cur = self.leased.load(Ordering::Relaxed);
            loop {
                // The calling thread itself is committed even outside a
                // batch, hence the `max(1)`.
                let busy = self.committed.load(Ordering::Relaxed).max(1) + cur;
                let take = want.min(self.threads.saturating_sub(busy));
                if take == 0 {
                    break;
                }
                match self.leased.compare_exchange(
                    cur,
                    cur + take,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        extra = take;
                        break;
                    }
                    Err(now) => cur = now,
                }
            }
        }
        ShardLease {
            engine: self,
            extra,
        }
    }

    /// The sharding grant for one simulated job, paired with the lease
    /// that backs its worker count.
    fn shard_grant(&self) -> (SimShards, ShardLease<'_>) {
        if self.sim_threads <= 1 {
            return (
                SimShards::OFF,
                ShardLease {
                    engine: self,
                    extra: 0,
                },
            );
        }
        let lease = self.lease_shard_workers();
        let grant = SimShards {
            shards: u32::try_from(self.sim_threads).unwrap_or(u32::MAX),
            // Memory shards ride the same lease: phase M is stepped by
            // the SM-shard workers, so no second lease is taken and
            // the thread budget is untouched by this field.
            mem_shards: u32::try_from(self.sim_threads).unwrap_or(u32::MAX),
            workers: 1 + u32::try_from(lease.extra).unwrap_or(0),
        };
        (grant, lease)
    }

    fn add_phases(&self, p: &PhaseCycles) {
        self.phases
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .add(p);
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured on-disk cache directory, if any.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> SweepStats {
        SweepStats {
            jobs_total: self.jobs_total.load(Ordering::Relaxed),
            jobs_simulated: self.jobs_simulated.load(Ordering::Relaxed),
            jobs_cached: self.jobs_cached.load(Ordering::Relaxed),
            max_in_flight: self.max_in_flight.load(Ordering::Relaxed),
            sim_cycles: self.sim_cycles.load(Ordering::Relaxed),
            serial_nanos: self.serial_nanos.load(Ordering::Relaxed),
            wall_nanos: self.wall_nanos.load(Ordering::Relaxed),
            jobs_retried: self.jobs_retried.load(Ordering::Relaxed),
            jobs_quarantined: self.jobs_quarantined.load(Ordering::Relaxed),
            phases: *self.phases.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    // ------------------------------------------------------------------
    // Parallel executor
    // ------------------------------------------------------------------

    /// Runs `jobs` independent closures `f(0) .. f(jobs - 1)` across the
    /// worker pool and returns their results **in job-index order** —
    /// the output is identical at every thread count, so callers may
    /// treat a parallel sweep as a drop-in for the sequential loop.
    ///
    /// Worker threads pull indices from a shared counter; a slot per job
    /// collects the result. On failure the error of the *lowest* failing
    /// job index is returned (also deterministic). A panicking job does
    /// not take the pool down: the panic is caught per job and reported
    /// as [`CoreError::Worker`], while every other job still runs. Use
    /// [`SweepEngine::run_parallel_salvage`] to also recover the
    /// successful results of a partially failed batch.
    ///
    /// # Errors
    ///
    /// The first (by job index) error any job produced.
    pub fn run_parallel<T, F>(&self, jobs: usize, f: F) -> Result<Vec<T>, CoreError>
    where
        T: Send,
        F: Fn(usize) -> Result<T, CoreError> + Sync,
    {
        let mut out = Vec::with_capacity(jobs);
        for r in self.execute(jobs, f) {
            out.push(r?);
        }
        Ok(out)
    }

    /// Like [`SweepEngine::run_parallel`], but salvages the batch: every
    /// job's individual outcome is returned in job-index order, so the
    /// results that completed survive even when sibling jobs failed or
    /// panicked. Callers that can make progress on partial data should
    /// prefer this over aborting the whole sweep.
    pub fn run_parallel_salvage<T, F>(&self, jobs: usize, f: F) -> Vec<Result<T, CoreError>>
    where
        T: Send,
        F: Fn(usize) -> Result<T, CoreError> + Sync,
    {
        self.execute(jobs, f)
    }

    fn execute<T, F>(&self, jobs: usize, f: F) -> Vec<Result<T, CoreError>>
    where
        T: Send,
        F: Fn(usize) -> Result<T, CoreError> + Sync,
    {
        if jobs == 0 {
            return Vec::new();
        }
        let slots: Vec<Mutex<Option<Result<T, CoreError>>>> =
            (0..jobs).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let wall = Instant::now();

        let worker = |_worker_id: usize| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= jobs {
                break;
            }
            let live = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
            self.max_in_flight.fetch_max(live, Ordering::Relaxed);
            let t = Instant::now();
            let r = self.run_one(i, &f);
            let spent = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.serial_nanos.fetch_add(spent, Ordering::Relaxed);
            self.in_flight.fetch_sub(1, Ordering::Relaxed);
            *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
        };

        let workers = self.threads.min(jobs);
        self.committed.fetch_add(workers, Ordering::Relaxed);
        if workers <= 1 {
            worker(0);
        } else {
            std::thread::scope(|s| {
                for w in 0..workers {
                    s.spawn(move || worker(w));
                }
            });
        }
        self.committed.fetch_sub(workers, Ordering::Relaxed);
        let spent = u64::try_from(wall.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.wall_nanos.fetch_add(spent, Ordering::Relaxed);

        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .unwrap_or_else(|| {
                        Err(CoreError::Worker {
                            job: i,
                            message: "worker exited before storing a result".into(),
                        })
                    })
            })
            .collect()
    }

    /// One job with panic isolation and the engine's retry policy: a
    /// panic becomes [`CoreError::Worker`] immediately (deterministic
    /// code would just panic again), while a plain error is retried up
    /// to `max_retries` times with bounded backoff.
    fn run_one<T>(
        &self,
        i: usize,
        f: &(impl Fn(usize) -> Result<T, CoreError> + Sync),
    ) -> Result<T, CoreError> {
        let mut attempt = 0u32;
        loop {
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Err(payload) => {
                    return Err(CoreError::Worker {
                        job: i,
                        message: panic_message(payload.as_ref()),
                    });
                }
                Ok(Ok(v)) => {
                    if attempt > 0 {
                        self.jobs_retried.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(v);
                }
                Ok(Err(e)) => {
                    if attempt >= self.retry.max_retries {
                        return Err(e);
                    }
                    attempt += 1;
                    let pause = self.retry.backoff(attempt);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Typed, memoized jobs
    // ------------------------------------------------------------------

    /// Alone-run profile of `bench` on the first `num_sms` SMs, memoized.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn profile(
        &self,
        cfg: &GpuConfig,
        scale: Scale,
        bench: Benchmark,
        num_sms: u32,
    ) -> Result<AppProfile, CoreError> {
        self.profile_workload(cfg, scale, &Workload::Bench(bench), num_sms)
    }

    /// Alone-run profile of any [`Workload`] — benchmark or trace — on
    /// the first `num_sms` SMs, memoized. For `Bench` workloads this is
    /// exactly [`SweepEngine::profile`] (same cache key, same result).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn profile_workload(
        &self,
        cfg: &GpuConfig,
        scale: Scale,
        workload: &Workload,
        num_sms: u32,
    ) -> Result<AppProfile, CoreError> {
        let key = workload_profile_key(cfg, scale, &workload.key_token(), num_sms);
        let mut p = self.cached(&key, decode_profile, || {
            let (grant, _lease) = self.shard_grant();
            let (p, phases) = match workload {
                Workload::Bench(b) => {
                    profile_kernel_job(&b.kernel(scale), cfg, num_sms, self.profile_phases, grant)?
                }
                Workload::Trace(t) => {
                    profile_trace_job(t, cfg, num_sms, self.profile_phases, grant)?
                }
            };
            // With profiling on, account the device cycles actually
            // stepped (the app-relative runtime can undercount the tail
            // by a cycle) so phase totals partition sim_cycles exactly.
            match phases {
                Some(ph) => {
                    self.sim_cycles.fetch_add(ph.total(), Ordering::Relaxed);
                    self.add_phases(&ph);
                }
                None => {
                    self.sim_cycles.fetch_add(p.cycles, Ordering::Relaxed);
                }
            }
            Ok((encode_profile(&p), p))
        })?;
        // The flat u64 cache drops the kernel name; the key pins the
        // workload, so restore it losslessly here.
        p.name = workload.name();
        Ok(p)
    }

    /// Cache-only probe of [`SweepEngine::profile_workload`]: returns
    /// the memoized profile if (and only if) the exact `(workload,
    /// num_sms, config, scale)` entry is already in the in-process map
    /// or the on-disk cache, and **never simulates**. A miss returns
    /// `None` and leaves the engine untouched — no counters move, so
    /// `jobs_simulated` stays an honest record of simulation work.
    ///
    /// This is the predictor-facing entry point for planners that must
    /// stay cheap in the plan path (e.g. the fleet allocator): a warm
    /// cache serves every curve point for free, and a cold cache is a
    /// signal to degrade rather than a license to simulate.
    pub fn profile_workload_cached(
        &self,
        cfg: &GpuConfig,
        scale: Scale,
        workload: &Workload,
        num_sms: u32,
    ) -> Option<AppProfile> {
        let key = workload_profile_key(cfg, scale, &workload.key_token(), num_sms);
        let fields = self.lookup(fnv1a(&key), &key)?;
        let mut p = decode_profile(&fields)?;
        p.name = workload.name();
        Some(p)
    }

    /// Full-device alone profiles for `suite`, one parallel batch.
    ///
    /// # Errors
    ///
    /// Propagates the first (by suite index) profiling failure.
    pub fn profile_suite(
        &self,
        cfg: &GpuConfig,
        scale: Scale,
        suite: &[Benchmark],
    ) -> Result<Vec<AppProfile>, CoreError> {
        self.run_parallel(suite.len(), |i| self.profile(cfg, scale, suite[i], cfg.num_sms))
    }

    /// Co-runs `group` under `mode`, memoized.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    ///
    /// # Panics
    ///
    /// Panics on an empty group.
    pub fn corun(
        &self,
        cfg: &GpuConfig,
        scale: Scale,
        group: &[Benchmark],
        mode: &CorunMode,
    ) -> Result<GroupOutcome, CoreError> {
        let ws: Vec<Workload> = group.iter().map(|&b| Workload::Bench(b)).collect();
        self.corun_workloads(cfg, scale, &ws, mode)
    }

    /// Co-runs a mixed group of [`Workload`]s under `mode`, memoized.
    /// For all-`Bench` groups this is exactly [`SweepEngine::corun`].
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    ///
    /// # Panics
    ///
    /// Panics on an empty group.
    pub fn corun_workloads(
        &self,
        cfg: &GpuConfig,
        scale: Scale,
        group: &[Workload],
        mode: &CorunMode,
    ) -> Result<GroupOutcome, CoreError> {
        assert!(!group.is_empty(), "empty co-run group");
        let key = workload_corun_key(cfg, scale, group, mode);
        let n = group.len();
        self.cached(
            &key,
            |fields| decode_group(fields, n),
            || {
                let (grant, _lease) = self.shard_grant();
                let (out, phases) =
                    simulate_corun(cfg, scale, group, mode, self.profile_phases, grant)?;
                match phases {
                    Some(ph) => {
                        self.sim_cycles.fetch_add(ph.total(), Ordering::Relaxed);
                        self.add_phases(&ph);
                    }
                    None => {
                        self.sim_cycles.fetch_add(out.makespan, Ordering::Relaxed);
                    }
                }
                Ok((encode_group(&out), out))
            },
        )
    }

    /// Runs a batch of co-run jobs in parallel, results in job order.
    ///
    /// # Errors
    ///
    /// The first (by job index) failure.
    pub fn corun_batch(
        &self,
        cfg: &GpuConfig,
        scale: Scale,
        jobs: &[(Vec<Benchmark>, CorunMode)],
    ) -> Result<Vec<GroupOutcome>, CoreError> {
        self.run_parallel(jobs.len(), |i| self.corun(cfg, scale, &jobs[i].0, &jobs[i].1))
    }

    // ------------------------------------------------------------------
    // Cache plumbing
    // ------------------------------------------------------------------

    fn cached<T>(
        &self,
        key: &str,
        decode: impl Fn(&[(String, u64)]) -> Option<T>,
        simulate: impl FnOnce() -> Result<(Vec<(String, u64)>, T), CoreError>,
    ) -> Result<T, CoreError> {
        self.jobs_total.fetch_add(1, Ordering::Relaxed);
        let hash = fnv1a(key);
        if let Some(fields) = self.lookup(hash, key) {
            if let Some(v) = decode(&fields) {
                self.jobs_cached.fetch_add(1, Ordering::Relaxed);
                return Ok(v);
            }
        }
        let (fields, v) = simulate()?;
        self.jobs_simulated.fetch_add(1, Ordering::Relaxed);
        self.store(hash, key, fields);
        Ok(v)
    }

    /// In-process map first, then disk. Both paths verify the stored
    /// full key against the requested one, so an FNV collision degrades
    /// to a miss instead of returning a wrong result.
    fn lookup(&self, hash: u64, key: &str) -> Option<Vec<(String, u64)>> {
        {
            let mem = self.mem.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(e) = mem.get(&hash) {
                if e.key == key {
                    return Some(e.fields.clone());
                }
                return None;
            }
        }
        let dir = self.cache_dir.as_ref()?;
        let path = entry_path(dir, hash);
        let text = std::fs::read_to_string(&path).ok()?;
        let Some((stored_key, fields)) = parse_entry(&text) else {
            self.quarantine(dir, &path);
            return None;
        };
        if stored_key != key {
            // A full-key mismatch is an FNV collision with some *other*
            // valid job, not corruption — leave the file alone.
            return None;
        }
        self.mem.lock().unwrap_or_else(|e| e.into_inner()).insert(
            hash,
            Entry {
                key: key.to_string(),
                fields: fields.clone(),
            },
        );
        Some(fields)
    }

    /// Moves an unparseable cache file into `<dir>/quarantine/` so it is
    /// preserved for inspection but never consulted again; the caller
    /// treats the lookup as a miss and re-simulates (which writes a
    /// fresh entry at the original path).
    fn quarantine(&self, dir: &Path, path: &Path) {
        let qdir = dir.join("quarantine");
        let _ = std::fs::create_dir_all(&qdir);
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "entry.json".into());
        if std::fs::rename(path, qdir.join(&name)).is_err() {
            // Last resort: a corrupt file that cannot be moved must not
            // shadow the repaired entry either.
            let _ = std::fs::remove_file(path);
        }
        self.jobs_quarantined.fetch_add(1, Ordering::Relaxed);
        eprintln!("warning: quarantined corrupt sweep cache entry {name}");
    }

    fn store(&self, hash: u64, key: &str, fields: Vec<(String, u64)>) {
        if let Some(dir) = &self.cache_dir {
            let _ = std::fs::create_dir_all(dir);
            let text = render_entry(key, &fields);
            if write_entry_atomic(dir, hash, &text).is_err() {
                eprintln!("warning: could not persist sweep cache entry {hash:016x}");
            }
        }
        self.mem.lock().unwrap_or_else(|e| e.into_inner()).insert(
            hash,
            Entry {
                key: key.to_string(),
                fields,
            },
        );
    }
}

impl Default for SweepEngine {
    fn default() -> Self {
        Self::auto()
    }
}

/// RAII lease of extra worker threads from the engine's thread budget;
/// returns them on drop.
struct ShardLease<'a> {
    engine: &'a SweepEngine,
    extra: usize,
}

impl Drop for ShardLease<'_> {
    fn drop(&mut self) {
        if self.extra > 0 {
            self.engine.leased.fetch_sub(self.extra, Ordering::Relaxed);
        }
    }
}

/// Shared-engine convenience alias used across the crate.
pub type SharedEngine = Arc<SweepEngine>;

// ----------------------------------------------------------------------
// Simulation bodies
// ----------------------------------------------------------------------

/// Runs one co-run group on a fresh device. This is the single code
/// path behind interference pairs, policy co-runs and queue groups; it
/// reproduces `Pipeline::run_group`'s original semantics exactly.
fn simulate_corun(
    cfg: &GpuConfig,
    scale: Scale,
    group: &[Workload],
    mode: &CorunMode,
    profile_phases: bool,
    shards: SimShards,
) -> Result<(GroupOutcome, Option<PhaseCycles>), CoreError> {
    let mut gpu = Gpu::new(cfg.clone())?;
    gpu.set_profiling(profile_phases);
    shards.apply(&mut gpu);
    let mut ids: Vec<AppId> = Vec::with_capacity(group.len());
    for w in group {
        ids.push(w.launch(&mut gpu, scale)?);
    }
    match mode {
        CorunMode::Even => {
            gpu.partition_even();
            gpu.run(PROFILE_MAX_CYCLES)?;
        }
        CorunMode::Counts(counts) => {
            gpu.partition_counts(counts);
            gpu.run(PROFILE_MAX_CYCLES)?;
        }
        CorunMode::Smra(params) => {
            gpu.partition_even();
            let mut ctl = SmraController::new(*params, ids.clone(), &gpu);
            ctl.run_to_completion(&mut gpu, PROFILE_MAX_CYCLES)?;
        }
    }
    let mut cycles = Vec::with_capacity(ids.len());
    let mut thread_insts = Vec::with_capacity(ids.len());
    for &id in &ids {
        let s = gpu.stats().app(id);
        cycles.push(s.runtime_cycles().max(1));
        thread_insts.push(s.thread_insts);
    }
    Ok((
        GroupOutcome {
            cycles,
            thread_insts,
            makespan: gpu.cycle(),
        },
        gpu.phase_cycles(),
    ))
}

// ----------------------------------------------------------------------
// Fingerprinting
// ----------------------------------------------------------------------

/// FNV-1a 64-bit.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical description of every [`GpuConfig`] field. Changing any
/// knob — cache geometry, DRAM timing, scheduler — changes the key and
/// therefore misses the cache.
fn config_key(cfg: &GpuConfig) -> String {
    format!(
        "sms={},mhz={},issue={},warps={},blocks={},sched={:?},\
         l1={}/{}/{},l2={}/{}/{},mc={},l1lat={},icnt={},ports={},l2lat={},\
         dram={}/{}/{}/{}/{}/{}/{}/{},reassign={}",
        cfg.num_sms,
        cfg.core_mhz,
        cfg.issue_per_sm,
        cfg.max_warps_per_sm,
        cfg.max_blocks_per_sm,
        cfg.sched,
        cfg.l1.bytes,
        cfg.l1.line_bytes,
        cfg.l1.ways,
        cfg.l2_slice.bytes,
        cfg.l2_slice.line_bytes,
        cfg.l2_slice.ways,
        cfg.num_mem_ctrls,
        cfg.l1_hit_lat,
        cfg.icnt_lat,
        cfg.l2_ports,
        cfg.l2_lat,
        cfg.dram.banks,
        cfg.dram.row_bytes,
        cfg.dram.t_row_hit,
        cfg.dram.t_row_miss,
        cfg.dram.t_rc,
        cfg.dram.t_burst,
        cfg.dram.queue_depth,
        cfg.dram.fr_fcfs,
        cfg.reassign_on_finish,
    )
}

/// Scale as exact bit patterns (scales are `f64` multipliers).
fn scale_key(scale: Scale) -> String {
    format!("i:{:016x},g:{:016x}", scale.iters.to_bits(), scale.grid.to_bits())
}

/// Historical benchmark-typed key shape, kept to pin the format in
/// tests (the engine itself routes through [`workload_profile_key`]).
#[cfg(test)]
fn profile_key(cfg: &GpuConfig, scale: Scale, bench: Benchmark, num_sms: u32) -> String {
    workload_profile_key(cfg, scale, bench.name(), num_sms)
}

/// Profile key over a [`Workload`] key token. `Bench` tokens are bare
/// benchmark names, so this renders byte-identically to the historical
/// `profile_key` format for synthetic workloads.
fn workload_profile_key(cfg: &GpuConfig, scale: Scale, token: &str, num_sms: u32) -> String {
    format!(
        "v1|profile|{}|sms={}|{}|{}",
        token,
        num_sms,
        scale_key(scale),
        config_key(cfg)
    )
}

fn mode_key(mode: &CorunMode) -> String {
    match mode {
        CorunMode::Even => "even".to_string(),
        CorunMode::Counts(c) => {
            let parts: Vec<String> = c.iter().map(u32::to_string).collect();
            format!("counts:{}", parts.join("-"))
        }
        CorunMode::Smra(p) => format!(
            "smra:tc={},ipc={:016x},bw={:016x},nr={},rmin={}",
            p.tc,
            p.ipc_thr_frac.to_bits(),
            p.bw_thr_frac.to_bits(),
            p.nr,
            p.r_min
        ),
    }
}

/// Historical benchmark-typed key shape, kept to pin the format in
/// tests (the engine itself routes through [`workload_corun_key`]).
#[cfg(test)]
fn corun_key(cfg: &GpuConfig, scale: Scale, group: &[Benchmark], mode: &CorunMode) -> String {
    let ws: Vec<Workload> = group.iter().map(|&b| Workload::Bench(b)).collect();
    workload_corun_key(cfg, scale, &ws, mode)
}

/// Co-run key over [`Workload`] key tokens; byte-identical to the
/// historical `corun_key` format for all-`Bench` groups.
fn workload_corun_key(cfg: &GpuConfig, scale: Scale, group: &[Workload], mode: &CorunMode) -> String {
    let tokens: Vec<String> = group.iter().map(Workload::key_token).collect();
    format!(
        "v1|corun|{}|{}|{}|{}",
        tokens.join("+"),
        mode_key(mode),
        scale_key(scale),
        config_key(cfg)
    )
}

// ----------------------------------------------------------------------
// Entry encode/decode (floats as bit patterns: exact round trips)
// ----------------------------------------------------------------------

fn encode_profile(p: &AppProfile) -> Vec<(String, u64)> {
    vec![
        ("memory_bw".into(), p.memory_bw.to_bits()),
        ("l2_l1_bw".into(), p.l2_l1_bw.to_bits()),
        ("ipc".into(), p.ipc.to_bits()),
        ("r".into(), p.r.to_bits()),
        ("utilization".into(), p.utilization.to_bits()),
        ("cycles".into(), p.cycles),
        ("thread_insts".into(), p.thread_insts),
        ("num_sms".into(), u64::from(p.num_sms)),
    ]
}

/// Reconstructs a profile from the flat u64 fields. The kernel name is
/// not stored; [`SweepEngine::profile`] restores it from the benchmark
/// its cache key pins.
fn decode_profile(fields: &[(String, u64)]) -> Option<AppProfile> {
    let get = |n: &str| field(fields, n);
    Some(AppProfile {
        name: String::new(),
        memory_bw: f64::from_bits(get("memory_bw")?),
        l2_l1_bw: f64::from_bits(get("l2_l1_bw")?),
        ipc: f64::from_bits(get("ipc")?),
        r: f64::from_bits(get("r")?),
        utilization: f64::from_bits(get("utilization")?),
        cycles: get("cycles")?,
        thread_insts: get("thread_insts")?,
        num_sms: u32::try_from(get("num_sms")?).ok()?,
    })
}

fn encode_group(out: &GroupOutcome) -> Vec<(String, u64)> {
    let mut fields = vec![
        ("n".into(), out.cycles.len() as u64),
        ("makespan".into(), out.makespan),
    ];
    for (i, c) in out.cycles.iter().enumerate() {
        fields.push((format!("c{i}"), *c));
    }
    for (i, t) in out.thread_insts.iter().enumerate() {
        fields.push((format!("t{i}"), *t));
    }
    fields
}

fn decode_group(fields: &[(String, u64)], expect_n: usize) -> Option<GroupOutcome> {
    let n = usize::try_from(field(fields, "n")?).ok()?;
    if n != expect_n {
        return None;
    }
    let makespan = field(fields, "makespan")?;
    let mut cycles = Vec::with_capacity(n);
    let mut thread_insts = Vec::with_capacity(n);
    for i in 0..n {
        cycles.push(field(fields, &format!("c{i}"))?);
        thread_insts.push(field(fields, &format!("t{i}"))?);
    }
    Some(GroupOutcome {
        cycles,
        thread_insts,
        makespan,
    })
}

fn field(fields: &[(String, u64)], name: &str) -> Option<u64> {
    fields.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
}

/// Best-effort rendering of a caught panic payload (`&str` or `String`
/// in practice; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ----------------------------------------------------------------------
// On-disk JSON (hand-rolled; no serde)
// ----------------------------------------------------------------------

fn entry_path(dir: &Path, hash: u64) -> PathBuf {
    dir.join(format!("{hash:016x}.json"))
}

/// Crash-safe entry write: the text lands in a uniquely-named temp file
/// in the same directory and only an atomic `rename` publishes it. A
/// process killed mid-write leaves at worst a stale `.tmp-*` file that
/// no lookup ever consults — never a truncated entry at the real path.
fn write_entry_atomic(dir: &Path, hash: u64, text: &str) -> std::io::Result<()> {
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!("{hash:016x}.json.tmp-{}-{seq}", std::process::id()));
    std::fs::write(&tmp, text)?;
    let res = std::fs::rename(&tmp, entry_path(dir, hash));
    if res.is_err() {
        // Do not leave the orphan around to accumulate.
        let _ = std::fs::remove_file(&tmp);
    }
    res
}

fn render_entry(key: &str, fields: &[(String, u64)]) -> String {
    let mut s = String::with_capacity(key.len() + fields.len() * 24 + 32);
    s.push_str("{\"key\":\"");
    for c in key.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            _ => s.push(c),
        }
    }
    s.push_str("\",\"fields\":{");
    for (i, (name, val)) in fields.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('"');
        s.push_str(name);
        s.push_str("\":");
        s.push_str(&val.to_string());
    }
    s.push_str("}}\n");
    s
}

/// Parses exactly the shape [`render_entry`] writes. Anything off —
/// truncation, garbage, wrong types — returns `None`, which the engine
/// treats as a cache miss.
fn parse_entry(text: &str) -> Option<(String, Vec<(String, u64)>)> {
    // The trailing newline is the end-of-entry marker `render_entry`
    // writes last; a file missing it was truncated mid-write.
    let rest = text.strip_suffix('\n')?.trim().strip_prefix('{')?;
    let rest = rest.strip_prefix("\"key\":\"")?;
    let mut key = String::new();
    let mut escaped = false;
    let mut end = None;
    for (i, c) in rest.char_indices() {
        if escaped {
            key.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => {
                end = Some(i);
                break;
            }
            _ => key.push(c),
        }
    }
    let rest = &rest[end? + 1..];
    let mut rest = rest.strip_prefix(",\"fields\":{")?;
    let mut fields = Vec::new();
    loop {
        if let Some(tail) = rest.strip_prefix('}') {
            if tail.trim() != "}" {
                return None;
            }
            break;
        }
        rest = rest.strip_prefix(',').unwrap_or(rest);
        rest = rest.strip_prefix('"')?;
        let q = rest.find('"')?;
        let name = &rest[..q];
        rest = rest[q + 1..].strip_prefix(':')?;
        let dend = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        if dend == 0 {
            return None;
        }
        let val: u64 = rest[..dend].parse().ok()?;
        fields.push((name.to_string(), val));
        rest = &rest[dend..];
    }
    Some((key, fields))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_with_sms;
    use std::sync::atomic::AtomicU32;

    /// A unique, self-cleaning temp directory per test.
    struct TempCache(PathBuf);

    impl TempCache {
        fn new(tag: &str) -> Self {
            static SEQ: AtomicU32 = AtomicU32::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let dir = std::env::temp_dir().join(format!(
                "gcs-sweep-test-{}-{tag}-{n}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempCache(dir)
        }
    }

    impl Drop for TempCache {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn cfg() -> GpuConfig {
        GpuConfig::test_small()
    }

    // ---- executor ----------------------------------------------------

    #[test]
    fn run_parallel_preserves_job_order() {
        for threads in [1, 2, 8] {
            let e = SweepEngine::new(threads);
            let out = e.run_parallel(17, |i| Ok(i * i)).unwrap();
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_parallel_handles_empty_batch() {
        let e = SweepEngine::new(4);
        let out: Vec<u32> = e.run_parallel(0, |_| unreachable!()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn run_parallel_reports_lowest_failing_index() {
        let e = SweepEngine::new(4);
        let r: Result<Vec<u32>, _> = e.run_parallel(10, |i| {
            if i % 2 == 1 {
                Err(CoreError::BadQueue(format!("job {i}")))
            } else {
                Ok(0)
            }
        });
        match r {
            Err(CoreError::BadQueue(msg)) => assert_eq!(msg, "job 1"),
            other => panic!("expected deterministic error, got {other:?}"),
        }
    }

    #[test]
    fn panicking_job_is_isolated_and_typed() {
        let e = SweepEngine::new(4);
        let r: Result<Vec<u32>, _> = e.run_parallel(6, |i| {
            if i == 3 {
                panic!("chaos at {i}");
            }
            Ok(i as u32)
        });
        match r {
            Err(CoreError::Worker { job, message }) => {
                assert_eq!(job, 3);
                assert!(message.contains("chaos"), "{message}");
            }
            other => panic!("expected Worker error, got {other:?}"),
        }
    }

    #[test]
    fn salvage_keeps_completed_results_around_failures() {
        for threads in [1, 2, 8] {
            let e = SweepEngine::new(threads);
            let out = e.run_parallel_salvage(8, |i| match i {
                2 => panic!("boom"),
                5 => Err(CoreError::BadQueue("nope".into())),
                _ => Ok(i * 10),
            });
            assert_eq!(out.len(), 8);
            for (i, r) in out.iter().enumerate() {
                match (i, r) {
                    (2, Err(CoreError::Worker { job, .. })) => assert_eq!(*job, 2),
                    (5, Err(CoreError::BadQueue(_))) => {}
                    (_, Ok(v)) => assert_eq!(*v, i * 10),
                    (_, other) => panic!("job {i}: unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn transient_failures_are_retried_within_budget() {
        let e = SweepEngine::new(1).with_retry_policy(RetryPolicy {
            max_retries: 2,
            base_backoff_ms: 0,
        });
        let tries = AtomicU32::new(0);
        let out = e
            .run_parallel(1, |_| {
                if tries.fetch_add(1, Ordering::Relaxed) < 2 {
                    Err(CoreError::BadQueue("flaky".into()))
                } else {
                    Ok(7u32)
                }
            })
            .unwrap();
        assert_eq!(out, vec![7]);
        assert_eq!(tries.load(Ordering::Relaxed), 3);
        assert_eq!(e.stats().jobs_retried, 1);
    }

    #[test]
    fn retry_budget_is_bounded_and_panics_are_not_retried() {
        let e = SweepEngine::new(1).with_retry_policy(RetryPolicy {
            max_retries: 1,
            base_backoff_ms: 0,
        });
        let tries = AtomicU32::new(0);
        let r: Result<Vec<u32>, _> = e.run_parallel(1, |_| {
            tries.fetch_add(1, Ordering::Relaxed);
            Err(CoreError::BadQueue("always".into()))
        });
        assert!(r.is_err());
        assert_eq!(tries.load(Ordering::Relaxed), 2, "1 attempt + 1 retry");

        let panics = AtomicU32::new(0);
        let r: Result<Vec<u32>, _> = e.run_parallel(1, |_| {
            panics.fetch_add(1, Ordering::Relaxed);
            panic!("deterministic");
        });
        assert!(matches!(r, Err(CoreError::Worker { .. })));
        assert_eq!(panics.load(Ordering::Relaxed), 1, "panics must not retry");
    }

    // ---- fingerprints ------------------------------------------------

    #[test]
    fn fingerprint_is_stable_for_identical_inputs() {
        let a = profile_key(&cfg(), Scale::TEST, Benchmark::Lud, 8);
        let b = profile_key(&cfg(), Scale::TEST, Benchmark::Lud, 8);
        assert_eq!(a, b);
        assert_eq!(fnv1a(&a), fnv1a(&b));
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_dimension() {
        let base = profile_key(&cfg(), Scale::TEST, Benchmark::Lud, 8);
        // Benchmark, SM count, scale.
        assert_ne!(base, profile_key(&cfg(), Scale::TEST, Benchmark::Blk, 8));
        assert_ne!(base, profile_key(&cfg(), Scale::TEST, Benchmark::Lud, 4));
        assert_ne!(base, profile_key(&cfg(), Scale::SMALL, Benchmark::Lud, 8));
        // Any GpuConfig knob.
        let mut c = cfg();
        c.l2_lat += 1;
        assert_ne!(base, profile_key(&c, Scale::TEST, Benchmark::Lud, 8));
        let mut c = cfg();
        c.dram.fr_fcfs = false;
        assert_ne!(base, profile_key(&c, Scale::TEST, Benchmark::Lud, 8));
        let mut c = cfg();
        c.l1.ways *= 2;
        assert_ne!(base, profile_key(&c, Scale::TEST, Benchmark::Lud, 8));
    }

    #[test]
    fn corun_key_distinguishes_modes_and_members() {
        let g = [Benchmark::Lud, Benchmark::Sad];
        let even = corun_key(&cfg(), Scale::TEST, &g, &CorunMode::Even);
        let counts = corun_key(&cfg(), Scale::TEST, &g, &CorunMode::Counts(vec![4, 4]));
        let smra = corun_key(
            &cfg(),
            Scale::TEST,
            &g,
            &CorunMode::Smra(SmraParams::for_device(8, 2)),
        );
        assert_ne!(even, counts);
        assert_ne!(even, smra);
        assert_ne!(counts, smra);
        let swapped = [Benchmark::Sad, Benchmark::Lud];
        assert_ne!(even, corun_key(&cfg(), Scale::TEST, &swapped, &CorunMode::Even));
    }

    // ---- JSON round trip ---------------------------------------------

    #[test]
    fn entry_round_trips_exactly() {
        let fields = vec![
            ("ipc".to_string(), 0.123_456_789_f64.to_bits()),
            ("cycles".to_string(), u64::MAX),
            ("n".to_string(), 0),
        ];
        let key = "v1|profile|LUD|sms=8|weird \"quote\" and \\slash";
        let text = render_entry(key, &fields);
        let (k, f) = parse_entry(&text).expect("round trip");
        assert_eq!(k, key);
        assert_eq!(f, fields);
        assert_eq!(f64::from_bits(f[0].1), 0.123_456_789);
    }

    #[test]
    fn parser_rejects_garbage_and_truncation() {
        assert!(parse_entry("").is_none());
        assert!(parse_entry("not json at all").is_none());
        assert!(parse_entry("{\"key\":\"x\",\"fields\":{\"a\":12").is_none());
        let good = render_entry("k", &[("a".into(), 7)]);
        for cut in 1..good.len() {
            // No truncated prefix may parse successfully.
            if let Some((k, _)) = parse_entry(&good[..cut]) {
                panic!("truncated entry parsed at {cut}: key {k:?}");
            }
        }
        assert!(parse_entry(&good).is_some());
    }

    // ---- memoization -------------------------------------------------

    #[test]
    fn second_profile_call_hits_the_cache() {
        let e = SweepEngine::sequential();
        let p1 = e.profile(&cfg(), Scale::TEST, Benchmark::Lud, 8).unwrap();
        let p2 = e.profile(&cfg(), Scale::TEST, Benchmark::Lud, 8).unwrap();
        assert_eq!(p1, p2);
        let s = e.stats();
        assert_eq!(s.jobs_total, 2);
        assert_eq!(s.jobs_simulated, 1);
        assert_eq!(s.jobs_cached, 1);
    }

    #[test]
    fn changed_config_field_misses_the_cache() {
        let e = SweepEngine::sequential();
        e.profile(&cfg(), Scale::TEST, Benchmark::Lud, 8).unwrap();
        let mut c = cfg();
        c.l2_lat += 1;
        e.profile(&c, Scale::TEST, Benchmark::Lud, 8).unwrap();
        let s = e.stats();
        assert_eq!(s.jobs_simulated, 2, "config change must re-simulate");
        assert_eq!(s.jobs_cached, 0);
    }

    #[test]
    fn cached_profile_matches_direct_measurement_exactly() {
        let e = SweepEngine::sequential();
        let direct = profile_with_sms(&Benchmark::Blk.kernel(Scale::TEST), &cfg(), 8).unwrap();
        let first = e.profile(&cfg(), Scale::TEST, Benchmark::Blk, 8).unwrap();
        let cached = e.profile(&cfg(), Scale::TEST, Benchmark::Blk, 8).unwrap();
        for p in [&first, &cached] {
            assert_eq!(p.memory_bw.to_bits(), direct.memory_bw.to_bits());
            assert_eq!(p.l2_l1_bw.to_bits(), direct.l2_l1_bw.to_bits());
            assert_eq!(p.ipc.to_bits(), direct.ipc.to_bits());
            assert_eq!(p.r.to_bits(), direct.r.to_bits());
            assert_eq!(p.cycles, direct.cycles);
            assert_eq!(p.thread_insts, direct.thread_insts);
        }
    }

    #[test]
    fn disk_cache_survives_engine_restart() {
        let tmp = TempCache::new("restart");
        let warm = SweepEngine::sequential().with_cache_dir(&tmp.0);
        let p1 = warm.profile(&cfg(), Scale::TEST, Benchmark::Hs, 8).unwrap();
        assert_eq!(warm.stats().jobs_simulated, 1);

        let cold = SweepEngine::sequential().with_cache_dir(&tmp.0);
        let p2 = cold.profile(&cfg(), Scale::TEST, Benchmark::Hs, 8).unwrap();
        let s = cold.stats();
        assert_eq!(s.jobs_simulated, 0, "warm disk cache must skip simulation");
        assert_eq!(s.jobs_cached, 1);
        assert_eq!(p1, p2);
    }

    #[test]
    fn corrupted_cache_file_is_a_miss_not_an_error() {
        let tmp = TempCache::new("corrupt");
        let warm = SweepEngine::sequential().with_cache_dir(&tmp.0);
        warm.profile(&cfg(), Scale::TEST, Benchmark::Hs, 8).unwrap();

        // Corrupt every entry: garbage in one run, truncation in another.
        for (i, f) in std::fs::read_dir(&tmp.0).unwrap().enumerate() {
            let path = f.unwrap().path();
            if i % 2 == 0 {
                std::fs::write(&path, "{ totally not the format }").unwrap();
            } else {
                let text = std::fs::read_to_string(&path).unwrap();
                std::fs::write(&path, &text[..text.len() / 2]).unwrap();
            }
        }

        let cold = SweepEngine::sequential().with_cache_dir(&tmp.0);
        let p = cold.profile(&cfg(), Scale::TEST, Benchmark::Hs, 8).unwrap();
        assert!(p.ipc > 0.0);
        let s = cold.stats();
        assert_eq!(s.jobs_cached, 0, "corrupted entry must not count as a hit");
        assert_eq!(s.jobs_simulated, 1);
        // And the re-simulation must repair the entry on disk.
        let repaired = SweepEngine::sequential().with_cache_dir(&tmp.0);
        repaired.profile(&cfg(), Scale::TEST, Benchmark::Hs, 8).unwrap();
        assert_eq!(repaired.stats().jobs_cached, 1);
    }

    #[test]
    fn corrupt_entry_is_quarantined_with_bytes_preserved() {
        let tmp = TempCache::new("quarantine");
        let warm = SweepEngine::sequential().with_cache_dir(&tmp.0);
        warm.profile(&cfg(), Scale::TEST, Benchmark::Lud, 8).unwrap();
        let entry = std::fs::read_dir(&tmp.0)
            .unwrap()
            .map(|f| f.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "json"))
            .expect("one cache entry on disk");
        std::fs::write(&entry, "{ corrupt }").unwrap();

        let cold = SweepEngine::sequential().with_cache_dir(&tmp.0);
        let p = cold.profile(&cfg(), Scale::TEST, Benchmark::Lud, 8).unwrap();
        assert!(p.ipc > 0.0);
        let s = cold.stats();
        assert_eq!(s.jobs_quarantined, 1);
        assert_eq!(s.jobs_simulated, 1);
        assert!(s.to_string().contains("1 cache entries quarantined"));
        // The corrupt bytes are preserved for inspection...
        let q = tmp.0.join("quarantine").join(entry.file_name().unwrap());
        assert_eq!(std::fs::read_to_string(q).unwrap(), "{ corrupt }");
        // ...and the re-simulated entry replaced it: next engine hits.
        let repaired = SweepEngine::sequential().with_cache_dir(&tmp.0);
        repaired.profile(&cfg(), Scale::TEST, Benchmark::Lud, 8).unwrap();
        let rs = repaired.stats();
        assert_eq!(rs.jobs_cached, 1);
        assert_eq!(rs.jobs_quarantined, 0);
    }

    #[test]
    fn old_style_truncated_entry_recovers_via_quarantine() {
        // A pre-atomic-write cache could be killed mid-`fs::write`,
        // leaving a truncated entry at the real path. That legacy damage
        // must still recover through the quarantine path.
        let tmp = TempCache::new("oldtrunc");
        let warm = SweepEngine::sequential().with_cache_dir(&tmp.0);
        warm.profile(&cfg(), Scale::TEST, Benchmark::Hs, 8).unwrap();
        let entry = std::fs::read_dir(&tmp.0)
            .unwrap()
            .map(|f| f.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "json"))
            .expect("one cache entry on disk");
        let text = std::fs::read_to_string(&entry).unwrap();
        // Simulate the old non-atomic write dying halfway through.
        std::fs::write(&entry, &text[..text.len() / 2]).unwrap();

        let cold = SweepEngine::sequential().with_cache_dir(&tmp.0);
        let p = cold.profile(&cfg(), Scale::TEST, Benchmark::Hs, 8).unwrap();
        assert!(p.ipc > 0.0);
        let s = cold.stats();
        assert_eq!(s.jobs_quarantined, 1, "truncated entry must quarantine");
        assert_eq!(s.jobs_simulated, 1, "and the job re-simulates");
        // The quarantined bytes are the truncated ones, preserved.
        let q = tmp.0.join("quarantine").join(entry.file_name().unwrap());
        assert_eq!(std::fs::read_to_string(q).unwrap(), text[..text.len() / 2]);
    }

    #[test]
    fn atomic_store_survives_simulated_interruption() {
        // The new write path publishes via temp-file + rename: a process
        // killed mid-write leaves only a `.tmp-*` orphan, never a
        // truncated entry at the real path.
        let tmp = TempCache::new("atomic");
        let warm = SweepEngine::sequential().with_cache_dir(&tmp.0);
        warm.profile(&cfg(), Scale::TEST, Benchmark::Lud, 8).unwrap();

        // No temp residue after a successful store, and the entry parses.
        let names: Vec<String> = std::fs::read_dir(&tmp.0)
            .unwrap()
            .map(|f| f.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            names.iter().all(|n| !n.contains(".tmp-")),
            "store must clean up temp files: {names:?}"
        );
        let entry = std::fs::read_dir(&tmp.0)
            .unwrap()
            .map(|f| f.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "json"))
            .expect("one cache entry on disk");
        assert!(parse_entry(&std::fs::read_to_string(&entry).unwrap()).is_some());

        // Simulate a kill mid-write of a *different* job: a truncated
        // temp file beside the published entry. Lookups never consult
        // it, so the warm entry still hits and nothing quarantines.
        let good = std::fs::read_to_string(&entry).unwrap();
        std::fs::write(tmp.0.join("deadbeefdeadbeef.json.tmp-1-0"), &good[..good.len() / 2])
            .unwrap();
        let cold = SweepEngine::sequential().with_cache_dir(&tmp.0);
        cold.profile(&cfg(), Scale::TEST, Benchmark::Lud, 8).unwrap();
        let s = cold.stats();
        assert_eq!(s.jobs_cached, 1, "orphan temp file must not shadow the entry");
        assert_eq!(s.jobs_quarantined, 0, "orphan temp file must not quarantine");

        // And a fresh store for that interrupted job publishes the real
        // entry without being confused by the stale orphan.
        let retry = SweepEngine::sequential().with_cache_dir(&tmp.0);
        retry.profile(&cfg(), Scale::TEST, Benchmark::Sad, 8).unwrap();
        assert_eq!(retry.stats().jobs_simulated, 1);
        let hit = SweepEngine::sequential().with_cache_dir(&tmp.0);
        hit.profile(&cfg(), Scale::TEST, Benchmark::Sad, 8).unwrap();
        assert_eq!(hit.stats().jobs_cached, 1);
    }

    #[test]
    fn warm_cache_runs_zero_new_simulations() {
        let tmp = TempCache::new("warm");
        let suite = [Benchmark::Blk, Benchmark::Sad, Benchmark::Lud];
        let jobs: Vec<(Vec<Benchmark>, CorunMode)> = vec![
            (vec![Benchmark::Blk, Benchmark::Sad], CorunMode::Even),
            (vec![Benchmark::Lud, Benchmark::Sad], CorunMode::Counts(vec![6, 2])),
        ];

        let warm = SweepEngine::new(2).with_cache_dir(&tmp.0);
        let profiles = warm.profile_suite(&cfg(), Scale::TEST, &suite).unwrap();
        let outcomes = warm.corun_batch(&cfg(), Scale::TEST, &jobs).unwrap();
        assert_eq!(warm.stats().jobs_simulated, 5);

        let cold = SweepEngine::new(2).with_cache_dir(&tmp.0);
        let profiles2 = cold.profile_suite(&cfg(), Scale::TEST, &suite).unwrap();
        let outcomes2 = cold.corun_batch(&cfg(), Scale::TEST, &jobs).unwrap();
        let s = cold.stats();
        assert_eq!(s.jobs_simulated, 0, "every job must come from the cache");
        assert_eq!(s.jobs_cached, s.jobs_total);
        assert_eq!(profiles, profiles2);
        assert_eq!(outcomes, outcomes2);
    }

    // ---- co-run semantics --------------------------------------------

    #[test]
    fn corun_even_matches_a_direct_device_run() {
        let e = SweepEngine::sequential();
        let out = e
            .corun(
                &cfg(),
                Scale::TEST,
                &[Benchmark::Lud, Benchmark::Sad],
                &CorunMode::Even,
            )
            .unwrap();

        let mut gpu = Gpu::new(cfg()).unwrap();
        let a = gpu.launch(Benchmark::Lud.kernel(Scale::TEST)).unwrap();
        let b = gpu.launch(Benchmark::Sad.kernel(Scale::TEST)).unwrap();
        gpu.partition_even();
        gpu.run(PROFILE_MAX_CYCLES).unwrap();

        assert_eq!(out.makespan, gpu.cycle());
        assert_eq!(out.cycles[0], gpu.stats().app(a).runtime_cycles().max(1));
        assert_eq!(out.cycles[1], gpu.stats().app(b).runtime_cycles().max(1));
        assert_eq!(out.thread_insts[0], gpu.stats().app(a).thread_insts);
        assert_eq!(out.thread_insts[1], gpu.stats().app(b).thread_insts);
    }

    #[test]
    fn phase_profile_sums_to_sim_cycles_and_is_thread_stable() {
        let run = |threads: usize| {
            let e = SweepEngine::new(threads).with_phase_profiling(true);
            let suite = [Benchmark::Lud, Benchmark::Blk, Benchmark::Gups];
            e.profile_suite(&cfg(), Scale::TEST, &suite).unwrap();
            e.corun(
                &cfg(),
                Scale::TEST,
                &[Benchmark::Gups, Benchmark::Spmv],
                &CorunMode::Even,
            )
            .unwrap();
            e.stats()
        };
        let s1 = run(1);
        assert_eq!(
            s1.phases.total(),
            s1.sim_cycles,
            "phase buckets must partition the simulated cycles: {:?}",
            s1.phases
        );
        assert!(s1.phases.issue > 0, "some cycles must issue: {:?}", s1.phases);
        for threads in [2, 8] {
            let s = run(threads);
            assert_eq!(s.phases, s1.phases, "{threads} threads");
            assert_eq!(s.sim_cycles, s1.sim_cycles, "{threads} threads");
        }
        assert_eq!(
            s1.profile_report(),
            run(2).profile_report(),
            "report line must be byte-stable across thread counts"
        );
    }

    // ---- intra-simulation sharding -----------------------------------

    #[test]
    fn sim_threads_never_changes_results() {
        let reference = SweepEngine::sequential();
        let jobs: Vec<(Vec<Benchmark>, CorunMode)> = vec![
            (vec![Benchmark::Gups, Benchmark::Spmv], CorunMode::Even),
            (
                vec![Benchmark::Gups, Benchmark::Sad],
                CorunMode::Smra(SmraParams {
                    tc: 400,
                    ..SmraParams::for_device(8, 2)
                }),
            ),
        ];
        let suite = [Benchmark::Gups, Benchmark::Lud];
        let want_p = reference.profile_suite(&cfg(), Scale::TEST, &suite).unwrap();
        let want_o = reference.corun_batch(&cfg(), Scale::TEST, &jobs).unwrap();
        for (threads, sim_threads) in [(1, 4), (2, 2), (4, 4)] {
            let e = SweepEngine::new(threads).with_sim_threads(sim_threads);
            assert_eq!(e.sim_threads(), sim_threads);
            assert_eq!(
                want_p,
                e.profile_suite(&cfg(), Scale::TEST, &suite).unwrap(),
                "profiles moved at threads={threads} sim_threads={sim_threads}"
            );
            assert_eq!(
                want_o,
                e.corun_batch(&cfg(), Scale::TEST, &jobs).unwrap(),
                "co-runs moved at threads={threads} sim_threads={sim_threads}"
            );
            assert_eq!(e.stats().jobs_simulated, 4, "sharded jobs must still cache");
        }
    }

    #[test]
    fn sim_threads_does_not_change_cache_keys() {
        let tmp = TempCache::new("simthreads");
        let warm = SweepEngine::sequential().with_cache_dir(&tmp.0);
        warm.profile(&cfg(), Scale::TEST, Benchmark::Gups, 8).unwrap();
        assert_eq!(warm.stats().jobs_simulated, 1);
        // A sharded engine must hit the entry the unsharded one wrote.
        let sharded = SweepEngine::new(2)
            .with_sim_threads(4)
            .with_cache_dir(&tmp.0);
        sharded.profile(&cfg(), Scale::TEST, Benchmark::Gups, 8).unwrap();
        let s = sharded.stats();
        assert_eq!(s.jobs_simulated, 0, "sharding must not bump cache keys");
        assert_eq!(s.jobs_cached, 1);
    }

    #[test]
    fn thread_budget_arbiter_never_oversubscribes() {
        // threads=4, sim_threads=3: one caller gets at most 2 extra
        // (itself + 2 ≤ 4); concurrent leases share the same budget.
        let e = SweepEngine::new(4).with_sim_threads(3);
        let a = e.lease_shard_workers();
        assert_eq!(a.extra, 2);
        let b = e.lease_shard_workers();
        assert!(
            a.extra + b.extra < 4,
            "leases exceed the budget: {} + {}",
            a.extra,
            b.extra
        );
        drop(a);
        let c = e.lease_shard_workers();
        assert_eq!(c.extra, 2, "dropped lease must return its threads");
        drop(c);
        drop(b);
        assert_eq!(e.leased.load(Ordering::Relaxed), 0);

        // With the whole pool committed to batch fan-out, every lease
        // is denied — batch parallelism wins the budget.
        e.committed.fetch_add(4, Ordering::Relaxed);
        assert_eq!(e.lease_shard_workers().extra, 0);
        e.committed.fetch_sub(4, Ordering::Relaxed);

        // sim_threads=1 never leases, whatever the budget.
        let off = SweepEngine::new(8);
        assert_eq!(off.lease_shard_workers().extra, 0);
    }

    #[test]
    fn mem_shards_ride_the_sm_lease_without_a_second_one() {
        // threads=2, sim_threads=2: the single grant takes the one
        // spare thread for its SM-shard workers, *and* carries the
        // memory-shard count — phase M runs on those same workers, so
        // while it is held no further thread is leasable, yet the
        // grant's mem_shards is already the full sim_threads target.
        // Leased SM + memory shard workers therefore never exceed the
        // GCS_SIM_THREADS budget: there is no second lease to exceed
        // it with.
        let e = SweepEngine::new(2).with_sim_threads(2);
        let (grant, lease) = e.shard_grant();
        assert_eq!(grant.shards, 2);
        assert_eq!(grant.mem_shards, 2, "phase M granted from the same lease");
        assert_eq!(grant.workers, 2);
        assert_eq!(lease.extra, 1);
        assert_eq!(
            e.lease_shard_workers().extra,
            0,
            "no spare thread while the grant is held — a second lease \
             for phase M would oversubscribe, and none is taken"
        );
        drop(lease);
        assert_eq!(e.leased.load(Ordering::Relaxed), 0);

        // With sharding off the grant leaves memory sharding off too.
        let off = SweepEngine::new(8);
        let (grant, _lease) = off.shard_grant();
        assert_eq!(grant.mem_shards, 1);
    }

    #[test]
    fn stats_display_mentions_cache_counts() {
        let e = SweepEngine::sequential();
        e.profile(&cfg(), Scale::TEST, Benchmark::Lud, 8).unwrap();
        e.profile(&cfg(), Scale::TEST, Benchmark::Lud, 8).unwrap();
        let shown = e.stats().to_string();
        assert!(shown.contains("2 jobs"), "{shown}");
        assert!(shown.contains("1 simulated"), "{shown}");
        assert!(shown.contains("1 cached"), "{shown}");
    }
}
