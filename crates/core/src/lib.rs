//! # gcs-core — throughput optimization and resource allocation on GPUs
//! under multi-application execution
//!
//! A faithful reproduction of Punyala's methodology (SIU M.S. thesis,
//! Dec 2017 / DATE 2018): pick *which* applications co-run on a
//! spatially-partitioned GPU, and *how many* SMs each gets, so device
//! throughput is maximized.
//!
//! The pipeline has four stages, one module each:
//!
//! 1. [`profile`] — run each application alone, measure DRAM bandwidth,
//!    L2→L1 bandwidth, IPC and memory-to-compute ratio (§3.2.1).
//! 2. [`classify()`] — bin applications into classes M / MC / C / A
//!    (Table 3.1).
//! 3. [`interference`] + [`pattern`] + [`ilp`] — measure per-class co-run
//!    slowdowns (Fig 3.4), enumerate class patterns, and solve the ILP of
//!    Eq. 3.3–3.7 for the pattern multiplicities that minimize contention
//!    (§3.2.3).
//! 4. [`smra`] — the dynamic SM reallocation controller of Algorithm 1
//!    (§3.2.4).
//!
//! [`runner`] executes whole application queues under every policy the
//! evaluation compares (Even / FCFS / Profile-based / ILP / ILP+SMRA) and
//! is what the figure-regeneration harness in `gcs-bench` drives. All
//! measurement runs flow through [`sweep`], which fans the independent
//! simulations across worker threads (deterministically — results are
//! keyed by job index) and memoizes them in memory and on disk.
//!
//! ## Quick start
//!
//! ```no_run
//! use gcs_core::runner::{run_queue, AllocationPolicy, GroupingPolicy, RunConfig};
//! use gcs_sim::config::GpuConfig;
//! use gcs_workloads::{Benchmark, Scale};
//!
//! # fn main() -> Result<(), gcs_core::CoreError> {
//! let queue: Vec<Benchmark> = Benchmark::ALL.to_vec();
//! let cfg = RunConfig {
//!     gpu: GpuConfig::gtx480(),
//!     scale: Scale::SMALL,
//!     concurrency: 2,
//! };
//! let report = run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Smra, &cfg)?;
//! println!("device throughput: {:.1} IPC", report.device_throughput);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod fault;
pub mod ilp;
pub mod interference;
pub mod latency;
pub mod pattern;
pub mod profile;
pub mod queues;
pub mod runner;
pub mod smra;
pub mod sweep;

pub use classify::{classify, classify_suite, AppClass, Thresholds};
pub use fault::{Degradation, RetryPolicy};
pub use interference::InterferenceMatrix;
pub use latency::{NanoStats, WindowedNanoStats};
pub use profile::AppProfile;
pub use sweep::{SweepEngine, SweepStats, Workload};

use std::error::Error;
use std::fmt;

/// Errors surfaced by the scheduling pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// The underlying simulator failed.
    Sim(gcs_sim::SimError),
    /// The ILP solver failed.
    Milp(gcs_milp::SolveError),
    /// The queue cannot be grouped as requested (length, classes, ...).
    BadQueue(String),
    /// A sweep worker died (panicked) while simulating a job.
    Worker {
        /// Index of the job whose worker died.
        job: usize,
        /// Panic payload (or a placeholder for non-string payloads).
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Sim(e) => write!(f, "simulation failed: {e}"),
            CoreError::Milp(e) => write!(f, "ilp solve failed: {e}"),
            CoreError::BadQueue(why) => write!(f, "bad queue: {why}"),
            CoreError::Worker { job, message } => {
                write!(f, "worker for job {job} panicked: {message}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Sim(e) => Some(e),
            CoreError::Milp(e) => Some(e),
            CoreError::BadQueue(_) => None,
            CoreError::Worker { .. } => None,
        }
    }
}

impl From<gcs_sim::SimError> for CoreError {
    fn from(e: gcs_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<gcs_milp::SolveError> for CoreError {
    fn from(e: gcs_milp::SolveError) -> Self {
        CoreError::Milp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_chain() {
        let e = CoreError::from(gcs_sim::SimError::Timeout {
            cycle: 1,
            diag: Default::default(),
        });
        assert!(e.to_string().contains("simulation failed"));
        assert!(e.source().is_some());
        let b = CoreError::BadQueue("x".into());
        assert!(b.source().is_none());
        let w = CoreError::Worker {
            job: 3,
            message: "boom".into(),
        };
        assert!(w.to_string().contains("job 3"));
        assert!(w.source().is_none());
    }
}
