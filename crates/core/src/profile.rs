//! Alone-run application profiling (§3.2.1, first step).
//!
//! The methodology's inputs are four per-application signals measured
//! with the application running *alone* on the whole device: DRAM
//! bandwidth, L2→L1 bandwidth, thread-level IPC and the
//! memory-to-compute ratio `R`. [`profile_alone`] produces them;
//! [`profile_with_sms`] restricts the device to a subset of SMs, which
//! is what the scalability studies (Fig 3.5/3.6) and the Profile-based
//! baseline \[17\] consume.
//!
//! These functions run one simulation, synchronously. Anything that
//! profiles more than a single kernel should go through
//! [`crate::sweep::SweepEngine`], which fans independent profiling jobs
//! across cores and memoizes every result on disk — the [`Pipeline`]
//! (`crate::runner`) and the harness binaries all do.
//!
//! [`Pipeline`]: crate::runner::Pipeline

use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::{Gpu, PhaseCycles, SimError};
use gcs_sim::kernel::{AppId, KernelDesc};
use gcs_sim::KernelTrace;
use std::sync::Arc;

/// Cycle budget for a profiling run; generous relative to the workload
/// sizes the suite produces.
pub const PROFILE_MAX_CYCLES: u64 = 200_000_000;

/// Intra-simulation sharding grant for one job — how many SM shards the
/// device should step with ([`Gpu::set_shards`]) and how many worker
/// threads the sweep engine's budget arbiter leased for it
/// ([`Gpu::set_shard_workers`]). Sharding is bit-identity pinned, so
/// this never changes a result — only its wall-clock cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SimShards {
    /// SM shard count (clamped per device by `set_shards`).
    pub shards: u32,
    /// Memory shard count for phase M (clamped per device by
    /// `set_mem_shards`). Rides the same leased workers as the SM
    /// shards — granting it never consumes extra thread budget.
    pub mem_shards: u32,
    /// Worker threads for the sharded step (1 = in-place).
    pub workers: u32,
}

impl SimShards {
    /// Plain unsharded reference stepping.
    pub(crate) const OFF: SimShards = SimShards {
        shards: 1,
        mem_shards: 1,
        workers: 1,
    };

    /// Applies the grant to a fresh device.
    pub(crate) fn apply(self, gpu: &mut Gpu) {
        if self.shards > 1 {
            gpu.set_shards(self.shards);
            gpu.set_shard_workers(self.workers);
        }
        if self.mem_shards > 1 {
            gpu.set_mem_shards(self.mem_shards);
        }
    }
}

/// The four classifier signals plus supporting detail.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Kernel name the profile belongs to.
    pub name: String,
    /// DRAM bandwidth (reads + writes) in GB/s at the core clock.
    pub memory_bw: f64,
    /// L2→L1 read-return bandwidth in GB/s.
    pub l2_l1_bw: f64,
    /// Thread-level IPC over the app's own runtime.
    pub ipc: f64,
    /// Dynamic memory-to-compute ratio.
    pub r: f64,
    /// IPC over the device's peak thread IPC, in `[0, 1]`.
    pub utilization: f64,
    /// Runtime in cycles.
    pub cycles: u64,
    /// Thread instructions retired.
    pub thread_insts: u64,
    /// SMs the profile was taken with.
    pub num_sms: u32,
}

/// Profiles `kernel` running alone on every SM of `cfg`.
///
/// # Errors
///
/// Propagates simulator errors ([`SimError::Timeout`] etc.).
///
/// # Example
///
/// ```
/// use gcs_core::profile::profile_alone;
/// use gcs_sim::config::GpuConfig;
/// use gcs_workloads::{Benchmark, Scale};
///
/// # fn main() -> Result<(), gcs_sim::gpu::SimError> {
/// let cfg = GpuConfig::test_small();
/// let p = profile_alone(&Benchmark::Lud.kernel(Scale::TEST), &cfg)?;
/// assert!(p.ipc > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn profile_alone(kernel: &KernelDesc, cfg: &GpuConfig) -> Result<AppProfile, SimError> {
    profile_with_sms(kernel, cfg, cfg.num_sms)
}

/// Profiles `kernel` alone on the first `num_sms` SMs of the device;
/// the remaining SMs idle (they still share the L2 and DRAM, but carry
/// no traffic).
///
/// # Errors
///
/// [`SimError::InvalidConfig`] when `num_sms` is zero or exceeds the
/// device, plus any simulator error.
pub fn profile_with_sms(
    kernel: &KernelDesc,
    cfg: &GpuConfig,
    num_sms: u32,
) -> Result<AppProfile, SimError> {
    profile_with_sms_phases(kernel, cfg, num_sms, false).map(|(p, _)| p)
}

/// Like [`profile_with_sms`], but optionally collects the device's
/// [`PhaseCycles`] alongside the profile (the sweep engine's `--profile`
/// plumbing). The profile itself is bit-identical either way.
///
/// # Errors
///
/// Same as [`profile_with_sms`].
pub fn profile_with_sms_phases(
    kernel: &KernelDesc,
    cfg: &GpuConfig,
    num_sms: u32,
    phases: bool,
) -> Result<(AppProfile, Option<PhaseCycles>), SimError> {
    profile_kernel_job(kernel, cfg, num_sms, phases, SimShards::OFF)
}

/// [`profile_with_sms_phases`] with an intra-simulation sharding grant
/// (the sweep engine's `sim_threads` plumbing). The profile is
/// bit-identical at every grant.
pub(crate) fn profile_kernel_job(
    kernel: &KernelDesc,
    cfg: &GpuConfig,
    num_sms: u32,
    phases: bool,
    shards: SimShards,
) -> Result<(AppProfile, Option<PhaseCycles>), SimError> {
    profile_launched(cfg, num_sms, phases, shards, &kernel.name, |gpu| {
        gpu.launch(kernel.clone())
    })
}

/// Like [`profile_with_sms_phases`], but the application replays a
/// recorded or authored [`KernelTrace`] instead of executing a
/// synthetic kernel. Signal math and cycle accounting are shared, so a
/// trace recorded from a kernel profiles bit-identically to the kernel
/// itself.
///
/// # Errors
///
/// Same as [`profile_with_sms`], plus [`SimError::InvalidKernel`] for a
/// trace that fails validation.
pub fn profile_trace_with_sms_phases(
    trace: &Arc<KernelTrace>,
    cfg: &GpuConfig,
    num_sms: u32,
    phases: bool,
) -> Result<(AppProfile, Option<PhaseCycles>), SimError> {
    profile_trace_job(trace, cfg, num_sms, phases, SimShards::OFF)
}

/// [`profile_trace_with_sms_phases`] with an intra-simulation sharding
/// grant; bit-identical at every grant.
pub(crate) fn profile_trace_job(
    trace: &Arc<KernelTrace>,
    cfg: &GpuConfig,
    num_sms: u32,
    phases: bool,
    shards: SimShards,
) -> Result<(AppProfile, Option<PhaseCycles>), SimError> {
    profile_launched(cfg, num_sms, phases, shards, &trace.meta.name, |gpu| {
        gpu.launch_traced(Arc::clone(trace))
    })
}

/// Shared profiling body: launch via `launch`, run alone on the first
/// `num_sms` SMs, compute the four classifier signals.
fn profile_launched(
    cfg: &GpuConfig,
    num_sms: u32,
    phases: bool,
    shards: SimShards,
    name: &str,
    launch: impl FnOnce(&mut Gpu) -> Result<AppId, SimError>,
) -> Result<(AppProfile, Option<PhaseCycles>), SimError> {
    if num_sms == 0 || num_sms > cfg.num_sms {
        return Err(SimError::InvalidConfig(format!(
            "profiling with {num_sms} SMs on a {}-SM device",
            cfg.num_sms
        )));
    }
    let mut gpu = Gpu::new(cfg.clone())?;
    gpu.set_profiling(phases);
    shards.apply(&mut gpu);
    let app = launch(&mut gpu)?;
    let ids: Vec<u32> = (0..num_sms).collect();
    gpu.assign_sms(app, &ids);
    gpu.run(PROFILE_MAX_CYCLES)?;

    let stats = gpu.stats().app(app);
    let cycles = stats.runtime_cycles().max(1);
    let to_gbps = |bytes: u64| cfg.bytes_per_cycle_to_gbps(bytes as f64 / cycles as f64);
    let ipc = stats.thread_ipc();
    Ok((
        AppProfile {
            name: name.to_string(),
            memory_bw: to_gbps(stats.dram_bytes()),
            l2_l1_bw: to_gbps(stats.l2_to_l1_bytes),
            ipc,
            r: stats.memory_ratio(),
            utilization: ipc / cfg.peak_thread_ipc(),
            cycles,
            thread_insts: stats.thread_insts,
            num_sms,
        },
        gpu.phase_cycles(),
    ))
}

/// IPC of `kernel` at each SM count in `sm_counts` — the scalability
/// curve of Fig 3.5/3.6 and the input to the Profile-based allocator.
///
/// # Errors
///
/// Propagates the first profiling error.
pub fn scalability_curve(
    kernel: &KernelDesc,
    cfg: &GpuConfig,
    sm_counts: &[u32],
) -> Result<Vec<(u32, f64)>, SimError> {
    sm_counts
        .iter()
        .map(|&n| profile_with_sms(kernel, cfg, n).map(|p| (n, p.ipc)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_workloads::{Benchmark, Scale};

    fn cfg() -> GpuConfig {
        GpuConfig::test_small()
    }

    #[test]
    fn profile_reports_positive_signals() {
        let p = profile_alone(&Benchmark::Blk.kernel(Scale::TEST), &cfg()).unwrap();
        assert!(p.memory_bw > 0.0, "BLK must touch DRAM");
        assert!(p.ipc > 0.0);
        assert!(p.r > 0.0 && p.r < 1.0);
        assert!(p.utilization > 0.0 && p.utilization <= 1.0);
    }

    #[test]
    fn sm_count_bounds_checked() {
        let k = Benchmark::Lud.kernel(Scale::TEST);
        assert!(profile_with_sms(&k, &cfg(), 0).is_err());
        assert!(profile_with_sms(&k, &cfg(), 999).is_err());
    }

    #[test]
    fn compute_kernel_has_low_memory_bw() {
        let lud = profile_alone(&Benchmark::Lud.kernel(Scale::TEST), &cfg()).unwrap();
        let blk = profile_alone(&Benchmark::Blk.kernel(Scale::TEST), &cfg()).unwrap();
        assert!(
            lud.memory_bw < blk.memory_bw,
            "LUD ({}) should use far less DRAM than BLK ({})",
            lud.memory_bw,
            blk.memory_bw
        );
    }

    #[test]
    fn scalability_curve_is_ordered() {
        let k = Benchmark::Hs.kernel(Scale::TEST);
        let curve = scalability_curve(&k, &cfg(), &[2, 4, 8]).unwrap();
        assert_eq!(curve.len(), 3);
        assert!(
            curve[2].1 > curve[0].1,
            "HS scales with cores: {curve:?}"
        );
    }
}
