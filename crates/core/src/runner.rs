//! End-to-end queue execution under every evaluated policy.
//!
//! The thesis compares:
//!
//! * **Even** — applications co-run in arrival order with an equal SM
//!   split (the baseline of every figure);
//! * **Serial** — one application at a time on the whole device;
//! * **FCFS** — groups formed in arrival order;
//! * **ILP** — groups chosen by the contention-minimization ILP
//!   (§3.2.3);
//! * **Profile-based \[17\]** — arrival-order groups with a static SM
//!   split chosen from offline alone-run scalability curves
//!   (Adriaens et al., HPCA 2012);
//! * **ILP-SMRA** — ILP grouping plus the Algorithm 1 dynamic SM
//!   reallocation controller.
//!
//! A [`Pipeline`] caches the expensive inputs (profiles, classes, the
//! interference matrix, scalability curves) so one set of measurements
//! serves every policy — exactly how the thesis' flow works.

use std::collections::BTreeMap;
use std::sync::Arc;

use gcs_sim::config::GpuConfig;
use gcs_sim::KernelTrace;
use gcs_workloads::{Benchmark, Scale};

use crate::classify::{classify_suite, AppClass, Thresholds};
use crate::fault::Degradation;
use crate::ilp::solve_grouping_with_limit;
use crate::interference::InterferenceMatrix;
use crate::profile::AppProfile;
use crate::smra::SmraParams;
use crate::sweep::{CorunMode, SweepEngine, SweepStats, Workload};
use crate::CoreError;

/// How groups are formed from the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupingPolicy {
    /// One application at a time.
    Serial,
    /// Arrival-order chunks of `concurrency`.
    Fcfs,
    /// The paper's ILP grouping.
    Ilp,
}

/// How SMs are divided inside a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocationPolicy {
    /// Equal split (baseline).
    Even,
    /// Static split from offline scalability curves (Adriaens \[17\]).
    ProfileBased,
    /// Dynamic reallocation (Algorithm 1).
    Smra,
}

/// Execution parameters shared by a set of runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Device model.
    pub gpu: GpuConfig,
    /// Workload scale.
    pub scale: Scale,
    /// Applications per co-run group (the paper's `NC`; 2 or 3).
    pub concurrency: u32,
}

impl RunConfig {
    /// GTX 480 at full workload scale, two concurrent applications.
    pub fn gtx480_pairs() -> RunConfig {
        RunConfig {
            gpu: GpuConfig::gtx480(),
            scale: Scale::FULL,
            concurrency: 2,
        }
    }
}

/// Per-application outcome inside one group.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRun {
    /// Which benchmark ran.
    pub bench: Benchmark,
    /// Cycles from its first dispatch to retirement.
    pub cycles: u64,
    /// Thread instructions retired.
    pub thread_insts: u64,
    /// Thread IPC over its own runtime.
    pub ipc: f64,
}

/// Outcome of one co-run group.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupResult {
    /// Group members in launch order.
    pub apps: Vec<AppRun>,
    /// Group makespan in cycles (all members finished).
    pub makespan: u64,
}

impl GroupResult {
    /// Group device throughput: all members' instructions over the
    /// makespan.
    pub fn throughput(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        let insts: u64 = self.apps.iter().map(|a| a.thread_insts).sum();
        insts as f64 / self.makespan as f64
    }
}

/// Outcome of a whole queue.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueReport {
    /// Groups in execution order.
    pub groups: Vec<GroupResult>,
    /// Sum of group makespans (groups run back-to-back).
    pub total_cycles: u64,
    /// Total thread instructions.
    pub total_thread_insts: u64,
    /// Device throughput over the whole queue (Eq. 1.1).
    pub device_throughput: f64,
    /// Downgrades applied while producing this report (e.g. the ILP
    /// grouping degrading to greedy). Empty on a fully clean run.
    pub degradations: Vec<Degradation>,
}

impl QueueReport {
    /// Per-benchmark mean IPC across the queue (Fig 4.4-4.8's bars).
    pub fn per_bench_ipc(&self) -> Vec<(Benchmark, f64)> {
        let mut acc: BTreeMap<Benchmark, (f64, u32)> = BTreeMap::new();
        for g in &self.groups {
            for a in &g.apps {
                let e = acc.entry(a.bench).or_insert((0.0, 0));
                e.0 += a.ipc;
                e.1 += 1;
            }
        }
        acc.into_iter()
            .map(|(b, (sum, n))| (b, sum / f64::from(n)))
            .collect()
    }
}

/// Cached measurement state driving every policy.
#[derive(Debug)]
pub struct Pipeline {
    cfg: RunConfig,
    engine: Arc<SweepEngine>,
    profiles: BTreeMap<Benchmark, AppProfile>,
    classes: BTreeMap<Benchmark, AppClass>,
    thresholds: Thresholds,
    matrix: InterferenceMatrix,
    curves: BTreeMap<Benchmark, Vec<(u32, f64)>>,
    ilp_node_limit: Option<usize>,
    /// Trace substitutions: a bound suite slot runs the trace instead
    /// of the synthetic kernel everywhere — profiling, classification,
    /// scalability curves and co-runs.
    bindings: BTreeMap<Benchmark, Arc<KernelTrace>>,
}

impl Pipeline {
    /// Profiles the full 14-benchmark suite, classifies it, and measures
    /// the class interference matrix on the configured device by
    /// co-running **every** benchmark pair (§3.2.2's procedure; 14 alone
    /// runs + 105 co-runs). For a cheaper approximation, combine
    /// [`InterferenceMatrix::measure`] with [`Pipeline::with_matrix`].
    ///
    /// All simulations flow through a machine-sized [`SweepEngine`]
    /// (in-memory memoization, no disk cache); use
    /// [`Pipeline::new_with_engine`] to share an engine or persist its
    /// cache.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn new(cfg: RunConfig) -> Result<Self, CoreError> {
        Self::new_with_engine(cfg, Arc::new(SweepEngine::auto()))
    }

    /// [`Pipeline::new`] through a caller-provided engine: the sweep is
    /// parallelized across the engine's workers and every simulation is
    /// memoized (and, with a cache directory, persisted), so repeated
    /// pipeline constructions skip re-simulating entirely.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn new_with_engine(cfg: RunConfig, engine: Arc<SweepEngine>) -> Result<Self, CoreError> {
        let matrix = InterferenceMatrix::measure_full_with(&engine, &cfg.gpu, cfg.scale)?;
        Self::with_matrix_and_engine(cfg, matrix, engine)
    }

    /// Like [`Pipeline::new`] but with a caller-provided interference
    /// matrix (e.g. [`InterferenceMatrix::synthetic_paper_shape`] to
    /// skip the measurement co-runs in tests).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures from the alone-run profiling.
    pub fn with_matrix(cfg: RunConfig, matrix: InterferenceMatrix) -> Result<Self, CoreError> {
        Self::with_matrix_and_engine(cfg, matrix, Arc::new(SweepEngine::auto()))
    }

    /// [`Pipeline::with_matrix`] through a caller-provided engine.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures from the alone-run profiling.
    pub fn with_matrix_and_engine(
        cfg: RunConfig,
        matrix: InterferenceMatrix,
        engine: Arc<SweepEngine>,
    ) -> Result<Self, CoreError> {
        Self::with_matrix_engine_and_bindings(cfg, matrix, engine, BTreeMap::new())
    }

    /// [`Pipeline::with_matrix_and_engine`] with trace-backed suite
    /// entries: each `(bench, trace)` binding substitutes the trace for
    /// the synthetic kernel behind that suite slot. The bound slot is
    /// profiled, classified and co-run from the trace; unbound slots
    /// are untouched, and an empty map reproduces
    /// [`Pipeline::with_matrix_and_engine`] exactly (same cache keys,
    /// same job counts).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures from the alone-run profiling,
    /// including validation failures of a bound trace.
    pub fn with_matrix_engine_and_bindings(
        cfg: RunConfig,
        matrix: InterferenceMatrix,
        engine: Arc<SweepEngine>,
        bindings: BTreeMap<Benchmark, Arc<KernelTrace>>,
    ) -> Result<Self, CoreError> {
        let workloads: Vec<Workload> = Benchmark::ALL
            .iter()
            .map(|b| resolve_workload(&bindings, *b))
            .collect();
        let ordered: Vec<AppProfile> = engine.run_parallel(workloads.len(), |i| {
            engine.profile_workload(&cfg.gpu, cfg.scale, &workloads[i], cfg.gpu.num_sms)
        })?;
        let profiles: BTreeMap<Benchmark, AppProfile> = Benchmark::ALL
            .iter()
            .copied()
            .zip(ordered.iter().cloned())
            .collect();
        let (thresholds, class_list) = classify_suite(&cfg.gpu, &ordered);
        let classes = Benchmark::ALL.iter().copied().zip(class_list).collect();
        Ok(Pipeline {
            cfg,
            engine,
            profiles,
            classes,
            thresholds,
            matrix,
            curves: BTreeMap::new(),
            ilp_node_limit: None,
            bindings,
        })
    }

    /// The workload behind a suite slot: the bound trace if one exists,
    /// otherwise the synthetic benchmark.
    pub fn workload_of(&self, bench: Benchmark) -> Workload {
        resolve_workload(&self.bindings, bench)
    }

    /// Overrides the grouping ILP's branch & bound node budget (`None`
    /// restores the solver default). When the budget is exhausted the
    /// pipeline degrades to greedy class-aware grouping instead of
    /// failing; the downgrade is recorded in
    /// [`QueueReport::degradations`].
    pub fn set_ilp_node_limit(&mut self, limit: Option<usize>) {
        self.ilp_node_limit = limit;
    }

    /// The run configuration.
    pub fn config(&self) -> &RunConfig {
        &self.cfg
    }

    /// The sweep engine executing and memoizing this pipeline's
    /// simulations.
    pub fn engine(&self) -> &Arc<SweepEngine> {
        &self.engine
    }

    /// Snapshot of the engine's counters (jobs simulated vs. cached,
    /// estimated parallel speedup); the bench harness prints this.
    pub fn sweep_stats(&self) -> SweepStats {
        self.engine.stats()
    }

    /// Measured alone-run profile of `bench`.
    pub fn profile(&self, bench: Benchmark) -> &AppProfile {
        &self.profiles[&bench]
    }

    /// Measured class of `bench`.
    pub fn class_of(&self, bench: Benchmark) -> AppClass {
        self.classes[&bench]
    }

    /// Thresholds derived from the measured suite.
    pub fn thresholds(&self) -> &Thresholds {
        &self.thresholds
    }

    /// The interference matrix in use.
    pub fn matrix(&self) -> &InterferenceMatrix {
        &self.matrix
    }

    /// Forms groups from `queue` under `policy`.
    ///
    /// For [`GroupingPolicy::Ilp`], apps beyond the largest
    /// `concurrency`-divisible prefix count are grouped FCFS at the end
    /// (the thesis assumes divisible queues).
    ///
    /// # Errors
    ///
    /// [`CoreError::Milp`] if the ILP solve fails.
    pub fn group(
        &self,
        queue: &[Benchmark],
        policy: GroupingPolicy,
    ) -> Result<Vec<Vec<Benchmark>>, CoreError> {
        self.group_with_degradations(queue, policy).map(|(g, _)| g)
    }

    /// [`Pipeline::group`], additionally reporting any downgrades taken
    /// while grouping (currently: the ILP degrading to greedy when its
    /// node budget runs out or the instance is infeasible).
    ///
    /// # Errors
    ///
    /// Same as [`Pipeline::group`].
    pub fn group_with_degradations(
        &self,
        queue: &[Benchmark],
        policy: GroupingPolicy,
    ) -> Result<(Vec<Vec<Benchmark>>, Vec<Degradation>), CoreError> {
        let nc = self.cfg.concurrency.max(1);
        match policy {
            GroupingPolicy::Serial => {
                Ok((queue.iter().map(|&b| vec![b]).collect(), Vec::new()))
            }
            GroupingPolicy::Fcfs => Ok((
                queue.chunks(nc as usize).map(<[_]>::to_vec).collect(),
                Vec::new(),
            )),
            GroupingPolicy::Ilp => self.group_ilp(queue, nc),
        }
    }

    fn group_ilp(
        &self,
        queue: &[Benchmark],
        nc: u32,
    ) -> Result<(Vec<Vec<Benchmark>>, Vec<Degradation>), CoreError> {
        if nc < 2 {
            return Ok((queue.iter().map(|&b| vec![b]).collect(), Vec::new()));
        }
        let usable = (queue.len() as u32 / nc) * nc;
        let head = &queue[..usable as usize];
        let tail = &queue[usable as usize..];

        // A queue shorter than one group has nothing for the ILP to
        // decide (and the solver rejects an empty census): the whole
        // queue is the remainder group. The online scheduler leans on
        // this — a near-drained admission queue must still dispatch.
        if head.is_empty() {
            let groups = if tail.is_empty() {
                Vec::new()
            } else {
                vec![tail.to_vec()]
            };
            return Ok((groups, Vec::new()));
        }

        let mut census = [0u32; AppClass::COUNT];
        for &b in head {
            census[self.class_of(b).index()] += 1;
        }
        let mut degradations = Vec::new();
        let mut groups = match solve_grouping_with_limit(census, nc, &self.matrix, self.ilp_node_limit)
        {
            Ok(solution) => {
                // Instantiate patterns FCFS within each class.
                let mut pools: [Vec<Benchmark>; AppClass::COUNT] = Default::default();
                for &b in head {
                    pools[self.class_of(b).index()].push(b);
                }
                for pool in &mut pools {
                    pool.reverse(); // pop() takes the earliest arrival
                }
                let mut groups = Vec::new();
                for classes in solution.groups() {
                    let mut group = Vec::with_capacity(classes.len());
                    for class in classes {
                        let b = pools[class.index()]
                            .pop()
                            .expect("census guarantees availability");
                        group.push(b);
                    }
                    groups.push(group);
                }
                groups
            }
            Err(CoreError::Milp(e)) => {
                degradations.push(Degradation::IlpGreedyFallback {
                    reason: e.to_string(),
                });
                self.group_greedy(head, nc)
            }
            Err(e) => return Err(e),
        };
        if !tail.is_empty() {
            groups.push(tail.to_vec());
        }
        Ok((groups, degradations))
    }

    /// Deterministic class-aware greedy grouping over an arbitrary
    /// queue — the standalone version of the ILP's degradation path,
    /// exposed so online schedulers can form groups over a live
    /// admission census without paying for a solve. The largest
    /// `concurrency`-divisible prefix is grouped greedily (see
    /// [`Pipeline::group_with_degradations`]'s fallback); any remainder
    /// becomes one final FCFS group, mirroring the ILP path's tail rule.
    pub fn group_greedy_class(&self, queue: &[Benchmark]) -> Vec<Vec<Benchmark>> {
        let nc = self.cfg.concurrency.max(1);
        let usable = (queue.len() as u32 / nc) * nc;
        let (head, tail) = queue.split_at(usable as usize);
        let mut groups = self.group_greedy(head, nc);
        if !tail.is_empty() {
            groups.push(tail.to_vec());
        }
        groups
    }

    /// Greedy class-aware fallback grouping for when the ILP cannot
    /// produce a solution: sort the head by class (memory-bound first,
    /// FCFS within a class), then form each group from one app at the
    /// memory-bound end plus `nc - 1` from the compute-bound end. This
    /// spreads the most contentious apps across groups — the same
    /// intuition Eq. 3.3 optimizes exactly — and is deterministic.
    ///
    /// `head.len()` must be a multiple of `nc`.
    fn group_greedy(&self, head: &[Benchmark], nc: u32) -> Vec<Vec<Benchmark>> {
        debug_assert!(
            (head.len() as u32).is_multiple_of(nc),
            "head must be divisible"
        );
        let mut sorted: Vec<Benchmark> = head.to_vec();
        sorted.sort_by_key(|&b| self.class_of(b).index());
        let mut groups = Vec::with_capacity(sorted.len() / nc as usize);
        let (mut front, mut back) = (0usize, sorted.len());
        while front < back {
            let mut group = Vec::with_capacity(nc as usize);
            group.push(sorted[front]);
            front += 1;
            for _ in 1..nc {
                back -= 1;
                group.push(sorted[back]);
            }
            groups.push(group);
        }
        groups
    }

    /// Executes one group under `alloc`. The co-run goes through the
    /// sweep engine, so identical groups (same benchmarks, policy,
    /// scale, device) are served from the memo cache.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_group(
        &mut self,
        group: &[Benchmark],
        alloc: AllocationPolicy,
    ) -> Result<GroupResult, CoreError> {
        assert!(!group.is_empty(), "empty group");
        let mode = match alloc {
            AllocationPolicy::Even => CorunMode::Even,
            AllocationPolicy::ProfileBased => CorunMode::Counts(self.profile_based_split(group)?),
            AllocationPolicy::Smra => CorunMode::Smra(SmraParams::for_device(
                self.cfg.gpu.num_sms,
                group.len() as u32,
            )),
        };
        let ws: Vec<Workload> = group.iter().map(|&b| self.workload_of(b)).collect();
        let out = self
            .engine
            .corun_workloads(&self.cfg.gpu, self.cfg.scale, &ws, &mode)?;

        let apps = group
            .iter()
            .enumerate()
            .map(|(i, &bench)| {
                let cycles = out.cycles[i];
                AppRun {
                    bench,
                    cycles,
                    thread_insts: out.thread_insts[i],
                    ipc: out.thread_insts[i] as f64 / cycles as f64,
                }
            })
            .collect();
        Ok(GroupResult {
            apps,
            makespan: out.makespan,
        })
    }

    /// Executes a whole queue: group, then run groups back-to-back.
    ///
    /// # Errors
    ///
    /// Propagates grouping and simulation errors.
    pub fn run_queue(
        &mut self,
        queue: &[Benchmark],
        grouping: GroupingPolicy,
        alloc: AllocationPolicy,
    ) -> Result<QueueReport, CoreError> {
        let (groups, degradations) = self.group_with_degradations(queue, grouping)?;
        let mut results = Vec::with_capacity(groups.len());
        for g in &groups {
            results.push(self.run_group(g, alloc)?);
        }
        let total_cycles: u64 = results.iter().map(|r| r.makespan).sum();
        let total_thread_insts: u64 = results
            .iter()
            .flat_map(|r| r.apps.iter().map(|a| a.thread_insts))
            .sum();
        Ok(QueueReport {
            groups: results,
            total_cycles,
            total_thread_insts,
            device_throughput: if total_cycles == 0 {
                0.0
            } else {
                total_thread_insts as f64 / total_cycles as f64
            },
            degradations,
        })
    }

    /// The Profile-based \[17\] static split: maximize the sum of
    /// interpolated alone-run IPC curves over integer splits that give
    /// every member at least one SM.
    fn profile_based_split(&mut self, group: &[Benchmark]) -> Result<Vec<u32>, CoreError> {
        let n_sms = self.cfg.gpu.num_sms;
        if group.len() == 1 {
            return Ok(vec![n_sms]);
        }
        for &b in group {
            self.ensure_curve(b)?;
        }
        let est = |b: Benchmark, sms: u32| -> f64 { interpolate(&self.curves[&b], sms) };

        match group.len() {
            2 => {
                let (mut best_s, mut best_v) = (n_sms / 2, f64::MIN);
                for s in 1..n_sms {
                    let v = est(group[0], s) + est(group[1], n_sms - s);
                    if v > best_v {
                        best_v = v;
                        best_s = s;
                    }
                }
                Ok(vec![best_s, n_sms - best_s])
            }
            3 => {
                let mut best = (n_sms / 3, n_sms / 3);
                let mut best_v = f64::MIN;
                for a in 1..n_sms - 1 {
                    for b in 1..n_sms - a {
                        let c = n_sms - a - b;
                        let v = est(group[0], a) + est(group[1], b) + est(group[2], c);
                        if v > best_v {
                            best_v = v;
                            best = (a, b);
                        }
                    }
                }
                Ok(vec![best.0, best.1, n_sms - best.0 - best.1])
            }
            n => {
                // Larger groups: even split (the paper never exceeds 3).
                let per = n_sms / n as u32;
                let mut counts = vec![per; n];
                counts[0] += n_sms - per * n as u32;
                Ok(counts)
            }
        }
    }

    fn ensure_curve(&mut self, bench: Benchmark) -> Result<(), CoreError> {
        if self.curves.contains_key(&bench) {
            return Ok(());
        }
        let n = self.cfg.gpu.num_sms;
        let mut grid: Vec<u32> = [n / 6, n / 3, n / 2, 2 * n / 3, 5 * n / 6, n]
            .into_iter()
            .map(|x| x.max(1))
            .collect();
        grid.sort_unstable();
        grid.dedup();
        // One memoized profile job per grid point, fanned across the
        // engine's workers.
        let engine = Arc::clone(&self.engine);
        let gpu = self.cfg.gpu.clone();
        let scale = self.cfg.scale;
        let workload = self.workload_of(bench);
        let curve: Vec<(u32, f64)> = engine
            .run_parallel(grid.len(), |i| {
                engine
                    .profile_workload(&gpu, scale, &workload, grid[i])
                    .map(|p| (grid[i], p.ipc))
            })?;
        self.curves.insert(bench, curve);
        Ok(())
    }
}

/// The workload a `(bindings, bench)` pair resolves to.
fn resolve_workload(
    bindings: &BTreeMap<Benchmark, Arc<KernelTrace>>,
    bench: Benchmark,
) -> Workload {
    match bindings.get(&bench) {
        Some(t) => Workload::Trace(Arc::clone(t)),
        None => Workload::Bench(bench),
    }
}

/// Linear interpolation over a measured, ascending `(sms, value)`
/// curve: exact at sample points, linear between them, proportional
/// extrapolation below the first sample and clamped above the last.
///
/// Deterministic for a given curve — the fleet predictor leans on this
/// for bit-identical budget plans across sweep thread counts.
///
/// # Panics
///
/// Debug-asserts a non-empty curve; on an empty curve in release the
/// final `expect` panics.
pub fn interpolate(curve: &[(u32, f64)], sms: u32) -> f64 {
    debug_assert!(!curve.is_empty());
    if sms <= curve[0].0 {
        // Extrapolate proportionally below the first sample.
        return curve[0].1 * f64::from(sms) / f64::from(curve[0].0.max(1));
    }
    for w in curve.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if sms <= x1 {
            let t = f64::from(sms - x0) / f64::from(x1 - x0).max(1.0);
            return y0 + t * (y1 - y0);
        }
    }
    curve.last().expect("non-empty").1
}

/// One-shot convenience: builds a full [`Pipeline`] (profiling suite +
/// measuring interference) and runs `queue`. Prefer constructing a
/// [`Pipeline`] once when running several policies.
///
/// This is a thin delegate to [`Pipeline::run_queue`] — it carries no
/// execution logic of its own, so the two paths can never diverge.
///
/// # Errors
///
/// Propagates pipeline construction and execution errors.
pub fn run_queue(
    queue: &[Benchmark],
    grouping: GroupingPolicy,
    alloc: AllocationPolicy,
    cfg: &RunConfig,
) -> Result<QueueReport, CoreError> {
    Pipeline::new(cfg.clone())?.run_queue(queue, grouping, alloc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_pipeline() -> Pipeline {
        let cfg = RunConfig {
            gpu: GpuConfig::test_small(),
            scale: Scale::TEST,
            concurrency: 2,
        };
        Pipeline::with_matrix(cfg, InterferenceMatrix::synthetic_paper_shape()).unwrap()
    }

    #[test]
    fn grouping_policies_cover_queue() {
        let p = test_pipeline();
        let queue = vec![
            Benchmark::Blk,
            Benchmark::Sad,
            Benchmark::Gups,
            Benchmark::Hs,
        ];
        for policy in [GroupingPolicy::Serial, GroupingPolicy::Fcfs, GroupingPolicy::Ilp] {
            let groups = p.group(&queue, policy).unwrap();
            let flat: Vec<Benchmark> = groups.iter().flatten().copied().collect();
            let mut sorted = flat.clone();
            sorted.sort_unstable();
            let mut want = queue.clone();
            want.sort_unstable();
            assert_eq!(sorted, want, "{policy:?} lost or duplicated apps");
        }
    }

    #[test]
    fn serial_groups_are_singletons() {
        let p = test_pipeline();
        let groups = p
            .group(&[Benchmark::Blk, Benchmark::Hs], GroupingPolicy::Serial)
            .unwrap();
        assert!(groups.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn fcfs_preserves_arrival_order() {
        let p = test_pipeline();
        let q = vec![
            Benchmark::Blk,
            Benchmark::Gups,
            Benchmark::Hs,
            Benchmark::Sad,
        ];
        let groups = p.group(&q, GroupingPolicy::Fcfs).unwrap();
        assert_eq!(groups[0], vec![Benchmark::Blk, Benchmark::Gups]);
        assert_eq!(groups[1], vec![Benchmark::Hs, Benchmark::Sad]);
    }

    #[test]
    fn grouping_handles_empty_and_short_queues() {
        // The online scheduler plans over a live admission queue that
        // can be empty or shorter than one group; no policy may error.
        let p = test_pipeline();
        for policy in [GroupingPolicy::Serial, GroupingPolicy::Fcfs, GroupingPolicy::Ilp] {
            let (groups, degradations) = p
                .group_with_degradations(&[], policy)
                .unwrap_or_else(|e| panic!("{policy:?} on empty queue: {e}"));
            assert!(groups.is_empty(), "{policy:?}");
            assert!(degradations.is_empty(), "{policy:?}");

            let (groups, degradations) = p
                .group_with_degradations(&[Benchmark::Gups], policy)
                .unwrap_or_else(|e| panic!("{policy:?} on singleton queue: {e}"));
            assert_eq!(groups, vec![vec![Benchmark::Gups]], "{policy:?}");
            assert!(degradations.is_empty(), "short queue is not a degradation");
        }
    }

    #[test]
    fn greedy_class_grouping_is_public_and_total() {
        let p = test_pipeline();
        assert!(p.group_greedy_class(&[]).is_empty());
        // Indivisible queue: greedy head + FCFS remainder group.
        let q = vec![
            Benchmark::Gups,
            Benchmark::Sad,
            Benchmark::Spmv,
            Benchmark::Lud,
            Benchmark::Hs,
        ];
        let groups = p.group_greedy_class(&q);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[2], vec![Benchmark::Hs], "remainder is the tail");
        let mut flat: Vec<Benchmark> = groups.iter().flatten().copied().collect();
        flat.sort_unstable();
        let mut want = q.clone();
        want.sort_unstable();
        assert_eq!(flat, want, "greedy grouping lost or duplicated apps");
        // Deterministic.
        assert_eq!(groups, p.group_greedy_class(&q));
    }

    #[test]
    fn ilp_handles_indivisible_tail() {
        let p = test_pipeline();
        let q = vec![
            Benchmark::Blk,
            Benchmark::Gups,
            Benchmark::Hs,
            Benchmark::Sad,
            Benchmark::Lud,
        ];
        let groups = p.group(&q, GroupingPolicy::Ilp).unwrap();
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
        assert_eq!(groups.last().unwrap().len(), 1, "tail group");
    }

    #[test]
    fn ilp_node_exhaustion_degrades_to_greedy() {
        let mut p = test_pipeline();
        p.set_ilp_node_limit(Some(0));
        let q = vec![
            Benchmark::Blk,
            Benchmark::Gups,
            Benchmark::Hs,
            Benchmark::Sad,
        ];
        let (groups, degradations) = p
            .group_with_degradations(&q, GroupingPolicy::Ilp)
            .expect("greedy fallback must absorb the node-limit failure");
        assert_eq!(
            degradations.len(),
            1,
            "fallback must be recorded, got {degradations:?}"
        );
        assert!(matches!(
            degradations[0],
            Degradation::IlpGreedyFallback { .. }
        ));
        // The fallback still covers the queue exactly.
        assert_eq!(groups.len(), 2);
        let mut flat: Vec<Benchmark> = groups.iter().flatten().copied().collect();
        flat.sort_unstable();
        let mut want = q.clone();
        want.sort_unstable();
        assert_eq!(flat, want);
        // And the degradation reaches the queue report.
        let r = p
            .run_queue(&q, GroupingPolicy::Ilp, AllocationPolicy::Even)
            .unwrap();
        assert_eq!(r.degradations.len(), 1);
        // A healthy budget produces no degradations.
        p.set_ilp_node_limit(None);
        let r = p
            .run_queue(&q, GroupingPolicy::Ilp, AllocationPolicy::Even)
            .unwrap();
        assert!(r.degradations.is_empty());
    }

    #[test]
    fn greedy_fallback_spreads_memory_bound_apps() {
        let mut p = test_pipeline();
        p.set_ilp_node_limit(Some(0));
        // Take two memory-bound-ish and two compute-bound-ish apps; the
        // greedy pairer must not put the two lowest-class (most
        // memory-bound) apps in the same group.
        let q = vec![
            Benchmark::Gups,
            Benchmark::Spmv,
            Benchmark::Sad,
            Benchmark::Lud,
        ];
        let (groups, degradations) = p
            .group_with_degradations(&q, GroupingPolicy::Ilp)
            .unwrap();
        assert!(!degradations.is_empty());
        // The greedy pairer spreads the lowest-index (most memory-bound)
        // class present across groups whenever that is possible.
        let worst_class = q.iter().map(|&b| p.class_of(b).index()).min().unwrap();
        let worst_total = q
            .iter()
            .filter(|&&b| p.class_of(b).index() == worst_class)
            .count();
        for g in &groups {
            assert_eq!(g.len(), 2);
            if worst_total <= groups.len() {
                let worst = g
                    .iter()
                    .filter(|&&b| p.class_of(b).index() == worst_class)
                    .count();
                assert!(worst <= 1, "greedy fallback stacked the worst class: {g:?}");
            }
        }
    }

    #[test]
    fn run_group_even_reports_all_members() {
        let mut p = test_pipeline();
        let r = p
            .run_group(&[Benchmark::Lud, Benchmark::Sad], AllocationPolicy::Even)
            .unwrap();
        assert_eq!(r.apps.len(), 2);
        assert!(r.makespan > 0);
        assert!(r.throughput() > 0.0);
        for a in &r.apps {
            assert!(a.cycles <= r.makespan);
            assert!(a.thread_insts > 0);
        }
    }

    #[test]
    fn queue_report_accounting() {
        let mut p = test_pipeline();
        let q = vec![Benchmark::Lud, Benchmark::Sad];
        let r = p
            .run_queue(&q, GroupingPolicy::Fcfs, AllocationPolicy::Even)
            .unwrap();
        assert_eq!(r.groups.len(), 1);
        assert_eq!(
            r.total_cycles,
            r.groups.iter().map(|g| g.makespan).sum::<u64>()
        );
        let per = r.per_bench_ipc();
        assert_eq!(per.len(), 2);
    }

    #[test]
    fn interpolation_behaviour() {
        let curve = vec![(10u32, 100.0), (20, 150.0), (30, 160.0)];
        assert!((interpolate(&curve, 10) - 100.0).abs() < 1e-9);
        assert!((interpolate(&curve, 15) - 125.0).abs() < 1e-9);
        assert!((interpolate(&curve, 30) - 160.0).abs() < 1e-9);
        assert!((interpolate(&curve, 40) - 160.0).abs() < 1e-9, "clamps above");
        assert!((interpolate(&curve, 5) - 50.0).abs() < 1e-9, "proportional below");
    }

    #[test]
    fn pipeline_getters_are_consistent() {
        let p = test_pipeline();
        for b in Benchmark::ALL {
            let prof = p.profile(b);
            assert_eq!(prof.name, b.name());
            // The stored class must equal re-classifying the stored
            // profile under the stored thresholds.
            assert_eq!(
                p.class_of(b),
                crate::classify::classify(prof, p.thresholds()),
                "{b}: cached class diverges from thresholds"
            );
        }
        assert_eq!(p.config().concurrency, 2);
    }

    #[test]
    fn per_bench_ipc_averages_repeated_entries() {
        let mut p = test_pipeline();
        // LUD appears twice: its per-bench entry must be the mean of two
        // runs, not a duplicate.
        let q = vec![Benchmark::Lud, Benchmark::Sad, Benchmark::Lud, Benchmark::Hs];
        let r = p
            .run_queue(&q, GroupingPolicy::Fcfs, AllocationPolicy::Even)
            .unwrap();
        let per = r.per_bench_ipc();
        assert_eq!(per.len(), 3, "three distinct benchmarks");
        let lud = per
            .iter()
            .find(|(b, _)| *b == Benchmark::Lud)
            .expect("LUD present");
        assert!(lud.1 > 0.0);
    }

    #[test]
    fn smra_allocation_runs_groups_to_completion() {
        let mut p = test_pipeline();
        let r = p
            .run_group(&[Benchmark::Gups, Benchmark::Sad], AllocationPolicy::Smra)
            .unwrap();
        assert_eq!(r.apps.len(), 2);
        assert!(r.apps.iter().all(|a| a.thread_insts > 0));
    }

    #[test]
    fn profile_based_split_sums_to_device() {
        let mut p = test_pipeline();
        let counts = p
            .profile_based_split(&[Benchmark::Gups, Benchmark::Sad])
            .unwrap();
        assert_eq!(counts.iter().sum::<u32>(), 8);
        assert!(counts.iter().all(|&c| c >= 1));
    }
}
