//! Application classification (§3.2.1, Table 3.1).
//!
//! Four classes keyed on the alone-run profile:
//!
//! | class | criterion |
//! |-------|-----------|
//! | M     | `MB > α` |
//! | MC    | `β < MB ≤ α` |
//! | C     | `(L2→L1 > γ ∨ R > 0.2) ∧ IPC < ε` |
//! | A     | otherwise (the fall-through class, which is how LUD and NN
//! |       | end up in A despite low IPC in Table 3.2) |
//!
//! The thesis instantiates α = 0.55·MBmax, β = 0.30·MBmax, γ ≈ 100 GB/s
//! and ε = 0.2·IPCmax *for its GPU*. [`Thresholds::derive`]
//! derives the same relative thresholds from a measured suite, so the
//! classifier adapts to whatever device model it runs on.

use crate::profile::AppProfile;

/// The four application classes of Table 3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppClass {
    /// Memory-bandwidth intensive.
    M,
    /// Memory- and cache-intensive.
    Mc,
    /// Cache (L2) intensive.
    C,
    /// Compute intensive.
    A,
}

impl AppClass {
    /// All classes, index order used throughout the pattern machinery.
    pub const ALL: [AppClass; 4] = [AppClass::M, AppClass::Mc, AppClass::C, AppClass::A];

    /// Number of classes (the paper's `NT`).
    pub const COUNT: usize = 4;

    /// Stable index in `0..4`.
    pub fn index(&self) -> usize {
        match self {
            AppClass::M => 0,
            AppClass::Mc => 1,
            AppClass::C => 2,
            AppClass::A => 3,
        }
    }

    /// Inverse of [`AppClass::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 4`.
    pub fn from_index(idx: usize) -> AppClass {
        AppClass::ALL[idx]
    }

    /// The thesis' single-letter label (MC prints as `"MC"`).
    pub fn label(&self) -> &'static str {
        match self {
            AppClass::M => "M",
            AppClass::Mc => "MC",
            AppClass::C => "C",
            AppClass::A => "A",
        }
    }

    /// Parses `"M"`, `"MC"`, `"C"`, `"A"` (case-insensitive; `'X'` is
    /// accepted for MC, matching [`gcs_workloads::PaperProfile`]).
    pub fn from_label(s: &str) -> Option<AppClass> {
        match s.to_ascii_uppercase().as_str() {
            "M" => Some(AppClass::M),
            "MC" | "X" => Some(AppClass::Mc),
            "C" => Some(AppClass::C),
            "A" => Some(AppClass::A),
            _ => None,
        }
    }
}

impl std::fmt::Display for AppClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Classification thresholds (Table 3.1's α, β, γ, ε plus the fixed
/// R cut of 0.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Class-M memory-bandwidth cut (GB/s).
    pub alpha: f64,
    /// Class-MC lower memory-bandwidth cut (GB/s).
    pub beta: f64,
    /// Class-C L2→L1 bandwidth cut (GB/s).
    pub gamma: f64,
    /// Class-C/A IPC cut.
    pub epsilon: f64,
    /// Memory-to-compute ratio cut (0.2 in the thesis).
    pub r_cut: f64,
}

impl Thresholds {
    /// Derives thresholds the way the thesis does: the bandwidth cuts
    /// come from the *device* — α = 0.55·MBpeak, β = 0.30·MBpeak and
    /// γ ≈ 0.55·MBpeak (the thesis quotes α = 107, β = 50, γ = 100 GB/s
    /// for a GTX 480 whose theoretical peak is ≈ 178 GB/s) — while
    /// ε = 0.20·IPCmax comes from the measured suite (0.2 × 1000 ≈ the
    /// thesis' ε = 200 against HS's IPC of 984).
    ///
    /// # Panics
    ///
    /// Panics on an empty profile slice.
    pub fn derive<'a, I>(device: &gcs_sim::GpuConfig, profiles: I) -> Thresholds
    where
        I: IntoIterator<Item = &'a AppProfile>,
    {
        let peak = device.bytes_per_cycle_to_gbps(device.peak_dram_bytes_per_cycle());
        let mut ipc_max = f64::MIN;
        let mut any = false;
        for p in profiles {
            any = true;
            ipc_max = ipc_max.max(p.ipc);
        }
        assert!(any, "cannot derive thresholds from an empty suite");
        Thresholds {
            alpha: 0.55 * peak,
            beta: 0.30 * peak,
            gamma: 0.55 * peak,
            epsilon: 0.20 * ipc_max,
            r_cut: 0.2,
        }
    }

    /// The literal GTX 480 values the thesis quotes (§3.2.1):
    /// α = 107 GB/s, β = 50 GB/s, γ = 100 GB/s, ε = 200 IPC.
    pub fn paper_gtx480() -> Thresholds {
        Thresholds {
            alpha: 107.0,
            beta: 50.0,
            gamma: 100.0,
            epsilon: 200.0,
            r_cut: 0.2,
        }
    }
}

/// Classifies one profile under `t` (Table 3.1, checked in M → MC → C →
/// A order; A is the fall-through).
pub fn classify(p: &AppProfile, t: &Thresholds) -> AppClass {
    if p.memory_bw > t.alpha {
        AppClass::M
    } else if p.memory_bw > t.beta {
        AppClass::Mc
    } else if (p.l2_l1_bw > t.gamma || p.r > t.r_cut) && p.ipc < t.epsilon {
        AppClass::C
    } else {
        AppClass::A
    }
}

/// Classifies a whole suite with thresholds derived from the device
/// and the measured suite, returning `(thresholds, classes)` in input
/// order.
pub fn classify_suite(
    device: &gcs_sim::GpuConfig,
    profiles: &[AppProfile],
) -> (Thresholds, Vec<AppClass>) {
    let t = Thresholds::derive(device, profiles);
    let classes = profiles.iter().map(|p| classify(p, &t)).collect();
    (t, classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(mb: f64, l2: f64, ipc: f64, r: f64) -> AppProfile {
        AppProfile {
            name: "t".into(),
            memory_bw: mb,
            l2_l1_bw: l2,
            ipc,
            r,
            utilization: 0.5,
            cycles: 1000,
            thread_insts: 1000,
            num_sms: 60,
        }
    }

    #[test]
    fn paper_thresholds_reproduce_table_32() {
        // Feed the thesis' own Table 3.2 numbers through the classifier
        // with its quoted thresholds. Two rows of the table contradict
        // the thesis' own stated rules (documented in DESIGN.md §5):
        // SPMV (IPC 208.7 > ε = 200, so the C criterion fails) and SAD
        // (MB 57.35 > β = 50, which places it in MC, not A). The other
        // twelve must match exactly.
        let t = Thresholds::paper_gtx480();
        let mut mismatches = Vec::new();
        for row in gcs_workloads::PAPER_PROFILES {
            let p = profile(row.memory_bw, row.l2_l1_bw, row.ipc, row.r);
            let got = classify(&p, &t);
            let want = AppClass::from_label(&row.class.to_string()).unwrap();
            if got != want {
                mismatches.push(row.bench);
            }
        }
        assert!(
            mismatches
                .iter()
                .all(|b| matches!(
                    b,
                    gcs_workloads::Benchmark::Spmv | gcs_workloads::Benchmark::Sad
                )),
            "unexpected Table 3.2 mismatches: {mismatches:?}"
        );
        assert!(mismatches.len() <= 2);
    }

    #[test]
    fn class_order_m_first() {
        let t = Thresholds::paper_gtx480();
        // Very high MB dominates all other signals.
        let p = profile(150.0, 150.0, 10.0, 0.5);
        assert_eq!(classify(&p, &t), AppClass::M);
    }

    #[test]
    fn mc_band() {
        let t = Thresholds::paper_gtx480();
        assert_eq!(classify(&profile(80.0, 10.0, 900.0, 0.01), &t), AppClass::Mc);
    }

    #[test]
    fn c_requires_low_ipc() {
        let t = Thresholds::paper_gtx480();
        assert_eq!(classify(&profile(30.0, 130.0, 100.0, 0.1), &t), AppClass::C);
        // Same traffic but high IPC -> A.
        assert_eq!(classify(&profile(30.0, 130.0, 900.0, 0.1), &t), AppClass::A);
    }

    #[test]
    fn c_via_r_cut() {
        let t = Thresholds::paper_gtx480();
        assert_eq!(classify(&profile(10.0, 10.0, 50.0, 0.3), &t), AppClass::C);
    }

    #[test]
    fn a_is_fallthrough() {
        let t = Thresholds::paper_gtx480();
        // LUD-like: everything low -> A.
        assert_eq!(classify(&profile(0.2, 8.0, 40.0, 0.03), &t), AppClass::A);
    }

    #[test]
    fn derived_thresholds_track_device_and_suite() {
        let suite = vec![
            profile(200.0, 100.0, 1000.0, 0.1),
            profile(50.0, 140.0, 100.0, 0.1),
        ];
        let dev = gcs_sim::GpuConfig::gtx480();
        let peak = dev.bytes_per_cycle_to_gbps(dev.peak_dram_bytes_per_cycle());
        let t = Thresholds::derive(&dev, &suite);
        assert!((t.alpha - 0.55 * peak).abs() < 1e-9);
        assert!((t.beta - 0.30 * peak).abs() < 1e-9);
        assert!((t.gamma - 0.55 * peak).abs() < 1e-9);
        assert!((t.epsilon - 200.0).abs() < 1e-9, "0.2 x measured IPCmax");
        // The thesis' own GTX 480 numbers fall out of the same factors.
        assert!((t.alpha - 107.0).abs() < 10.0);
        assert!((t.beta - 50.0).abs() < 7.0);
        assert!((t.gamma - 100.0).abs() < 10.0);
    }

    #[test]
    fn label_roundtrip() {
        for c in AppClass::ALL {
            assert_eq!(AppClass::from_label(c.label()), Some(c));
            assert_eq!(AppClass::from_index(c.index()), c);
        }
        assert_eq!(AppClass::from_label("x"), Some(AppClass::Mc));
        assert_eq!(AppClass::from_label("zz"), None);
    }
}
