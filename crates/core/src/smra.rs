//! SMRA — the dynamic SM reallocation controller (§3.2.4, Algorithm 1).
//!
//! Every `T_C` cycles the controller scores each running application
//! from windowed statistics: +1 if its IPC is below `IPC_thr`, +1 if its
//! DRAM bandwidth exceeds `BW_thr`. A high score means the application
//! ties up SMs while waiting on memory; the controller drains `n_r` SMs
//! from the highest-scoring application and hands them to the
//! lowest-scoring one. If device throughput *dropped* since the last
//! window, the previous move is reverted instead. `R_min` floors every
//! application's allocation.
//!
//! ## Graceful degradation under SM faults
//!
//! When a [`gcs_sim::FaultPlan`] disables SMs mid-run the controller
//! keeps operating over the *surviving* set: fair shares are computed
//! against [`Gpu::num_enabled_sms`] instead of the configured total, and
//! `R_min` is renormalized proportionally (always ≥ 1). A change in the
//! surviving-SM count between windows is logged as
//! [`SmraAction::FaultDetected`] and suppresses the revert guard for
//! that window — the throughput drop is fault-induced, not move-induced,
//! so undoing the last move would punish the wrong cause.

use gcs_sim::gpu::Gpu;
use gcs_sim::kernel::AppId;
use gcs_sim::stats::{window_between, SimStats};

/// Tunables of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmraParams {
    /// Window length `T_C` in cycles between controller decisions.
    pub tc: u64,
    /// IPC threshold as a fraction of the app's fair-share peak
    /// (`frac × peak_thread_ipc × sm_share`).
    pub ipc_thr_frac: f64,
    /// Bandwidth threshold as a fraction of the app's fair share of
    /// peak DRAM bytes/cycle.
    pub bw_thr_frac: f64,
    /// SMs moved per decision (`n_r`).
    pub nr: u32,
    /// Minimum SMs an application keeps (`R_min`).
    pub r_min: u32,
}

impl SmraParams {
    /// Defaults used by the evaluation harness: `T_C` = 5000 cycles,
    /// thresholds at half the fair share, 2 SMs per move, floor of 4
    /// SMs (scaled down for small devices by [`SmraParams::for_device`]).
    pub fn for_device(num_sms: u32, num_apps: u32) -> SmraParams {
        let share = (num_sms / num_apps.max(1)).max(1);
        SmraParams {
            tc: 5_000,
            ipc_thr_frac: 0.5,
            bw_thr_frac: 0.5,
            nr: (share / 8).max(1),
            r_min: (share / 4).max(1),
        }
    }
}

impl Default for SmraParams {
    fn default() -> Self {
        SmraParams::for_device(60, 2)
    }
}

/// One controller decision, reported for tracing/tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmraAction {
    /// No change this window (scores tied, or apps finished).
    Hold,
    /// Moved `n` SMs from `from` to `to`.
    Move {
        /// Donor application.
        from: AppId,
        /// Recipient application.
        to: AppId,
        /// SMs moved.
        n: u32,
    },
    /// Reverted the previous move because throughput dropped.
    Revert,
    /// The surviving-SM count changed since the last window (an SM was
    /// disabled or re-enabled by a fault plan). The controller resets
    /// its throughput baseline and pending-move state before scoring.
    FaultDetected {
        /// SMs still in service after the change.
        surviving: u32,
    },
}

/// Algorithm 1 state.
#[derive(Debug)]
pub struct SmraController {
    params: SmraParams,
    apps: Vec<AppId>,
    prev_throughput: Option<f64>,
    last_move: Option<(AppId, AppId, u32)>,
    prev_stats: SimStats,
    prev_surviving: Option<u32>,
    actions: Vec<SmraAction>,
}

impl SmraController {
    /// Creates a controller for `apps` with `params`, snapshotting the
    /// device's current counters as the first window baseline.
    pub fn new(params: SmraParams, apps: Vec<AppId>, gpu: &Gpu) -> Self {
        SmraController {
            params,
            apps,
            prev_throughput: None,
            last_move: None,
            prev_stats: gpu.stats().clone(),
            prev_surviving: None,
            actions: Vec::new(),
        }
    }

    /// Parameters in force.
    pub fn params(&self) -> &SmraParams {
        &self.params
    }

    /// Decision log (most recent last).
    pub fn actions(&self) -> &[SmraAction] {
        &self.actions
    }

    /// Runs the co-scheduled group to completion, invoking the
    /// controller every `T_C` cycles.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (timeout after `max_cycles`).
    pub fn run_to_completion(
        &mut self,
        gpu: &mut Gpu,
        max_cycles: u64,
    ) -> Result<(), gcs_sim::SimError> {
        while !gpu.all_done() {
            if gpu.cycle() >= max_cycles {
                return Err(gpu.timeout_error());
            }
            gpu.run_for(self.params.tc);
            if !gpu.all_done() {
                self.decide(gpu);
            }
        }
        Ok(())
    }

    /// One Algorithm 1 decision based on the window since the previous
    /// call. Returns the action taken.
    pub fn decide(&mut self, gpu: &mut Gpu) -> SmraAction {
        let now_stats = gpu.stats();
        let delta = now_stats.cycles.saturating_sub(self.prev_stats.cycles);
        if delta == 0 {
            return self.log(SmraAction::Hold);
        }
        let window = window_between(&self.prev_stats, now_stats, delta);
        self.prev_stats.copy_from(gpu.stats());

        // Fault detection: if the surviving-SM set changed since the
        // last window, this window's throughput delta is fault-induced
        // rather than move-induced. Drop the pending move and the
        // throughput baseline so the revert guard does not fire on it.
        let surviving = gpu.num_enabled_sms().max(1);
        if self.prev_surviving.is_some_and(|prev| prev != surviving) {
            self.last_move = None;
            self.prev_throughput = None;
            self.log(SmraAction::FaultDetected { surviving });
        }
        self.prev_surviving = Some(surviving);

        // Revert when the previous move hurt device throughput
        // (Algorithm 1's `while T > Tp` guard).
        let throughput = window.device_ipc;
        if let (Some(prev), Some((from, to, n))) = (self.prev_throughput, self.last_move) {
            if throughput < prev * 0.995 {
                gpu.transfer_sms(to, from, n);
                self.last_move = None;
                self.prev_throughput = Some(throughput);
                return self.log(SmraAction::Revert);
            }
        }
        self.prev_throughput = Some(throughput);

        // Score the running applications.
        let cfg = gpu.config();
        let peak_ipc = cfg.peak_thread_ipc();
        let peak_bw = cfg.peak_dram_bytes_per_cycle();
        let running: Vec<AppId> = self
            .apps
            .iter()
            .copied()
            .filter(|&a| !gpu.app_finished(a))
            .collect();
        if running.len() < 2 {
            self.last_move = None;
            return self.log(SmraAction::Hold);
        }
        let mut scored: Vec<(AppId, u32, u32)> = Vec::with_capacity(running.len());
        for &app in &running {
            let sms = gpu.sm_count(app);
            let share = f64::from(sms) / f64::from(surviving);
            let ipc_thr = self.params.ipc_thr_frac * peak_ipc * share;
            let bw_thr = self.params.bw_thr_frac * peak_bw / running.len() as f64;
            let slot = usize::from(app.0);
            let mut v = 0u32;
            if window.app_ipc[slot] < ipc_thr {
                v += 1;
            }
            if window.app_bw[slot] > bw_thr {
                v += 2;
            }
            scored.push((app, v, sms));
        }

        let &(worst, worst_v, worst_sms) = scored
            .iter()
            .max_by_key(|&&(_, v, _)| v)
            .expect("running is non-empty");
        let &(best, best_v, _) = scored
            .iter()
            .min_by_key(|&&(_, v, _)| v)
            .expect("running is non-empty");
        // Tied scores: all apps behave alike, keep the partition
        // (Algorithm 1's break on V[i] == V[i+1]).
        if worst_v == best_v {
            self.last_move = None;
            return self.log(SmraAction::Hold);
        }
        // Respect R_min on the donor, renormalized to the surviving set
        // (identical to the configured floor on a healthy device).
        let r_min_eff = (self.params.r_min * surviving)
            .div_ceil(cfg.num_sms)
            .max(1);
        let n = self.params.nr;
        if worst_sms < r_min_eff + n {
            self.last_move = None;
            return self.log(SmraAction::Hold);
        }
        let moved = gpu.transfer_sms(worst, best, n);
        if moved == 0 {
            self.last_move = None;
            return self.log(SmraAction::Hold);
        }
        self.last_move = Some((worst, best, moved));
        self.log(SmraAction::Move {
            from: worst,
            to: best,
            n: moved,
        })
    }

    fn log(&mut self, action: SmraAction) -> SmraAction {
        self.actions.push(action);
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_sim::config::GpuConfig;
    use gcs_workloads::{Benchmark, Scale};

    fn co_run(smra: bool) -> (u64, Vec<SmraAction>) {
        let cfg = GpuConfig::test_small();
        let mut gpu = Gpu::new(cfg).unwrap();
        // GUPS wastes SMs on memory stalls; SAD can use them.
        let a = gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).unwrap();
        let b = gpu.launch(Benchmark::Sad.kernel(Scale::TEST)).unwrap();
        gpu.partition_even();
        if smra {
            let params = SmraParams {
                tc: 2_000,
                ..SmraParams::for_device(8, 2)
            };
            let mut ctl = SmraController::new(params, vec![a, b], &gpu);
            ctl.run_to_completion(&mut gpu, 80_000_000).unwrap();
            (gpu.cycle(), ctl.actions().to_vec())
        } else {
            gpu.run(80_000_000).unwrap();
            (gpu.cycle(), Vec::new())
        }
    }

    #[test]
    fn controller_takes_actions() {
        let (_, actions) = co_run(true);
        assert!(!actions.is_empty(), "controller never ran");
    }

    #[test]
    fn smra_does_not_catastrophically_regress() {
        let (even, _) = co_run(false);
        let (smra, _) = co_run(true);
        // The revert guard bounds the damage; allow 25% slack on the
        // tiny test device.
        assert!(
            (smra as f64) < (even as f64) * 1.25,
            "SMRA {smra} vs Even {even}"
        );
    }

    #[test]
    fn params_scale_with_device() {
        let small = SmraParams::for_device(8, 2);
        let large = SmraParams::for_device(60, 2);
        assert!(small.nr >= 1 && small.r_min >= 1);
        assert!(large.nr > small.nr || large.r_min > small.r_min);
    }

    #[test]
    fn revert_follows_throughput_drop() {
        // Drive the controller with synthetic windows by manipulating a
        // real device: after a move, if device IPC falls the controller
        // must revert rather than keep digging.
        let cfg = GpuConfig::test_small();
        let mut gpu = Gpu::new(cfg).unwrap();
        let a = gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).unwrap();
        let b = gpu.launch(Benchmark::Sad.kernel(Scale::TEST)).unwrap();
        gpu.partition_even();
        let params = SmraParams {
            tc: 1_000,
            nr: 1,
            r_min: 1,
            ..SmraParams::for_device(8, 2)
        };
        let mut ctl = SmraController::new(params, vec![a, b], &gpu);
        ctl.run_to_completion(&mut gpu, 80_000_000).unwrap();
        // If any revert happened, a move must have preceded it.
        let acts = ctl.actions();
        for (i, act) in acts.iter().enumerate() {
            if matches!(act, SmraAction::Revert) {
                assert!(
                    acts[..i]
                        .iter()
                        .rev()
                        .find(|a| !matches!(a, SmraAction::Hold))
                        .is_some_and(|a| matches!(a, SmraAction::Move { .. })),
                    "revert without a preceding move: {acts:?}"
                );
            }
        }
    }

    #[test]
    fn r_min_floor_is_respected() {
        let cfg = GpuConfig::test_small();
        let mut gpu = Gpu::new(cfg).unwrap();
        let a = gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).unwrap();
        let b = gpu.launch(Benchmark::Sad.kernel(Scale::TEST)).unwrap();
        gpu.partition_even();
        let params = SmraParams {
            tc: 1_000,
            nr: 1,
            r_min: 3,
            ..SmraParams::for_device(8, 2)
        };
        let mut ctl = SmraController::new(params, vec![a, b], &gpu);
        while !gpu.all_done() {
            gpu.run_for(params.tc);
            if !gpu.all_done() {
                ctl.decide(&mut gpu);
                if !gpu.app_finished(a) && !gpu.app_finished(b) {
                    assert!(
                        gpu.sm_count(a) >= params.r_min,
                        "donor dipped below R_min: {}",
                        gpu.sm_count(a)
                    );
                    assert!(gpu.sm_count(b) >= params.r_min);
                }
            }
            assert!(gpu.cycle() < 80_000_000, "runaway");
        }
    }

    #[test]
    fn sm_total_is_conserved_across_every_decision() {
        let cfg = GpuConfig::test_small();
        let total = cfg.num_sms;
        let mut gpu = Gpu::new(cfg).unwrap();
        let a = gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).unwrap();
        let b = gpu.launch(Benchmark::Sad.kernel(Scale::TEST)).unwrap();
        gpu.partition_even();
        assert_eq!(gpu.sm_count(a) + gpu.sm_count(b), total);
        let params = SmraParams {
            tc: 1_000,
            nr: 1,
            r_min: 1,
            ..SmraParams::for_device(8, 2)
        };
        let mut ctl = SmraController::new(params, vec![a, b], &gpu);
        let mut decisions = 0u32;
        while !gpu.all_done() {
            gpu.run_for(params.tc);
            if !gpu.all_done() {
                ctl.decide(&mut gpu);
                decisions += 1;
                if !gpu.app_finished(a) && !gpu.app_finished(b) {
                    assert_eq!(
                        gpu.sm_count(a) + gpu.sm_count(b),
                        total,
                        "SMs leaked/duplicated after decision {decisions}: {:?}",
                        ctl.actions().last()
                    );
                }
            }
            assert!(gpu.cycle() < 80_000_000, "runaway");
        }
        assert!(decisions > 0, "co-run finished before any decision");
    }

    #[test]
    fn throughput_drop_forces_a_revert_and_restores_the_donor() {
        // Deterministic revert: record a fake previous move together
        // with an unreachable previous throughput, so the very next
        // window must trigger Algorithm 1's `T < Tp` branch and hand the
        // SM back to its donor.
        let cfg = GpuConfig::test_small();
        let mut gpu = Gpu::new(cfg).unwrap();
        let a = gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).unwrap();
        let b = gpu.launch(Benchmark::Sad.kernel(Scale::TEST)).unwrap();
        gpu.partition_even();
        let params = SmraParams {
            tc: 1_000,
            nr: 1,
            r_min: 1,
            ..SmraParams::for_device(8, 2)
        };
        let mut ctl = SmraController::new(params, vec![a, b], &gpu);
        gpu.run_for(params.tc);
        let moved = gpu.transfer_sms(a, b, 1);
        assert_eq!(moved, 1, "device refused the staged move");
        let donor_after_move = gpu.sm_count(a);
        ctl.last_move = Some((a, b, 1));
        ctl.prev_throughput = Some(f64::MAX);
        assert_eq!(ctl.decide(&mut gpu), SmraAction::Revert);
        assert_eq!(
            gpu.sm_count(a),
            donor_after_move + 1,
            "revert did not restore the donor's SM"
        );
        assert!(
            ctl.last_move.is_none(),
            "revert must clear the pending move so it cannot re-revert"
        );
    }

    #[test]
    fn decide_holds_with_one_running_app() {
        let cfg = GpuConfig::test_small();
        let mut gpu = Gpu::new(cfg).unwrap();
        let a = gpu.launch(Benchmark::Lud.kernel(Scale::TEST)).unwrap();
        gpu.partition_even();
        let mut ctl = SmraController::new(SmraParams::for_device(8, 1), vec![a], &gpu);
        gpu.run_for(100);
        assert_eq!(ctl.decide(&mut gpu), SmraAction::Hold);
    }
}
