//! Class-pattern enumeration and e-coefficients (§3.2.3, Eq. 3.1–3.4).
//!
//! A *pattern* is a multiset of `NC` classes that could co-run: for
//! `NT = 4` classes and `NC = 2` concurrent applications there are
//! `C(NT + NC − 1, NC) = 10` patterns (Eq. 3.2). Each pattern `p_i`
//! carries a quality coefficient `e_i` — the mean inverse slowdown of
//! its members when co-running (Eq. 3.4) — which becomes the objective
//! weight of the ILP.

use crate::classify::AppClass;
use crate::interference::InterferenceMatrix;

/// A pattern: per-class multiplicities summing to `NC` (Eq. 3.1's
/// column vector).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    counts: [u8; AppClass::COUNT],
}

impl Pattern {
    /// Builds a pattern from per-class counts.
    pub fn new(counts: [u8; AppClass::COUNT]) -> Self {
        Pattern { counts }
    }

    /// Multiplicity of `class` in this pattern.
    pub fn count(&self, class: AppClass) -> u8 {
        self.counts[class.index()]
    }

    /// Per-class counts.
    pub fn counts(&self) -> &[u8; AppClass::COUNT] {
        &self.counts
    }

    /// Total applications in the pattern (the paper's `NC`).
    pub fn size(&self) -> u32 {
        self.counts.iter().map(|&c| u32::from(c)).sum()
    }

    /// The classes in the pattern, expanded with multiplicity.
    pub fn members(&self) -> Vec<AppClass> {
        let mut out = Vec::with_capacity(self.size() as usize);
        for class in AppClass::ALL {
            for _ in 0..self.count(class) {
                out.push(class);
            }
        }
        out
    }

    /// Eq. 3.4: `e = (1/NC) Σ_k 1/S_k`, where `S_k` is the slowdown
    /// member `k` suffers from its co-runners. For a member of class
    /// `c`, the slowdown is averaged over the other `NC − 1` members'
    /// classes in the interference matrix.
    ///
    /// # Panics
    ///
    /// Panics on patterns with fewer than two members (a lone app has no
    /// co-run slowdown).
    pub fn e_coefficient(&self, matrix: &InterferenceMatrix) -> f64 {
        let members = self.members();
        assert!(members.len() >= 2, "pattern needs at least two members");
        let nc = members.len() as f64;
        let mut sum = 0.0;
        for (k, &me) in members.iter().enumerate() {
            let mut s = 0.0;
            let mut n = 0.0;
            for (j, &other) in members.iter().enumerate() {
                if j != k {
                    s += matrix.slowdown(me, other);
                    n += 1.0;
                }
            }
            let avg_slowdown = s / n;
            sum += 1.0 / avg_slowdown.max(1e-9);
        }
        sum / nc
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let members = self.members();
        let labels: Vec<&str> = members.iter().map(|c| c.label()).collect();
        write!(f, "{}", labels.join("-"))
    }
}

/// Enumerates every multiset of `nc` classes in lexicographic order
/// (Eq. 3.2 predicts the count). The order matches the thesis'
/// Appendix A listing for `nc = 2`:
/// `M-M, M-MC, M-C, M-A, MC-MC, MC-C, MC-A, C-C, C-A, A-A`.
pub fn enumerate_patterns(nc: u32) -> Vec<Pattern> {
    let mut out = Vec::new();
    let mut counts = [0u8; AppClass::COUNT];
    fill(&mut out, &mut counts, 0, nc);
    out
}

fn fill(out: &mut Vec<Pattern>, counts: &mut [u8; AppClass::COUNT], from: usize, left: u32) {
    if left == 0 {
        out.push(Pattern::new(*counts));
        return;
    }
    if from >= AppClass::COUNT {
        return;
    }
    // Lexicographic multiset enumeration: first class index is
    // non-decreasing, so M-heavy patterns come first (Appendix A order).
    for take in (0..=left).rev() {
        counts[from] = take as u8;
        fill(out, counts, from + 1, left - take);
    }
    counts[from] = 0;
}

/// `C(nt + nc - 1, nc)` — the paper's `NP` (Eq. 3.2).
pub fn num_patterns(nt: u32, nc: u32) -> u64 {
    binomial(u64::from(nt + nc - 1), u64::from(nc))
}

fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc = 1u64;
    for i in 0..k {
        acc = acc * (n - i) / (i + 1);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interference::InterferenceMatrix;

    #[test]
    fn count_matches_eq_32() {
        assert_eq!(enumerate_patterns(2).len() as u64, num_patterns(4, 2));
        assert_eq!(enumerate_patterns(3).len() as u64, num_patterns(4, 3));
        assert_eq!(num_patterns(4, 2), 10);
        assert_eq!(num_patterns(4, 3), 20);
    }

    #[test]
    fn appendix_a_order_for_pairs() {
        let pats = enumerate_patterns(2);
        let shown: Vec<String> = pats.iter().map(|p| p.to_string()).collect();
        assert_eq!(
            shown,
            vec![
                "M-M", "M-MC", "M-C", "M-A", "MC-MC", "MC-C", "MC-A", "C-C", "C-A", "A-A"
            ]
        );
    }

    #[test]
    fn pattern_sizes_are_nc() {
        for p in enumerate_patterns(3) {
            assert_eq!(p.size(), 3);
            assert_eq!(p.members().len(), 3);
        }
    }

    #[test]
    fn patterns_are_distinct() {
        let pats = enumerate_patterns(3);
        for (i, a) in pats.iter().enumerate() {
            for b in &pats[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn e_coefficient_prefers_gentle_pairs() {
        let m = InterferenceMatrix::synthetic_paper_shape();
        let pats = enumerate_patterns(2);
        let e: Vec<f64> = pats.iter().map(|p| p.e_coefficient(&m)).collect();
        // A-A (last) must beat M-M (first): class M applications
        // destroy each other through the memory controllers.
        assert!(
            e[9] > e[0] * 2.0,
            "e(A-A) = {} should dwarf e(M-M) = {}",
            e[9],
            e[0]
        );
    }

    #[test]
    fn e_symmetric_pair_is_inverse_slowdown() {
        let m = InterferenceMatrix::uniform(2.0);
        let p = Pattern::new([2, 0, 0, 0]);
        assert!((p.e_coefficient(&m) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two members")]
    fn singleton_pattern_panics() {
        let m = InterferenceMatrix::uniform(1.0);
        Pattern::new([1, 0, 0, 0]).e_coefficient(&m);
    }

    #[test]
    fn binomial_edges() {
        assert_eq!(num_patterns(4, 1), 4);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(3, 5), 0);
    }
}
