//! Per-class interference measurement (§3.2.2, Fig 3.4).
//!
//! For every ordered class pair `(i, j)` the matrix stores the average
//! slowdown a class-`i` application suffers when co-running with a
//! class-`j` application on an even split of the device, relative to
//! running alone on the *whole* device:
//!
//! ```text
//! S(i | j) = cycles(i co-run with j, N/2 SMs) / cycles(i alone, N SMs)
//! ```
//!
//! The thesis' qualitative finding — class M slows everyone down
//! (FR-FCFS row-hit priority feeds the streaming apps), class-MC apps
//! suffer the most from class M, and A-A pairs barely interfere — is
//! reproduced by measurement on the simulator.

use gcs_sim::config::GpuConfig;
use gcs_workloads::{Benchmark, Scale};

use crate::classify::AppClass;
use crate::sweep::{CorunMode, SweepEngine};
use crate::CoreError;

/// The 4×4 class slowdown matrix. `slowdown(i, j)` ≥ 1 means class `i`
/// runs that many times longer next to class `j` than alone.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceMatrix {
    s: [[f64; AppClass::COUNT]; AppClass::COUNT],
}

impl InterferenceMatrix {
    /// Builds a matrix from raw entries (`s[i][j]` = slowdown of class
    /// `i` with class `j`).
    ///
    /// # Panics
    ///
    /// Panics if any entry is not finite and ≥ 1 − 1e-6 (co-running
    /// cannot speed an application up in this model).
    pub fn from_entries(s: [[f64; AppClass::COUNT]; AppClass::COUNT]) -> Self {
        for row in &s {
            for &v in row {
                assert!(v.is_finite() && v >= 1.0 - 1e-6, "bad slowdown {v}");
            }
        }
        InterferenceMatrix { s }
    }

    /// Slowdown of `victim` when co-running with `aggressor`.
    pub fn slowdown(&self, victim: AppClass, aggressor: AppClass) -> f64 {
        self.s[victim.index()][aggressor.index()]
    }

    /// All entries.
    pub fn entries(&self) -> &[[f64; AppClass::COUNT]; AppClass::COUNT] {
        &self.s
    }

    /// A uniform matrix (every pair slows down by `s`); useful in tests.
    pub fn uniform(s: f64) -> Self {
        Self::from_entries([[s; AppClass::COUNT]; AppClass::COUNT])
    }

    /// A synthetic matrix with the qualitative shape of Fig 3.4: M hurts
    /// everyone, MC suffers most from M, A pairs are nearly free. Used
    /// by tests and as a documented fallback when measurement is too
    /// expensive.
    pub fn synthetic_paper_shape() -> Self {
        // rows: victim M, MC, C, A; cols: aggressor M, MC, C, A.
        Self::from_entries([
            [5.5, 4.0, 3.0, 2.6],
            [6.5, 4.2, 3.0, 2.5],
            [4.5, 3.5, 2.6, 2.2],
            [3.5, 2.8, 2.3, 2.05],
        ])
    }

    /// Measures the matrix exactly as §3.2.2 prescribes: co-runs **every
    /// unordered benchmark pair** of the 14-app suite on an even split,
    /// records each app's slowdown against its alone run, and averages
    /// the samples into the 4×4 class cells (classes per Table 3.2).
    ///
    /// This is 14 alone runs plus 105 co-runs — the expensive, faithful
    /// variant. [`InterferenceMatrix::measure`] is the cheap
    /// one-representative-per-class approximation. Both are thin
    /// wrappers over the engine-backed variants with a sequential
    /// [`SweepEngine`]; pass your own engine to parallelize and memoize
    /// the sweep.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn measure_full(cfg: &GpuConfig, scale: Scale) -> Result<Self, CoreError> {
        Self::measure_full_with(&SweepEngine::sequential(), cfg, scale)
    }

    /// [`InterferenceMatrix::measure_full`] through a caller-provided
    /// [`SweepEngine`]: the 14 alone runs fan out as one parallel batch,
    /// the 105 pair co-runs as a second, and every job is memoized under
    /// the engine's cache. Results are bit-identical to the sequential
    /// path at any thread count.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn measure_full_with(
        engine: &SweepEngine,
        cfg: &GpuConfig,
        scale: Scale,
    ) -> Result<Self, CoreError> {
        Self::measure_suite_with(engine, cfg, scale, &Benchmark::ALL)
    }

    /// The §3.2.2 procedure over an arbitrary benchmark subset: all
    /// alone runs, then all unordered pairs, averaged into class cells.
    /// The determinism suite uses small subsets to keep runtimes down.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn measure_suite_with(
        engine: &SweepEngine,
        cfg: &GpuConfig,
        scale: Scale,
        suite: &[Benchmark],
    ) -> Result<Self, CoreError> {
        // Batch 1: alone runs on the whole device. An alone profile and
        // an even partition of a single app assign the identical SM set,
        // so this shares cache entries with suite profiling.
        let profiles = engine.profile_suite(cfg, scale, suite)?;
        let alone: Vec<u64> = profiles.iter().map(|p| p.cycles.max(1)).collect();

        // Batch 2: every unordered pair on an even split.
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for i in 0..suite.len() {
            for j in i..suite.len() {
                pairs.push((i, j));
            }
        }
        let jobs: Vec<(Vec<Benchmark>, CorunMode)> = pairs
            .iter()
            .map(|&(i, j)| (vec![suite[i], suite[j]], CorunMode::Even))
            .collect();
        let outcomes = engine.corun_batch(cfg, scale, &jobs)?;

        // Accumulate in job order — the same order the sequential nested
        // loop used, so the averages are bit-identical.
        let mut sum = [[0.0f64; AppClass::COUNT]; AppClass::COUNT];
        let mut n = [[0u32; AppClass::COUNT]; AppClass::COUNT];
        for (&(i, j), out) in pairs.iter().zip(&outcomes) {
            let si = (out.cycles[0] as f64 / alone[i] as f64).max(1.0);
            let sj = (out.cycles[1] as f64 / alone[j] as f64).max(1.0);
            let ci = crate::queues::paper_class(suite[i]).index();
            let cj = crate::queues::paper_class(suite[j]).index();
            sum[ci][cj] += si;
            n[ci][cj] += 1;
            sum[cj][ci] += sj;
            n[cj][ci] += 1;
        }
        let mut s = [[1.0f64; AppClass::COUNT]; AppClass::COUNT];
        for i in 0..AppClass::COUNT {
            for j in 0..AppClass::COUNT {
                if n[i][j] > 0 {
                    s[i][j] = (sum[i][j] / f64::from(n[i][j])).max(1.0);
                }
            }
        }
        Ok(Self::from_entries(s))
    }

    /// Measures the matrix on `cfg` by co-running one representative
    /// benchmark per class (even SM split) against the representative of
    /// every class, comparing to alone runs.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn measure(cfg: &GpuConfig, scale: Scale) -> Result<Self, CoreError> {
        Self::measure_with(&SweepEngine::sequential(), cfg, scale)
    }

    /// [`InterferenceMatrix::measure`] through a caller-provided engine.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn measure_with(
        engine: &SweepEngine,
        cfg: &GpuConfig,
        scale: Scale,
    ) -> Result<Self, CoreError> {
        let reps: [Benchmark; AppClass::COUNT] = [
            Benchmark::Blk,  // M
            Benchmark::Fft,  // MC
            Benchmark::Spmv, // C
            Benchmark::Sad,  // A
        ];

        // Alone runtimes on the full device.
        let profiles = engine.profile_suite(cfg, scale, &reps)?;
        let alone: Vec<u64> = profiles.iter().map(|p| p.cycles.max(1)).collect();

        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for i in 0..AppClass::COUNT {
            for j in i..AppClass::COUNT {
                pairs.push((i, j));
            }
        }
        let jobs: Vec<(Vec<Benchmark>, CorunMode)> = pairs
            .iter()
            .map(|&(i, j)| (vec![reps[i], reps[j]], CorunMode::Even))
            .collect();
        let outcomes = engine.corun_batch(cfg, scale, &jobs)?;

        let mut s = [[1.0f64; AppClass::COUNT]; AppClass::COUNT];
        for (&(i, j), out) in pairs.iter().zip(&outcomes) {
            let si = (out.cycles[0] as f64 / alone[i] as f64).max(1.0);
            let sj = (out.cycles[1] as f64 / alone[j] as f64).max(1.0);
            if j == i {
                // Same-class pair: both runs sample the same cell.
                s[i][i] = 0.5 * (si + sj);
            } else {
                s[i][j] = si;
                s[j][i] = sj;
            }
        }
        Ok(Self::from_entries(s))
    }
}

impl std::fmt::Display for InterferenceMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "victim\\aggr    M     MC      C      A")?;
        for victim in AppClass::ALL {
            write!(f, "{:>6}    ", victim.label())?;
            for aggr in AppClass::ALL {
                write!(f, "{:6.2} ", self.slowdown(victim, aggr))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matrix() {
        let m = InterferenceMatrix::uniform(2.0);
        for v in AppClass::ALL {
            for a in AppClass::ALL {
                assert_eq!(m.slowdown(v, a), 2.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bad slowdown")]
    fn speedups_rejected() {
        InterferenceMatrix::from_entries([[0.5; 4]; 4]);
    }

    #[test]
    fn synthetic_shape_m_dominates() {
        let m = InterferenceMatrix::synthetic_paper_shape();
        for victim in AppClass::ALL {
            assert!(
                m.slowdown(victim, AppClass::M) > m.slowdown(victim, AppClass::A),
                "M must hurt {victim} more than A does"
            );
        }
        // MC suffers more from M than M itself does (§3.2.2).
        assert!(m.slowdown(AppClass::Mc, AppClass::M) > m.slowdown(AppClass::M, AppClass::M));
    }

    #[test]
    fn display_contains_all_labels() {
        let shown = InterferenceMatrix::synthetic_paper_shape().to_string();
        for c in AppClass::ALL {
            assert!(shown.contains(c.label()));
        }
    }

    #[test]
    fn measured_matrix_on_tiny_device_is_sane() {
        // Smoke test: measurement completes and produces slowdowns ≥ 1
        // with the M column dominating the A column on average.
        let cfg = GpuConfig::test_small();
        let m = InterferenceMatrix::measure(&cfg, Scale::TEST).unwrap();
        let col = |a: AppClass| -> f64 {
            AppClass::ALL.iter().map(|&v| m.slowdown(v, a)).sum::<f64>() / 4.0
        };
        assert!(col(AppClass::M) >= 1.0);
        assert!(
            col(AppClass::M) > col(AppClass::A) * 0.8,
            "M column ({}) should not be far below A column ({})\n{m}",
            col(AppClass::M),
            col(AppClass::A)
        );
    }
}
