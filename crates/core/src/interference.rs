//! Per-class interference measurement (§3.2.2, Fig 3.4).
//!
//! For every ordered class pair `(i, j)` the matrix stores the average
//! slowdown a class-`i` application suffers when co-running with a
//! class-`j` application on an even split of the device, relative to
//! running alone on the *whole* device:
//!
//! ```text
//! S(i | j) = cycles(i co-run with j, N/2 SMs) / cycles(i alone, N SMs)
//! ```
//!
//! The thesis' qualitative finding — class M slows everyone down
//! (FR-FCFS row-hit priority feeds the streaming apps), class-MC apps
//! suffer the most from class M, and A-A pairs barely interfere — is
//! reproduced by measurement on the simulator.

use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::Gpu;
use gcs_sim::kernel::KernelDesc;
use gcs_workloads::{Benchmark, Scale};

use crate::classify::AppClass;
use crate::profile::PROFILE_MAX_CYCLES;
use crate::CoreError;

/// The 4×4 class slowdown matrix. `slowdown(i, j)` ≥ 1 means class `i`
/// runs that many times longer next to class `j` than alone.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceMatrix {
    s: [[f64; AppClass::COUNT]; AppClass::COUNT],
}

impl InterferenceMatrix {
    /// Builds a matrix from raw entries (`s[i][j]` = slowdown of class
    /// `i` with class `j`).
    ///
    /// # Panics
    ///
    /// Panics if any entry is not finite and ≥ 1 − 1e-6 (co-running
    /// cannot speed an application up in this model).
    pub fn from_entries(s: [[f64; AppClass::COUNT]; AppClass::COUNT]) -> Self {
        for row in &s {
            for &v in row {
                assert!(v.is_finite() && v >= 1.0 - 1e-6, "bad slowdown {v}");
            }
        }
        InterferenceMatrix { s }
    }

    /// Slowdown of `victim` when co-running with `aggressor`.
    pub fn slowdown(&self, victim: AppClass, aggressor: AppClass) -> f64 {
        self.s[victim.index()][aggressor.index()]
    }

    /// All entries.
    pub fn entries(&self) -> &[[f64; AppClass::COUNT]; AppClass::COUNT] {
        &self.s
    }

    /// A uniform matrix (every pair slows down by `s`); useful in tests.
    pub fn uniform(s: f64) -> Self {
        Self::from_entries([[s; AppClass::COUNT]; AppClass::COUNT])
    }

    /// A synthetic matrix with the qualitative shape of Fig 3.4: M hurts
    /// everyone, MC suffers most from M, A pairs are nearly free. Used
    /// by tests and as a documented fallback when measurement is too
    /// expensive.
    pub fn synthetic_paper_shape() -> Self {
        // rows: victim M, MC, C, A; cols: aggressor M, MC, C, A.
        Self::from_entries([
            [5.5, 4.0, 3.0, 2.6],
            [6.5, 4.2, 3.0, 2.5],
            [4.5, 3.5, 2.6, 2.2],
            [3.5, 2.8, 2.3, 2.05],
        ])
    }

    /// Measures the matrix exactly as §3.2.2 prescribes: co-runs **every
    /// unordered benchmark pair** of the 14-app suite on an even split,
    /// records each app's slowdown against its alone run, and averages
    /// the samples into the 4×4 class cells (classes per Table 3.2).
    ///
    /// This is 14 alone runs plus 105 co-runs — the expensive, faithful
    /// variant. [`InterferenceMatrix::measure`] is the cheap
    /// one-representative-per-class approximation.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn measure_full(cfg: &GpuConfig, scale: Scale) -> Result<Self, CoreError> {
        let suite: Vec<(Benchmark, KernelDesc)> = Benchmark::ALL
            .iter()
            .map(|b| (*b, b.kernel(scale)))
            .collect();

        let mut alone = Vec::with_capacity(suite.len());
        for (_, k) in &suite {
            let mut gpu = Gpu::new(cfg.clone())?;
            let app = gpu.launch(k.clone())?;
            gpu.partition_even();
            gpu.run(PROFILE_MAX_CYCLES)?;
            alone.push(gpu.stats().app(app).runtime_cycles().max(1));
        }

        let mut sum = [[0.0f64; AppClass::COUNT]; AppClass::COUNT];
        let mut n = [[0u32; AppClass::COUNT]; AppClass::COUNT];
        for i in 0..suite.len() {
            for j in i..suite.len() {
                let (si, sj) =
                    measure_pair(cfg, &suite[i].1, &suite[j].1, alone[i], alone[j])?;
                let ci = crate::queues::paper_class(suite[i].0).index();
                let cj = crate::queues::paper_class(suite[j].0).index();
                sum[ci][cj] += si;
                n[ci][cj] += 1;
                sum[cj][ci] += sj;
                n[cj][ci] += 1;
            }
        }
        let mut s = [[1.0f64; AppClass::COUNT]; AppClass::COUNT];
        for i in 0..AppClass::COUNT {
            for j in 0..AppClass::COUNT {
                if n[i][j] > 0 {
                    s[i][j] = (sum[i][j] / f64::from(n[i][j])).max(1.0);
                }
            }
        }
        Ok(Self::from_entries(s))
    }

    /// Measures the matrix on `cfg` by co-running one representative
    /// benchmark per class (even SM split) against the representative of
    /// every class, comparing to alone runs.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn measure(cfg: &GpuConfig, scale: Scale) -> Result<Self, CoreError> {
        let reps: [Benchmark; AppClass::COUNT] = [
            Benchmark::Blk,  // M
            Benchmark::Fft,  // MC
            Benchmark::Spmv, // C
            Benchmark::Sad,  // A
        ];
        let kernels: Vec<KernelDesc> = reps.iter().map(|b| b.kernel(scale)).collect();

        // Alone runtimes on the full device.
        let mut alone = [0u64; AppClass::COUNT];
        for (i, k) in kernels.iter().enumerate() {
            let mut gpu = Gpu::new(cfg.clone())?;
            let app = gpu.launch(k.clone())?;
            gpu.partition_even();
            gpu.run(PROFILE_MAX_CYCLES)?;
            alone[i] = gpu.stats().app(app).runtime_cycles().max(1);
        }

        let mut s = [[1.0f64; AppClass::COUNT]; AppClass::COUNT];
        for i in 0..AppClass::COUNT {
            for j in i..AppClass::COUNT {
                let (si, sj) = measure_pair(cfg, &kernels[i], &kernels[j], alone[i], alone[j])?;
                if j == i {
                    // Same-class pair: both runs sample the same cell.
                    s[i][i] = 0.5 * (si + sj);
                } else {
                    s[i][j] = si;
                    s[j][i] = sj;
                }
            }
        }
        Ok(Self::from_entries(s))
    }
}

/// Co-runs `a` and `b` on an even split; returns `(slowdown_a, slowdown_b)`
/// relative to the provided alone runtimes.
fn measure_pair(
    cfg: &GpuConfig,
    a: &KernelDesc,
    b: &KernelDesc,
    alone_a: u64,
    alone_b: u64,
) -> Result<(f64, f64), CoreError> {
    let mut gpu = Gpu::new(cfg.clone())?;
    // Co-running two instances of the same kernel needs distinct names
    // only for reporting; address spaces are separated by app slot.
    let ia = gpu.launch(a.clone())?;
    let ib = gpu.launch(b.clone())?;
    gpu.partition_even();
    gpu.run(PROFILE_MAX_CYCLES)?;
    let ca = gpu.stats().app(ia).runtime_cycles().max(1);
    let cb = gpu.stats().app(ib).runtime_cycles().max(1);
    Ok((
        (ca as f64 / alone_a as f64).max(1.0),
        (cb as f64 / alone_b as f64).max(1.0),
    ))
}

impl std::fmt::Display for InterferenceMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "victim\\aggr    M     MC      C      A")?;
        for victim in AppClass::ALL {
            write!(f, "{:>6}    ", victim.label())?;
            for aggr in AppClass::ALL {
                write!(f, "{:6.2} ", self.slowdown(victim, aggr))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matrix() {
        let m = InterferenceMatrix::uniform(2.0);
        for v in AppClass::ALL {
            for a in AppClass::ALL {
                assert_eq!(m.slowdown(v, a), 2.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bad slowdown")]
    fn speedups_rejected() {
        InterferenceMatrix::from_entries([[0.5; 4]; 4]);
    }

    #[test]
    fn synthetic_shape_m_dominates() {
        let m = InterferenceMatrix::synthetic_paper_shape();
        for victim in AppClass::ALL {
            assert!(
                m.slowdown(victim, AppClass::M) > m.slowdown(victim, AppClass::A),
                "M must hurt {victim} more than A does"
            );
        }
        // MC suffers more from M than M itself does (§3.2.2).
        assert!(m.slowdown(AppClass::Mc, AppClass::M) > m.slowdown(AppClass::M, AppClass::M));
    }

    #[test]
    fn display_contains_all_labels() {
        let shown = InterferenceMatrix::synthetic_paper_shape().to_string();
        for c in AppClass::ALL {
            assert!(shown.contains(c.label()));
        }
    }

    #[test]
    fn measured_matrix_on_tiny_device_is_sane() {
        // Smoke test: measurement completes and produces slowdowns ≥ 1
        // with the M column dominating the A column on average.
        let cfg = GpuConfig::test_small();
        let m = InterferenceMatrix::measure(&cfg, Scale::TEST).unwrap();
        let col = |a: AppClass| -> f64 {
            AppClass::ALL.iter().map(|&v| m.slowdown(v, a)).sum::<f64>() / 4.0
        };
        assert!(col(AppClass::M) >= 1.0);
        assert!(
            col(AppClass::M) > col(AppClass::A) * 0.8,
            "M column ({}) should not be far below A column ({})\n{m}",
            col(AppClass::M),
            col(AppClass::A)
        );
    }
}
