//! Graceful-degradation records and retry policy.
//!
//! The pipeline prefers a degraded-but-correct answer over an error:
//! the ILP grouping stage falls back to greedy class-aware grouping
//! when the solver gives up, and the sweep engine retries transient
//! job failures and quarantines corrupt cache entries instead of
//! aborting the whole sweep. Every such downgrade is recorded as a
//! [`Degradation`] so reports stay honest about how they were produced.

use std::time::Duration;

/// One recorded downgrade: the pipeline did something weaker than
/// asked, on purpose, instead of failing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Degradation {
    /// The ILP grouping solve failed (node budget exhausted, numeric
    /// infeasibility, ...) and the runner fell back to greedy
    /// class-aware grouping.
    IlpGreedyFallback {
        /// Solver error that triggered the fallback.
        reason: String,
    },
    /// A sweep job failed transiently and succeeded only after retry.
    JobRetried {
        /// Index of the retried job.
        job: usize,
        /// Attempts consumed before success (≥ 1 retries).
        attempts: u32,
    },
    /// A corrupt on-disk cache entry was moved aside and re-simulated.
    CacheQuarantined {
        /// File name of the quarantined entry.
        file: String,
    },
    /// The fleet allocator's throughput predictor found one or more
    /// profile curves missing from the memo cache and planning fell
    /// back to the per-device greedy pairing instead of simulating in
    /// the plan path (the same ladder shape as ILP → greedy).
    PredictorColdFallback {
        /// Profile curves that were not yet memo-cached.
        missing: usize,
    },
    /// A scheduler under decision-latency pressure planned with a
    /// weaker strategy than configured (the overload ladder: full
    /// re-solve → cached-plan reuse → greedy grouping).
    OverloadShed {
        /// Strategy that was configured (e.g. `"ilp"`).
        from: &'static str,
        /// Strategy actually used (e.g. `"cached-plan"`, `"greedy"`).
        to: &'static str,
        /// Jobs pending when the shed was taken.
        pending: usize,
    },
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Degradation::IlpGreedyFallback { reason } => {
                write!(f, "ilp grouping degraded to greedy: {reason}")
            }
            Degradation::JobRetried { job, attempts } => {
                write!(f, "job {job} succeeded after {attempts} attempts")
            }
            Degradation::CacheQuarantined { file } => {
                write!(f, "quarantined corrupt cache entry {file}")
            }
            Degradation::PredictorColdFallback { missing } => {
                write!(f, "fleet predictor cold ({missing} curves unprofiled); planned greedy")
            }
            Degradation::OverloadShed { from, to, pending } => {
                write!(f, "overload: {from} planning shed to {to} with {pending} pending")
            }
        }
    }
}

/// Bounded-backoff retry policy for transient sweep-job failures.
///
/// Deterministic job errors (the common case: a simulator timeout
/// replays identically) waste `max_retries` attempts and still fail,
/// so the default keeps the budget small. Panics are never retried —
/// they are isolated and reported as [`crate::CoreError::Worker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first failure.
    pub max_retries: u32,
    /// Backoff before retry `k` is `base_backoff_ms << (k - 1)`,
    /// capped at [`RetryPolicy::MAX_BACKOFF_MS`].
    pub base_backoff_ms: u64,
}

impl RetryPolicy {
    /// Backoff ceiling regardless of attempt count.
    pub const MAX_BACKOFF_MS: u64 = 1_000;

    /// No retries: every job failure is final.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_retries: 0,
        base_backoff_ms: 0,
    };

    /// Sleep before retry number `retry` (1-based). Zero for
    /// [`RetryPolicy::NONE`] or a nonsensical `retry` of 0.
    pub fn backoff(&self, retry: u32) -> Duration {
        if retry == 0 || self.base_backoff_ms == 0 {
            return Duration::ZERO;
        }
        let shift = (retry - 1).min(10);
        let ms = (self.base_backoff_ms << shift).min(Self::MAX_BACKOFF_MS);
        Duration::from_millis(ms)
    }
}

impl Default for RetryPolicy {
    /// Two retries, 10 ms base backoff.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff_ms: 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 8,
            base_backoff_ms: 100,
        };
        assert_eq!(p.backoff(0), Duration::ZERO);
        assert_eq!(p.backoff(1), Duration::from_millis(100));
        assert_eq!(p.backoff(2), Duration::from_millis(200));
        assert_eq!(p.backoff(3), Duration::from_millis(400));
        assert_eq!(
            p.backoff(9),
            Duration::from_millis(RetryPolicy::MAX_BACKOFF_MS)
        );
        // Large retry counts must not overflow the shift.
        assert_eq!(
            p.backoff(200),
            Duration::from_millis(RetryPolicy::MAX_BACKOFF_MS)
        );
    }

    #[test]
    fn none_never_sleeps() {
        assert_eq!(RetryPolicy::NONE.backoff(5), Duration::ZERO);
    }

    #[test]
    fn degradations_render() {
        let d = Degradation::IlpGreedyFallback {
            reason: "node limit".into(),
        };
        assert!(d.to_string().contains("greedy"));
        let r = Degradation::JobRetried {
            job: 7,
            attempts: 3,
        };
        assert!(r.to_string().contains("job 7"));
        let q = Degradation::CacheQuarantined {
            file: "ab12.json".into(),
        };
        assert!(q.to_string().contains("ab12.json"));
        let o = Degradation::OverloadShed {
            from: "ilp",
            to: "greedy",
            pending: 31,
        };
        assert!(o.to_string().contains("ilp"));
        assert!(o.to_string().contains("greedy"));
        assert!(o.to_string().contains("31 pending"));
    }
}
