//! The contention-minimization ILP (§3.2.3, Eq. 3.3–3.7).
//!
//! Decision variable `L_i` counts how many co-run groups use class
//! pattern `p_i`. The solver maximizes `f = Σ e_i L_i` (Eq. 3.3) subject
//! to the class-balance constraints (Eq. 3.6, relaxed to `≤` exactly as
//! the thesis' Appendix A does in Eq. 5.5) and the group-count equality
//! `Σ L_i = L = N_q / NC` (Eq. 3.7).

use crate::classify::AppClass;
use crate::interference::InterferenceMatrix;
use crate::pattern::{enumerate_patterns, Pattern};
use crate::CoreError;
use gcs_milp::{Problem, Relation};

/// Result of the grouping ILP.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupingSolution {
    /// `(pattern, multiplicity)` for every pattern with `L_i > 0`.
    pub multiplicities: Vec<(Pattern, u32)>,
    /// Optimal objective value `f`.
    pub objective: f64,
    /// The full `e` vector in pattern-enumeration order (diagnostics).
    pub e: Vec<f64>,
}

impl GroupingSolution {
    /// Expands the solution into a list of class multisets, one per
    /// group, in enumeration order.
    pub fn groups(&self) -> Vec<Vec<AppClass>> {
        let mut out = Vec::new();
        for (pattern, mult) in &self.multiplicities {
            for _ in 0..*mult {
                out.push(pattern.members());
            }
        }
        out
    }
}

/// Builds the Eq. 3.3–3.7 problem for the given per-class queue census.
///
/// Exposed separately from [`solve_grouping`] so tests and benches can
/// inspect or re-solve the exact formulation.
pub fn build_problem(class_counts: [u32; AppClass::COUNT], nc: u32, e: &[f64]) -> Problem {
    let patterns = enumerate_patterns(nc);
    assert_eq!(patterns.len(), e.len(), "one coefficient per pattern");
    let nq: u32 = class_counts.iter().sum();
    let l = nq / nc;

    let mut p = Problem::maximize(e.to_vec());
    // Eq. 3.6 (as ≤, following Appendix Eq. 5.5): class usage cannot
    // exceed the queue census.
    for class in AppClass::ALL {
        let row: Vec<f64> = patterns
            .iter()
            .map(|pat| f64::from(pat.count(class)))
            .collect();
        p.add_constraint(row, Relation::Le, f64::from(class_counts[class.index()]));
    }
    // Eq. 3.7: exactly L groups.
    p.add_constraint(vec![1.0; patterns.len()], Relation::Eq, f64::from(l));
    p.set_all_integer(true);
    p
}

/// Solves the grouping ILP for a queue with `class_counts` applications
/// per class, `nc` concurrent applications per group, and measured
/// interference `matrix`.
///
/// # Errors
///
/// * [`CoreError::BadQueue`] when the queue length is not divisible by
///   `nc` (the thesis assumes divisibility; callers peel off a remainder
///   group first).
/// * [`CoreError::Milp`] if the ILP is infeasible (cannot happen for a
///   consistent census) or hits the node limit.
pub fn solve_grouping(
    class_counts: [u32; AppClass::COUNT],
    nc: u32,
    matrix: &InterferenceMatrix,
) -> Result<GroupingSolution, CoreError> {
    solve_grouping_with_limit(class_counts, nc, matrix, None)
}

/// [`solve_grouping`] with an explicit branch & bound node budget
/// (`None` keeps the solver's default). The runner uses a tight budget
/// as a deterministic trigger for its greedy degradation path; tests
/// use it to prove that path.
///
/// # Errors
///
/// Same as [`solve_grouping`]; a too-small budget surfaces as
/// [`CoreError::Milp`] with [`gcs_milp::SolveError::NodeLimit`].
pub fn solve_grouping_with_limit(
    class_counts: [u32; AppClass::COUNT],
    nc: u32,
    matrix: &InterferenceMatrix,
    node_limit: Option<usize>,
) -> Result<GroupingSolution, CoreError> {
    let nq: u32 = class_counts.iter().sum();
    if nq == 0 || nc < 2 {
        return Err(CoreError::BadQueue(format!(
            "need a non-empty queue and nc >= 2 (got nq = {nq}, nc = {nc})"
        )));
    }
    if !nq.is_multiple_of(nc) {
        return Err(CoreError::BadQueue(format!(
            "queue length {nq} is not divisible by nc = {nc}"
        )));
    }
    let patterns = enumerate_patterns(nc);
    let e: Vec<f64> = patterns
        .iter()
        .map(|p| p.e_coefficient(matrix))
        .collect();
    solve_with_e_limited(class_counts, nc, &e, node_limit)
}

/// Solves the grouping ILP with an explicit `e` vector (used by the
/// Appendix A reproduction, which quotes the thesis' coefficients).
///
/// # Errors
///
/// Same as [`solve_grouping`].
pub fn solve_with_e(
    class_counts: [u32; AppClass::COUNT],
    nc: u32,
    e: &[f64],
) -> Result<GroupingSolution, CoreError> {
    solve_with_e_limited(class_counts, nc, e, None)
}

/// [`solve_with_e`] with an explicit branch & bound node budget.
///
/// # Errors
///
/// Same as [`solve_with_e`].
pub fn solve_with_e_limited(
    class_counts: [u32; AppClass::COUNT],
    nc: u32,
    e: &[f64],
    node_limit: Option<usize>,
) -> Result<GroupingSolution, CoreError> {
    let patterns = enumerate_patterns(nc);
    let mut problem = build_problem(class_counts, nc, e);
    if let Some(limit) = node_limit {
        problem.set_node_limit(limit);
    }
    let sol = problem.solve()?;
    let values = sol.rounded();
    let multiplicities: Vec<(Pattern, u32)> = patterns
        .into_iter()
        .zip(&values)
        .filter(|(_, &v)| v > 0)
        .map(|(p, &v)| (p, v as u32))
        .collect();
    Ok(GroupingSolution {
        multiplicities,
        objective: sol.objective,
        e: e.to_vec(),
    })
}

/// The thesis' Appendix A coefficient vector for two-application
/// patterns, in enumeration order
/// (M-M, M-MC, M-C, M-A, MC-MC, MC-C, MC-A, C-C, C-A, A-A).
pub const PAPER_APPENDIX_E: [f64; 10] = [
    0.0072, 0.0110, 0.0146, 0.03584, 0.0204, 0.0202, 0.0698, 0.0178, 0.0412, 0.166,
];

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_milp::enumerate::solve_by_enumeration;

    /// The thesis' worked example: Nq = 14 with (2 M, 5 MC, 2 C, 5 A)
    /// and the quoted e vector must yield L3 = 2 (M-C), L5 = 2 (MC-MC),
    /// L7 = 1 (MC-A), L10 = 2 (A-A) — Eq. 5.7.
    #[test]
    fn appendix_a_worked_example() {
        let sol = solve_with_e([2, 5, 2, 5], 2, &PAPER_APPENDIX_E).unwrap();
        let mut counts = vec![0u32; 10];
        let patterns = enumerate_patterns(2);
        for (p, m) in &sol.multiplicities {
            let idx = patterns.iter().position(|q| q == p).unwrap();
            counts[idx] = *m;
        }
        assert_eq!(
            counts,
            vec![0, 0, 2, 0, 2, 0, 1, 0, 0, 2],
            "Eq. 5.7 solution vector"
        );
        let expected = 2.0 * 0.0146 + 2.0 * 0.0204 + 0.0698 + 2.0 * 0.166;
        assert!((sol.objective - expected).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_exhaustive_enumeration() {
        let p = build_problem([2, 5, 2, 5], 2, &PAPER_APPENDIX_E);
        let bb = p.solve().unwrap();
        let en = solve_by_enumeration(&p).unwrap();
        assert!((bb.objective - en.objective).abs() < 1e-9);
    }

    #[test]
    fn three_way_grouping() {
        let m = InterferenceMatrix::synthetic_paper_shape();
        let sol = solve_grouping([3, 3, 3, 3], 3, &m).unwrap();
        let groups = sol.groups();
        assert_eq!(groups.len(), 4, "12 apps / 3 = 4 groups");
        // Census adds back up.
        let mut used = [0u32; 4];
        for g in &groups {
            assert_eq!(g.len(), 3);
            for c in g {
                used[c.index()] += 1;
            }
        }
        assert_eq!(used, [3, 3, 3, 3]);
    }

    #[test]
    fn indivisible_queue_rejected() {
        let m = InterferenceMatrix::uniform(2.0);
        assert!(matches!(
            solve_grouping([1, 1, 1, 0], 2, &m),
            Err(CoreError::BadQueue(_))
        ));
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let m = InterferenceMatrix::uniform(2.0);
        assert!(matches!(
            solve_grouping([0, 0, 0, 0], 2, &m),
            Err(CoreError::BadQueue(_))
        ));
        assert!(matches!(
            solve_grouping([2, 0, 0, 0], 1, &m),
            Err(CoreError::BadQueue(_))
        ));
    }

    #[test]
    fn uniform_interference_still_partitions() {
        // With no class preference any grouping is optimal; the census
        // must still be respected.
        let m = InterferenceMatrix::uniform(3.0);
        let sol = solve_grouping([2, 2, 2, 2], 2, &m).unwrap();
        let total: u32 = sol.multiplicities.iter().map(|(_, m)| m).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn m_apps_paired_away_from_each_other() {
        // With the paper-shaped matrix and enough A apps, no M-M pair
        // should appear: M-M is the worst pattern.
        let m = InterferenceMatrix::synthetic_paper_shape();
        let sol = solve_grouping([2, 2, 2, 6], 2, &m).unwrap();
        for (p, _) in &sol.multiplicities {
            assert!(
                p.count(AppClass::M) <= 1,
                "ILP paired two class-M apps together: {p}"
            );
        }
    }

    #[test]
    fn groups_expand_multiplicities() {
        let sol = solve_with_e([2, 5, 2, 5], 2, &PAPER_APPENDIX_E).unwrap();
        assert_eq!(sol.groups().len(), 7);
    }

    #[test]
    fn exhausted_node_budget_surfaces_as_typed_milp_error() {
        let m = InterferenceMatrix::synthetic_paper_shape();
        let r = solve_grouping_with_limit([2, 5, 2, 5], 2, &m, Some(0));
        assert!(
            matches!(
                r,
                Err(CoreError::Milp(gcs_milp::SolveError::NodeLimit))
            ),
            "a zero node budget must fail with NodeLimit"
        );
        // The same census solves fine with the default budget.
        assert!(solve_grouping_with_limit([2, 5, 2, 5], 2, &m, None).is_ok());
    }
}
