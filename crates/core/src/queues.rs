//! Application-queue construction for the evaluation (§4.1/4.2).
//!
//! The thesis evaluates on (i) a 14-application queue that is exactly
//! the profiled suite — 2 class M, 5 class MC, 2 class C, 5 class A —
//! and (ii) 20-application queues with five class distributions: equal,
//! and 55 % of one class with 15 % of each other class.

use gcs_workloads::{Benchmark, PAPER_PROFILES};

use crate::classify::AppClass;

/// Queue class-composition variants of §4.1/§4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// Equal share of each class (5/5/5/5 at length 20).
    Equal,
    /// 55 % class M, 15 % each of the rest.
    MHeavy,
    /// 55 % class MC.
    McHeavy,
    /// 55 % class C.
    CHeavy,
    /// 55 % class A.
    AHeavy,
}

impl Distribution {
    /// All five evaluated distributions, figure order.
    pub const ALL: [Distribution; 5] = [
        Distribution::Equal,
        Distribution::MHeavy,
        Distribution::McHeavy,
        Distribution::CHeavy,
        Distribution::AHeavy,
    ];

    /// Label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            Distribution::Equal => "Equal-dist.",
            Distribution::MHeavy => "M-oriented",
            Distribution::McHeavy => "MC-oriented",
            Distribution::CHeavy => "C-oriented",
            Distribution::AHeavy => "A-oriented",
        }
    }

    /// Per-class application counts at queue length `len`
    /// (55 % / 15 % / 15 % / 15 % for the skewed variants).
    pub fn class_counts(&self, len: u32) -> [u32; AppClass::COUNT] {
        let heavy = (f64::from(len) * 0.55).round() as u32;
        let light = (len - heavy) / 3;
        let fixup = len - heavy - 2 * light; // remainder goes to the last light class
        match self {
            Distribution::Equal => {
                let per = len / 4;
                let rem = len - 3 * per;
                [per, per, per, rem]
            }
            Distribution::MHeavy => [heavy, light, light, fixup],
            Distribution::McHeavy => [light, heavy, light, fixup],
            Distribution::CHeavy => [light, light, heavy, fixup],
            Distribution::AHeavy => [light, light, fixup, heavy],
        }
    }
}

/// The benchmarks the thesis assigns to `class` (Table 3.2).
pub fn class_members(class: AppClass) -> Vec<Benchmark> {
    PAPER_PROFILES
        .iter()
        .filter(|p| AppClass::from_label(&p.class.to_string()) == Some(class))
        .map(|p| p.bench)
        .collect()
}

/// The paper's class for a benchmark (Table 3.2).
pub fn paper_class(bench: Benchmark) -> AppClass {
    let row = PAPER_PROFILES
        .iter()
        .find(|p| p.bench == bench)
        .expect("every benchmark has a Table 3.2 row");
    AppClass::from_label(&row.class.to_string()).expect("valid class letter")
}

/// The 14-application queue of §4.1: the whole suite, arrival order
/// interleaved across classes (2 M, 5 MC, 2 C, 5 A).
pub fn thesis_queue_14() -> Vec<Benchmark> {
    interleave(&[
        class_members(AppClass::M),
        class_members(AppClass::Mc),
        class_members(AppClass::C),
        class_members(AppClass::A),
    ])
}

/// A queue of `len` applications following `dist`, drawing benchmarks
/// round-robin from each class's Table 3.2 members, with the default
/// arrival order (seed 0).
pub fn queue_with_distribution(dist: Distribution, len: u32) -> Vec<Benchmark> {
    queue_with_distribution_seeded(dist, len, 0)
}

/// Like [`queue_with_distribution`] but with an explicit arrival-order
/// seed. FCFS-style baselines are sensitive to arrival luck, so the
/// figure harness averages several seeds.
pub fn queue_with_distribution_seeded(
    dist: Distribution,
    len: u32,
    seed: u64,
) -> Vec<Benchmark> {
    let counts = dist.class_counts(len);
    let mut per_class: Vec<Vec<Benchmark>> = Vec::with_capacity(AppClass::COUNT);
    for class in AppClass::ALL {
        let members = class_members(class);
        let want = counts[class.index()] as usize;
        per_class.push((0..want).map(|i| members[i % members.len()]).collect());
    }
    interleave_seeded(&per_class, seed)
}

/// Class census of an arbitrary queue under the paper's Table 3.2
/// classification.
pub fn census(queue: &[Benchmark]) -> [u32; AppClass::COUNT] {
    let mut counts = [0u32; AppClass::COUNT];
    for &b in queue {
        counts[paper_class(b).index()] += 1;
    }
    counts
}

/// Deterministic shuffle of the concatenated per-class lists — an
/// arbitrary-but-reproducible arrival order. (A round-robin interleave
/// would hand FCFS a nearly class-balanced pairing for free, hiding the
/// difference the grouping policies are supposed to expose.)
fn interleave(lists: &[Vec<Benchmark>]) -> Vec<Benchmark> {
    interleave_seeded(lists, 0)
}

fn interleave_seeded(lists: &[Vec<Benchmark>], seed: u64) -> Vec<Benchmark> {
    let mut out: Vec<Benchmark> = lists.iter().flatten().copied().collect();
    // Fisher-Yates with a fixed LCG seed: stable across runs and
    // platforms, so every figure sees the same arrival order.
    let mut state = 0x5DEE_CE66u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for i in (1..out.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        out.swap(i, j);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_census_matches_chapter_4() {
        let q = thesis_queue_14();
        assert_eq!(q.len(), 14);
        assert_eq!(census(&q), [2, 5, 2, 5]);
    }

    #[test]
    fn distributions_sum_to_len() {
        for dist in Distribution::ALL {
            for len in [12, 20, 21] {
                let c = dist.class_counts(len);
                assert_eq!(c.iter().sum::<u32>(), len, "{dist:?} at {len}");
            }
        }
    }

    #[test]
    fn heavy_class_dominates() {
        let c = Distribution::MHeavy.class_counts(20);
        assert_eq!(c[AppClass::M.index()], 11);
        assert!(c[1] <= 3 && c[2] <= 3);
        let c = Distribution::AHeavy.class_counts(20);
        assert_eq!(c[AppClass::A.index()], 11);
    }

    #[test]
    fn queue_matches_requested_census() {
        for dist in Distribution::ALL {
            let q = queue_with_distribution(dist, 20);
            assert_eq!(q.len(), 20);
            assert_eq!(census(&q), dist.class_counts(20), "{dist:?}");
        }
    }

    #[test]
    fn class_members_cover_table() {
        let m = class_members(AppClass::M);
        assert_eq!(m.len(), 2);
        assert!(m.contains(&Benchmark::Blk) && m.contains(&Benchmark::Gups));
        assert_eq!(class_members(AppClass::Mc).len(), 5);
        assert_eq!(class_members(AppClass::C).len(), 2);
        assert_eq!(class_members(AppClass::A).len(), 5);
    }

    #[test]
    fn census_of_empty_queue_is_zero() {
        assert_eq!(census(&[]), [0, 0, 0, 0]);
    }

    #[test]
    fn census_counts_duplicates_per_class() {
        // GUPS and BLK are both class M (Table 3.2); duplicates must
        // accumulate, not dedupe.
        let q = vec![Benchmark::Gups, Benchmark::Gups, Benchmark::Blk];
        assert_eq!(census(&q)[AppClass::M.index()], 3);
        assert_eq!(census(&q).iter().sum::<u32>(), 3);
    }

    #[test]
    fn class_counts_handles_zero_length() {
        for dist in Distribution::ALL {
            let c = dist.class_counts(0);
            assert_eq!(c, [0, 0, 0, 0], "{dist:?} at len 0");
        }
    }

    #[test]
    fn class_counts_cover_indivisible_lengths() {
        // Lengths not divisible by the class count (4) or by the 55/15
        // split must still sum exactly, with no class going negative
        // (u32 underflow would wrap and explode the sum).
        for dist in Distribution::ALL {
            for len in [1, 2, 3, 5, 7, 9, 13, 17, 19, 23, 31, 97] {
                let c = dist.class_counts(len);
                assert_eq!(c.iter().sum::<u32>(), len, "{dist:?} at {len}: {c:?}");
            }
        }
        // The heavy class actually dominates once the queue is big
        // enough for the split to resolve.
        for dist in [
            Distribution::MHeavy,
            Distribution::McHeavy,
            Distribution::CHeavy,
            Distribution::AHeavy,
        ] {
            let c = dist.class_counts(19);
            let heavy = *c.iter().max().unwrap();
            assert!(heavy >= 10, "{dist:?} at 19: {c:?}");
        }
    }

    #[test]
    fn seeded_queues_handle_edge_lengths() {
        for dist in Distribution::ALL {
            assert!(queue_with_distribution_seeded(dist, 0, 3).is_empty());
            let one = queue_with_distribution_seeded(dist, 1, 3);
            assert_eq!(one.len(), 1);
            // Indivisible length: census still matches the declared
            // class counts exactly.
            let q = queue_with_distribution_seeded(dist, 17, 3);
            assert_eq!(q.len(), 17);
            assert_eq!(census(&q), dist.class_counts(17), "{dist:?}");
        }
    }

    #[test]
    fn seeded_queues_are_deterministic_across_calls() {
        for dist in Distribution::ALL {
            for seed in [0, 1, 7, u64::MAX] {
                let a = queue_with_distribution_seeded(dist, 20, seed);
                let b = queue_with_distribution_seeded(dist, 20, seed);
                assert_eq!(a, b, "{dist:?} seed {seed} must replay identically");
            }
            // Different seeds permute the same multiset.
            let a = queue_with_distribution_seeded(dist, 20, 1);
            let b = queue_with_distribution_seeded(dist, 20, 2);
            let mut sa = a.clone();
            let mut sb = b.clone();
            sa.sort_unstable();
            sb.sort_unstable();
            assert_eq!(sa, sb, "{dist:?}: seeds must not change the census");
        }
        // Seed 0 is the unseeded default.
        assert_eq!(
            queue_with_distribution(Distribution::Equal, 20),
            queue_with_distribution_seeded(Distribution::Equal, 20, 0)
        );
    }

    #[test]
    fn arrival_order_is_shuffled_and_stable() {
        let q1 = thesis_queue_14();
        let q2 = thesis_queue_14();
        assert_eq!(q1, q2, "deterministic");
        // Not simply class-sorted: some adjacent pair must cross classes
        // out of order relative to the class-sorted concatenation.
        let classes: Vec<AppClass> = q1.iter().map(|&b| paper_class(b)).collect();
        let mut sorted = classes.clone();
        sorted.sort_unstable();
        assert_ne!(classes, sorted, "queue must not be class-sorted");
    }
}
