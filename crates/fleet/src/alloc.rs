//! Optimus-style marginal-gain SM budgeting across a heterogeneous
//! fleet.
//!
//! Every admitted job is seeded at the minimum budget (one SM) on the
//! free device with the most SMs remaining, then the allocator
//! repeatedly grants the next one-SM quantum to the job whose
//! predicted marginal STP gain `rate(s+1) − rate(s)` is largest,
//! stopping when no grant has positive predicted gain or no device
//! has SMs left. Budget conservation is structural: a quantum is only
//! ever granted out of its device's remaining pool, so per-device
//! budgets can never exceed `num_sms`.
//!
//! Determinism: the inputs are memoized profile cycles (bit-identical
//! across sweep thread counts), the arithmetic is straight-line `f64`,
//! and every tie breaks the same way — seeding prefers the
//! lowest-index device among equally-free ones, and grants keep the
//! earliest-seeded (lowest job id, since pending is FCFS-ordered) slot
//! among equal gains. `tests/fleet.rs` pins plans at 1/2/8 threads.

use gcs_sched::{Job, JobId};
use gcs_workloads::Benchmark;

use crate::predict::FleetPredictor;
use crate::spec::FleetSpec;

/// One device's share of a fleet plan: the jobs it will co-run and
/// their SM budgets, in seeding order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceAssignment {
    /// Device index into the [`FleetSpec`].
    pub device: usize,
    /// Job ids, aligned with `benches` and `budgets`.
    pub jobs: Vec<JobId>,
    /// The benchmark each job runs.
    pub benches: Vec<Benchmark>,
    /// Granted SM budgets (each ≥ 1; per-device sum ≤ the device's
    /// `num_sms`).
    pub budgets: Vec<u32>,
}

/// A fleet allocation over one scheduling epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPlan {
    /// Per-device assignments, ascending device index; only devices
    /// that received at least one job appear.
    pub assignments: Vec<DeviceAssignment>,
    /// Jobs that could not be placed this epoch (every free device
    /// already holds `max_group` jobs or has no SM left). FCFS order.
    pub deferred: Vec<JobId>,
    /// Σ over placed jobs of the predicted normalized throughput at
    /// the granted budget — the objective the marginal-gain loop
    /// climbs.
    pub predicted_stp: f64,
}

impl FleetPlan {
    /// Jobs placed across all devices.
    pub fn placed(&self) -> usize {
        self.assignments.iter().map(|a| a.jobs.len()).sum()
    }
}

/// Allocates SM budgets for `pending` (FCFS order) across the
/// `free_devices` of `spec`, at most `max_group` jobs per device.
///
/// The predictor must hold a curve for every `(device capacity,
/// bench)` pair involved — gate on
/// [`FleetPredictor::probe_merge`](crate::predict::FleetPredictor::probe_merge)
/// returning 0 first.
///
/// # Panics
///
/// Panics when `max_group` is 0, a device index is out of range, or a
/// required predictor curve is missing.
pub fn allocate(
    predictor: &FleetPredictor,
    spec: &FleetSpec,
    pending: &[Job],
    free_devices: &[usize],
    max_group: usize,
) -> FleetPlan {
    assert!(max_group > 0, "max_group must be at least 1");
    let devices = spec.devices();

    // Remaining SM pool and job count per free device.
    let mut free_sms: Vec<u32> = free_devices.iter().map(|&d| devices[d].num_sms).collect();
    let mut jobs_on: Vec<usize> = vec![0; free_devices.len()];

    // Seeding: each job at minimum budget on the emptiest free device.
    struct Slot {
        /// Index into `free_devices`.
        fd: usize,
        /// Index into `pending`.
        job: usize,
        budget: u32,
    }
    let mut slots: Vec<Slot> = Vec::new();
    let mut deferred: Vec<JobId> = Vec::new();
    for (ji, job) in pending.iter().enumerate() {
        let mut best: Option<usize> = None;
        for fd in 0..free_devices.len() {
            if jobs_on[fd] >= max_group || free_sms[fd] == 0 {
                continue;
            }
            // Strict > keeps the lowest index among equally-free
            // devices.
            if best.is_none_or(|b| free_sms[fd] > free_sms[b]) {
                best = Some(fd);
            }
        }
        match best {
            Some(fd) => {
                free_sms[fd] -= 1;
                jobs_on[fd] += 1;
                slots.push(Slot { fd, job: ji, budget: 1 });
            }
            None => deferred.push(job.id),
        }
    }

    // Marginal-gain loop: grant one SM at a time to the largest
    // predicted gain; stop when nothing gains.
    loop {
        let mut best: Option<(f64, usize)> = None;
        for (si, s) in slots.iter().enumerate() {
            if free_sms[s.fd] == 0 {
                continue;
            }
            let cap = devices[free_devices[s.fd]].num_sms;
            let bench = pending[s.job].bench;
            let gain = predictor.rate(cap, bench, s.budget + 1)
                - predictor.rate(cap, bench, s.budget);
            // Strict > keeps the earliest slot (lowest job id) among
            // equal gains.
            if best.is_none_or(|(g, _)| gain > g) {
                best = Some((gain, si));
            }
        }
        match best {
            Some((gain, si)) if gain > 0.0 => {
                free_sms[slots[si].fd] -= 1;
                slots[si].budget += 1;
            }
            _ => break,
        }
    }

    // Assemble per-device assignments in ascending device order and
    // sum the predicted objective.
    let mut predicted_stp = 0.0;
    for s in &slots {
        let cap = devices[free_devices[s.fd]].num_sms;
        predicted_stp += predictor.rate(cap, pending[s.job].bench, s.budget);
    }
    let mut order: Vec<usize> = (0..free_devices.len()).collect();
    order.sort_unstable_by_key(|&fd| free_devices[fd]);
    let mut assignments: Vec<DeviceAssignment> = Vec::new();
    for fd in order {
        let mut a = DeviceAssignment {
            device: free_devices[fd],
            jobs: Vec::new(),
            benches: Vec::new(),
            budgets: Vec::new(),
        };
        for s in &slots {
            if s.fd == fd {
                a.jobs.push(pending[s.job].id);
                a.benches.push(pending[s.job].bench);
                a.budgets.push(s.budget);
            }
        }
        if !a.jobs.is_empty() {
            assignments.push(a);
        }
    }
    FleetPlan {
        assignments,
        deferred,
        predicted_stp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::FleetPredictor;
    use crate::spec::{DeviceProfile, FleetSpec};

    /// A predictor whose synthetic cycles scale perfectly with SMs
    /// (rate(s) = s / capacity) — marginal gain is flat, so every SM
    /// is worth granting.
    fn linear_predictor(spec: &FleetSpec, benches: &[Benchmark]) -> FleetPredictor {
        let mut p = FleetPredictor::new();
        for d in spec.devices() {
            for &b in benches {
                let samples: Vec<(u32, u64)> = crate::predict::budget_grid(d.num_sms)
                    .into_iter()
                    .map(|s| (s, 1_000_000 * u64::from(d.num_sms) / u64::from(s)))
                    .collect();
                p.insert(d.num_sms, b, &samples);
            }
        }
        p
    }

    fn spec_8_15() -> FleetSpec {
        FleetSpec::new(vec![
            DeviceProfile { id: "gpu0".into(), num_sms: 8 },
            DeviceProfile { id: "gpu1".into(), num_sms: 15 },
        ])
        .expect("spec")
    }

    fn jobs(benches: &[Benchmark]) -> Vec<Job> {
        benches
            .iter()
            .enumerate()
            .map(|(id, &bench)| Job { id, bench, arrival: 0 })
            .collect()
    }

    #[test]
    fn seeds_emptiest_device_first_and_defers_overflow() {
        let spec = spec_8_15();
        let p = linear_predictor(&spec, &[Benchmark::Gups]);
        let pending = jobs(&[Benchmark::Gups; 5]);
        let plan = allocate(&p, &spec, &pending, &[0, 1], 2);
        // Seeding: job0 -> gpu1 (15 free), job1 -> gpu1 (14 > 7),
        // job2 -> gpu0, job3 -> gpu0, job4 deferred (both full).
        assert_eq!(plan.assignments.len(), 2);
        assert_eq!(plan.assignments[0].device, 0);
        assert_eq!(plan.assignments[0].jobs, vec![2, 3]);
        assert_eq!(plan.assignments[1].device, 1);
        assert_eq!(plan.assignments[1].jobs, vec![0, 1]);
        assert_eq!(plan.deferred, vec![4]);
        assert_eq!(plan.placed(), 4);
    }

    #[test]
    fn linear_gains_fill_every_device_exactly() {
        let spec = spec_8_15();
        let p = linear_predictor(&spec, &[Benchmark::Gups]);
        let pending = jobs(&[Benchmark::Gups; 4]);
        let plan = allocate(&p, &spec, &pending, &[0, 1], 2);
        for a in &plan.assignments {
            let cap = spec.devices()[a.device].num_sms;
            assert_eq!(a.budgets.iter().sum::<u32>(), cap, "flat gains take every SM");
            assert!(a.budgets.iter().all(|&b| b >= 1));
        }
    }

    #[test]
    fn allocation_is_deterministic() {
        let spec = spec_8_15();
        let p = linear_predictor(&spec, &[Benchmark::Gups, Benchmark::Hs]);
        let pending = jobs(&[Benchmark::Gups, Benchmark::Hs, Benchmark::Gups, Benchmark::Hs]);
        let a = allocate(&p, &spec, &pending, &[0, 1], 2);
        let b = allocate(&p, &spec, &pending, &[0, 1], 2);
        assert_eq!(a, b);
    }

    #[test]
    fn only_free_devices_receive_work() {
        let spec = spec_8_15();
        let p = linear_predictor(&spec, &[Benchmark::Gups]);
        let pending = jobs(&[Benchmark::Gups; 3]);
        let plan = allocate(&p, &spec, &pending, &[1], 2);
        assert_eq!(plan.assignments.len(), 1);
        assert_eq!(plan.assignments[0].device, 1);
        assert_eq!(plan.assignments[0].jobs, vec![0, 1]);
        assert_eq!(plan.deferred, vec![2]);
    }
}
