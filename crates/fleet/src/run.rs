//! The heterogeneous fleet event loop.
//!
//! `EventCore` dispatches interchangeable groups onto identical
//! devices, so it cannot express "this group was budgeted for the
//! 30-SM device". [`run_fleet`] is the loop that can: same
//! discrete-event discipline and tie order as `EventCore`
//! (completions → admissions → dispatch, dispatch deferred until time
//! advances), but each allocation targets concrete devices and each
//! measurement runs on that device's [`GpuConfig`] with the granted
//! per-job SM budgets ([`CorunMode::Counts`]) through the memoized
//! sweep engine — so warm reruns replay without simulation and
//! results are bit-identical across sweep thread counts.
//!
//! Two modes share the loop so the comparison is apples-to-apples:
//!
//! * [`FleetMode::MarginalGain`] — the Optimus-style allocator
//!   ([`allocate`]) over a warmed [`FleetPredictor`].
//! * [`FleetMode::WholeDeviceFcfs`] — the naive baseline: front job,
//!   whole device, no co-running. Its per-group STP is exactly 1.0 by
//!   construction, which makes "fleet beats FCFS on cross-device STP"
//!   a crisp, pinnable claim.

use std::collections::{BTreeMap, BTreeSet};

use gcs_core::runner::Pipeline;
use gcs_core::sweep::CorunMode;
use gcs_core::{CoreError, SweepEngine, Workload};
use gcs_sim::config::GpuConfig;
use gcs_sched::{AdmissionQueue, Job, JobId, Rejection};
use gcs_workloads::{ArrivalTrace, Benchmark, Scale};

use crate::alloc::allocate;
use crate::predict::FleetPredictor;
use crate::report::{FleetDevice, FleetGroup, FleetJob, FleetReport};
use crate::spec::FleetSpec;

/// Which allocator drives the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetMode {
    /// Marginal-gain SM budgeting with co-running (the subsystem under
    /// test).
    MarginalGain,
    /// One job per device at full capacity, FCFS — the naive baseline.
    WholeDeviceFcfs,
}

impl FleetMode {
    /// Short tag used in report `mode` fields and result file names.
    pub fn tag(self) -> &'static str {
        match self {
            FleetMode::MarginalGain => "fleet",
            FleetMode::WholeDeviceFcfs => "fcfs",
        }
    }
}

/// Knobs for one fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetRunConfig {
    /// Admission-queue capacity; arrivals beyond it are rejected.
    pub queue_capacity: usize,
    /// Allocator driving dispatch.
    pub mode: FleetMode,
}

/// Runs `trace` over `spec`'s devices and reports.
///
/// The pipeline supplies the shared base [`GpuConfig`], scale,
/// per-device group-size bound (its `concurrency`) and the memoized
/// engine; the predictor is warmed up front (every curve point through
/// the memo cache), so scheduling decisions inside the loop never
/// simulate anything that is not a dispatched group.
///
/// # Errors
///
/// Propagates profiling/co-run simulation failures ([`CoreError`]).
///
/// # Panics
///
/// Panics on internal invariant violations (a job waiting with every
/// device idle — impossible for a validated non-empty spec).
pub fn run_fleet(
    pipeline: &Pipeline,
    spec: &FleetSpec,
    cfg: &FleetRunConfig,
    trace: &ArrivalTrace,
) -> Result<FleetReport, CoreError> {
    let rc = pipeline.config();
    let census: BTreeSet<Benchmark> = trace.arrivals().iter().map(|a| a.bench).collect();
    let census: Vec<Benchmark> = census.into_iter().collect();
    let predictor = FleetPredictor::warm(pipeline.engine(), &rc.gpu, rc.scale, spec, &census)?;
    let mut exec = Exec {
        engine: pipeline.engine(),
        base: &rc.gpu,
        scale: rc.scale,
        spec,
        predictor,
        mode: cfg.mode,
        max_group: rc.concurrency.max(1) as usize,
        queue: AdmissionQueue::new(cfg.queue_capacity),
        busy: vec![None; spec.len()],
        now: 0,
        settled: true,
        jobs: Vec::new(),
        groups: Vec::new(),
        rejections: Vec::new(),
        dev_busy: vec![0; spec.len()],
        dev_groups: vec![0; spec.len()],
        churn: 0,
        last_map: BTreeMap::new(),
    };

    for (i, a) in trace.arrivals().iter().enumerate() {
        if a.time > exec.now {
            exec.settle()?;
            exec.pump_to(a.time)?;
        }
        let job = Job {
            id: i,
            bench: a.bench,
            arrival: a.time,
        };
        match exec.queue.offer(job) {
            Ok(()) => exec.settled = false,
            Err(r) => exec.rejections.push(r),
        }
    }
    exec.drain()?;

    let mut jobs = exec.jobs;
    jobs.sort_unstable_by_key(|j| j.id);
    let makespan = exec.groups.iter().map(|g| g.end).max().unwrap_or(0);
    Ok(FleetReport {
        mode: cfg.mode.tag().to_string(),
        queue_capacity: cfg.queue_capacity,
        devices: spec
            .devices()
            .iter()
            .enumerate()
            .map(|(d, dev)| FleetDevice {
                id: dev.id.clone(),
                num_sms: dev.num_sms,
                groups: exec.dev_groups[d],
                busy_cycles: exec.dev_busy[d],
            })
            .collect(),
        jobs,
        rejections: exec.rejections,
        groups: exec.groups,
        degradations: Vec::new(),
        churn: exec.churn,
        makespan,
    })
}

/// Mutable run state; method receiver for the event-loop steps.
struct Exec<'a> {
    engine: &'a SweepEngine,
    base: &'a GpuConfig,
    scale: Scale,
    spec: &'a FleetSpec,
    predictor: FleetPredictor,
    mode: FleetMode,
    max_group: usize,
    queue: AdmissionQueue,
    /// Per-device busy-until cycle.
    busy: Vec<Option<u64>>,
    now: u64,
    settled: bool,
    jobs: Vec<FleetJob>,
    groups: Vec<FleetGroup>,
    rejections: Vec<Rejection>,
    dev_busy: Vec<u64>,
    dev_groups: Vec<u64>,
    churn: u64,
    last_map: BTreeMap<JobId, usize>,
}

impl Exec<'_> {
    fn free_completions(&mut self) {
        for slot in &mut self.busy {
            if slot.is_some_and(|until| until <= self.now) {
                *slot = None;
            }
        }
    }

    /// Earliest pending completion.
    fn next_event(&self) -> Option<u64> {
        self.busy.iter().flatten().copied().min()
    }

    /// Runs the dispatch step at `now`, once.
    fn settle(&mut self) -> Result<(), CoreError> {
        if self.settled {
            return Ok(());
        }
        self.dispatch()?;
        self.settled = true;
        Ok(())
    }

    /// Processes completions strictly before `target`, then lands at
    /// `target` with completions freed and dispatch deferred — the
    /// same discipline as `EventCore::pump_until`.
    fn pump_to(&mut self, target: u64) -> Result<(), CoreError> {
        while let Some(next) = self.next_event() {
            if next >= target {
                break;
            }
            self.now = next;
            self.settled = false;
            self.free_completions();
            self.settle()?;
        }
        self.now = target;
        self.settled = false;
        self.free_completions();
        Ok(())
    }

    /// Drains: dispatches everything pending and advances through all
    /// remaining completions.
    fn drain(&mut self) -> Result<(), CoreError> {
        self.settle()?;
        while let Some(next) = self.next_event() {
            debug_assert!(next > self.now, "events must move time forward");
            self.now = next;
            self.settled = false;
            self.free_completions();
            self.settle()?;
        }
        assert!(
            self.queue.is_empty(),
            "jobs waiting with every device idle — allocator failed to place"
        );
        Ok(())
    }

    fn dispatch(&mut self) -> Result<(), CoreError> {
        if self.queue.is_empty() {
            return Ok(());
        }
        if self.mode == FleetMode::MarginalGain {
            self.track_churn();
        }
        loop {
            let free: Vec<usize> = (0..self.spec.len())
                .filter(|&d| self.busy[d].is_none())
                .collect();
            if free.is_empty() || self.queue.is_empty() {
                return Ok(());
            }
            let placed = match self.mode {
                FleetMode::MarginalGain => self.dispatch_marginal(&free)?,
                FleetMode::WholeDeviceFcfs => self.dispatch_fcfs(&free)?,
            };
            if placed == 0 {
                return Ok(());
            }
        }
    }

    /// Shadow-allocates the full pending census over the whole fleet
    /// and counts jobs whose planned device moved since the previous
    /// epoch — the allocation-churn metric. Pure curve arithmetic;
    /// nothing is simulated.
    fn track_churn(&mut self) {
        let pending = self.queue.pending_vec();
        let all: Vec<usize> = (0..self.spec.len()).collect();
        let shadow = allocate(&self.predictor, self.spec, &pending, &all, self.max_group);
        let mut map: BTreeMap<JobId, usize> = BTreeMap::new();
        for a in &shadow.assignments {
            for &id in &a.jobs {
                map.insert(id, a.device);
            }
        }
        self.churn += map
            .iter()
            .filter(|(id, d)| self.last_map.get(id).is_some_and(|prev| prev != *d))
            .count() as u64;
        self.last_map = map;
    }

    /// One marginal-gain allocation round over the free devices.
    /// Returns how many jobs were dispatched.
    fn dispatch_marginal(&mut self, free: &[usize]) -> Result<usize, CoreError> {
        let pending = self.queue.pending_vec();
        let plan = allocate(&self.predictor, self.spec, &pending, free, self.max_group);
        let mut placed = 0usize;
        for a in &plan.assignments {
            let members = self.queue.take(&a.jobs);
            let cap = self.spec.devices()[a.device].num_sms;
            let cfg_d = self.spec.device_config(self.base, a.device);
            let workloads: Vec<Workload> =
                a.benches.iter().map(|&b| Workload::Bench(b)).collect();
            let out = self.engine.corun_workloads(
                &cfg_d,
                self.scale,
                &workloads,
                &CorunMode::Counts(a.budgets.clone()),
            )?;
            let mut stp = 0.0;
            for (k, m) in members.iter().enumerate() {
                let alone = self.predictor.full_cycles(cap, m.bench);
                let corun = out.cycles[k];
                stp += alone as f64 / corun as f64;
                self.jobs.push(FleetJob {
                    id: m.id,
                    bench: m.bench,
                    device: a.device,
                    arrival: m.arrival,
                    dispatch: self.now,
                    completion: self.now + corun,
                    budget_sms: a.budgets[k],
                    alone_cycles: alone,
                    corun_cycles: corun,
                });
            }
            self.finish_group(a.device, out.makespan, a.jobs.clone(), stp);
            placed += members.len();
        }
        Ok(placed)
    }

    /// Whole-device FCFS baseline: the front job takes each free
    /// device at full capacity. The measurement *is* the memoized
    /// alone profile, so per-group STP is exactly 1.0.
    fn dispatch_fcfs(&mut self, free: &[usize]) -> Result<usize, CoreError> {
        let mut placed = 0usize;
        for &d in free {
            let Some(front) = self.queue.pending().next().map(|j| j.id) else {
                break;
            };
            let members = self.queue.take(&[front]);
            let m = members[0];
            let cap = self.spec.devices()[d].num_sms;
            let cfg_d = self.spec.device_config(self.base, d);
            let p = self
                .engine
                .profile_workload(&cfg_d, self.scale, &Workload::Bench(m.bench), cap)?;
            let cycles = p.cycles;
            self.jobs.push(FleetJob {
                id: m.id,
                bench: m.bench,
                device: d,
                arrival: m.arrival,
                dispatch: self.now,
                completion: self.now + cycles,
                budget_sms: cap,
                alone_cycles: cycles,
                corun_cycles: cycles,
            });
            self.finish_group(d, cycles, vec![m.id], 1.0);
            placed += 1;
        }
        Ok(placed)
    }

    /// Records a dispatched group and marks its device busy. A group
    /// always advances time (`makespan ≥ 1`), so the event loop makes
    /// progress.
    fn finish_group(&mut self, device: usize, makespan: u64, jobs: Vec<JobId>, stp: f64) {
        let span = makespan.max(1);
        let end = self.now + span;
        self.busy[device] = Some(end);
        self.dev_busy[device] += span;
        self.dev_groups[device] += 1;
        self.groups.push(FleetGroup {
            device,
            start: self.now,
            end,
            jobs,
            stp,
        });
    }
}
