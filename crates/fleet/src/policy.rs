//! [`FleetPolicy`] — the fleet allocator as a pluggable scheduling
//! policy.
//!
//! Plugs into the existing `EventCore`/`DaemonCore` epoch-plan path
//! next to `Fcfs`/`GreedyClass`/`IlpEpoch`. At each epoch it probes
//! the memo cache for the predictor curves of the pending census
//! (never simulating in the plan path) and, when complete, runs the
//! marginal-gain allocator in waves until every pending job is
//! grouped. On a cold cache it degrades to the per-device greedy
//! class pairing — the same ladder shape as ILP → greedy — and
//! records a [`Degradation::PredictorColdFallback`].
//!
//! Two deliberate equivalences:
//!
//! * **Degenerate fleet.** A 1-device fleet *is* the single-GPU
//!   scheduler, so the policy delegates to [`IlpEpoch`] outright —
//!   including its name — and the report comes out byte-identical to
//!   a plain `IlpEpoch` run (`tests/fleet.rs` pins the bytes).
//! * **Grouping vs budgeting.** `EventCore` dispatches groups onto
//!   identical devices and applies its own SM allocation; through
//!   this path the fleet plan contributes *who co-runs together*
//!   (budget-aware grouping), while the per-device SM budgets
//!   themselves are honored by the heterogeneous
//!   [`run_fleet`](crate::run::run_fleet) loop.
//!
//! Cross-epoch allocation churn (jobs whose assigned device changed
//! between consecutive plans) is tracked in shared
//! [`FleetPolicyStats`], reachable through a handle because the
//! daemon takes ownership of the boxed policy.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use gcs_core::runner::Pipeline;
use gcs_core::{CoreError, Degradation};
use gcs_sched::policy::ids_for_groups;
use gcs_sched::{IlpEpoch, Job, JobId, Plan, Policy};
use gcs_workloads::Benchmark;

use crate::alloc::allocate;
use crate::predict::FleetPredictor;
use crate::spec::FleetSpec;

/// Counters a [`FleetPolicy`] accumulates across plans, shared through
/// [`FleetPolicy::stats_handle`] so they stay readable after the
/// daemon takes ownership of the boxed policy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetPolicyStats {
    /// Plan calls served (degenerate delegation included).
    pub plans: u64,
    /// Plans degraded to greedy because predictor curves were not yet
    /// memo-cached.
    pub cold_fallbacks: u64,
    /// Jobs whose assigned device changed between consecutive plans —
    /// the allocation-churn count the fleet report surfaces.
    pub churn: u64,
}

/// Marginal-gain fleet allocation as an epoch policy.
pub struct FleetPolicy {
    spec: FleetSpec,
    ilp: IlpEpoch,
    predictor: FleetPredictor,
    stats: Arc<Mutex<FleetPolicyStats>>,
    last_device: BTreeMap<JobId, usize>,
}

impl FleetPolicy {
    /// A policy scheduling onto `spec`'s devices.
    pub fn new(spec: FleetSpec) -> FleetPolicy {
        FleetPolicy {
            spec,
            ilp: IlpEpoch,
            predictor: FleetPredictor::new(),
            stats: Arc::new(Mutex::new(FleetPolicyStats::default())),
            last_device: BTreeMap::new(),
        }
    }

    /// The fleet this policy schedules onto.
    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    /// Shared counters; clone survives handing the policy to a daemon.
    pub fn stats_handle(&self) -> Arc<Mutex<FleetPolicyStats>> {
        Arc::clone(&self.stats)
    }

    /// A 1-device fleet delegates wholesale to [`IlpEpoch`].
    fn degenerate(&self) -> bool {
        self.spec.len() == 1
    }
}

impl Policy for FleetPolicy {
    fn name(&self) -> &'static str {
        // The degenerate fleet *is* the single-GPU scheduler; naming
        // it "ilp" keeps the report byte-identical to an IlpEpoch run
        // (the equivalence pin in tests/fleet.rs).
        if self.degenerate() {
            "ilp"
        } else {
            "fleet"
        }
    }

    fn plan(&mut self, pipeline: &Pipeline, pending: &[Job]) -> Result<Plan, CoreError> {
        {
            let mut stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
            stats.plans += 1;
        }
        if self.degenerate() {
            return self.ilp.plan(pipeline, pending);
        }
        if pending.is_empty() {
            return Ok(Plan {
                groups: Vec::new(),
                degradations: Vec::new(),
            });
        }

        let cfg = pipeline.config();
        let census: BTreeSet<Benchmark> = pending.iter().map(|j| j.bench).collect();
        let census: Vec<Benchmark> = census.into_iter().collect();
        let missing = self.predictor.probe_merge(
            pipeline.engine(),
            &cfg.gpu,
            cfg.scale,
            &self.spec,
            &census,
        );
        if missing > 0 {
            // Cold cache: degrade to the class-aware greedy pairing
            // instead of simulating inside a scheduling decision.
            let mut stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
            stats.cold_fallbacks += 1;
            let benches: Vec<Benchmark> = pending.iter().map(|j| j.bench).collect();
            let groups = pipeline.group_greedy_class(&benches);
            return Ok(Plan {
                groups: ids_for_groups(pending, &groups),
                degradations: vec![Degradation::PredictorColdFallback { missing }],
            });
        }

        // Warm path: allocate in waves over the whole fleet until every
        // pending job is grouped (the Plan contract). Each wave places
        // at least one job, so this terminates.
        let all_devices: Vec<usize> = (0..self.spec.len()).collect();
        let max_group = cfg.concurrency.max(1) as usize;
        let mut remaining: Vec<Job> = pending.to_vec();
        let mut groups: Vec<Vec<JobId>> = Vec::new();
        let mut mapping: BTreeMap<JobId, usize> = BTreeMap::new();
        while !remaining.is_empty() {
            let plan = allocate(&self.predictor, &self.spec, &remaining, &all_devices, max_group);
            assert!(plan.placed() > 0, "a non-empty fleet must place at least one job");
            for a in &plan.assignments {
                for &id in &a.jobs {
                    mapping.insert(id, a.device);
                }
                groups.push(a.jobs.clone());
            }
            remaining.retain(|j| !mapping.contains_key(&j.id));
        }

        let churn = mapping
            .iter()
            .filter(|(id, d)| self.last_device.get(id).is_some_and(|prev| prev != *d))
            .count() as u64;
        {
            let mut stats = self.stats.lock().unwrap_or_else(|e| e.into_inner());
            stats.churn += churn;
        }
        self.last_device = mapping;

        Ok(Plan {
            groups,
            degradations: Vec::new(),
        })
    }
}
