//! Fleet topology: which devices exist and how many SMs each has.
//!
//! A [`FleetSpec`] is a validated, ordered list of [`DeviceProfile`]s
//! sharing one base [`GpuConfig`] (clock, cache geometry, DRAM model);
//! heterogeneity is expressed as per-device SM capacity, which is the
//! axis the paper's allocation problem actually varies. The spec
//! round-trips through the same hand-rolled, tolerant JSON idiom as
//! [`ArrivalTrace`](gcs_workloads::ArrivalTrace) and never panics on
//! malformed input — every failure is a typed [`FleetError`].

use gcs_sim::config::GpuConfig;

/// One device in the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Stable, unique name (e.g. `"gpu0"`). Appears verbatim in the
    /// fleet report, so it must not contain `"` or `\`.
    pub id: String,
    /// SM capacity (≥ 1). The device config is the fleet's base
    /// [`GpuConfig`] with `num_sms` replaced by this.
    pub num_sms: u32,
}

/// Typed validation and parse failures for fleet specs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The spec listed no devices.
    Empty,
    /// Two devices share an id.
    DuplicateId(String),
    /// A device declared zero SMs.
    ZeroSms(String),
    /// Structurally invalid spec text or an invalid device id.
    Malformed(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Empty => write!(f, "fleet spec lists no devices"),
            FleetError::DuplicateId(id) => write!(f, "duplicate device id {id:?}"),
            FleetError::ZeroSms(id) => write!(f, "device {id:?} declares zero SMs"),
            FleetError::Malformed(why) => write!(f, "malformed fleet spec: {why}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// A validated heterogeneous fleet: ≥ 1 devices, unique ids, every
/// device with ≥ 1 SMs. Device order is significant (dispatch and
/// tie-breaking use the index) and preserved by the JSON round trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    devices: Vec<DeviceProfile>,
}

impl FleetSpec {
    /// Validates `devices` into a spec.
    ///
    /// # Errors
    ///
    /// [`FleetError::Empty`] with no devices, [`FleetError::ZeroSms`]
    /// on a zero-capacity device, [`FleetError::DuplicateId`] on a
    /// repeated id, and [`FleetError::Malformed`] on an empty id or an
    /// id containing `"` / `\` (which could not render into the
    /// canonical report).
    pub fn new(devices: Vec<DeviceProfile>) -> Result<FleetSpec, FleetError> {
        if devices.is_empty() {
            return Err(FleetError::Empty);
        }
        for (i, d) in devices.iter().enumerate() {
            if d.id.is_empty() {
                return Err(FleetError::Malformed("device id must be non-empty".into()));
            }
            if d.id.contains('"') || d.id.contains('\\') {
                return Err(FleetError::Malformed(format!(
                    "device id {:?} contains a quote or backslash",
                    d.id
                )));
            }
            if d.num_sms == 0 {
                return Err(FleetError::ZeroSms(d.id.clone()));
            }
            if devices[..i].iter().any(|e| e.id == d.id) {
                return Err(FleetError::DuplicateId(d.id.clone()));
            }
        }
        Ok(FleetSpec { devices })
    }

    /// A homogeneous fleet of `count` devices with `num_sms` SMs each,
    /// ids `gpu0`, `gpu1`, …
    ///
    /// # Errors
    ///
    /// [`FleetError::Empty`] when `count` is 0 and
    /// [`FleetError::ZeroSms`] when `num_sms` is 0.
    pub fn homogeneous(count: usize, num_sms: u32) -> Result<FleetSpec, FleetError> {
        FleetSpec::new(
            (0..count)
                .map(|i| DeviceProfile {
                    id: format!("gpu{i}"),
                    num_sms,
                })
                .collect(),
        )
    }

    /// The devices, in spec order.
    pub fn devices(&self) -> &[DeviceProfile] {
        &self.devices
    }

    /// Number of devices (≥ 1).
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Always false — an empty spec cannot be constructed. Present for
    /// clippy's `len`-without-`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Largest SM capacity in the fleet.
    pub fn max_sms(&self) -> u32 {
        self.devices.iter().map(|d| d.num_sms).max().expect("non-empty fleet")
    }

    /// The concrete [`GpuConfig`] of device `idx`: the shared `base`
    /// with `num_sms` replaced by the device's capacity.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    pub fn device_config(&self, base: &GpuConfig, idx: usize) -> GpuConfig {
        let mut cfg = base.clone();
        cfg.num_sms = self.devices[idx].num_sms;
        cfg
    }

    /// Compact single-line JSON:
    /// `{"devices":[{"id":"gpu0","num_sms":8},...]}`. Deterministic —
    /// identical specs render byte-identically.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(16 + self.devices.len() * 28);
        s.push_str("{\"devices\":[");
        for (i, d) in self.devices.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"id\":\"");
            s.push_str(&d.id);
            s.push_str("\",\"num_sms\":");
            s.push_str(&d.num_sms.to_string());
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Parses the format [`FleetSpec::to_json`] writes (whitespace
    /// between tokens is tolerated), then validates like
    /// [`FleetSpec::new`].
    ///
    /// # Errors
    ///
    /// [`FleetError::Malformed`] on structural problems, plus every
    /// validation error of [`FleetSpec::new`].
    pub fn from_json(text: &str) -> Result<FleetSpec, FleetError> {
        let bad = |why: &str| FleetError::Malformed(why.to_string());
        let rest = text.trim_start();
        let rest = rest.strip_prefix('{').ok_or_else(|| bad("missing leading '{'"))?;
        let rest = rest.trim_start();
        let rest = rest
            .strip_prefix("\"devices\"")
            .ok_or_else(|| bad("missing \"devices\" key"))?;
        let rest = rest.trim_start();
        let rest = rest
            .strip_prefix(':')
            .ok_or_else(|| bad("missing ':' after \"devices\""))?;
        let rest = rest.trim_start();
        let mut rest = rest
            .strip_prefix('[')
            .ok_or_else(|| bad("missing devices '['"))?;
        let mut devices = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(tail) = rest.strip_prefix(']') {
                let tail = tail.trim_start();
                let tail = tail.strip_suffix('}').ok_or_else(|| bad("missing final '}'"))?;
                if !tail.trim().is_empty() {
                    return Err(bad("trailing content after spec object"));
                }
                break;
            }
            if !devices.is_empty() {
                rest = rest
                    .strip_prefix(',')
                    .ok_or_else(|| bad("missing ',' between devices"))?
                    .trim_start();
            }
            let (device, tail) = parse_device(rest)?;
            devices.push(device);
            rest = tail;
        }
        FleetSpec::new(devices)
    }
}

/// Parses one `{"id":"NAME","num_sms":N}` object, returning the
/// remainder.
fn parse_device(text: &str) -> Result<(DeviceProfile, &str), FleetError> {
    let bad = |why: &str| FleetError::Malformed(why.to_string());
    let rest = text.strip_prefix('{').ok_or_else(|| bad("missing device '{'"))?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix("\"id\"")
        .ok_or_else(|| bad("missing \"id\" key"))?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix(':').ok_or_else(|| bad("missing ':' after \"id\""))?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix('"')
        .ok_or_else(|| bad("device id must be a string"))?;
    let quote = rest.find('"').ok_or_else(|| bad("unterminated device id"))?;
    let id = rest[..quote].to_string();
    let rest = &rest[quote + 1..];
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix(',')
        .ok_or_else(|| bad("missing ',' after device id"))?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix("\"num_sms\"")
        .ok_or_else(|| bad("missing \"num_sms\" key"))?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix(':')
        .ok_or_else(|| bad("missing ':' after \"num_sms\""))?;
    let rest = rest.trim_start();
    let digits = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if digits == 0 {
        return Err(bad("missing num_sms value"));
    }
    let num_sms: u32 = rest[..digits]
        .parse()
        .map_err(|_| bad("num_sms out of range"))?;
    let rest = rest[digits..].trim_start();
    let rest = rest
        .strip_prefix('}')
        .ok_or_else(|| bad("missing device '}'"))?;
    Ok((DeviceProfile { id, num_sms }, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hetero() -> FleetSpec {
        FleetSpec::new(vec![
            DeviceProfile { id: "gpu0".into(), num_sms: 8 },
            DeviceProfile { id: "gpu1".into(), num_sms: 15 },
            DeviceProfile { id: "gpu2".into(), num_sms: 30 },
        ])
        .expect("valid spec")
    }

    #[test]
    fn validation_is_typed_and_never_panics() {
        assert_eq!(FleetSpec::new(vec![]), Err(FleetError::Empty));
        let zero = FleetSpec::new(vec![DeviceProfile { id: "a".into(), num_sms: 0 }]);
        assert_eq!(zero, Err(FleetError::ZeroSms("a".into())));
        let dup = FleetSpec::new(vec![
            DeviceProfile { id: "a".into(), num_sms: 4 },
            DeviceProfile { id: "a".into(), num_sms: 8 },
        ]);
        assert_eq!(dup, Err(FleetError::DuplicateId("a".into())));
        assert!(matches!(
            FleetSpec::new(vec![DeviceProfile { id: String::new(), num_sms: 4 }]),
            Err(FleetError::Malformed(_))
        ));
        assert!(matches!(
            FleetSpec::new(vec![DeviceProfile { id: "a\"b".into(), num_sms: 4 }]),
            Err(FleetError::Malformed(_))
        ));
    }

    #[test]
    fn json_round_trips_exactly() {
        let spec = hetero();
        let json = spec.to_json();
        assert_eq!(
            json,
            "{\"devices\":[{\"id\":\"gpu0\",\"num_sms\":8},\
             {\"id\":\"gpu1\",\"num_sms\":15},{\"id\":\"gpu2\",\"num_sms\":30}]}"
        );
        let back = FleetSpec::from_json(&json).expect("parse");
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn parser_tolerates_whitespace_and_rejects_garbage() {
        let loose = "{ \"devices\" : [ { \"id\" : \"a\" , \"num_sms\" : 4 } ] }";
        let spec = FleetSpec::from_json(loose).expect("tolerant parse");
        assert_eq!(spec.devices()[0].num_sms, 4);
        for garbage in [
            "",
            "{}",
            "{\"devices\":}",
            "{\"devices\":[{\"id\":\"a\"}]}",
            "{\"devices\":[{\"id\":\"a\",\"num_sms\":}]}",
            "{\"devices\":[{\"id\":\"a\",\"num_sms\":4}]} trailing",
            "{\"devices\":[{\"id\":\"a\",\"num_sms\":99999999999999999999}]}",
        ] {
            assert!(
                matches!(FleetSpec::from_json(garbage), Err(FleetError::Malformed(_))),
                "accepted {garbage:?}"
            );
        }
        // Structurally valid JSON with invalid content surfaces the
        // validation error, not Malformed.
        assert_eq!(
            FleetSpec::from_json("{\"devices\":[{\"id\":\"a\",\"num_sms\":0}]}"),
            Err(FleetError::ZeroSms("a".into()))
        );
    }

    #[test]
    fn device_config_overrides_only_sm_count() {
        let spec = hetero();
        let base = GpuConfig::test_small();
        let cfg = spec.device_config(&base, 2);
        assert_eq!(cfg.num_sms, 30);
        let mut back = cfg.clone();
        back.num_sms = base.num_sms;
        assert_eq!(back, base, "everything but num_sms is shared");
    }

    #[test]
    fn homogeneous_names_devices_in_order() {
        let spec = FleetSpec::homogeneous(3, 8).expect("spec");
        let ids: Vec<&str> = spec.devices().iter().map(|d| d.id.as_str()).collect();
        assert_eq!(ids, ["gpu0", "gpu1", "gpu2"]);
        assert_eq!(spec.max_sms(), 8);
        assert_eq!(FleetSpec::homogeneous(0, 8), Err(FleetError::Empty));
    }
}
