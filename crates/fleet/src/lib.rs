//! Heterogeneous multi-GPU fleet allocation with marginal-gain SM
//! budgeting.
//!
//! Everything below this crate schedules onto *one* GPU (or N
//! identical free devices through `EventCore`). This crate generalizes
//! dispatch to a heterogeneous fleet:
//!
//! * [`FleetSpec`] / [`DeviceProfile`] — a typed, validated fleet
//!   description with JSON round-trip ([`FleetError`] instead of
//!   panics).
//! * [`FleetPredictor`] — normalized-throughput curves per
//!   `(device capacity, benchmark)` built from the memo-cached alone
//!   profiles; warm starts replay without simulating.
//! * [`allocate`] — the Optimus-style marginal-gain allocator: seed
//!   every job at one SM, repeatedly grant the next SM quantum to the
//!   largest predicted STP gain, deterministic tie-breaking.
//! * [`FleetPolicy`] — the allocator as an epoch policy next to
//!   `Fcfs`/`GreedyClass`/`IlpEpoch`, degrading to greedy on a cold
//!   predictor cache exactly like the ILP → greedy ladder.
//! * [`run_fleet`] / [`FleetReport`] — the heterogeneous event loop
//!   and its canonical byte-stable report (per-device utilization,
//!   cross-device STP/ANTT, allocation churn).
//!
//! A homogeneous 1-device fleet reproduces the single-GPU scheduler
//! byte-for-byte (`tests/fleet.rs` pins it), so the fleet path is a
//! strict generalization rather than a fork.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod policy;
pub mod predict;
pub mod report;
pub mod run;
pub mod spec;

pub use alloc::{allocate, DeviceAssignment, FleetPlan};
pub use policy::{FleetPolicy, FleetPolicyStats};
pub use predict::{budget_grid, FleetPredictor};
pub use report::{FleetDevice, FleetGroup, FleetJob, FleetReport};
pub use run::{run_fleet, FleetMode, FleetRunConfig};
pub use spec::{DeviceProfile, FleetError, FleetSpec};
