//! Per-device throughput prediction from memo-cached profile curves.
//!
//! For every distinct device capacity `n` in the fleet and every
//! benchmark in play, the predictor holds a normalized-throughput
//! curve over SM budgets: `rate(s) = cycles(n) / cycles(s)` from the
//! existing alone-run profiles (`profile_with_sms` through the sweep
//! engine's memo cache), sampled on the same six-point grid the
//! pipeline's scalability curves use and linearly interpolated between
//! samples ([`gcs_core::runner::interpolate`]). `rate` is 1.0 at the
//! full device by construction and the marginal gain
//! `rate(s+1) − rate(s)` is what the allocator maximizes.
//!
//! Two ways in:
//!
//! * [`FleetPredictor::warm`] simulates (or replays from cache) every
//!   curve point up front — the runner's path. Warm starts replay with
//!   zero newly simulated jobs; `tests/fleet.rs` pins this.
//! * [`FleetPredictor::probe_merge`] is **cache-only**
//!   ([`SweepEngine::profile_workload_cached`]): the plan-path entry
//!   point, which must never hide a simulation inside a scheduling
//!   decision. Missing curves are reported so the caller can degrade
//!   to greedy planning, mirroring the ILP → greedy ladder.

use std::collections::{BTreeMap, BTreeSet};

use gcs_core::runner::interpolate;
use gcs_core::{CoreError, SweepEngine, Workload};
use gcs_sim::config::GpuConfig;
use gcs_workloads::{Benchmark, Scale};

use crate::spec::FleetSpec;

/// One `(device capacity, benchmark)` scalability record.
#[derive(Debug, Clone)]
struct Curve {
    /// Ascending `(budget_sms, rate)` samples; last point is
    /// `(capacity, 1.0)`.
    points: Vec<(u32, f64)>,
    /// Alone-run cycles on the full device — the STP/ANTT reference.
    full_cycles: u64,
}

/// Normalized-throughput curves for every `(capacity, benchmark)` pair
/// the fleet can schedule.
#[derive(Debug, Clone, Default)]
pub struct FleetPredictor {
    curves: BTreeMap<(u32, Benchmark), Curve>,
}

/// The SM-budget sample grid for a device of `capacity` SMs — the same
/// six relative points the pipeline's `ensure_curve` uses, deduped and
/// clamped to ≥ 1.
pub fn budget_grid(capacity: u32) -> Vec<u32> {
    let n = capacity;
    let mut grid: Vec<u32> = [n / 6, n / 3, n / 2, 2 * n / 3, 5 * n / 6, n]
        .into_iter()
        .map(|x| x.max(1))
        .collect();
    grid.sort_unstable();
    grid.dedup();
    grid
}

/// Distinct device capacities of `spec`, ascending.
fn capacities(spec: &FleetSpec) -> Vec<u32> {
    let set: BTreeSet<u32> = spec.devices().iter().map(|d| d.num_sms).collect();
    set.into_iter().collect()
}

/// The shared base config resized to `capacity` SMs.
fn capacity_config(base: &GpuConfig, capacity: u32) -> GpuConfig {
    let mut cfg = base.clone();
    cfg.num_sms = capacity;
    cfg
}

impl FleetPredictor {
    /// An empty predictor (no curves; every probe reports misses).
    pub fn new() -> FleetPredictor {
        FleetPredictor::default()
    }

    /// Profiles every `(capacity, bench)` curve for `spec` ×
    /// `benches`, fanning the grid points across the engine's workers.
    /// Every point goes through the memo cache, so a second warm with
    /// the same cache directory replays without simulating.
    ///
    /// # Errors
    ///
    /// Propagates the first profiling failure (by job index).
    pub fn warm(
        engine: &SweepEngine,
        base: &GpuConfig,
        scale: Scale,
        spec: &FleetSpec,
        benches: &[Benchmark],
    ) -> Result<FleetPredictor, CoreError> {
        let caps = capacities(spec);
        let mut jobs: Vec<(u32, Benchmark, u32)> = Vec::new();
        for &cap in &caps {
            for &bench in benches {
                for sms in budget_grid(cap) {
                    jobs.push((cap, bench, sms));
                }
            }
        }
        let cycles: Vec<u64> = engine.run_parallel(jobs.len(), |i| {
            let (cap, bench, sms) = jobs[i];
            let cfg = capacity_config(base, cap);
            engine
                .profile_workload(&cfg, scale, &Workload::Bench(bench), sms)
                .map(|p| p.cycles)
        })?;
        let mut predictor = FleetPredictor::new();
        let mut at = 0usize;
        for &cap in &caps {
            for &bench in benches {
                let grid = budget_grid(cap);
                let sampled: Vec<(u32, u64)> = grid
                    .iter()
                    .map(|&sms| {
                        let c = cycles[at];
                        at += 1;
                        (sms, c)
                    })
                    .collect();
                predictor.insert(cap, bench, &sampled);
            }
        }
        Ok(predictor)
    }

    /// Cache-only completion: for every `(capacity, bench)` curve of
    /// `spec` × `benches` not yet held, probes the memo cache for all
    /// its grid points ([`SweepEngine::profile_workload_cached`] —
    /// never simulates) and merges complete curves in. Returns how
    /// many curves are still missing; 0 means the predictor can serve
    /// every rate the allocator will ask for.
    pub fn probe_merge(
        &mut self,
        engine: &SweepEngine,
        base: &GpuConfig,
        scale: Scale,
        spec: &FleetSpec,
        benches: &[Benchmark],
    ) -> usize {
        let mut missing = 0usize;
        for cap in capacities(spec) {
            let cfg = capacity_config(base, cap);
            for &bench in benches {
                if self.curves.contains_key(&(cap, bench)) {
                    continue;
                }
                let sampled: Option<Vec<(u32, u64)>> = budget_grid(cap)
                    .into_iter()
                    .map(|sms| {
                        engine
                            .profile_workload_cached(&cfg, scale, &Workload::Bench(bench), sms)
                            .map(|p| (sms, p.cycles))
                    })
                    .collect();
                match sampled {
                    Some(s) => self.insert(cap, bench, &s),
                    None => missing += 1,
                }
            }
        }
        missing
    }

    /// Builds and stores the rate curve from `(sms, cycles)` samples.
    /// Crate-visible so allocator unit tests can install synthetic
    /// curves.
    pub(crate) fn insert(&mut self, cap: u32, bench: Benchmark, sampled: &[(u32, u64)]) {
        let full_cycles = sampled.last().expect("non-empty grid").1;
        let points: Vec<(u32, f64)> = sampled
            .iter()
            .map(|&(sms, cycles)| (sms, full_cycles as f64 / cycles.max(1) as f64))
            .collect();
        self.curves.insert((cap, bench), Curve { points, full_cycles });
    }

    /// Whether the curve for (`capacity`, `bench`) is loaded.
    pub fn has(&self, capacity: u32, bench: Benchmark) -> bool {
        self.curves.contains_key(&(capacity, bench))
    }

    /// Curves currently loaded.
    pub fn len(&self) -> usize {
        self.curves.len()
    }

    /// True while no curve is loaded.
    pub fn is_empty(&self) -> bool {
        self.curves.is_empty()
    }

    /// Predicted normalized throughput of `bench` with a `budget_sms`
    /// budget on a `capacity`-SM device: exact at grid points, linear
    /// between them, 1.0 at the full device.
    ///
    /// # Panics
    ///
    /// Panics when the curve was never loaded — allocation must only
    /// run over a complete predictor (that is what
    /// [`FleetPredictor::probe_merge`]'s missing count gates).
    pub fn rate(&self, capacity: u32, bench: Benchmark, budget_sms: u32) -> f64 {
        let curve = self
            .curves
            .get(&(capacity, bench))
            .unwrap_or_else(|| panic!("no curve for {bench} at {capacity} SMs"));
        interpolate(&curve.points, budget_sms)
    }

    /// Alone-run cycles of `bench` on the full `capacity`-SM device —
    /// the reference for STP and ANTT on that device.
    ///
    /// # Panics
    ///
    /// Panics when the curve was never loaded (see
    /// [`FleetPredictor::rate`]).
    pub fn full_cycles(&self, capacity: u32, bench: Benchmark) -> u64 {
        self.curves
            .get(&(capacity, bench))
            .unwrap_or_else(|| panic!("no curve for {bench} at {capacity} SMs"))
            .full_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_ascending_deduped_and_ends_at_capacity() {
        assert_eq!(budget_grid(30), vec![5, 10, 15, 20, 25, 30]);
        assert_eq!(budget_grid(8), vec![1, 2, 4, 5, 6, 8]);
        assert_eq!(budget_grid(1), vec![1]);
        for cap in 1..64 {
            let g = budget_grid(cap);
            assert_eq!(*g.last().unwrap(), cap);
            assert!(g.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn rate_is_one_at_full_device_and_interpolates_between() {
        let mut p = FleetPredictor::new();
        // Synthetic cycles: halving the SMs doubles the runtime up to a
        // knee, then saturates.
        p.insert(8, Benchmark::Gups, &[(1, 800), (2, 400), (4, 200), (8, 100)]);
        assert!((p.rate(8, Benchmark::Gups, 8) - 1.0).abs() < 1e-12);
        assert!((p.rate(8, Benchmark::Gups, 4) - 0.5).abs() < 1e-12);
        // Linear between samples: rate(6) = midpoint of 0.5 and 1.0.
        assert!((p.rate(8, Benchmark::Gups, 6) - 0.75).abs() < 1e-12);
        assert_eq!(p.full_cycles(8, Benchmark::Gups), 100);
        assert!(p.has(8, Benchmark::Gups));
        assert!(!p.has(15, Benchmark::Gups));
    }

    #[test]
    #[should_panic(expected = "no curve")]
    fn missing_curve_is_a_loud_bug_not_a_guess() {
        FleetPredictor::new().rate(8, Benchmark::Gups, 4);
    }
}
